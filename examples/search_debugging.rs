//! Paper §II Case 1 — debugging the search engine.
//!
//! A system engineer chases a data-inconsistency bug whose evidence is
//! spread over *three* storage systems: retrieval logs on the online
//! machines' local file systems, the page index on HDFS, and last
//! quarter's archived pages in the Fatman cold store. Before Feisu this
//! meant learning three APIs and hand-joining exports; here it is three
//! CREATE TABLEs and one JOIN.
//!
//! Run with: `cargo run --release -p feisu-core --example search_debugging`

use feisu_common::NodeId;
use feisu_core::engine::{ClusterSpec, FeisuCluster};
use feisu_format::{DataType, Field, Schema, Value};

fn main() -> feisu_common::Result<()> {
    let cluster = FeisuCluster::new(ClusterSpec::small())?;
    let engineer = cluster.register_user("sys-engineer");
    cluster.grant_all(engineer);
    let cred = cluster.login(engineer)?;

    // Retrieval logs: produced on each online node, stored on ITS disk.
    let log_schema = Schema::new(vec![
        Field::new("query_id", DataType::Int64, false),
        Field::new("url", DataType::Utf8, false),
        Field::new("latency_ms", DataType::Int64, false),
        Field::new("status", DataType::Int64, false),
    ]);
    cluster.create_table("retrieval_log", log_schema, "/data/retrieval", &cred)?;
    for node in 0..cluster.node_count() as u64 {
        let rows: Vec<Vec<Value>> = (0..500)
            .map(|i| {
                let qid = (node * 10_000 + i) as i64;
                vec![
                    Value::from(qid),
                    Value::from(format!("https://site{}.example/p{}", i % 20, i % 7)),
                    Value::from(((i * 13) % 900) as i64),
                    // A malfunctioning shard on node 2 times out (599).
                    Value::from(if node == 2 && i % 9 == 0 { 599i64 } else { 200 }),
                ]
            })
            .collect();
        cluster.ingest_rows_at("retrieval_log", rows, NodeId(node), &cred)?;
    }

    // Page index: business data on HDFS.
    let index_schema = Schema::new(vec![
        Field::new("url", DataType::Utf8, false),
        Field::new("index_version", DataType::Int64, false),
        Field::new("page_rank", DataType::Float64, false),
    ]);
    cluster.create_table("page_index", index_schema, "/hdfs/search/index", &cred)?;
    let rows: Vec<Vec<Value>> = (0..400)
        .map(|i| {
            vec![
                Value::from(format!("https://site{}.example/p{}", i % 20, i % 7)),
                Value::from(if i % 11 == 3 { 41i64 } else { 42 }), // stale entries
                Value::from((i % 100) as f64 / 100.0),
            ]
        })
        .collect();
    cluster.ingest_rows("page_index", rows, &cred)?;

    // Archived crawl snapshot: cold storage on Fatman.
    let archive_schema = Schema::new(vec![
        Field::new("url", DataType::Utf8, false),
        Field::new("crawl_day", DataType::Int64, false),
    ]);
    cluster.create_table("crawl_archive", archive_schema, "/ffs/crawl/2016q1", &cred)?;
    let rows: Vec<Vec<Value>> = (0..400)
        .map(|i| {
            vec![
                Value::from(format!("https://site{}.example/p{}", i % 20, i % 7)),
                Value::from(20160100 + (i % 30) as i64),
            ]
        })
        .collect();
    cluster.ingest_rows("crawl_archive", rows, &cred)?;

    println!("== Step 1: where do timeouts cluster? (local-fs log scan) ==");
    let r = cluster.query(
        "SELECT url, COUNT(*) AS timeouts FROM retrieval_log \
         WHERE status = 599 GROUP BY url ORDER BY timeouts DESC LIMIT 5",
        &cred,
    )?;
    println!("{}", r.batch.to_table_string());
    println!("response {}\n", r.response_time);

    println!("== Step 2: are the slow URLs served from a stale index? (cross-domain join) ==");
    let r = cluster.query(
        "SELECT page_index.index_version, COUNT(*) AS hits \
         FROM retrieval_log JOIN page_index ON retrieval_log.url = page_index.url \
         WHERE retrieval_log.status = 599 \
         GROUP BY page_index.index_version ORDER BY hits DESC",
        &cred,
    )?;
    println!("{}", r.batch.to_table_string());

    println!(
        "== Step 3: trial-and-error refinement — the same predicate again, now index-served =="
    );
    let narrowed = cluster.query(
        "SELECT COUNT(*) FROM retrieval_log WHERE status = 599 AND latency_ms > 500",
        &cred,
    )?;
    println!(
        "refined count = {} | index hits {} | bytes read {}",
        narrowed.batch.column(0).value(0),
        narrowed.stats.index_hits,
        narrowed.stats.bytes_read,
    );

    println!("\n== Step 4: confirm the archived snapshot has the pages (cold Fatman read) ==");
    let r = cluster.query(
        "SELECT COUNT(*) FROM crawl_archive WHERE crawl_day >= 20160101",
        &cred,
    )?;
    println!(
        "archived pages = {} (note the cold-storage latency: {})",
        r.batch.column(0).value(0),
        r.response_time
    );
    Ok(())
}
