//! Paper §II Case 3 — product analysis.
//!
//! An analyst mixes a year of archived history (Fatman cold storage) with
//! the latest hot data (HDFS) to build a revenue report, using
//! partial-result options to keep dashboards interactive and pinned
//! per-user SmartIndexes for the recurring report predicates.
//!
//! Run with: `cargo run --release -p feisu-core --example product_analytics`

use feisu_common::SimDuration;
use feisu_core::engine::{ClusterSpec, FeisuCluster, QueryOptions};
use feisu_format::{DataType, Field, Schema, Value};

fn revenue_schema() -> Schema {
    Schema::new(vec![
        Field::new("product", DataType::Utf8, false),
        Field::new("region", DataType::Utf8, false),
        Field::new("day", DataType::Int64, false),
        Field::new("revenue", DataType::Float64, false),
        Field::new("users", DataType::Int64, false),
    ])
}

fn rows(days: std::ops::Range<i64>, per_day: usize) -> Vec<Vec<Value>> {
    let products = ["search-ads", "maps-api", "cloud", "appstore"];
    let regions = ["north", "south", "east", "west"];
    let mut out = Vec::new();
    for day in days {
        for i in 0..per_day {
            let p = products[(day as usize + i) % products.len()];
            let r = regions[i % regions.len()];
            out.push(vec![
                Value::from(p),
                Value::from(r),
                Value::from(day),
                Value::from(((i * 37 + day as usize * 11) % 1000) as f64 / 10.0),
                Value::from(((i * 13) % 500) as i64),
            ]);
        }
    }
    out
}

fn main() -> feisu_common::Result<()> {
    let mut spec = ClusterSpec::small();
    // Small blocks and no job-manager reuse so the demo shows SmartIndex
    // and partial-result behaviour rather than whole-task caching.
    spec.rows_per_block = 256;
    spec.task_reuse = false;
    let cluster = FeisuCluster::new(spec)?;
    let analyst = cluster.register_user("analyst");
    cluster.grant_all(analyst);
    let cred = cluster.login(analyst)?;

    // Hot: this quarter on HDFS. Cold: last year archived on Fatman.
    cluster.create_table(
        "revenue_hot",
        revenue_schema(),
        "/hdfs/biz/revenue_2016q2",
        &cred,
    )?;
    cluster.create_table(
        "revenue_2015",
        revenue_schema(),
        "/ffs/biz/revenue_2015",
        &cred,
    )?;
    cluster.ingest_rows("revenue_hot", rows(20160401..20160420, 60), &cred)?;
    cluster.ingest_rows("revenue_2015", rows(20150401..20150420, 60), &cred)?;

    println!("== Quarterly report: hot data ==");
    let report = cluster.query(
        "SELECT product, SUM(revenue) AS total, AVG(users) \
         FROM revenue_hot WHERE day >= 20160401 \
         GROUP BY product ORDER BY total DESC",
        &cred,
    )?;
    println!("{}", report.batch.to_table_string());

    println!("== Year-over-year: the archive pays the cold-read penalty ==");
    let yoy = cluster.query(
        "SELECT product, SUM(revenue) AS total FROM revenue_2015 \
         WHERE day >= 20150401 GROUP BY product ORDER BY total DESC",
        &cred,
    )?;
    println!("{}", yoy.batch.to_table_string());
    println!(
        "hot {} vs cold {} response\n",
        report.response_time, yoy.response_time
    );

    println!("== Interactive dashboard: sampled answer under a hard time limit ==");
    let full = cluster.query("SELECT COUNT(*) FROM revenue_2015 WHERE users >= 0", &cred)?;
    let opts = QueryOptions {
        processed_ratio: 0.25,
        time_limit: Some(SimDuration::nanos(full.response_time.as_nanos() / 2)),
    };
    // A fresh predicate so nothing is pre-cached for the sampled run.
    let sampled = cluster.query_with(
        "SELECT COUNT(*) FROM revenue_2015 WHERE users >= 1",
        &cred,
        &opts,
    )?;
    println!(
        "full count {} in {} | sampled count {} in {} (partial={}, {:.0}% of tasks)",
        full.batch.column(0).value(0),
        full.response_time,
        sampled.batch.column(0).value(0),
        sampled.response_time,
        sampled.partial,
        sampled.stats.processed_ratio * 100.0
    );

    println!("\n== Recurring report predicates: personalize + pinned indexes ==");
    // Run the daily report a few times so the history sees the pattern…
    for _ in 0..3 {
        cluster.query(
            "SELECT COUNT(*) FROM revenue_hot WHERE day >= 20160410",
            &cred,
        )?;
    }
    let pinned = cluster.personalize(analyst, 4)?;
    println!("pinned {pinned} private index entries for the analyst");
    let warm = cluster.query(
        "SELECT COUNT(*) FROM revenue_hot WHERE day >= 20160410",
        &cred,
    )?;
    println!(
        "daily report now: {} response, {} of {} tasks served from memory",
        warm.response_time, warm.stats.memory_served_tasks, warm.stats.tasks
    );
    Ok(())
}
