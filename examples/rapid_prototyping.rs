//! Paper §II Case 2 — rapid product prototyping.
//!
//! A product engineer explores user-behaviour data to demarcate the
//! benefited user set for a voice-search prototype. The workflow is the
//! trial-and-error loop the paper describes: start broad, add predicates
//! one by one — exactly the access pattern SmartIndex exploits. Labeled
//! training data live in the KV store; behaviour logs on HDFS.
//!
//! Run with: `cargo run --release -p feisu-core --example rapid_prototyping`

use feisu_core::engine::{ClusterSpec, FeisuCluster};
use feisu_format::{DataType, Field, Schema, Value};

fn main() -> feisu_common::Result<()> {
    let cluster = FeisuCluster::new(ClusterSpec::small())?;
    let pm = cluster.register_user("product-engineer");
    cluster.grant_all(pm);
    let cred = cluster.login(pm)?;

    // User behaviour log on HDFS.
    let behaviour = Schema::new(vec![
        Field::new("user_id", DataType::Int64, false),
        Field::new("queries_per_day", DataType::Int64, false),
        Field::new("voice_capable", DataType::Bool, false),
        Field::new("avg_query_len", DataType::Float64, false),
        Field::new("region", DataType::Utf8, false),
    ]);
    cluster.create_table("behaviour", behaviour, "/hdfs/users/behaviour", &cred)?;
    let rows: Vec<Vec<Value>> = (0..3000)
        .map(|i| {
            vec![
                Value::from(i as i64),
                Value::from(((i * 17) % 120) as i64),
                Value::from(i % 3 != 0),
                Value::from(4.0 + ((i * 7) % 40) as f64 / 10.0),
                Value::from(["north", "south", "east", "west"][i % 4]),
            ]
        })
        .collect();
    cluster.ingest_rows("behaviour", rows, &cred)?;

    // Labeled voice-intent data in the KV label store.
    let labels = Schema::new(vec![
        Field::new("user_id", DataType::Int64, false),
        Field::new("voice_intent", DataType::Float64, false),
    ]);
    cluster.create_table("voice_labels", labels, "/kv/labels/voice", &cred)?;
    let rows: Vec<Vec<Value>> = (0..3000)
        .step_by(2)
        .map(|i| {
            vec![
                Value::from(i as i64),
                Value::from(((i * 31) % 100) as f64 / 100.0),
            ]
        })
        .collect();
    cluster.ingest_rows("voice_labels", rows, &cred)?;

    // The trial-and-error loop: each refinement re-uses earlier
    // predicates, so every round gets cheaper.
    let rounds = [
        "SELECT COUNT(*) FROM behaviour",
        "SELECT COUNT(*) FROM behaviour WHERE queries_per_day > 30",
        "SELECT COUNT(*) FROM behaviour WHERE queries_per_day > 30 AND voice_capable = TRUE",
        "SELECT region, COUNT(*) FROM behaviour \
         WHERE queries_per_day > 30 AND voice_capable = TRUE AND avg_query_len >= 6 \
         GROUP BY region ORDER BY region",
    ];
    println!("== Demarcating the benefited user set, one predicate at a time ==");
    for (i, sql) in rounds.iter().enumerate() {
        let r = cluster.query(sql, &cred)?;
        println!(
            "round {}: response {:>12} | index hits {:>3} | built {:>3} | bytes {}",
            i + 1,
            r.response_time.to_string(),
            r.stats.index_hits,
            r.stats.index_built,
            r.stats.bytes_read
        );
        if i + 1 == rounds.len() {
            println!("{}", r.batch.to_table_string());
        }
    }

    println!("== Joining against the labeled set (KV domain) for training-set sizing ==");
    let r = cluster.query(
        "SELECT COUNT(*) AS candidates, AVG(voice_labels.voice_intent) AS mean_intent \
         FROM behaviour JOIN voice_labels ON behaviour.user_id = voice_labels.user_id \
         WHERE behaviour.queries_per_day > 30 AND behaviour.voice_capable = TRUE",
        &cred,
    )?;
    println!("{}", r.batch.to_table_string());
    println!(
        "one-week data-preparation loop reduced to {} of simulated cluster time",
        r.response_time
    );
    Ok(())
}
