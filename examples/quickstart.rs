//! Quickstart: stand up a simulated Feisu cluster, load a table, run
//! queries, and watch SmartIndex warm up.
//!
//! Run with: `cargo run --release -p feisu-core --example quickstart`

use feisu_core::engine::{ClusterSpec, FeisuCluster};
use feisu_format::{DataType, Field, Schema, Value};

fn main() -> feisu_common::Result<()> {
    // 1. A small deployment: 1 data center, 2 racks, 4 nodes, with the
    //    paper's defaults (512 MB SmartIndex memory, 72 h TTL, 3 replicas).
    let cluster = FeisuCluster::new(ClusterSpec::small())?;

    // 2. Users authenticate once (SSO) and carry a credential everywhere.
    let me = cluster.register_user("quickstart");
    cluster.grant_all(me);
    let cred = cluster.login(me)?;

    // 3. Create a table on the HDFS domain and load a little click log.
    let schema = Schema::new(vec![
        Field::new("url", DataType::Utf8, false),
        Field::new("keyword", DataType::Utf8, false),
        Field::new("clicks", DataType::Int64, false),
        Field::new("ctr", DataType::Float64, false),
    ]);
    cluster.create_table("clicklog", schema, "/hdfs/demo/clicklog", &cred)?;
    let rows: Vec<Vec<Value>> = (0..2000)
        .map(|i| {
            vec![
                Value::from(format!("https://site{}.example/page{}", i % 10, i % 37)),
                Value::from(["weather", "map", "music", "news"][i % 4]),
                Value::from(((i * 7) % 500) as i64),
                Value::from((i % 100) as f64 / 100.0),
            ]
        })
        .collect();
    cluster.ingest_rows("clicklog", rows, &cred)?;

    // 4. Ad-hoc SQL. The first run builds SmartIndexes while scanning.
    let sql = "SELECT keyword, COUNT(*) AS n, AVG(ctr) \
               FROM clicklog WHERE clicks > 100 AND clicks <= 400 \
               GROUP BY keyword ORDER BY n DESC";
    let cold = cluster.query(sql, &cred)?;
    println!("-- first run (cold) --");
    println!("{}", cold.batch.to_table_string());
    println!(
        "response {} | tasks {} | bytes read {} | indexes built {}",
        cold.response_time, cold.stats.tasks, cold.stats.bytes_read, cold.stats.index_built
    );

    // 5. The same predicates again: served from SmartIndex memory.
    let warm = cluster.query(sql, &cred)?;
    println!("\n-- second run (warm) --");
    println!(
        "response {} | index hits {} | bytes read {}",
        warm.response_time, warm.stats.index_hits, warm.stats.bytes_read
    );
    let speedup = cold.response_time.as_secs_f64() / warm.response_time.as_secs_f64().max(1e-12);
    println!("speedup from SmartIndex + task reuse: {speedup:.1}x");

    // 6. EXPLAIN ANALYZE: every result carries its execution profile —
    //    summary counters above the master → stem → leaf_task span tree.
    println!("\n-- EXPLAIN ANALYZE (cold run) --");
    print!("{}", cold.profile.render());

    // 7. Cluster-wide counters and latency histograms, JSON-exportable.
    println!("\n-- metrics registry --");
    println!("{}", cluster.metrics().to_json());
    Ok(())
}
