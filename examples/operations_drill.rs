//! Operations drill: the reliability machinery of §III-B/C and §V-B in
//! one session — node failures with replica failover, stragglers tamed by
//! backup tasks, resource-agreement preemption, and partial results under
//! a response-time SLA.
//!
//! Run with: `cargo run --release -p feisu-core --example operations_drill`

use feisu_common::{NodeId, SimDuration};
use feisu_core::engine::{ClusterSpec, FeisuCluster, QueryOptions};
use feisu_format::{DataType, Field, Schema, Value};

fn main() -> feisu_common::Result<()> {
    let mut spec = ClusterSpec::with_nodes(8);
    spec.task_reuse = false;
    spec.use_smartindex = false; // watch the raw execution machinery
    spec.rows_per_block = 512;
    spec.config.backup_task_delay = SimDuration::millis(5);
    let cluster = FeisuCluster::new(spec)?;
    let sre = cluster.register_user("sre");
    cluster.grant_all(sre);
    let cred = cluster.login(sre)?;

    let schema = Schema::new(vec![
        Field::new("shard", DataType::Int64, false),
        Field::new("qps", DataType::Int64, false),
    ]);
    cluster.create_table("svc_metrics", schema, "/hdfs/ops/metrics", &cred)?;
    cluster.ingest_rows(
        "svc_metrics",
        (0..4096)
            .map(|i| {
                vec![
                    Value::Int64((i % 64) as i64),
                    Value::Int64(((i * 13) % 900) as i64),
                ]
            })
            .collect(),
        &cred,
    )?;
    let sql = "SELECT COUNT(*) FROM svc_metrics WHERE qps > 450";
    let healthy = cluster.query(sql, &cred)?;
    println!(
        "healthy cluster : {} in {} ({} tasks)",
        healthy.batch.column(0).value(0),
        healthy.response_time,
        healthy.stats.tasks
    );

    // 1. Kill a node: replicas absorb it.
    cluster.fail_node(NodeId(3));
    let degraded = cluster.query(sql, &cred)?;
    println!(
        "node 3 down     : {} in {} (backup tasks: {})",
        degraded.batch.column(0).value(0),
        degraded.response_time,
        degraded.stats.backup_tasks
    );
    cluster.recover_node(NodeId(3));

    // 2. A business-load spike claims node 0 entirely (§V-A agreement).
    cluster.set_business_load(NodeId(0), 1_000);
    let squeezed = cluster.query(sql, &cred)?;
    println!(
        "node 0 squeezed : {} in {} (feisu slots on node 0: {})",
        squeezed.batch.column(0).value(0),
        squeezed.response_time,
        cluster.feisu_slot_limit(NodeId(0))
    );
    cluster.set_business_load(NodeId(0), 0);

    // 3. Stragglers: half the fleet slows 20x; backups bound the tail.
    for n in 0..4u64 {
        cluster.slow_node(NodeId(n), 20.0);
    }
    let straggling = cluster.query(sql, &cred)?;
    println!(
        "4 nodes 20x slow: {} in {} (backup tasks: {})",
        straggling.batch.column(0).value(0),
        straggling.response_time,
        straggling.stats.backup_tasks
    );

    // 4. SLA mode: return whatever 30% of the data yields within half the
    //    straggling response time.
    let opts = QueryOptions {
        processed_ratio: 0.3,
        time_limit: Some(SimDuration::nanos(straggling.response_time.as_nanos() / 2)),
    };
    let sla = cluster.query_with(sql, &cred, &opts)?;
    println!(
        "SLA partial mode: {} in {} (partial={}, {:.0}% of tasks)",
        sla.batch.column(0).value(0),
        sla.response_time,
        sla.partial,
        sla.stats.processed_ratio * 100.0
    );
    Ok(())
}
