#!/usr/bin/env bash
# Regenerates every paper figure/table plus the ablations into results/.
# Usage: scripts/run_all_experiments.sh [results-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-results}"
mkdir -p "$OUT"
cargo build --release -p feisu-bench

BINS=(
  fig04_column_locality
  fig05_query_similarity
  fig08_keyword_frequency
  table1_datasets
  fig09a_smartindex_warmup
  fig09b_smartindex_vs_btree
  fig10_multi_storage
  fig11_memory_sweep
  fig12_scalability
  production_mix
  ablation_scheduling
  ablation_task_reuse
  ablation_index_compression
  ablation_ttl
  ablation_backup_tasks
)
for bin in "${BINS[@]}"; do
  echo "== running $bin =="
  ./target/release/"$bin" | tee "$OUT/$bin.txt"
done
echo "All experiment outputs written to $OUT/"
