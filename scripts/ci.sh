#!/usr/bin/env bash
# The tier-1 gate plus lints, exactly what a PR must keep green:
#   1. cargo fmt --check
#   2. cargo build --release
#   3. cargo test -q
#   4. cargo clippy --workspace -- -D warnings
# Usage: scripts/ci.sh
#
# The build environment has no network; when crates.io is unreachable the
# script falls back to --offline (all dependencies are vendored under
# shims/, so offline builds are fully supported).
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=""
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
  echo "ci: no network, using --offline"
  OFFLINE="--offline"
fi

echo "ci: fmt (--check)"
cargo fmt --all -- --check

echo "ci: build (release)"
cargo build --release $OFFLINE

echo "ci: test"
cargo test -q $OFFLINE

# The parallel leaf-task pool must produce bit-identical simulated
# results at any thread count. Re-run the e2e suites at a pinned pool
# width (tests/src/lib.rs honors FEISU_EXECUTION_THREADS for specs that
# don't pin their own) to prove results don't depend on the executor.
echo "ci: e2e at execution_threads=8"
FEISU_EXECUTION_THREADS=8 cargo test -q $OFFLINE -p feisu-tests

# Aggregate transport must be thread-count-independent too: the split /
# transport / merge property suite (exact i64 sums, zone-skip result
# transparency) re-runs explicitly at the pinned pool width.
echo "ci: agg round-trip properties at execution_threads=8"
FEISU_EXECUTION_THREADS=8 cargo test -q $OFFLINE -p feisu-tests --test agg_roundtrip

# The multi-level merge tree and repartition exchange must be
# thread-count-independent as well: the depth/partition property suite
# re-runs explicitly at the pinned pool width.
echo "ci: merge-exchange properties at execution_threads=8"
FEISU_EXECUTION_THREADS=8 cargo test -q $OFFLINE -p feisu-tests --test merge_exchange

# The shared (&self) engine must yield bit-identical results with many
# client threads driving it at once. Re-run the e2e suites at a pinned
# client width (tests/tests/concurrency.rs honors FEISU_CLIENT_THREADS).
echo "ci: e2e at client_threads=4"
FEISU_CLIENT_THREADS=4 cargo test -q $OFFLINE -p feisu-tests

echo "ci: clippy (-D warnings)"
cargo clippy --workspace $OFFLINE -- -D warnings

# Late-materialization bench must run end to end and leave a well-formed
# results file (tiny config; the committed numbers come from a full run).
echo "ci: leaf-scan bench (smoke)"
cargo run --release $OFFLINE -p feisu-bench --bin bench_leaf_scan -- --smoke
if [ ! -s results/BENCH_leaf_scan.json ]; then
  echo "ci: results/BENCH_leaf_scan.json missing or empty" >&2
  exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("results/BENCH_leaf_scan.json") as f:
    data = json.load(f)
configs = data["configs"]
assert configs, "no bench configs recorded"
for c in configs:
    for k in ("name", "selectivity_pct", "touched", "baseline_ms", "optimized_ms", "speedup",
              "baseline_p50_ms", "baseline_p95_ms", "baseline_p99_ms",
              "optimized_p50_ms", "optimized_p95_ms", "optimized_p99_ms"):
        assert k in c, f"config missing {k}: {c}"
print(f"ci: bench json ok ({len(configs)} configs)")
EOF
else
  grep -q '"bench": "leaf_scan"' results/BENCH_leaf_scan.json
  grep -q '"speedup"' results/BENCH_leaf_scan.json
  echo "ci: bench json ok (grep check)"
fi

# Concurrency bench must also run end to end and leave a well-formed
# results file (smoke config; committed numbers come from a full run).
echo "ci: concurrency bench (smoke)"
cargo run --release $OFFLINE -p feisu-bench --bin bench_concurrency -- --smoke
if [ ! -s results/BENCH_concurrency.json ]; then
  echo "ci: results/BENCH_concurrency.json missing or empty" >&2
  exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("results/BENCH_concurrency.json") as f:
    data = json.load(f)
assert data["bench"] == "concurrency", data
clients = data["clients"]
assert clients, "no client configs recorded"
for c in clients:
    for k in ("clients", "queries", "wall_ms", "qps", "speedup",
              "p50_ms", "p95_ms", "p99_ms"):
        assert k in c, f"client entry missing {k}: {c}"
print(f"ci: concurrency json ok ({len(clients)} client counts)")
EOF
else
  grep -q '"bench": "concurrency"' results/BENCH_concurrency.json
  grep -q '"qps"' results/BENCH_concurrency.json
  echo "ci: concurrency json ok (grep check)"
fi

# Zone-map skipping bench must run end to end, leave a well-formed
# results file, and show cold selective scans actually got cheaper
# (deterministic simulated ratio; committed numbers come from a full
# run). The guard config must stay free when nothing can be skipped.
echo "ci: zone-skip bench (smoke)"
cargo run --release $OFFLINE -p feisu-bench --bin bench_zone_skip -- --smoke
if [ ! -s results/BENCH_zone_skip.json ]; then
  echo "ci: results/BENCH_zone_skip.json missing or empty" >&2
  exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("results/BENCH_zone_skip.json") as f:
    data = json.load(f)
assert data["bench"] == "zone_skip", data
configs = data["configs"]
assert configs, "no bench configs recorded"
for c in configs:
    for k in ("name", "rows_out", "blocks_skipped", "blocks_scanned",
              "zone_on_sim_ms", "zone_off_sim_ms", "sim_speedup",
              "zone_on_wall_ms", "zone_off_wall_ms", "wall_speedup"):
        assert k in c, f"config missing {k}: {c}"
by_name = {c["name"]: c for c in configs}
sel = by_name["point_1_block"]
assert sel["blocks_skipped"] > 0, f"selective scan skipped nothing: {sel}"
assert sel["sim_speedup"] > 1.0, f"selective scan not cheaper: {sel}"
guard = by_name["unselective_guard"]
assert guard["blocks_skipped"] == 0, f"guard skipped blocks: {guard}"
assert abs(guard["sim_speedup"] - 1.0) < 1e-9, f"zone check not free: {guard}"
print(f"ci: zone-skip json ok (selective sim speedup {sel['sim_speedup']}x)")
EOF
else
  grep -q '"bench": "zone_skip"' results/BENCH_zone_skip.json
  grep -q '"selective_speedup"' results/BENCH_zone_skip.json
  echo "ci: zone-skip json ok (grep check)"
fi

# Cache-mix bench: ghost admission must actually pay off on the Zipfian
# multi-user trace — strictly higher hit rate than admit-everything, no
# worse tail latency, and bit-identical answers across all three cache
# configs (smoke config; committed numbers come from a full run).
echo "ci: cache-mix bench (smoke)"
cargo run --release $OFFLINE -p feisu-bench --bin bench_cache_mix -- --smoke
if [ ! -s results/BENCH_cache_mix.json ]; then
  echo "ci: results/BENCH_cache_mix.json missing or empty" >&2
  exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("results/BENCH_cache_mix.json") as f:
    data = json.load(f)
assert data["bench"] == "cache_mix", data
assert data["parity"] is True, "cache configs returned different answers"
configs = data["configs"]
assert configs, "no bench configs recorded"
for c in configs:
    for k in ("name", "hit_rate", "mem_hit_rate", "ssd_hit_rate",
              "mem_hits", "ssd_hits", "misses", "ghost_admissions",
              "rejected", "evictions", "p50_ms", "p95_ms", "p99_ms"):
        assert k in c, f"config missing {k}: {c}"
by_name = {c["name"]: c for c in configs}
on, off = by_name["admission_on"], by_name["admission_off"]
assert on["hit_rate"] > off["hit_rate"], \
    f"ghost admission must beat admit-everything: {on['hit_rate']} vs {off['hit_rate']}"
assert on["p95_ms"] <= off["p95_ms"], \
    f"ghost admission must not worsen p95: {on['p95_ms']} vs {off['p95_ms']}"
assert by_name["cache_off"]["hit_rate"] == 0.0, "cache_off must not hit"
print(f"ci: cache-mix json ok (hit {on['hit_rate']} vs {off['hit_rate']})")
EOF
else
  grep -q '"bench": "cache_mix"' results/BENCH_cache_mix.json
  grep -q '"parity": true' results/BENCH_cache_mix.json
  echo "ci: cache-mix json ok (grep check)"
fi

# Distributed-aggregation bench: the topology-derived multi-level merge
# tree with the repartition exchange must ship strictly fewer
# stem→master bytes than the two-level baseline and return bit-identical
# answers (smoke config; the committed numbers come from a full
# 256–1024-node run, where the bench additionally asserts the
# critical-path win).
echo "ci: distributed-agg bench (smoke)"
cargo run --release $OFFLINE -p feisu-bench --bin bench_distributed_agg -- --smoke
if [ ! -s results/BENCH_distributed_agg.json ]; then
  echo "ci: results/BENCH_distributed_agg.json missing or empty" >&2
  exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("results/BENCH_distributed_agg.json") as f:
    data = json.load(f)
assert data["bench"] == "distributed_agg", data
configs = data["configs"]
assert configs, "no bench configs recorded"
for c in configs:
    for k in ("nodes", "rows", "groups_out", "parity",
              "two_level_sim_ms", "multi_level_sim_ms", "sim_speedup",
              "two_level_wire_leaf_stem", "multi_level_wire_leaf_stem",
              "two_level_wire_rack_dc", "multi_level_wire_rack_dc",
              "two_level_wire_stem_master", "multi_level_wire_stem_master",
              "stem_master_wire_reduction"):
        assert k in c, f"config missing {k}: {c}"
    assert c["parity"] is True, f"merge-tree shapes disagreed: {c}"
    assert c["multi_level_wire_stem_master"] < c["two_level_wire_stem_master"], \
        f"multi-level must ship fewer stem→master bytes: {c}"
    assert c["multi_level_wire_rack_dc"] > 0, \
        f"topology shape must record the rack→dc leg: {c}"
print(f"ci: distributed-agg json ok ({len(configs)} node counts)")
EOF
else
  grep -q '"bench": "distributed_agg"' results/BENCH_distributed_agg.json
  grep -q '"parity": true' results/BENCH_distributed_agg.json
  echo "ci: distributed-agg json ok (grep check)"
fi

# Join-order bench: the cost-based search must actually reorder the
# Zipfian star join, answer exactly the same as the syntactic order, and
# never be slower (smoke config; the committed numbers come from a full
# run, which shows the >1.5x simulated win).
echo "ci: join-order bench (smoke)"
cargo run --release $OFFLINE -p feisu-bench --bin bench_join_order -- --smoke
if [ ! -s results/BENCH_join_order.json ]; then
  echo "ci: results/BENCH_join_order.json missing or empty" >&2
  exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("results/BENCH_join_order.json") as f:
    data = json.load(f)
assert data["bench"] == "join_order", data
configs = data["configs"]
assert configs, "no bench configs recorded"
for c in configs:
    for k in ("name", "rows_out", "results_match", "joins_reordered", "join_order",
              "syntactic_sim_ms", "reordered_sim_ms", "sim_speedup",
              "syntactic_wall_ms", "reordered_wall_ms", "wall_speedup"):
        assert k in c, f"config missing {k}: {c}"
    assert c["results_match"] is True, f"reordering changed the answer: {c}"
    assert c["joins_reordered"] > 0, f"cost-based search never reordered: {c}"
    assert c["sim_speedup"] >= 1.0, f"reordered plan must not be slower: {c}"
star = configs[0]
print(f"ci: join-order json ok (sim speedup {star['sim_speedup']}x, {star['join_order']})")
EOF
else
  grep -q '"bench": "join_order"' results/BENCH_join_order.json
  grep -q '"results_match": true' results/BENCH_join_order.json
  echo "ci: join-order json ok (grep check)"
fi

# Observability plane: system tables must answer plain SQL and a real
# query's Chrome trace must export as parseable, non-empty JSON.
echo "ci: observability smoke (system tables + trace export)"
cargo run --release $OFFLINE -p feisu-bench --bin obs_smoke
if [ ! -s results/TRACE_smoke.json ]; then
  echo "ci: results/TRACE_smoke.json missing or empty" >&2
  exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("results/TRACE_smoke.json") as f:
    events = json.load(f)
assert isinstance(events, list) and events, "trace must be a non-empty JSON array"
for e in events:
    for k in ("name", "ph", "ts", "dur", "pid", "tid"):
        assert k in e, f"trace event missing {k}: {e}"
assert any(e["name"] == "master" for e in events), "no master span in trace"
print(f"ci: trace json ok ({len(events)} events)")
EOF
else
  grep -q '"ph": "X"' results/TRACE_smoke.json
  grep -q '"name": "master"' results/TRACE_smoke.json
  echo "ci: trace json ok (grep check)"
fi

echo "ci: all green"
