#!/usr/bin/env bash
# The tier-1 gate plus lints, exactly what a PR must keep green:
#   1. cargo build --release
#   2. cargo test -q
#   3. cargo clippy --workspace -- -D warnings
# Usage: scripts/ci.sh
#
# The build environment has no network; when crates.io is unreachable the
# script falls back to --offline (all dependencies are vendored under
# shims/, so offline builds are fully supported).
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=""
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
  echo "ci: no network, using --offline"
  OFFLINE="--offline"
fi

echo "ci: build (release)"
cargo build --release $OFFLINE

echo "ci: test"
cargo test -q $OFFLINE

echo "ci: clippy (-D warnings)"
cargo clippy --workspace $OFFLINE -- -D warnings

echo "ci: all green"
