#!/usr/bin/env bash
# The tier-1 gate plus lints, exactly what a PR must keep green:
#   1. cargo fmt --check
#   2. cargo build --release
#   3. cargo test -q
#   4. cargo clippy --workspace -- -D warnings
# Usage: scripts/ci.sh
#
# The build environment has no network; when crates.io is unreachable the
# script falls back to --offline (all dependencies are vendored under
# shims/, so offline builds are fully supported).
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=""
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
  echo "ci: no network, using --offline"
  OFFLINE="--offline"
fi

echo "ci: fmt (--check)"
cargo fmt --all -- --check

echo "ci: build (release)"
cargo build --release $OFFLINE

echo "ci: test"
cargo test -q $OFFLINE

# The parallel leaf-task pool must produce bit-identical simulated
# results at any thread count. Re-run the e2e suites at a pinned pool
# width (tests/src/lib.rs honors FEISU_EXECUTION_THREADS for specs that
# don't pin their own) to prove results don't depend on the executor.
echo "ci: e2e at execution_threads=8"
FEISU_EXECUTION_THREADS=8 cargo test -q $OFFLINE -p feisu-tests

echo "ci: clippy (-D warnings)"
cargo clippy --workspace $OFFLINE -- -D warnings

echo "ci: all green"
