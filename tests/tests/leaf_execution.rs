//! Leaf-server execution semantics, probed directly at the LeafServer
//! API (below the engine): cost accounting of the columnar read model,
//! zone pruning, the count-only memory path, and partial aggregation.

use feisu_cluster::{CostModel, Topology};
use feisu_common::hash::FxHashMap;
use feisu_common::{ByteSize, NodeId, SimDuration, SimInstant, UserId};
use feisu_core::leaf::{AggStage, LeafServer, ScanTask};
use feisu_format::table::{BlockDesc, BlockZone};
use feisu_format::{Block, Column, DataType, Field, Schema};
use feisu_index::manager::IndexManager;
use feisu_sql::ast::{AggFunc, Expr};
use feisu_sql::cnf::to_cnf;
use feisu_sql::parser::parse_expr;
use feisu_sql::plan::AggExpr;
use feisu_storage::auth::{AuthService, Credential, Grant};
use feisu_storage::hdfs::HdfsDomain;
use feisu_storage::{StorageDomain, StorageRouter};
use std::sync::Arc;

struct Rig {
    router: StorageRouter,
    cred: Credential,
    desc: BlockDesc,
    /// Same block serialized without the footer zone section (the
    /// pre-zone-map layout), stored at its own path.
    desc_legacy: BlockDesc,
    schema: Schema,
    topology: Arc<Topology>,
}

fn rig() -> Rig {
    let topology = Arc::new(Topology::grid(1, 2, 2));
    let cost = CostModel::default();
    let hdfs: Arc<dyn StorageDomain> = Arc::new(HdfsDomain::new(
        feisu_common::DomainId(1),
        "hdfs",
        topology.clone(),
        cost.clone(),
        3,
        7,
    ));
    let auth = Arc::new(AuthService::new(9));
    auth.register(UserId(1));
    auth.grant(UserId(1), feisu_common::DomainId(1), Grant::ReadWrite);
    let cred = auth
        .issue(UserId(1), SimInstant(0), SimDuration::hours(8))
        .unwrap();
    let router = StorageRouter::new(vec![hdfs], 0, auth, None, cost);

    let schema = Schema::new(vec![
        Field::new("a", DataType::Int64, false),
        Field::new("b", DataType::Int64, false),
        Field::new("c", DataType::Int64, false),
    ]);
    let block = Block::new(
        feisu_common::BlockId(0),
        schema.clone(),
        vec![
            Column::from_i64((0..256).collect()),
            Column::from_i64((0..256).map(|i| i % 50).collect()),
            Column::from_i64((0..256).map(|i| i % 7).collect()),
        ],
    )
    .unwrap();
    let bytes = block.serialize();
    let desc = BlockDesc {
        id: block.id(),
        path: "/t/b0".into(),
        rows: block.rows(),
        stored_size: ByteSize(bytes.len() as u64),
        raw_size: ByteSize(block.footprint() as u64),
        zones: schema
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let s = block.stats(i);
                BlockZone {
                    column: f.name.clone(),
                    min: s.min,
                    max: s.max,
                    null_count: s.null_count,
                }
            })
            .collect(),
    };
    router
        .write("/t/b0", bytes.into(), Some(NodeId(0)), &cred, SimInstant(0))
        .unwrap();
    let legacy_bytes = block.serialize_with(false);
    let mut desc_legacy = desc.clone();
    desc_legacy.path = "/t/b0_legacy".into();
    desc_legacy.stored_size = ByteSize(legacy_bytes.len() as u64);
    router
        .write(
            "/t/b0_legacy",
            legacy_bytes.into(),
            Some(NodeId(0)),
            &cred,
            SimInstant(0),
        )
        .unwrap();
    Rig {
        router,
        cred,
        desc,
        desc_legacy,
        schema,
        topology,
    }
}

fn leaf(rig: &Rig, node: NodeId) -> LeafServer {
    leaf_with(rig, node, true)
}

fn leaf_with(rig: &Rig, node: NodeId, zone_maps: bool) -> LeafServer {
    LeafServer::new(
        node,
        IndexManager::new(ByteSize::mib(4), SimDuration::hours(72)),
        rig.topology.clone(),
        CostModel::default(),
        zone_maps,
    )
}

fn task(rig: &Rig, predicate: &str, projection: &[&str], agg: Option<AggStage>) -> ScanTask {
    let cnf = to_cnf(&parse_expr(predicate).unwrap());
    let mut name_map = FxHashMap::default();
    for f in rig.schema.fields() {
        name_map.insert(f.name.clone(), f.name.clone());
    }
    let fields: Vec<Field> = projection
        .iter()
        .map(|p| rig.schema.field_by_name(p).unwrap().clone())
        .collect();
    ScanTask {
        table: "t".into(),
        block: rig.desc.clone(),
        projection: projection.iter().map(|s| s.to_string()).collect(),
        output_schema: Schema::new(fields),
        cnf,
        residual: Vec::new(),
        agg,
        name_map,
    }
}

fn count_stage() -> AggStage {
    AggStage {
        group_by: Vec::new(),
        aggregates: vec![AggExpr {
            func: AggFunc::Count,
            arg: None,
            name: "COUNT(*)".into(),
            output_type: DataType::Int64,
        }],
    }
}

#[test]
fn warm_scan_touches_fewer_columns_than_cold() {
    let r = rig();
    let l = leaf(&r, NodeId(0));
    let t = task(&r, "b > 10 AND c <= 3", &["a"], None);
    let cold = l
        .execute(&t, &r.router, &r.cred, SimInstant(0), true)
        .unwrap();
    let warm = l
        .execute(&t, &r.router, &r.cred, SimInstant(1), true)
        .unwrap();
    assert_eq!(cold.batch, warm.batch);
    assert_eq!(cold.stats.index_built, 2);
    assert_eq!(warm.stats.index_hits, 2);
    // Cold touches a+b+c; warm only a.
    assert!(warm.stats.bytes_read < cold.stats.bytes_read);
    assert!(warm.tally.io < cold.tally.io);
}

#[test]
fn remote_execution_pays_network() {
    let r = rig();
    // A node outside the replica set (read is remote).
    let replicas = r.router.replicas("/t/b0").unwrap();
    let outsider = r
        .topology
        .nodes()
        .iter()
        .map(|n| n.id)
        .find(|n| !replicas.contains(n))
        .expect("grid has a non-replica node");
    let local = leaf(&r, replicas[0]);
    let remote = leaf(&r, outsider);
    let t = task(&r, "b > 10", &["a"], None);
    let lo = local
        .execute(&t, &r.router, &r.cred, SimInstant(0), false)
        .unwrap();
    let ro = remote
        .execute(&t, &r.router, &r.cred, SimInstant(0), false)
        .unwrap();
    assert_eq!(lo.batch, ro.batch);
    assert_eq!(lo.tally.network, SimDuration::ZERO);
    assert!(ro.tally.network > SimDuration::ZERO);
}

#[test]
fn zone_skip_avoids_column_decode_and_most_bytes() {
    let r = rig();
    let l = leaf(&r, NodeId(0));
    // `a` spans 0..=255: a > 1000 is provably empty from the footer zones.
    let t = task(&r, "a > 1000", &["a"], None);
    let out = l
        .execute(&t, &r.router, &r.cred, SimInstant(0), true)
        .unwrap();
    assert!(out.stats.pruned_by_zone);
    assert_eq!(out.stats.blocks_skipped, 1);
    assert_eq!(out.stats.blocks_scanned, 0);
    // The skip reads the block's footer — a real storage touch, not a
    // memory-served answer, but a small fraction of a scan's bytes.
    assert!(!out.stats.served_from_memory);
    assert!(out.stats.bytes_read > ByteSize::ZERO);
    assert_eq!(out.batch.rows(), 0);
    assert_eq!(
        out.stats.index_built, 0,
        "no SmartIndex probe on a skipped block"
    );
    // Even on this tiny, highly compressible test block the footer read
    // is cheaper than a full-width scan; the bench pins the big ratios on
    // realistically sized blocks.
    let full = l
        .execute(
            &task(&r, "a >= 0", &["a", "b", "c"], None),
            &r.router,
            &r.cred,
            SimInstant(1),
            true,
        )
        .unwrap();
    assert!(
        out.stats.bytes_read < full.stats.bytes_read,
        "footer read {} should be below a full scan's {}",
        out.stats.bytes_read,
        full.stats.bytes_read
    );
    assert!(out.tally.io < full.tally.io);
}

#[test]
fn zone_skip_kill_switch_scans_normally() {
    let r = rig();
    let l = leaf_with(&r, NodeId(0), false);
    let t = task(&r, "a > 1000", &["a"], None);
    let out = l
        .execute(&t, &r.router, &r.cred, SimInstant(0), true)
        .unwrap();
    assert!(!out.stats.pruned_by_zone);
    assert_eq!(out.stats.blocks_skipped, 0);
    assert_eq!(out.stats.blocks_scanned, 1);
    assert_eq!(out.batch.rows(), 0, "same (empty) answer, the slow way");
}

#[test]
fn zoneless_legacy_block_scans_normally() {
    let r = rig();
    let l = leaf(&r, NodeId(0));
    // The legacy block has no footer zone section: skipping is impossible
    // even for a provably-dead predicate, and the scan must still answer
    // correctly.
    let mut t = task(&r, "a > 1000", &["a"], None);
    t.block = r.desc_legacy.clone();
    let out = l
        .execute(&t, &r.router, &r.cred, SimInstant(0), true)
        .unwrap();
    assert!(!out.stats.pruned_by_zone);
    assert_eq!(out.stats.blocks_skipped, 0);
    assert_eq!(out.stats.blocks_scanned, 1);
    assert_eq!(out.batch.rows(), 0);
    // And a matching predicate returns real rows from the legacy layout.
    let mut t2 = task(&r, "a < 10", &["a", "b"], None);
    t2.block = r.desc_legacy.clone();
    let out2 = l
        .execute(&t2, &r.router, &r.cred, SimInstant(1), true)
        .unwrap();
    assert_eq!(out2.batch.rows(), 10);
}

#[test]
fn count_only_served_from_cache_after_warmup() {
    let r = rig();
    let l = leaf(&r, NodeId(0));
    let t = task(&r, "b > 10", &["a"], Some(count_stage()));
    let cold = l
        .execute(&t, &r.router, &r.cred, SimInstant(0), true)
        .unwrap();
    assert!(cold.is_agg_transport);
    assert!(!cold.stats.served_from_memory);
    let warm = l
        .execute(&t, &r.router, &r.cred, SimInstant(1), true)
        .unwrap();
    assert!(
        warm.stats.served_from_memory,
        "no storage touch when cached"
    );
    assert_eq!(warm.stats.bytes_read, ByteSize::ZERO);
    // Transports decode to the same count.
    assert_eq!(cold.batch, warm.batch);
}

#[test]
fn partial_agg_transport_counts_match_rows() {
    let r = rig();
    let l = leaf(&r, NodeId(0));
    let stage = AggStage {
        group_by: vec![(Expr::col("c"), "c".into(), DataType::Int64)],
        aggregates: vec![AggExpr {
            func: AggFunc::Count,
            arg: None,
            name: "n".into(),
            output_type: DataType::Int64,
        }],
    };
    let t = task(&r, "b >= 0", &["c"], Some(stage.clone()));
    let out = l
        .execute(&t, &r.router, &r.cred, SimInstant(0), true)
        .unwrap();
    assert!(out.is_agg_transport);
    let table = feisu_exec::aggregate::AggTable::from_transport(
        stage.group_by.clone(),
        stage.aggregates.clone(),
        &out.batch,
    )
    .unwrap();
    let final_schema = Schema::new(vec![
        Field::new("c", DataType::Int64, true),
        Field::new("n", DataType::Int64, true),
    ]);
    let finished = table.finish(&final_schema).unwrap();
    assert_eq!(finished.rows(), 7, "c has 7 groups");
    let total: i64 = (0..finished.rows())
        .map(|i| finished.value_at(i, "n").unwrap().as_i64().unwrap())
        .sum();
    assert_eq!(total, 256);
}

#[test]
fn disabled_index_never_caches() {
    let r = rig();
    let l = leaf(&r, NodeId(0));
    let t = task(&r, "b > 10", &["a"], None);
    for i in 0..3 {
        let out = l
            .execute(&t, &r.router, &r.cred, SimInstant(i), false)
            .unwrap();
        assert_eq!(out.stats.index_hits, 0);
        assert_eq!(out.stats.index_built, 0);
        assert_eq!(out.stats.scanned_predicates, 1);
    }
    assert!(l.index().is_empty());
}

#[test]
fn or_clause_and_value_correctness() {
    let r = rig();
    let l = leaf(&r, NodeId(0));
    let t = task(&r, "b < 5 OR c = 6", &["a", "b", "c"], None);
    let out = l
        .execute(&t, &r.router, &r.cred, SimInstant(0), true)
        .unwrap();
    // Oracle count: b = i%50 < 5 (i%50 in 0..5) or c = i%7 == 6.
    let expected = (0..256).filter(|i| i % 50 < 5 || i % 7 == 6).count();
    assert_eq!(out.batch.rows(), expected);
    for i in 0..out.batch.rows() {
        let b = out.batch.value_at(i, "b").unwrap().as_i64().unwrap();
        let c = out.batch.value_at(i, "c").unwrap().as_i64().unwrap();
        assert!(b < 5 || c == 6);
    }
}
