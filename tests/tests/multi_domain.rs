//! Heterogeneous-storage behaviour: tables living on different storage
//! systems behind the common storage layer (paper §II, §III-C, Fig. 10's
//! multi-storage scenario).

use feisu_common::SimDuration;
use feisu_core::engine::{ClusterSpec, FeisuCluster};
use feisu_format::{DataType, Field, Schema, Value};
use feisu_storage::auth::Credential;

fn setup() -> (FeisuCluster, Credential) {
    let mut spec = ClusterSpec::small();
    spec.rows_per_block = 32;
    let cluster = FeisuCluster::new(spec).unwrap();
    let admin = cluster.register_user("admin");
    cluster.grant_all(admin);
    let cred = cluster.login(admin).unwrap();
    (cluster, cred)
}

fn log_schema() -> Schema {
    Schema::new(vec![
        Field::new("url", DataType::Utf8, false),
        Field::new("hits", DataType::Int64, false),
    ])
}

#[test]
fn tables_on_hdfs_fatman_and_local_coexist() {
    let (cluster, cred) = setup();
    for (table, location) in [
        ("hot_logs", "/hdfs/logs/hot"),
        ("cold_logs", "/ffs/archive/cold"),
        ("edge_logs", "/data/edge"), // unknown prefix ⇒ local fs
    ] {
        cluster
            .create_table(table, log_schema(), location, &cred)
            .unwrap();
    }
    // Local-fs writes need a node pin (log data lives on its producer).
    cluster
        .ingest_rows_at(
            "edge_logs",
            (0..40)
                .map(|i| vec![Value::from(format!("e{i}")), Value::from(i as i64)])
                .collect(),
            feisu_common::NodeId(1),
            &cred,
        )
        .unwrap();
    for table in ["hot_logs", "cold_logs"] {
        cluster
            .ingest_rows(
                table,
                (0..40)
                    .map(|i| vec![Value::from(format!("u{i}")), Value::from(i as i64)])
                    .collect(),
                &cred,
            )
            .unwrap();
    }
    for table in ["hot_logs", "cold_logs", "edge_logs"] {
        let r = cluster
            .query(&format!("SELECT COUNT(*) FROM {table}"), &cred)
            .unwrap();
        assert_eq!(r.batch.column(0).value(0), Value::Int64(40), "{table}");
    }
}

#[test]
fn cold_storage_reads_cost_more_than_hdfs() {
    let (cluster, cred) = setup();
    cluster
        .create_table("hot", log_schema(), "/hdfs/t/hot", &cred)
        .unwrap();
    cluster
        .create_table("cold", log_schema(), "/ffs/t/cold", &cred)
        .unwrap();
    let rows: Vec<Vec<Value>> = (0..64)
        .map(|i| vec![Value::from(format!("u{i}")), Value::from(i as i64)])
        .collect();
    cluster.ingest_rows("hot", rows.clone(), &cred).unwrap();
    cluster.ingest_rows("cold", rows, &cred).unwrap();
    let hot = cluster
        .query("SELECT COUNT(*) FROM hot WHERE hits > 1", &cred)
        .unwrap();
    let cold = cluster
        .query("SELECT COUNT(*) FROM cold WHERE hits > 1", &cred)
        .unwrap();
    assert!(
        cold.response_time > hot.response_time + SimDuration::millis(100),
        "Fatman's cold penalty must show: hot {} vs cold {}",
        hot.response_time,
        cold.response_time
    );
}

#[test]
fn cross_domain_join_unifies_sources() {
    // Fig. 10's scenario: one query touching data on two storage systems.
    let (cluster, cred) = setup();
    cluster
        .create_table("recent", log_schema(), "/hdfs/logs/recent", &cred)
        .unwrap();
    cluster
        .create_table("archive", log_schema(), "/ffs/logs/archive", &cred)
        .unwrap();
    cluster
        .ingest_rows(
            "recent",
            vec![
                vec![Value::from("a"), Value::from(10i64)],
                vec![Value::from("b"), Value::from(20i64)],
            ],
            &cred,
        )
        .unwrap();
    cluster
        .ingest_rows(
            "archive",
            vec![
                vec![Value::from("a"), Value::from(1i64)],
                vec![Value::from("c"), Value::from(3i64)],
            ],
            &cred,
        )
        .unwrap();
    let r = cluster
        .query(
            "SELECT recent.url, recent.hits, archive.hits \
             FROM recent JOIN archive ON recent.url = archive.url",
            &cred,
        )
        .unwrap();
    assert_eq!(r.batch.rows(), 1);
    assert_eq!(r.batch.value_at(0, "url"), Some(Value::Utf8("a".into())));
}

#[test]
fn per_domain_grants_isolate_sources() {
    let (cluster, cred) = setup();
    cluster
        .create_table("open", log_schema(), "/hdfs/t/open", &cred)
        .unwrap();
    cluster
        .create_table("restricted", log_schema(), "/ffs/t/restricted", &cred)
        .unwrap();
    cluster
        .ingest_rows(
            "open",
            vec![vec![Value::from("x"), Value::from(1i64)]],
            &cred,
        )
        .unwrap();
    cluster
        .ingest_rows(
            "restricted",
            vec![vec![Value::from("y"), Value::from(2i64)]],
            &cred,
        )
        .unwrap();
    let analyst = cluster.register_user("analyst");
    cluster
        .grant(analyst, "hdfs", feisu_storage::auth::Grant::Read)
        .unwrap();
    let acred = cluster.login(analyst).unwrap();
    assert!(cluster.query("SELECT COUNT(*) FROM open", &acred).is_ok());
    // No Fatman grant: the cross-domain query dies at access check.
    let err = cluster
        .query("SELECT COUNT(*) FROM restricted", &acred)
        .unwrap_err();
    assert!(matches!(err, feisu_common::FeisuError::PermissionDenied(_)));
    let err = cluster
        .query(
            "SELECT open.url FROM open JOIN restricted ON open.url = restricted.url",
            &acred,
        )
        .unwrap_err();
    assert!(matches!(err, feisu_common::FeisuError::PermissionDenied(_)));
}

#[test]
fn local_fs_tasks_prefer_the_owning_node() {
    let (cluster, cred) = setup();
    cluster
        .create_table("node_logs", log_schema(), "/data/nodelogs", &cred)
        .unwrap();
    cluster
        .ingest_rows_at(
            "node_logs",
            (0..32)
                .map(|i| vec![Value::from(format!("u{i}")), Value::from(i as i64)])
                .collect(),
            feisu_common::NodeId(2),
            &cred,
        )
        .unwrap();
    let r = cluster
        .query("SELECT COUNT(*) FROM node_logs WHERE hits >= 0", &cred)
        .unwrap();
    assert_eq!(r.batch.column(0).value(0), Value::Int64(32));
    // Data-local execution: the SmartIndex for the scan must have been
    // built on the owning node's leaf server.
    let leaf = cluster.leaf(feisu_common::NodeId(2)).unwrap();
    assert!(!leaf.index().is_empty(), "index built on the owning node");
}
