//! Concurrent-client end-to-end suite for the shared (`&self`) engine.
//!
//! The determinism contract (DESIGN.md §12): for a race-free workload —
//! clients whose in-run query sets are cache-independent of each other,
//! with any cross-client sharing separated by a barrier — every query's
//! full `QueryResult` (id, rows, simulated times, stats, EXPLAIN
//! ANALYZE profile) is bit-identical whether the workload runs on one
//! thread or on N client threads. These tests construct exactly such
//! workloads and compare serial and concurrent runs field for field.
//!
//! `FEISU_CLIENT_THREADS` (default 4) sets the client-thread count, so
//! CI can re-run the suite at a pinned width.

use feisu_common::NodeId;
use feisu_core::engine::{ClusterSpec, FeisuCluster, QueryResult};
use feisu_core::master::QuerySession;
use feisu_storage::auth::Credential;
use feisu_tests::fixture_with;
use std::sync::Barrier;

/// Client-thread count under test (`FEISU_CLIENT_THREADS`, default 4).
fn client_threads() -> usize {
    std::env::var("FEISU_CLIENT_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n >= 1)
        .unwrap_or(4)
}

/// Registers one user per client and opens their sessions, in a fixed
/// order so session ids — and thus query ids — are deterministic.
fn open_sessions(cluster: &FeisuCluster, clients: usize) -> Vec<QuerySession<'_>> {
    (0..clients)
        .map(|i| {
            let user = cluster.register_user(&format!("client{i}"));
            cluster.grant_all(user);
            let cred: Credential = cluster.login(user).expect("client login");
            cluster.session(cred)
        })
        .collect()
}

/// Per-client query lists that are cache-independent *across* clients:
/// client `i` only uses predicate constants `≡ i (mod clients)`, so no
/// two clients ever share a task signature or a SmartIndex entry.
/// Within a client the first query repeats at the end — an intra-client
/// task-reuse hit, serialized on that client's session either way.
fn client_workloads(clients: usize, per_client: usize) -> Vec<Vec<String>> {
    (0..clients)
        .map(|i| {
            let mut list: Vec<String> = (0..per_client)
                .map(|j| {
                    let v = i + j * clients; // distinct across all (i, j)
                    if j % 2 == 0 {
                        format!("SELECT COUNT(*) FROM clicks WHERE clicks > {v}")
                    } else {
                        format!("SELECT url FROM clicks WHERE clicks > {v}")
                    }
                })
                .collect();
            list.push(list[0].clone());
            list
        })
        .collect()
}

/// What one full run of the workload produced.
struct RunOutcome {
    /// `results[i][j]` = client `i`'s `j`-th query.
    results: Vec<Vec<QueryResult>>,
    index_hits: u64,
    index_misses: u64,
    reuse_hits: u64,
    reuse_misses: u64,
}

/// Runs the workload on a fresh cluster — serially in submission order
/// when `concurrent` is false, on one thread per client when true.
fn run_workload(clients: usize, concurrent: bool) -> RunOutcome {
    let fx = fixture_with(400, ClusterSpec::small(), "/hdfs/warehouse/clicks");
    let sessions = open_sessions(&fx.cluster, clients);
    let workloads = client_workloads(clients, 8);

    let mut results: Vec<Vec<QueryResult>> = Vec::with_capacity(clients);
    if concurrent {
        let barrier = Barrier::new(clients);
        let mut slots: Vec<Option<Vec<QueryResult>>> = (0..clients).map(|_| None).collect();
        std::thread::scope(|s| {
            for (slot, (session, list)) in slots.iter_mut().zip(sessions.iter().zip(&workloads)) {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    *slot = Some(
                        list.iter()
                            .map(|sql| session.query(sql).expect("concurrent query"))
                            .collect(),
                    );
                });
            }
        });
        results.extend(slots.into_iter().map(|s| s.expect("client finished")));
    } else {
        for (session, list) in sessions.iter().zip(&workloads) {
            results.push(
                list.iter()
                    .map(|sql| session.query(sql).expect("serial query"))
                    .collect(),
            );
        }
    }

    assert_eq!(
        fx.cluster.guard().inflight(),
        0,
        "admission permits leaked after the run"
    );
    let idx = fx.cluster.index_stats();
    let (reuse_hits, reuse_misses) = fx.cluster.jobs().reuse_stats();
    RunOutcome {
        results,
        index_hits: idx.hits,
        index_misses: idx.misses,
        reuse_hits,
        reuse_misses,
    }
}

#[test]
fn concurrent_clients_bit_identical_to_serial() {
    let clients = client_threads();
    let serial = run_workload(clients, false);
    let parallel = run_workload(clients, true);

    for (i, (s, p)) in serial.results.iter().zip(&parallel.results).enumerate() {
        assert_eq!(s.len(), p.len(), "client {i}: query count");
        for (j, (a, b)) in s.iter().zip(p).enumerate() {
            assert_eq!(
                a, b,
                "client {i} query {j}: serial and concurrent runs diverged"
            );
        }
    }

    // Shared-singleton accounting is run-shape independent too: the same
    // queries produced the same SmartIndex and task-reuse traffic.
    assert_eq!(
        (serial.index_hits, serial.index_misses),
        (parallel.index_hits, parallel.index_misses),
        "IndexStats totals diverged"
    );
    assert_eq!(
        (serial.reuse_hits, serial.reuse_misses),
        (parallel.reuse_hits, parallel.reuse_misses),
        "JobManager reuse_stats diverged"
    );

    // The workload actually exercised the shared caches.
    assert!(serial.reuse_hits > 0, "no intra-client task reuse happened");
    assert!(
        serial
            .results
            .iter()
            .flatten()
            .any(|r| r.stats.index_built > 0),
        "no SmartIndex was ever built"
    );
}

/// Cross-session SmartIndex sharing: user A's phase builds the index,
/// and after a barrier user B's phase — a *different* projection, so
/// task reuse cannot mask the probe — hits it without building anything.
#[test]
fn second_users_session_hits_first_users_smartindex() {
    let fx = fixture_with(400, ClusterSpec::small(), "/hdfs/warehouse/clicks");
    let sessions = open_sessions(&fx.cluster, 2);

    // Phase 1 (user A): build indices for the predicate.
    let warm = sessions[0]
        .query("SELECT COUNT(*) FROM clicks WHERE clicks > 42")
        .expect("phase-1 query");
    assert!(warm.stats.index_built > 0, "phase 1 built no index");

    // Phase 2 (user B, on its own thread): same predicate, different
    // projection — distinct task signature, so the leaf really probes.
    let probe = std::thread::scope(|s| {
        let session = &sessions[1];
        s.spawn(move || {
            session
                .query("SELECT url FROM clicks WHERE clicks > 42")
                .expect("phase-2 query")
        })
        .join()
        .expect("phase-2 client")
    });
    assert!(probe.stats.index_hits > 0, "user B missed user A's index");
    assert_eq!(
        probe.stats.index_built, 0,
        "user B rebuilt an index user A already published"
    );
    assert_eq!(
        probe.stats.reused_tasks, 0,
        "projection change must defeat reuse"
    );
}

/// Fault injection while clients are querying: `fail_node` / `slow_node`
/// / `recover_node` race freely against in-flight queries. Queries must
/// keep succeeding (backup tasks reroute around the dead node), nothing
/// may panic, and the admission gauge must drain to zero.
#[test]
fn fault_injection_under_concurrent_load() {
    let clients = client_threads();
    let fx = fixture_with(400, ClusterSpec::with_nodes(8), "/hdfs/warehouse/clicks");
    let sessions = open_sessions(&fx.cluster, clients);
    let workloads = client_workloads(clients, 6);

    let barrier = Barrier::new(clients + 1);
    std::thread::scope(|s| {
        for (session, list) in sessions.iter().zip(&workloads) {
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for sql in list {
                    let r = session.query(sql).expect("query under fault injection");
                    assert!(!r.partial, "no time limit was set");
                }
            });
        }
        barrier.wait();
        // Chaos loop on the main thread: flip node state while the
        // clients run. Every cycle yields so client threads interleave.
        for round in 0..40 {
            fx.cluster.fail_node(NodeId(1));
            fx.cluster.slow_node(NodeId(2), 25.0);
            std::thread::yield_now();
            fx.cluster.recover_node(NodeId(1));
            if round % 2 == 0 {
                fx.cluster.recover_node(NodeId(2));
            }
            std::thread::yield_now();
        }
        fx.cluster.recover_node(NodeId(1));
        fx.cluster.recover_node(NodeId(2));
    });

    assert_eq!(fx.cluster.guard().inflight(), 0, "permits leaked");
    // The cluster is still healthy: a fresh query on the original
    // fixture user answers normally after full recovery.
    let after = fx
        .cluster
        .query("SELECT COUNT(*) FROM clicks WHERE clicks > 3", &fx.cred)
        .expect("post-recovery query");
    assert_eq!(after.batch.rows(), 1);
}

/// The guard's admission accounting under the integration surface: a
/// quota-capped user sees rejections, the `feisu.guard.*` metrics count
/// them, and the in-flight gauge drains back to zero.
#[test]
fn guard_quota_rejections_surface_in_metrics() {
    let mut spec = ClusterSpec::small();
    spec.guard.daily_quota = 3;
    let fx = fixture_with(120, spec, "/hdfs/warehouse/clicks");
    let session = fx.cluster.session(fx.cred.clone());

    let mut ok = 0usize;
    let mut rejected = 0usize;
    for v in 0..5 {
        match session.query(&format!("SELECT COUNT(*) FROM clicks WHERE clicks > {v}")) {
            Ok(_) => ok += 1,
            Err(e) => {
                rejected += 1;
                assert!(e.to_string().contains("quota"), "unexpected error: {e}");
            }
        }
    }
    assert_eq!(ok, 3, "quota admits exactly daily_quota queries");
    assert_eq!(rejected, 2);
    let metrics = fx.cluster.metrics();
    assert_eq!(metrics.counter("feisu.guard.rejected").get(), 2);
    assert_eq!(metrics.gauge("feisu.guard.inflight").get(), 0);
    assert_eq!(fx.cluster.guard().inflight(), 0);
}
