//! Concurrent-client end-to-end suite for the shared (`&self`) engine.
//!
//! The determinism contract (DESIGN.md §12): for a race-free workload —
//! clients whose in-run query sets are cache-independent of each other,
//! with any cross-client sharing separated by a barrier — every query's
//! full `QueryResult` (id, rows, simulated times, stats, EXPLAIN
//! ANALYZE profile) is bit-identical whether the workload runs on one
//! thread or on N client threads. These tests construct exactly such
//! workloads and compare serial and concurrent runs field for field.
//!
//! `FEISU_CLIENT_THREADS` (default 4) sets the client-thread count, so
//! CI can re-run the suite at a pinned width.

use feisu_common::config::CacheAdmission;
use feisu_common::{ByteSize, NodeId, SimInstant, UserId};
use feisu_core::engine::{ClusterSpec, FeisuCluster, QueryResult};
use feisu_core::master::QuerySession;
use feisu_storage::auth::Credential;
use feisu_storage::{BlockCache, Bytes, CacheAttr, CacheStats, CacheTier, TieredCache};
use feisu_tests::{clicks_rows, clicks_schema, fixture_with};
use std::sync::Barrier;

/// Client-thread count under test (`FEISU_CLIENT_THREADS`, default 4).
fn client_threads() -> usize {
    std::env::var("FEISU_CLIENT_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n >= 1)
        .unwrap_or(4)
}

/// Registers one user per client and opens their sessions, in a fixed
/// order so session ids — and thus query ids — are deterministic.
fn open_sessions(cluster: &FeisuCluster, clients: usize) -> Vec<QuerySession<'_>> {
    (0..clients)
        .map(|i| {
            let user = cluster.register_user(&format!("client{i}"));
            cluster.grant_all(user);
            let cred: Credential = cluster.login(user).expect("client login");
            cluster.session(cred)
        })
        .collect()
}

/// Per-client query lists that are cache-independent *across* clients:
/// client `i` only uses predicate constants `≡ i (mod clients)`, so no
/// two clients ever share a task signature or a SmartIndex entry.
/// Within a client the first query repeats at the end — an intra-client
/// task-reuse hit, serialized on that client's session either way.
fn client_workloads(clients: usize, per_client: usize) -> Vec<Vec<String>> {
    (0..clients)
        .map(|i| {
            let mut list: Vec<String> = (0..per_client)
                .map(|j| {
                    let v = i + j * clients; // distinct across all (i, j)
                    if j % 2 == 0 {
                        format!("SELECT COUNT(*) FROM clicks WHERE clicks > {v}")
                    } else {
                        format!("SELECT url FROM clicks WHERE clicks > {v}")
                    }
                })
                .collect();
            list.push(list[0].clone());
            list
        })
        .collect()
}

/// What one full run of the workload produced.
struct RunOutcome {
    /// `results[i][j]` = client `i`'s `j`-th query.
    results: Vec<Vec<QueryResult>>,
    index_hits: u64,
    index_misses: u64,
    reuse_hits: u64,
    reuse_misses: u64,
}

/// Runs the workload on a fresh cluster — serially in submission order
/// when `concurrent` is false, on one thread per client when true.
fn run_workload(clients: usize, concurrent: bool) -> RunOutcome {
    let fx = fixture_with(400, ClusterSpec::small(), "/hdfs/warehouse/clicks");
    let sessions = open_sessions(&fx.cluster, clients);
    let workloads = client_workloads(clients, 8);

    let mut results: Vec<Vec<QueryResult>> = Vec::with_capacity(clients);
    if concurrent {
        let barrier = Barrier::new(clients);
        let mut slots: Vec<Option<Vec<QueryResult>>> = (0..clients).map(|_| None).collect();
        std::thread::scope(|s| {
            for (slot, (session, list)) in slots.iter_mut().zip(sessions.iter().zip(&workloads)) {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    *slot = Some(
                        list.iter()
                            .map(|sql| session.query(sql).expect("concurrent query"))
                            .collect(),
                    );
                });
            }
        });
        results.extend(slots.into_iter().map(|s| s.expect("client finished")));
    } else {
        for (session, list) in sessions.iter().zip(&workloads) {
            results.push(
                list.iter()
                    .map(|sql| session.query(sql).expect("serial query"))
                    .collect(),
            );
        }
    }

    assert_eq!(
        fx.cluster.guard().inflight(),
        0,
        "admission permits leaked after the run"
    );
    let idx = fx.cluster.index_stats();
    let (reuse_hits, reuse_misses) = fx.cluster.jobs().reuse_stats();
    RunOutcome {
        results,
        index_hits: idx.hits,
        index_misses: idx.misses,
        reuse_hits,
        reuse_misses,
    }
}

#[test]
fn concurrent_clients_bit_identical_to_serial() {
    let clients = client_threads();
    let serial = run_workload(clients, false);
    let parallel = run_workload(clients, true);

    for (i, (s, p)) in serial.results.iter().zip(&parallel.results).enumerate() {
        assert_eq!(s.len(), p.len(), "client {i}: query count");
        for (j, (a, b)) in s.iter().zip(p).enumerate() {
            assert_eq!(
                a, b,
                "client {i} query {j}: serial and concurrent runs diverged"
            );
        }
    }

    // Shared-singleton accounting is run-shape independent too: the same
    // queries produced the same SmartIndex and task-reuse traffic.
    assert_eq!(
        (serial.index_hits, serial.index_misses),
        (parallel.index_hits, parallel.index_misses),
        "IndexStats totals diverged"
    );
    assert_eq!(
        (serial.reuse_hits, serial.reuse_misses),
        (parallel.reuse_hits, parallel.reuse_misses),
        "JobManager reuse_stats diverged"
    );

    // The workload actually exercised the shared caches.
    assert!(serial.reuse_hits > 0, "no intra-client task reuse happened");
    assert!(
        serial
            .results
            .iter()
            .flatten()
            .any(|r| r.stats.index_built > 0),
        "no SmartIndex was ever built"
    );
}

/// Cross-session SmartIndex sharing: user A's phase builds the index,
/// and after a barrier user B's phase — a *different* projection, so
/// task reuse cannot mask the probe — hits it without building anything.
#[test]
fn second_users_session_hits_first_users_smartindex() {
    let fx = fixture_with(400, ClusterSpec::small(), "/hdfs/warehouse/clicks");
    let sessions = open_sessions(&fx.cluster, 2);

    // Phase 1 (user A): build indices for the predicate.
    let warm = sessions[0]
        .query("SELECT COUNT(*) FROM clicks WHERE clicks > 42")
        .expect("phase-1 query");
    assert!(warm.stats.index_built > 0, "phase 1 built no index");

    // Phase 2 (user B, on its own thread): same predicate, different
    // projection — distinct task signature, so the leaf really probes.
    let probe = std::thread::scope(|s| {
        let session = &sessions[1];
        s.spawn(move || {
            session
                .query("SELECT url FROM clicks WHERE clicks > 42")
                .expect("phase-2 query")
        })
        .join()
        .expect("phase-2 client")
    });
    assert!(probe.stats.index_hits > 0, "user B missed user A's index");
    assert_eq!(
        probe.stats.index_built, 0,
        "user B rebuilt an index user A already published"
    );
    assert_eq!(
        probe.stats.reused_tasks, 0,
        "projection change must defeat reuse"
    );
}

/// Fault injection while clients are querying: `fail_node` / `slow_node`
/// / `recover_node` race freely against in-flight queries. Queries must
/// keep succeeding (backup tasks reroute around the dead node), nothing
/// may panic, and the admission gauge must drain to zero.
#[test]
fn fault_injection_under_concurrent_load() {
    let clients = client_threads();
    let fx = fixture_with(400, ClusterSpec::with_nodes(8), "/hdfs/warehouse/clicks");
    let sessions = open_sessions(&fx.cluster, clients);
    let workloads = client_workloads(clients, 6);

    let barrier = Barrier::new(clients + 1);
    std::thread::scope(|s| {
        for (session, list) in sessions.iter().zip(&workloads) {
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for sql in list {
                    let r = session.query(sql).expect("query under fault injection");
                    assert!(!r.partial, "no time limit was set");
                }
            });
        }
        barrier.wait();
        // Chaos loop on the main thread: flip node state while the
        // clients run. Every cycle yields so client threads interleave.
        for round in 0..40 {
            fx.cluster.fail_node(NodeId(1));
            fx.cluster.slow_node(NodeId(2), 25.0);
            std::thread::yield_now();
            fx.cluster.recover_node(NodeId(1));
            if round % 2 == 0 {
                fx.cluster.recover_node(NodeId(2));
            }
            std::thread::yield_now();
        }
        fx.cluster.recover_node(NodeId(1));
        fx.cluster.recover_node(NodeId(2));
    });

    assert_eq!(fx.cluster.guard().inflight(), 0, "permits leaked");
    // The cluster is still healthy: a fresh query on the original
    // fixture user answers normally after full recovery.
    let after = fx
        .cluster
        .query("SELECT COUNT(*) FROM clicks WHERE clicks > 3", &fx.cred)
        .expect("post-recovery query");
    assert_eq!(after.batch.rows(), 1);
}

/// Parallel hammer on the sharded block cache: every client thread runs
/// the miss → admit → SSD hit (promote) → memory hit ladder against the
/// *same two nodes* with thread-private paths. Per-key state never
/// races, so every global counter must land on its exact closed-form
/// total — the per-node shard locks and relaxed atomic stats may not
/// lose a single event under contention.
#[test]
fn parallel_hammer_on_two_nodes_keeps_exact_cache_totals() {
    let threads = client_threads().max(2) as u64;
    let ops = 64u64;
    let payload = 1024u64;
    let cache = TieredCache::new(
        feisu_common::config::CacheSettings {
            enabled: true,
            admission: CacheAdmission::Always,
            ..Default::default()
        },
        Vec::new(),
    );
    let nodes = [NodeId(0), NodeId(1)];
    let barrier = Barrier::new(threads as usize);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (cache, barrier) = (&cache, &barrier);
            s.spawn(move || {
                let user = UserId(100 + t);
                let now = SimInstant::EPOCH;
                barrier.wait();
                for node in nodes {
                    for i in 0..ops {
                        let path = format!("/hammer/u{t}/b{i}");
                        let attr = CacheAttr {
                            user,
                            table: Some("hammered"),
                        };
                        assert!(cache.get(node, &path, now).is_none(), "fresh key must miss");
                        cache.admit(
                            node,
                            &path,
                            Bytes::from(vec![t as u8; payload as usize]),
                            attr,
                            now,
                        );
                        let ssd = cache.get(node, &path, now).expect("admitted key present");
                        assert_eq!(ssd.tier, CacheTier::Ssd, "entries enter at the SSD tier");
                        let mem = cache.get(node, &path, now).expect("promoted key present");
                        assert_eq!(mem.tier, CacheTier::Memory, "SSD hit promotes to memory");
                        assert_eq!(mem.data.len() as u64, payload);
                    }
                }
            });
        }
    });

    // Exact totals: each (thread, node, key) contributed exactly one
    // miss, one admission, one SSD hit, one promotion and one memory hit.
    let per_node = threads * ops;
    let total = per_node * nodes.len() as u64;
    let stats = cache.stats();
    assert_eq!(
        (
            stats.misses,
            stats.ssd_hits,
            stats.mem_hits,
            stats.promotions
        ),
        (total, total, total, total),
        "lost cache events under contention: {stats:?}"
    );
    assert_eq!(stats.rejected + stats.quota_rejections, 0);
    assert_eq!(
        stats.mem_evictions + stats.ssd_evictions,
        0,
        "capacity never filled"
    );
    assert_eq!(cache.tracked_nodes(), nodes.len());
    for node in nodes {
        // Single residency: every entry was promoted, so all bytes sit in
        // the memory tier and each user's attribution is exact.
        assert_eq!(
            cache.used_on(node, CacheTier::Memory),
            ByteSize(per_node * payload)
        );
        assert_eq!(cache.used_on(node, CacheTier::Ssd), ByteSize(0));
        for t in 0..threads {
            assert_eq!(
                cache.user_used_on(node, UserId(100 + t)),
                ByteSize(ops * payload),
                "thread {t} attribution on {node:?}"
            );
        }
        let rows = cache.node_tier_rows(node);
        let mem_row = rows.iter().find(|r| r.tier == "mem").expect("mem row");
        assert_eq!(mem_row.entries as u64, per_node);
        assert_eq!(mem_row.hits, per_node);
        let ssd_row = rows.iter().find(|r| r.tier == "ssd").expect("ssd row");
        assert_eq!(ssd_row.entries, 0);
        assert_eq!(ssd_row.hits, per_node);
    }
}

/// One full cache-hierarchy workload run: per-client *private* tables
/// (disjoint block paths, so no cross-client cache coupling), ghost
/// admission on, capacities far above the working set (no evictions).
/// Each client climbs the full ladder on its own table: miss + ghost
/// register → ghost recall + SSD admit → SSD hit + promote → memory hit.
fn run_cache_workload(clients: usize, concurrent: bool) -> (Vec<Vec<QueryResult>>, CacheStats) {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false; // repeats must really re-read their blocks
    spec.use_smartindex = false;
    spec.config.cache.enabled = true;
    spec.config.cache.admission = CacheAdmission::Frequency;
    let fx = fixture_with(64, spec, "/hdfs/warehouse/clicks");
    for i in 0..clients {
        fx.cluster
            .create_table(
                &format!("t{i}"),
                clicks_schema(),
                &format!("/hdfs/warehouse/t{i}"),
                &fx.cred,
            )
            .expect("private table");
        fx.cluster
            .ingest_rows(&format!("t{i}"), clicks_rows(160), &fx.cred)
            .expect("private ingest");
    }
    let sessions = open_sessions(&fx.cluster, clients);
    let workloads: Vec<Vec<String>> = (0..clients)
        .map(|i| {
            let mut list: Vec<String> = (0..4)
                .map(|_| format!("SELECT SUM(clicks) FROM t{i}"))
                .collect();
            list.push(format!("SELECT COUNT(*) FROM t{i}"));
            list.push(format!("SELECT url FROM t{i} WHERE clicks > {}", 10 + i));
            list
        })
        .collect();

    let mut results: Vec<Vec<QueryResult>> = Vec::with_capacity(clients);
    if concurrent {
        let barrier = Barrier::new(clients);
        let mut slots: Vec<Option<Vec<QueryResult>>> = (0..clients).map(|_| None).collect();
        std::thread::scope(|s| {
            for (slot, (session, list)) in slots.iter_mut().zip(sessions.iter().zip(&workloads)) {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    *slot = Some(
                        list.iter()
                            .map(|sql| session.query(sql).expect("concurrent query"))
                            .collect(),
                    );
                });
            }
        });
        results.extend(slots.into_iter().map(|s| s.expect("client finished")));
    } else {
        for (session, list) in sessions.iter().zip(&workloads) {
            results.push(
                list.iter()
                    .map(|sql| session.query(sql).expect("serial query"))
                    .collect(),
            );
        }
    }
    let stats = fx.cluster.cache().expect("cache enabled").stats();
    (results, stats)
}

/// DESIGN.md §12 with the multi-tier cache in the loop: clients whose
/// tables (and thus cached block paths) are disjoint get bit-identical
/// `QueryResult`s serial vs concurrent, and the cache's global counters
/// land on the same exact totals either way (sums commute).
#[test]
fn cache_hierarchy_bit_identical_serial_vs_concurrent() {
    let clients = client_threads();
    let (serial, serial_stats) = run_cache_workload(clients, false);
    let (parallel, parallel_stats) = run_cache_workload(clients, true);

    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.len(), p.len(), "client {i}: query count");
        for (j, (a, b)) in s.iter().zip(p).enumerate() {
            assert_eq!(
                a, b,
                "client {i} query {j}: serial and concurrent cache runs diverged"
            );
        }
    }
    assert_eq!(
        serial_stats, parallel_stats,
        "cache counters diverged between run shapes"
    );
    // The workload climbed the whole ladder: ghost admissions (second
    // sighting), SSD hits, promotions and memory hits all happened.
    assert!(serial_stats.ghost_admissions > 0, "no ghost admissions");
    assert!(serial_stats.ssd_hits > 0, "no SSD hits");
    assert!(serial_stats.promotions > 0, "no promotions");
    assert!(serial_stats.mem_hits > 0, "no memory hits");
}

/// The guard's admission accounting under the integration surface: a
/// quota-capped user sees rejections, the `feisu.guard.*` metrics count
/// them, and the in-flight gauge drains back to zero.
#[test]
fn guard_quota_rejections_surface_in_metrics() {
    let mut spec = ClusterSpec::small();
    spec.guard.daily_quota = 3;
    let fx = fixture_with(120, spec, "/hdfs/warehouse/clicks");
    let session = fx.cluster.session(fx.cred.clone());

    let mut ok = 0usize;
    let mut rejected = 0usize;
    for v in 0..5 {
        match session.query(&format!("SELECT COUNT(*) FROM clicks WHERE clicks > {v}")) {
            Ok(_) => ok += 1,
            Err(e) => {
                rejected += 1;
                assert!(e.to_string().contains("quota"), "unexpected error: {e}");
            }
        }
    }
    assert_eq!(ok, 3, "quota admits exactly daily_quota queries");
    assert_eq!(rejected, 2);
    let metrics = fx.cluster.metrics();
    assert_eq!(metrics.counter("feisu.guard.rejected").get(), 2);
    assert_eq!(metrics.gauge("feisu.guard.inflight").get(), 0);
    assert_eq!(fx.cluster.guard().inflight(), 0);
}
