//! The parallel leaf-task pool's hard invariant: simulated results are
//! bit-identical at every `execution_threads` setting — same QueryStats,
//! same simulated response times, same EXPLAIN ANALYZE profile — because
//! simulated time comes from per-node tallies, never wall clock.

use feisu_common::{NodeId, SimDuration};
use feisu_core::engine::{ClusterSpec, FeisuCluster, QueryOptions, QueryResult, QueryStats};
use feisu_tests::fixture_with;

/// Everything a query run must agree on across thread counts.
#[derive(Debug, PartialEq)]
struct Observed {
    stats: QueryStats,
    response_time: SimDuration,
    partial: bool,
    rows: usize,
    profile: String,
}

fn observe(r: &QueryResult) -> Observed {
    Observed {
        stats: r.stats,
        response_time: r.response_time,
        partial: r.partial,
        rows: r.batch.rows(),
        profile: r.profile.render(),
    }
}

fn spec_with_threads(threads: usize) -> ClusterSpec {
    let mut spec = ClusterSpec::small();
    spec.config.execution_threads = threads;
    spec
}

/// Plain workload: repeated and varied queries, exercising index
/// build/hit paths and master-side task reuse.
fn run_plain_workload(threads: usize) -> Vec<Observed> {
    let fx = fixture_with(600, spec_with_threads(threads), "/hdfs/warehouse/clicks");
    let queries = [
        "SELECT COUNT(*) FROM clicks WHERE clicks > 25",
        "SELECT COUNT(*) FROM clicks WHERE clicks > 25", // index hits + reuse
        "SELECT keyword, COUNT(*), SUM(clicks) FROM clicks GROUP BY keyword",
        "SELECT url FROM clicks WHERE clicks > 80 AND day = 20160101",
        // Same predicate, different projection: not reusable, so the leaf
        // actually probes (and hits) the SmartIndex built by run 1.
        "SELECT url FROM clicks WHERE clicks > 25",
        "SELECT COUNT(*) FROM clicks WHERE clicks > 25", // reuse again
    ];
    queries
        .iter()
        .map(|sql| observe(&fx.cluster.query(sql, &fx.cred).expect(sql)))
        .collect()
}

#[test]
fn identical_simulated_results_at_1_2_and_8_threads() {
    let serial = run_plain_workload(1);
    for threads in [2, 8] {
        let parallel = run_plain_workload(threads);
        assert_eq!(
            serial, parallel,
            "simulated results diverged at execution_threads={threads}"
        );
    }
    // Sanity on the workload itself: it exercised reuse and the index.
    assert!(serial.iter().any(|o| o.stats.reused_tasks > 0));
    assert!(serial.iter().any(|o| o.stats.index_hits > 0));
}

/// Stress workload: dead node (rerouted backup tasks), straggler
/// (speculative backups), task reuse, and a time limit yielding partial
/// results — all under the pool at once.
fn run_stress_workload(threads: usize) -> Vec<Observed> {
    let mut spec = spec_with_threads(threads);
    // Tiny detection delay relative to the (tiny simulated) test tasks so
    // straggler-mitigation backups actually fire.
    spec.config.backup_task_delay = SimDuration::nanos(1_000);
    let fx = fixture_with(600, spec, "/hdfs/warehouse/clicks");
    let mut seen = Vec::new();
    let count_sql = "SELECT COUNT(*) FROM clicks WHERE clicks > 25";

    // Warm run, then a reuse run.
    seen.push(observe(&fx.cluster.query(count_sql, &fx.cred).unwrap()));
    seen.push(observe(&fx.cluster.query(count_sql, &fx.cred).unwrap()));

    // Dead node: its tasks fail over to backup nodes.
    fx.cluster.fail_node(NodeId(1));
    let grouped = "SELECT keyword, COUNT(*) FROM clicks GROUP BY keyword";
    seen.push(observe(&fx.cluster.query(grouped, &fx.cred).unwrap()));

    // Straggler: node 2 runs 50x slow, so speculative backups fire.
    fx.cluster.slow_node(NodeId(2), 50.0);
    let urls = "SELECT url FROM clicks WHERE clicks > 60";
    let full = fx.cluster.query(urls, &fx.cred).unwrap();
    let limit = SimDuration::nanos(full.response_time.as_nanos() / 2);
    seen.push(observe(&full));

    // Time-limited partial run on top of all of the above. A *fresh*
    // predicate — a repeat would be answered from the task-reuse cache in
    // zero leaf time and nothing would be abandoned.
    let opts = QueryOptions {
        processed_ratio: 0.2,
        time_limit: Some(limit),
    };
    let fresh = "SELECT url FROM clicks WHERE clicks > 70";
    seen.push(observe(
        &fx.cluster.query_with(fresh, &fx.cred, &opts).unwrap(),
    ));
    seen
}

#[test]
fn stress_faults_reuse_and_partials_are_thread_count_invariant() {
    let serial = run_stress_workload(1);
    for threads in [2, 8] {
        let parallel = run_stress_workload(threads);
        assert_eq!(
            serial, parallel,
            "stress results diverged at execution_threads={threads}"
        );
    }
    assert!(
        serial.iter().any(|o| o.stats.backup_tasks > 0),
        "workload never fired a backup task"
    );
    assert!(
        serial.iter().any(|o| o.stats.reused_tasks > 0),
        "workload never reused a task"
    );
    assert!(
        serial.last().expect("runs").partial,
        "time-limited run was not partial"
    );
}

/// `execution_threads = 0` resolves to the machine's parallelism and must
/// still match serial results exactly (it's the default setting).
#[test]
fn auto_thread_count_matches_serial() {
    assert_eq!(run_plain_workload(1), run_plain_workload(0));
}

/// The knob round-trips through the spec and validates.
#[test]
fn execution_threads_knob_defaults_and_validates() {
    let spec = ClusterSpec::small();
    assert_eq!(spec.config.execution_threads, 0, "default = auto");
    assert!(spec.config.validate().is_ok());
    let cluster = FeisuCluster::new(spec_with_threads(3)).unwrap();
    assert_eq!(cluster.spec().config.execution_threads, 3);
}
