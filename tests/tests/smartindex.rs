//! SmartIndex behaviour end-to-end: warm-up acceleration, negation
//! reuse, TTL retirement, correctness parity with the disabled baseline.

use feisu_core::engine::ClusterSpec;
use feisu_tests::{check_against_oracle, fixture, fixture_with};

#[test]
fn repeated_query_gets_faster_and_stops_reading() {
    let fx = fixture(600);
    let sql = "SELECT COUNT(*) FROM clicks WHERE clicks > 20 AND clicks <= 70";
    let cold = fx.cluster.query(sql, &fx.cred).unwrap();
    let warm = fx.cluster.query(sql, &fx.cred).unwrap();
    assert_eq!(cold.batch, warm.batch, "same answer");
    assert!(
        warm.response_time < cold.response_time,
        "warm {} !< cold {}",
        warm.response_time,
        cold.response_time
    );
    assert!(cold.stats.index_built > 0);
    // Task-result reuse would mask index behaviour; even with it on, the
    // second run must avoid storage reads entirely.
    assert_eq!(warm.stats.bytes_read.as_u64(), 0, "warm run reads nothing");
}

#[test]
fn warm_count_runs_fully_in_memory_without_task_reuse() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false; // isolate SmartIndex from job-manager reuse
    let fx = fixture_with(600, spec, "/hdfs/warehouse/clicks");
    let sql = "SELECT COUNT(*) FROM clicks WHERE clicks > 20 AND clicks <= 70";
    let cold = fx.cluster.query(sql, &fx.cred).unwrap();
    let warm = fx.cluster.query(sql, &fx.cred).unwrap();
    assert_eq!(cold.batch, warm.batch);
    assert_eq!(warm.stats.reused_tasks, 0);
    assert_eq!(
        warm.stats.memory_served_tasks, warm.stats.tasks,
        "every task served from index memory"
    );
    assert!(warm.stats.index_hits > 0);
    assert!(
        warm.response_time.as_nanos() * 3 < cold.response_time.as_nanos(),
        "paper's ≥3× speedup shape: warm {} vs cold {}",
        warm.response_time,
        cold.response_time
    );
}

#[test]
fn negated_predicate_is_served_from_existing_index() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    let mut fx = fixture_with(400, spec, "/hdfs/warehouse/clicks");
    // Warm with `clicks > 50`.
    fx.cluster
        .query("SELECT COUNT(*) FROM clicks WHERE clicks > 50", &fx.cred)
        .unwrap();
    // `!(clicks > 50)` ≡ `clicks <= 50` must be index-served (Fig. 7).
    let r = fx
        .cluster
        .query("SELECT COUNT(*) FROM clicks WHERE !(clicks > 50)", &fx.cred)
        .unwrap();
    assert_eq!(r.stats.memory_served_tasks, r.stats.tasks);
    // And agree with the oracle.
    check_against_oracle(&mut fx, "SELECT COUNT(*) FROM clicks WHERE !(clicks > 50)");
}

#[test]
fn baseline_without_smartindex_matches_results_but_keeps_reading() {
    let mut spec = ClusterSpec::small();
    spec.use_smartindex = false;
    spec.task_reuse = false;
    let mut fx = fixture_with(400, spec, "/hdfs/warehouse/clicks");
    let sql = "SELECT COUNT(*) FROM clicks WHERE clicks > 30";
    let first = fx.cluster.query(sql, &fx.cred).unwrap();
    let second = fx.cluster.query(sql, &fx.cred).unwrap();
    assert_eq!(first.batch, second.batch);
    // No learning: identical cost every time.
    assert_eq!(first.response_time, second.response_time);
    assert_eq!(second.stats.index_hits, 0);
    assert!(second.stats.bytes_read.as_u64() > 0);
    check_against_oracle(&mut fx, sql);
}

#[test]
fn ttl_expiry_forces_rebuild() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    let fx = fixture_with(300, spec, "/hdfs/warehouse/clicks");
    let sql = "SELECT COUNT(*) FROM clicks WHERE clicks > 10";
    fx.cluster.query(sql, &fx.cred).unwrap();
    let warm = fx.cluster.query(sql, &fx.cred).unwrap();
    assert_eq!(warm.stats.index_built, 0);
    // Cross the 72-hour TTL; credential would expire, so re-login.
    fx.cluster
        .advance_time(feisu_common::SimDuration::hours(73));
    let cred = fx.cluster.login(fx.user).unwrap();
    let stale = fx.cluster.query(sql, &cred).unwrap();
    assert!(
        stale.stats.index_built > 0,
        "expired indices must be rebuilt"
    );
}

#[test]
fn mixed_predicates_with_residual_still_correct() {
    let mut fx = fixture(350);
    // `url CONTAINS` is indexable; `clicks > day - 20160000` is residual
    // (column-column after arithmetic).
    for sql in [
        "SELECT COUNT(*) FROM clicks WHERE url CONTAINS 'site1' AND clicks > 40",
        "SELECT url FROM clicks WHERE clicks > day - 20160200",
        "SELECT COUNT(*) FROM clicks WHERE (keyword = 'map' OR keyword = 'news') AND clicks >= 5",
    ] {
        check_against_oracle(&mut fx, sql);
        // Run twice: warm path must stay correct.
        check_against_oracle(&mut fx, sql);
    }
}

#[test]
fn personalization_prewarms_pinned_indices() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    let fx = fixture_with(300, spec, "/hdfs/warehouse/clicks");
    let sql = "SELECT COUNT(*) FROM clicks WHERE clicks > 77";
    // Build history without executing against cold caches… actually the
    // query itself builds indices; so use history + personalize on a
    // *different* predicate recorded via a failed-quota-free path:
    // record history by running a cheap variant, then personalize and
    // verify the target predicate is hot on first touch.
    fx.cluster.query(sql, &fx.cred).unwrap(); // records history + builds
                                              // Age out the built indices but keep history fresh enough.
    fx.cluster
        .advance_time(feisu_common::SimDuration::hours(20));
    let built = fx.cluster.personalize(fx.user, 4).unwrap();
    assert!(built > 0, "personalize should pin indices");
    // Pinned indices outlive the TTL.
    fx.cluster
        .advance_time(feisu_common::SimDuration::hours(100));
    let cred = fx.cluster.login(fx.user).unwrap();
    let r = fx.cluster.query(sql, &cred).unwrap();
    assert_eq!(
        r.stats.memory_served_tasks, r.stats.tasks,
        "pinned indices survive TTL and serve the query"
    );
}

#[test]
fn index_stats_accumulate_across_queries() {
    let fx = fixture(300);
    let sql = "SELECT COUNT(*) FROM clicks WHERE clicks > 33";
    fx.cluster.query(sql, &fx.cred).unwrap();
    fx.cluster.query(sql, &fx.cred).unwrap();
    let stats = fx.cluster.index_stats();
    assert!(stats.inserts > 0);
    fx.cluster.reset_index_stats();
    assert_eq!(fx.cluster.index_stats().inserts, 0);
}
