//! Failure injection: node crashes, backup tasks, stragglers, partial
//! results and deadlines (paper §III-B/C, §V-B).

use feisu_common::{NodeId, SimDuration};
use feisu_core::engine::{ClusterSpec, QueryOptions};
use feisu_format::Value;
use feisu_tests::{check_against_oracle, fixture, fixture_with};

#[test]
fn replica_failover_keeps_answers_correct() {
    let fx = fixture(400);
    let sql = "SELECT COUNT(*) FROM clicks WHERE clicks > 25";
    let before = fx.cluster.query(sql, &fx.cred).unwrap();
    // Kill one node; HDFS keeps 3 replicas, so data stays reachable.
    fx.cluster.fail_node(NodeId(0));
    let after = fx.cluster.query(sql, &fx.cred).unwrap();
    assert_eq!(before.batch, after.batch);
}

#[test]
fn dead_node_triggers_backup_tasks() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    spec.use_smartindex = false;
    let fx = fixture_with(400, spec, "/hdfs/warehouse/clicks");
    let sql = "SELECT COUNT(*) FROM clicks";
    fx.cluster.query(sql, &fx.cred).unwrap();
    // Fail a node *after* scheduling knowledge is warm: the next query's
    // heartbeat view marks it dead, so the scheduler avoids it; instead
    // fail it and query immediately so assigned tasks must be re-run.
    fx.cluster.fail_node(NodeId(1));
    let r = fx.cluster.query(sql, &fx.cred).unwrap();
    assert_eq!(r.batch.column(0).value(0), Value::Int64(400));
    // The scheduler may or may not have routed to node 1 this round, but
    // over repeated failures of distinct nodes at least one backup fires.
    fx.cluster.recover_node(NodeId(1));
    fx.cluster.fail_node(NodeId(2));
    let r2 = fx.cluster.query(sql, &fx.cred).unwrap();
    assert_eq!(r2.batch.column(0).value(0), Value::Int64(400));
}

#[test]
fn whole_rack_failure_still_answers_when_replicas_span_racks() {
    let fx = fixture(300);
    // Small() topology: rack 0 = nodes {0,1}, rack 1 = {2,3}. HDFS places
    // the third replica off-rack, so killing one whole rack is survivable.
    fx.cluster.fail_node(NodeId(0));
    fx.cluster.fail_node(NodeId(1));
    let r = fx
        .cluster
        .query("SELECT COUNT(*) FROM clicks", &fx.cred)
        .unwrap();
    assert_eq!(r.batch.column(0).value(0), Value::Int64(300));
}

#[test]
fn total_data_loss_is_an_error_not_a_wrong_answer() {
    let fx = fixture(200);
    for n in 0..fx.cluster.node_count() {
        fx.cluster.fail_node(NodeId(n as u64));
    }
    let err = fx
        .cluster
        .query("SELECT COUNT(*) FROM clicks", &fx.cred)
        .unwrap_err();
    assert!(
        matches!(
            err,
            feisu_common::FeisuError::Scheduling(_) | feisu_common::FeisuError::Storage(_)
        ),
        "unexpected error class: {err}"
    );
}

#[test]
fn straggler_mitigated_by_backup_task() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    spec.use_smartindex = false;
    // Detection delay small relative to the (tiny) test tasks so the
    // backup path is actually cheaper than a 50x straggler.
    spec.config.backup_task_delay = SimDuration::micros(100);
    let fx_slow = fixture_with(400, spec.clone(), "/hdfs/warehouse/clicks");
    let fx_ref = fixture_with(400, spec, "/hdfs/warehouse/clicks");
    let sql = "SELECT COUNT(*) FROM clicks";
    // Make every node a 50× straggler in one cluster.
    for n in 0..fx_slow.cluster.node_count() {
        fx_slow.cluster.slow_node(NodeId(n as u64), 50.0);
    }
    let slow = fx_slow.cluster.query(sql, &fx_slow.cred).unwrap();
    let reference = fx_ref.cluster.query(sql, &fx_ref.cred).unwrap();
    assert_eq!(slow.batch, reference.batch);
    assert!(slow.stats.backup_tasks > 0, "backups must fire");
    // Backup bounds the slowdown far below 50×.
    assert!(
        slow.response_time.as_nanos() < reference.response_time.as_nanos() * 50,
        "backup tasks must cap the straggler penalty"
    );
}

#[test]
fn time_limit_with_ratio_returns_partial_results() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    spec.use_smartindex = false;
    let fx = fixture_with(600, spec, "/hdfs/warehouse/clicks");
    let sql = "SELECT COUNT(*) FROM clicks";
    let full = fx.cluster.query(sql, &fx.cred).unwrap();
    let full_count = full.batch.column(0).value(0).as_i64().unwrap();
    // A limit roughly half the full response forces abandonment.
    let limit = SimDuration::nanos(full.response_time.as_nanos() / 2);
    let opts = QueryOptions {
        processed_ratio: 0.2,
        time_limit: Some(limit),
    };
    let partial = fx.cluster.query_with(sql, &fx.cred, &opts).unwrap();
    assert!(partial.partial, "must be flagged partial");
    assert!(partial.stats.processed_ratio < 1.0);
    assert!(partial.stats.processed_ratio >= 0.2);
    let partial_count = partial.batch.column(0).value(0).as_i64().unwrap();
    assert!(partial_count < full_count, "partial counts fewer rows");
    // Leaf work is cut at the limit; only merge/master overhead follows.
    assert!(partial.response_time < full.response_time);
}

#[test]
fn unmeetable_ratio_under_time_limit_is_deadline_error() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    spec.use_smartindex = false;
    let fx = fixture_with(600, spec, "/hdfs/warehouse/clicks");
    let sql = "SELECT COUNT(*) FROM clicks";
    let full = fx.cluster.query(sql, &fx.cred).unwrap();
    let opts = QueryOptions {
        processed_ratio: 1.0,
        time_limit: Some(SimDuration::nanos(full.response_time.as_nanos() / 3)),
    };
    let err = fx.cluster.query_with(sql, &fx.cred, &opts).unwrap_err();
    assert!(
        matches!(err, feisu_common::FeisuError::Deadline(_)),
        "{err}"
    );
}

#[test]
fn recovery_restores_normal_service() {
    let mut fx = fixture(300);
    fx.cluster.fail_node(NodeId(3));
    check_against_oracle(&mut fx, "SELECT COUNT(*) FROM clicks WHERE clicks > 10");
    fx.cluster.recover_node(NodeId(3));
    check_against_oracle(&mut fx, "SELECT COUNT(*) FROM clicks WHERE clicks > 10");
}

#[test]
fn resource_agreement_redirects_tasks_from_busy_nodes() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    spec.use_smartindex = false;
    let fx = fixture_with(400, spec, "/hdfs/warehouse/clicks");
    // Business-critical services take the whole of node 0: Feisu's share
    // of its slots drops to zero.
    let preempted = fx.cluster.set_business_load(NodeId(0), 1000);
    assert_eq!(preempted, 0, "nothing running yet");
    assert_eq!(fx.cluster.feisu_slot_limit(NodeId(0)), 0);
    // Queries still answer correctly: tasks bound for node 0 reroute as
    // backup tasks on other nodes.
    let r = fx
        .cluster
        .query("SELECT COUNT(*) FROM clicks", &fx.cred)
        .unwrap();
    assert_eq!(r.batch.column(0).value(0), Value::Int64(400));
    // Releasing the business load restores the node's slots.
    fx.cluster.set_business_load(NodeId(0), 0);
    assert!(fx.cluster.feisu_slot_limit(NodeId(0)) > 0);
}
