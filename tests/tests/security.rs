//! Authorization, SSO and entry-guard behaviour end-to-end (paper §V-A,
//! §III-C).

use feisu_common::{FeisuError, SimDuration, UserId};
use feisu_core::engine::{ClusterSpec, FeisuCluster};
use feisu_storage::auth::Grant;
use feisu_tests::{clicks_rows, clicks_schema, fixture};

fn cluster_with_table() -> (FeisuCluster, UserId) {
    let cluster = FeisuCluster::new(ClusterSpec::small()).unwrap();
    let admin = cluster.register_user("admin");
    cluster.grant_all(admin);
    let admin_cred = cluster.login(admin).unwrap();
    cluster
        .create_table(
            "clicks",
            clicks_schema(),
            "/hdfs/warehouse/clicks",
            &admin_cred,
        )
        .unwrap();
    cluster
        .ingest_rows("clicks", clicks_rows(100), &admin_cred)
        .unwrap();
    (cluster, admin)
}

#[test]
fn user_without_grant_cannot_read() {
    let (cluster, _) = cluster_with_table();
    let intern = cluster.register_user("intern");
    let cred = cluster.login(intern).unwrap();
    let err = cluster
        .query("SELECT COUNT(*) FROM clicks", &cred)
        .unwrap_err();
    assert!(matches!(err, FeisuError::PermissionDenied(_)), "{err}");
}

#[test]
fn read_grant_allows_query_but_not_ingest() {
    let (cluster, _) = cluster_with_table();
    let analyst = cluster.register_user("analyst");
    cluster.grant(analyst, "hdfs", Grant::Read).unwrap();
    let cred = cluster.login(analyst).unwrap();
    assert!(cluster.query("SELECT COUNT(*) FROM clicks", &cred).is_ok());
    let err = cluster
        .ingest_rows("clicks", clicks_rows(5), &cred)
        .unwrap_err();
    assert!(matches!(err, FeisuError::PermissionDenied(_)), "{err}");
}

#[test]
fn expired_credential_rejected_mid_session() {
    let (cluster, admin) = cluster_with_table();
    let cred = cluster.login(admin).unwrap();
    assert!(cluster.query("SELECT COUNT(*) FROM clicks", &cred).is_ok());
    cluster.advance_time(SimDuration::hours(9)); // past the 8 h validity
    let err = cluster
        .query("SELECT COUNT(*) FROM clicks", &cred)
        .unwrap_err();
    assert!(matches!(err, FeisuError::Unauthenticated(_)), "{err}");
    // A fresh login restores service.
    let fresh = cluster.login(admin).unwrap();
    assert!(cluster.query("SELECT COUNT(*) FROM clicks", &fresh).is_ok());
}

#[test]
fn revoked_user_locked_out_despite_valid_token() {
    let (cluster, _) = cluster_with_table();
    let leaver = cluster.register_user("leaver");
    cluster.grant(leaver, "hdfs", Grant::Read).unwrap();
    let cred = cluster.login(leaver).unwrap();
    assert!(cluster.query("SELECT COUNT(*) FROM clicks", &cred).is_ok());
    cluster.auth().revoke_user(leaver);
    let err = cluster
        .query("SELECT COUNT(*) FROM clicks", &cred)
        .unwrap_err();
    assert!(matches!(err, FeisuError::Unauthenticated(_)), "{err}");
}

#[test]
fn syntax_errors_rejected_before_admission() {
    let fx = fixture(50);
    let err = fx
        .cluster
        .query("SELEKT url FROM clicks", &fx.cred)
        .unwrap_err();
    assert!(matches!(err, FeisuError::Parse(_)), "{err}");
    // A parse failure must not consume quota.
    assert_eq!(fx.cluster.jobs().jobs_of(fx.user).len(), 0);
}

#[test]
fn unknown_table_is_analysis_error() {
    let fx = fixture(50);
    let err = fx
        .cluster
        .query("SELECT x FROM ghost", &fx.cred)
        .unwrap_err();
    assert!(matches!(err, FeisuError::Analysis(_)), "{err}");
}

#[test]
fn guard_blocks_oversized_statements() {
    let fx = fixture(50);
    let huge = format!(
        "SELECT url FROM clicks WHERE url CONTAINS '{}'",
        "x".repeat(100_000)
    );
    let err = fx.cluster.query(&huge, &fx.cred).unwrap_err();
    assert!(matches!(err, FeisuError::PermissionDenied(_)), "{err}");
}

#[test]
fn jobs_are_recorded_per_user() {
    let fx = fixture(60);
    fx.cluster
        .query("SELECT COUNT(*) FROM clicks", &fx.cred)
        .unwrap();
    fx.cluster
        .query("SELECT url FROM clicks WHERE clicks > 5", &fx.cred)
        .unwrap();
    let jobs = fx.cluster.jobs().jobs_of(fx.user);
    assert_eq!(jobs.len(), 2);
    assert!(jobs
        .iter()
        .all(|j| j.state == feisu_core::master::JobState::Succeeded));
    assert_eq!(fx.cluster.history().count(fx.user), 2);
}
