//! Property test for the physical pipeline: randomly generated queries
//! executed through the distributed cluster (lowered to a
//! [`feisu_exec::physical::PhysicalPlan`] and interpreted by the master)
//! must return exactly the rows the single-process oracle executor
//! (`feisu_exec::executor::run_sql`) returns for the same SQL.

use feisu_tests::{assert_same_rows, fixture, Fixture};
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

/// One shared fixture: building a populated cluster per case would
/// dominate the test's runtime, and queries don't mutate table data.
static FX: OnceLock<Mutex<Fixture>> = OnceLock::new();

fn with_fixture<R>(f: impl FnOnce(&mut Fixture) -> R) -> R {
    let fx = FX.get_or_init(|| Mutex::new(fixture(300)));
    f(&mut fx.lock().unwrap())
}

/// Random predicates over the clicks schema, exercising every disjunct
/// shape the CNF splitter knows: indexable comparisons, CONTAINS, NULL
/// tests, and arbitrary AND/OR/NOT nesting (which produces residual
/// clauses that stay as row filters on the leaves).
fn arb_predicate() -> impl Strategy<Value = String> {
    let cmp = prop_oneof![
        Just(">"),
        Just(">="),
        Just("<"),
        Just("<="),
        Just("="),
        Just("!=")
    ]
    .boxed();
    let leaf = prop_oneof![
        (cmp.clone(), 0i64..100).prop_map(|(op, v)| format!("clicks {op} {v}")),
        (cmp.clone(), 0u32..10).prop_map(|(op, v)| format!("score {op} 0.{v}")),
        (cmp, 0i64..12).prop_map(|(op, d)| format!("day {op} {}", 20160101 + d)),
        (0usize..4).prop_map(|k| format!("keyword = '{}'", ["map", "music", "news", "stock"][k])),
        (0usize..8).prop_map(|s| format!("url CONTAINS 'site{s}'")),
        Just("clicks IS NULL".to_string()),
        Just("clicks IS NOT NULL".to_string()),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} AND {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} OR {r})")),
            inner.prop_map(|e| format!("(NOT {e})")),
        ]
    })
}

/// `proptest::option::of` equivalent for the offline shim.
fn maybe<V: 'static>(s: BoxedStrategy<V>) -> impl Strategy<Value = Option<V>> {
    prop_oneof![Just(()).prop_map(|_| None), s.prop_map(Some)]
}

/// Random SELECT lists: plain projections or aggregates (the latter
/// lower to `FinalAggregate` over a scan with the stage pushed down).
fn arb_query() -> impl Strategy<Value = String> {
    let projection = prop_oneof![
        Just("url".to_string()),
        Just("url, clicks".to_string()),
        Just("keyword, score, day".to_string()),
        Just("clicks * 2 AS doubled, url".to_string()),
    ];
    let aggregates = prop_oneof![
        Just("COUNT(*)".to_string()),
        Just("COUNT(clicks)".to_string()),
        Just("SUM(clicks), MIN(clicks), MAX(clicks)".to_string()),
        Just("COUNT(*), AVG(score)".to_string()),
    ]
    .boxed();
    let group = prop_oneof![Just("keyword"), Just("day")];
    let shape = prop_oneof![
        // Plain scan + projection.
        projection.prop_map(|p| format!("SELECT {p} FROM clicks")),
        // Global aggregate — pushed to the leaves.
        aggregates
            .clone()
            .prop_map(|a| format!("SELECT {a} FROM clicks")),
        // Grouped aggregate, optionally ordered by the (unique) group key
        // with a LIMIT so Sort and Limit operators get exercised too.
        (aggregates, group, maybe((1u64..5).boxed())).prop_map(|(a, g, lim)| {
            match lim {
                Some(k) => {
                    format!("SELECT {g}, {a} FROM clicks GROUP BY {g} ORDER BY {g} LIMIT {k}")
                }
                None => format!("SELECT {g}, {a} FROM clicks GROUP BY {g}"),
            }
        }),
    ];
    (shape, maybe(arb_predicate().boxed())).prop_map(|(q, pred)| match pred {
        Some(p) => {
            // Splice the WHERE clause in front of any GROUP BY suffix.
            match q.find(" GROUP BY") {
                Some(at) => format!("{} WHERE {p}{}", &q[..at], &q[at..]),
                None => format!("{q} WHERE {p}"),
            }
        }
        None => q,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn random_queries_match_oracle(sql in arb_query()) {
        with_fixture(|fx| {
            let got = fx
                .cluster
                .query(&sql, &fx.cred)
                .unwrap_or_else(|e| panic!("cluster failed `{sql}`: {e}"));
            let want = feisu_exec::executor::run_sql(&sql, &mut fx.oracle)
                .unwrap_or_else(|e| panic!("oracle failed `{sql}`: {e}"));
            assert_same_rows(&got.batch, &want, &sql);
        });
    }
}
