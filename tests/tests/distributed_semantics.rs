//! Distributed-execution semantics that the oracle comparison alone
//! cannot pin down: partial-aggregation pushdown, stem-tree merging,
//! zone pruning, scheduling stats, history/personalization plumbing.

use feisu_core::engine::ClusterSpec;
use feisu_format::Value;
use feisu_tests::{check_against_oracle, fixture, fixture_with};

#[test]
fn partial_aggregation_is_pushed_to_leaves() {
    // GROUP BY over many blocks: each leaf ships a transport batch whose
    // row count is bounded by its group count, not its input rows.
    let mut fx = fixture(800);
    let r = fx
        .cluster
        .query(
            "SELECT keyword, COUNT(*), SUM(clicks) FROM clicks GROUP BY keyword",
            &fx.cred,
        )
        .unwrap();
    assert_eq!(r.batch.rows(), 4, "four keywords");
    // And results agree with the oracle.
    check_against_oracle(
        &mut fx,
        "SELECT keyword, COUNT(*), SUM(clicks) FROM clicks GROUP BY keyword",
    );
}

#[test]
fn aggregate_above_filterless_scan_counts_all_blocks() {
    let fx = fixture(500);
    // No WHERE clause: zone pruning cannot fire, every block contributes.
    let r = fx
        .cluster
        .query("SELECT COUNT(*), MIN(day), MAX(day) FROM clicks", &fx.cred)
        .unwrap();
    assert_eq!(r.stats.pruned_blocks, 0);
    assert_eq!(r.batch.value_at(0, "COUNT(*)"), Some(Value::Int64(500)));
    assert_eq!(
        r.batch.value_at(0, "MIN(day)"),
        Some(Value::Int64(20160101))
    );
}

#[test]
fn zone_pruning_skips_out_of_range_blocks() {
    // `day` is monotonically increasing across ingest order, so blocks
    // have disjoint day ranges and a selective day predicate prunes most.
    let fx = fixture(500);
    let r = fx
        .cluster
        .query("SELECT COUNT(*) FROM clicks WHERE day = 20160105", &fx.cred)
        .unwrap();
    assert!(
        r.stats.pruned_blocks > 0,
        "zone maps should skip non-matching day blocks: {:?}",
        r.stats
    );
    assert_eq!(r.batch.column(0).value(0), Value::Int64(50));
}

#[test]
fn many_groups_survive_the_stem_tree() {
    // More groups than rows-per-block: group merging must be exact.
    let mut fx = fixture(640);
    check_against_oracle(
        &mut fx,
        "SELECT url, COUNT(*) AS n, MIN(clicks), MAX(clicks) FROM clicks GROUP BY url",
    );
}

#[test]
fn stem_fanout_configuration_changes_nothing_semantically() {
    for leaves_per_stem in [1usize, 2, 64] {
        let mut spec = ClusterSpec::small();
        spec.config.leaves_per_stem = leaves_per_stem;
        let fx = fixture_with(300, spec, "/hdfs/warehouse/clicks");
        let r = fx
            .cluster
            .query("SELECT SUM(clicks) FROM clicks", &fx.cred)
            .unwrap();
        assert_eq!(
            r.batch.column(0).value(0),
            Value::Int64(
                feisu_tests::clicks_rows(300)
                    .iter()
                    .filter_map(|row| row[2].as_i64())
                    .sum::<i64>()
            ),
            "fanout {leaves_per_stem}"
        );
    }
}

#[test]
fn history_and_personalization_flow() {
    let fx = fixture(200);
    for _ in 0..5 {
        fx.cluster
            .query("SELECT COUNT(*) FROM clicks WHERE clicks > 42", &fx.cred)
            .unwrap();
    }
    let freq = fx.cluster.history().frequent_predicates(
        fx.user,
        fx.cluster.now(),
        feisu_common::SimDuration::hours(24),
        3,
    );
    assert!(!freq.is_empty());
    assert_eq!(freq[0].0.column, "clicks");
    assert_eq!(freq[0].1, 5);
    let pinned = fx.cluster.personalize(fx.user, 2).unwrap();
    assert!(pinned > 0);
}

#[test]
fn task_reuse_only_within_freshness_window() {
    let mut spec = ClusterSpec::small();
    spec.use_smartindex = false;
    let fx = fixture_with(300, spec, "/hdfs/warehouse/clicks");
    let sql = "SELECT COUNT(*) FROM clicks WHERE clicks >= 7";
    fx.cluster.query(sql, &fx.cred).unwrap();
    let hot = fx.cluster.query(sql, &fx.cred).unwrap();
    assert!(hot.stats.reused_tasks > 0, "immediate re-run reuses tasks");
    // Past the 10-minute reuse window, tasks run again.
    fx.cluster
        .advance_time(feisu_common::SimDuration::minutes(11));
    let stale = fx.cluster.query(sql, &fx.cred).unwrap();
    assert_eq!(stale.stats.reused_tasks, 0, "stale results not reused");
    assert_eq!(hot.batch, stale.batch);
}

#[test]
fn scheduling_stats_expose_task_counts() {
    let fx = fixture(500);
    let r = fx
        .cluster
        .query("SELECT COUNT(*) FROM clicks", &fx.cred)
        .unwrap();
    let expected_blocks = fx.cluster.catalog().table("clicks").unwrap().block_count();
    assert_eq!(r.stats.tasks, expected_blocks);
    assert_eq!(r.stats.processed_ratio, 1.0);
    assert!(!r.partial);
}

#[test]
fn cross_join_and_three_table_queries() {
    let mut fx = fixture(60);
    let dim = feisu_format::Schema::new(vec![feisu_format::Field::new(
        "tag",
        feisu_format::DataType::Utf8,
        false,
    )]);
    fx.cluster
        .create_table("tags", dim.clone(), "/hdfs/warehouse/tags", &fx.cred)
        .unwrap();
    let rows = vec![
        vec![feisu_format::Value::from("x")],
        vec![feisu_format::Value::from("y")],
    ];
    fx.cluster
        .ingest_rows("tags", rows.clone(), &fx.cred)
        .unwrap();
    fx.oracle
        .insert("tags", feisu_tests::rows_to_batch(&dim, &rows));
    check_against_oracle(&mut fx, "SELECT COUNT(*) FROM clicks CROSS JOIN tags");
    check_against_oracle(
        &mut fx,
        "SELECT tags.tag, COUNT(*) FROM clicks CROSS JOIN tags \
         WHERE clicks.clicks > 50 GROUP BY tags.tag",
    );
}

#[test]
fn residual_only_predicates_do_not_share_task_results() {
    // Regression: the task-reuse signature must include residual
    // (non-indexable) clauses, not just the SmartIndex-servable CNF.
    let mut fx = fixture(300);
    // `clicks > day - N` is column-vs-expression: fully residual.
    let a = fx
        .cluster
        .query(
            "SELECT COUNT(*) FROM clicks WHERE clicks > day - 20160110",
            &fx.cred,
        )
        .unwrap();
    let b = fx
        .cluster
        .query(
            "SELECT COUNT(*) FROM clicks WHERE clicks > day - 20160101",
            &fx.cred,
        )
        .unwrap();
    let ca = a.batch.column(0).value(0).as_i64().unwrap();
    let cb = b.batch.column(0).value(0).as_i64().unwrap();
    assert!(
        ca > cb,
        "different residuals must give different counts: {ca} vs {cb}"
    );
    // And each agrees with the oracle.
    check_against_oracle(
        &mut fx,
        "SELECT COUNT(*) FROM clicks WHERE clicks > day - 20160110",
    );
    check_against_oracle(
        &mut fx,
        "SELECT COUNT(*) FROM clicks WHERE clicks > day - 20160101",
    );
}

#[test]
fn oversized_results_spill_to_global_storage() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    // A tiny threshold forces the §V-C spill path for any real result.
    spec.config.result_spill_threshold = feisu_common::ByteSize::bytes(64);
    let fx = fixture_with(400, spec, "/hdfs/warehouse/clicks");
    let small = fx
        .cluster
        .query("SELECT COUNT(*) FROM clicks", &fx.cred)
        .unwrap();
    assert_eq!(
        small.stats.spilled_results, 0,
        "one-row aggregate fits the read flow"
    );
    let big = fx
        .cluster
        .query(
            "SELECT url, keyword, clicks FROM clicks WHERE clicks >= 0",
            &fx.cred,
        )
        .unwrap();
    assert!(big.stats.spilled_results > 0, "row flood must spill");
    assert!(big.batch.rows() > 300);
    // Spilling costs a bulk round trip: slower than the in-band path of a
    // comparable-result query with a huge threshold.
    let mut spec2 = ClusterSpec::small();
    spec2.task_reuse = false;
    let fx2 = fixture_with(400, spec2, "/hdfs/warehouse/clicks");
    let inband = fx2
        .cluster
        .query(
            "SELECT url, keyword, clicks FROM clicks WHERE clicks >= 0",
            &fx2.cred,
        )
        .unwrap();
    assert_eq!(inband.batch, big.batch);
    assert!(big.response_time > inband.response_time);
}
