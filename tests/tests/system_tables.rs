//! End-to-end suite for the queryable observability plane: virtual
//! `system.*` tables served through the normal physical-plan scan path,
//! the always-on bounded query event log behind `system.queries`, and
//! the Chrome-trace export handle on `QueryResult`.

use feisu_core::engine::ClusterSpec;
use feisu_format::Value;
use feisu_obs::QueryEvent;
use feisu_storage::auth::Credential;
use feisu_tests::{fixture, fixture_with};
use std::sync::Barrier;

/// Golden read-back: completed queries surface in `system.queries` with
/// the right user, statement, outcome and row counts — via a plain
/// `SELECT`, not a side API.
#[test]
fn golden_select_over_system_queries() {
    let fx = fixture(100);
    let q1 = "SELECT COUNT(*) FROM clicks WHERE clicks > 10";
    let q2 = "SELECT url FROM clicks WHERE clicks > 90";
    let r1 = fx.cluster.query(q1, &fx.cred).expect("q1");
    let r2 = fx.cluster.query(q2, &fx.cred).expect("q2");

    let log = fx
        .cluster
        .query(
            "SELECT query_id, user, sql, outcome, rows_returned, response_ns \
             FROM system.queries",
            &fx.cred,
        )
        .expect("system.queries select");
    // The introspection query itself completes after its scan snapshot,
    // so exactly the two earlier queries are visible.
    assert_eq!(log.batch.rows(), 2);
    let row_for = |sql: &str| {
        (0..log.batch.rows())
            .find(|&i| log.batch.value_at(i, "sql") == Some(Value::Utf8(sql.into())))
            .unwrap_or_else(|| panic!("no event row for `{sql}`"))
    };
    for (sql, result) in [(q1, &r1), (q2, &r2)] {
        let i = row_for(sql);
        assert_eq!(
            log.batch.value_at(i, "query_id"),
            Some(Value::Int64(result.query_id.0 as i64))
        );
        assert_eq!(
            log.batch.value_at(i, "user"),
            Some(Value::Utf8(fx.cred.user.to_string()))
        );
        assert_eq!(
            log.batch.value_at(i, "outcome"),
            Some(Value::Utf8("completed".into()))
        );
        assert_eq!(
            log.batch.value_at(i, "rows_returned"),
            Some(Value::Int64(result.batch.rows() as i64))
        );
        assert_eq!(
            log.batch.value_at(i, "response_ns"),
            Some(Value::Int64(result.response_time.as_nanos() as i64))
        );
    }
    // And the introspection query is itself logged once it completes.
    assert_eq!(fx.cluster.query_log().len(), 3);
}

/// System tables go through the ordinary planner: EXPLAIN shows a
/// `DistributedScan` over the virtual table, and pushed-down predicates
/// and aggregation work on it.
#[test]
fn system_tables_use_the_normal_plan_path() {
    let fx = fixture(60);
    fx.cluster
        .query("SELECT COUNT(*) FROM clicks", &fx.cred)
        .expect("warm-up query");

    let plan = fx
        .cluster
        .explain(
            "SELECT user FROM system.queries WHERE response_ns > 0",
            &fx.cred,
        )
        .expect("explain over system table");
    assert!(
        plan.contains("DistributedScan") && plan.contains("system.queries"),
        "plan should scan the virtual table: {plan}"
    );

    // Aggregation pushdown over a virtual scan.
    let agg = fx
        .cluster
        .query(
            "SELECT outcome, COUNT(*) FROM system.queries GROUP BY outcome",
            &fx.cred,
        )
        .expect("aggregate over system.queries");
    assert_eq!(agg.batch.rows(), 1);
    assert_eq!(
        agg.batch.value_at(0, "outcome"),
        Some(Value::Utf8("completed".into()))
    );
    assert_eq!(agg.batch.row(0)[1], Value::Int64(1));
    // The virtual scan ran no leaf tasks and read no storage bytes.
    assert_eq!(agg.stats.tasks, 0);
    assert_eq!(agg.stats.bytes_read.0, 0);
}

/// `system.metrics`, `system.nodes` and `system.cache` answer plain
/// SELECTs with live cluster state.
#[test]
fn metrics_nodes_and_cache_tables_are_selectable() {
    let fx = fixture(80);
    fx.cluster
        .query("SELECT COUNT(*) FROM clicks WHERE clicks > 5", &fx.cred)
        .expect("seed query");

    let m = fx
        .cluster
        .query(
            "SELECT name, kind, count FROM system.metrics WHERE name = 'feisu.query.count'",
            &fx.cred,
        )
        .expect("system.metrics");
    assert_eq!(m.batch.rows(), 1);
    assert_eq!(
        m.batch.value_at(0, "kind"),
        Some(Value::Utf8("counter".into()))
    );
    // The seed query plus this one's admission tick both count.
    assert!(matches!(m.batch.value_at(0, "count"), Some(Value::Int64(n)) if n >= 1));

    // Window rows surface next to registry metrics.
    let w = fx
        .cluster
        .query(
            "SELECT name, count, rate_per_sec FROM system.metrics WHERE kind = 'window'",
            &fx.cred,
        )
        .expect("window rows");
    assert!(w.batch.rows() >= 3, "response/wire/scanned windows");

    let nodes = fx
        .cluster
        .query(
            "SELECT node, alive, failed, feisu_slots FROM system.nodes",
            &fx.cred,
        )
        .expect("system.nodes");
    assert!(nodes.batch.rows() > 0);
    for i in 0..nodes.batch.rows() {
        assert_eq!(nodes.batch.value_at(i, "alive"), Some(Value::Bool(true)));
        assert_eq!(nodes.batch.value_at(i, "failed"), Some(Value::Bool(false)));
    }

    // No cache configured on this fixture: the table is selectable but
    // empty (no per-node tier state exists).
    let cache = fx
        .cluster
        .query(
            "SELECT node, tier, entries, hits FROM system.cache",
            &fx.cred,
        )
        .expect("system.cache");
    assert_eq!(cache.batch.rows(), 0, "no cache -> no tier rows");
}

/// `system.cache` reports one row per (node, tier) — `mem`, `ssd` and
/// the `ghost` admission shadow — with exact per-node counters.
#[test]
fn system_cache_reports_per_node_tier_rows() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    spec.use_smartindex = false;
    spec.config.cache.enabled = true;
    spec.config.cache.admission = feisu_common::config::CacheAdmission::Always;
    let fx = fixture_with(200, spec, "/hdfs/warehouse/clicks");
    let sql = "SELECT url FROM clicks WHERE clicks > 10";
    fx.cluster.query(sql, &fx.cred).unwrap(); // miss + admit
    fx.cluster.query(sql, &fx.cred).unwrap(); // ssd hits + promotion
    let nodes = fx.cluster.node_count();
    let rows = fx
        .cluster
        .query(
            "SELECT node, tier, entries, used_bytes, capacity_bytes, hits, evictions \
             FROM system.cache",
            &fx.cred,
        )
        .expect("system.cache");
    assert_eq!(rows.batch.rows(), nodes * 3, "three tiers per node");
    // Tier labels cycle mem/ssd/ghost per node; the SSD tier saw the
    // warm-read hits somewhere.
    let mut ssd_hits = 0i64;
    for i in 0..rows.batch.rows() {
        let Some(Value::Utf8(tier)) = rows.batch.value_at(i, "tier") else {
            panic!("tier column");
        };
        assert_eq!(["mem", "ssd", "ghost"][i % 3], tier);
        if tier == "ssd" {
            if let Some(Value::Int64(h)) = rows.batch.value_at(i, "hits") {
                ssd_hits += h;
            }
        }
    }
    assert!(ssd_hits > 0, "warm reads hit the SSD tier");
    // Aggregation pushdown works over the virtual table.
    let agg = fx
        .cluster
        .query(
            "SELECT tier, SUM(used_bytes) FROM system.cache GROUP BY tier",
            &fx.cred,
        )
        .expect("grouped");
    assert_eq!(agg.batch.rows(), 3);
}

/// The `system.` namespace is reserved: user tables cannot shadow the
/// virtual catalog.
#[test]
fn system_namespace_is_reserved() {
    let fx = fixture(10);
    let err = fx
        .cluster
        .create_table(
            "system.queries",
            feisu_tests::clicks_schema(),
            "/hdfs/warehouse/shadow",
            &fx.cred,
        )
        .expect_err("create_table in system namespace must fail");
    assert!(err.to_string().contains("reserved"), "{err}");
}

/// The event log is a bounded ring: under churn it holds exactly the
/// configured capacity, oldest evicted first.
#[test]
fn query_log_is_bounded_under_churn() {
    let mut spec = ClusterSpec::small();
    spec.config.query_log_capacity = 4;
    let fx = fixture_with(120, spec, "/hdfs/warehouse/clicks");
    for v in 0..10 {
        fx.cluster
            .query(
                &format!("SELECT COUNT(*) FROM clicks WHERE clicks > {v}"),
                &fx.cred,
            )
            .expect("churn query");
    }
    let log = fx.cluster.query_log();
    assert_eq!(log.capacity(), 4);
    assert_eq!(log.len(), 4);
    let sqls: Vec<String> = log.snapshot().into_iter().map(|e| e.sql).collect();
    let expect: Vec<String> = (6..10)
        .map(|v| format!("SELECT COUNT(*) FROM clicks WHERE clicks > {v}"))
        .collect();
    assert_eq!(sqls, expect, "oldest events evicted first");
}

/// Failures and guard rejections are terminal events: they land in the
/// log with their outcome and error text even though no result exists.
#[test]
fn failed_and_rejected_queries_are_logged() {
    let mut spec = ClusterSpec::small();
    spec.guard.daily_quota = 2;
    let fx = fixture_with(60, spec, "/hdfs/warehouse/clicks");

    // Analysis failure (well-formed SQL, unknown table).
    fx.cluster
        .query("SELECT x FROM ghost", &fx.cred)
        .expect_err("unknown table");
    // Syntax failure.
    fx.cluster
        .query("SELEKT nonsense", &fx.cred)
        .expect_err("syntax error");
    // Burn the quota (the failed analysis query above consumed one
    // admission; the syntax error did not).
    fx.cluster
        .query("SELECT COUNT(*) FROM clicks", &fx.cred)
        .expect("second admitted query");
    fx.cluster
        .query("SELECT COUNT(*) FROM clicks WHERE clicks > 1", &fx.cred)
        .expect_err("quota rejection");

    let events = fx.cluster.query_log().snapshot();
    assert_eq!(events.len(), 4);
    let outcomes: Vec<&str> = events.iter().map(|e| e.outcome.label()).collect();
    assert_eq!(outcomes, ["failed", "failed", "completed", "rejected"]);
    assert!(events[0].outcome.error().unwrap().contains("ghost"));
    assert!(events[3].outcome.error().unwrap().contains("quota"));

    // The same facts are queryable.
    let r = fx
        .cluster
        .query(
            "SELECT outcome, COUNT(*) FROM system.queries GROUP BY outcome",
            &fx.cred,
        )
        .expect_err("introspection user is also quota-limited");
    assert!(r.to_string().contains("quota"));
    // A fresh user can still read the log through SQL.
    let auditor = fx.cluster.register_user("auditor");
    fx.cluster.grant_all(auditor);
    let cred: Credential = fx.cluster.login(auditor).expect("auditor login");
    let by_outcome = fx
        .cluster
        .query(
            "SELECT outcome, COUNT(*) FROM system.queries GROUP BY outcome",
            &cred,
        )
        .expect("audit query");
    // completed=1, failed=2, rejected=2 (the quota-limited introspection
    // attempt above was itself rejected and logged).
    assert_eq!(by_outcome.batch.rows(), 3);
    let count_of = |label: &str| {
        (0..by_outcome.batch.rows())
            .find(|&i| by_outcome.batch.value_at(i, "outcome") == Some(Value::Utf8(label.into())))
            .map(|i| by_outcome.batch.row(i)[1].clone())
            .unwrap_or_else(|| panic!("no `{label}` group"))
    };
    assert_eq!(count_of("completed"), Value::Int64(1));
    assert_eq!(count_of("failed"), Value::Int64(2));
    assert_eq!(count_of("rejected"), Value::Int64(2));
}

/// The interleaving-independent slice of a query event: everything a
/// client could compute from its own deterministic `QueryResult`.
fn event_key(e: &QueryEvent) -> (String, String, String, u64, u64, u64, u64, u64, u64, u64) {
    (
        e.user.clone(),
        e.sql.clone(),
        e.outcome.label().to_string(),
        e.response_ns,
        e.tasks,
        e.rows_returned,
        e.bytes_scanned,
        e.bytes_returned,
        e.wire_leaf_stem_bytes,
        e.wire_stem_master_bytes,
    )
}

/// Serial and concurrent runs of a race-free workload log the same
/// multiset of per-query events (absolute admission instants differ
/// with interleaving; everything per-query matches).
#[test]
fn event_log_serial_vs_concurrent_equivalence() {
    let clients = 3usize;
    let per_client = 4usize;
    // Cache-independent across clients: client `i` only uses predicate
    // constants ≡ i (mod clients), mirroring the determinism suite.
    let workloads: Vec<Vec<String>> = (0..clients)
        .map(|i| {
            (0..per_client)
                .map(|j| {
                    format!(
                        "SELECT COUNT(*) FROM clicks WHERE clicks > {}",
                        i + j * clients
                    )
                })
                .collect()
        })
        .collect();

    let run = |concurrent: bool| -> Vec<QueryEvent> {
        let fx = fixture_with(400, ClusterSpec::small(), "/hdfs/warehouse/clicks");
        let sessions: Vec<_> = (0..clients)
            .map(|i| {
                let user = fx.cluster.register_user(&format!("client{i}"));
                fx.cluster.grant_all(user);
                let cred = fx.cluster.login(user).expect("client login");
                fx.cluster.session(cred)
            })
            .collect();
        if concurrent {
            let barrier = Barrier::new(clients);
            std::thread::scope(|s| {
                for (session, list) in sessions.iter().zip(&workloads) {
                    let barrier = &barrier;
                    s.spawn(move || {
                        barrier.wait();
                        for sql in list {
                            session.query(sql).expect("concurrent query");
                        }
                    });
                }
            });
        } else {
            for (session, list) in sessions.iter().zip(&workloads) {
                for sql in list {
                    session.query(sql).expect("serial query");
                }
            }
        }
        fx.cluster.query_log().snapshot()
    };

    let serial = run(false);
    let concurrent = run(true);
    assert_eq!(serial.len(), clients * per_client);
    let canon = |events: Vec<QueryEvent>| {
        let mut keys: Vec<_> = events.iter().map(event_key).collect();
        keys.sort();
        keys
    };
    assert_eq!(
        canon(serial),
        canon(concurrent),
        "event multisets must not depend on client interleaving"
    );
}

/// Every `QueryResult` exports its span tree as a Chrome-trace JSON
/// array with the distributed operators present.
#[test]
fn chrome_trace_export_has_the_span_tree() {
    let fx = fixture(90);
    let result = fx
        .cluster
        .query(
            "SELECT keyword, COUNT(*) FROM clicks WHERE clicks > 20 GROUP BY keyword",
            &fx.cred,
        )
        .expect("traced query");
    let trace = result.chrome_trace();
    assert!(trace.starts_with('[') && trace.trim_end().ends_with(']'));
    for name in ["master", "DistributedScan", "leaf_task", "\"ph\": \"X\""] {
        assert!(trace.contains(name), "trace missing {name}");
    }
    // Balanced and comma-separated: one JSON object per span.
    let events = trace.matches("\"ph\": \"X\"").count();
    assert!(
        events >= 4,
        "expected a real span tree, got {events} events"
    );
}

/// The EXPLAIN ANALYZE profile now carries the wire summary, and the
/// virtual tables do not perturb it.
#[test]
fn profile_summarizes_bytes_on_wire() {
    let fx = fixture(100);
    let r = fx
        .cluster
        .query("SELECT url FROM clicks WHERE clicks > 30", &fx.cred)
        .expect("query");
    let line = r
        .profile
        .summary
        .iter()
        .find(|(k, _)| k == "bytes on wire")
        .map(|(_, v)| v.clone())
        .expect("bytes on wire summary line");
    assert!(
        line.contains("leaf→stem") && line.contains("stem→master"),
        "{line}"
    );
    // A filtered projection ships real bytes on both legs.
    let events = fx.cluster.query_log().snapshot();
    let e = events.last().expect("event logged");
    assert!(e.wire_leaf_stem_bytes > 0, "leaf→stem bytes recorded");
    assert!(e.wire_stem_master_bytes > 0, "stem→master bytes recorded");
}
