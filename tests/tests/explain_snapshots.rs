//! Golden snapshots of `FeisuCluster::explain`: the rendered physical
//! plan, including the aggregation-pushdown annotation on the
//! distributed scan. Exact-string comparisons so any change to lowering
//! or rendering is a conscious one.

use feisu_format::{DataType, Field, Schema, Value};
use feisu_tests::{fixture, Fixture};

fn explain(fx: &Fixture, sql: &str) -> String {
    fx.cluster.explain(sql, &fx.cred).unwrap()
}

#[test]
fn plain_scan_with_pushed_filter() {
    let fx = fixture(100);
    assert_eq!(
        explain(&fx, "SELECT url FROM clicks WHERE clicks > 5"),
        "Project: [url AS url]\n\
         \x20 DistributedScan: clicks cols=[\"url\"] filter=(clicks > 5)\n"
    );
}

#[test]
fn grouped_aggregate_is_pushed_to_leaves() {
    let fx = fixture(100);
    assert_eq!(
        explain(
            &fx,
            "SELECT keyword, COUNT(*) AS n, SUM(clicks) AS s FROM clicks \
             WHERE clicks > 10 GROUP BY keyword ORDER BY n DESC LIMIT 2",
        ),
        "Limit: 2\n\
         \x20 Project: [keyword AS keyword, COUNT(*) AS n, SUM(clicks) AS s]\n\
         \x20   Sort: [COUNT(*) DESC] fetch=Some(2)\n\
         \x20     FinalAggregate: group=[\"keyword\"] aggs=[\"COUNT(*)\", \"SUM(clicks)\"]\n\
         \x20       DistributedScan: clicks cols=[\"keyword\", \"clicks\"] filter=(clicks > 10) \
         [agg pushed: COUNT(*), SUM(clicks) group by keyword]\n"
    );
}

#[test]
fn complex_filter_stays_on_scan_line() {
    let fx = fixture(100);
    assert_eq!(
        explain(
            &fx,
            "SELECT url, clicks FROM clicks \
             WHERE (clicks > 5 OR score < 0.5) AND keyword = 'map' \
             ORDER BY clicks DESC LIMIT 3",
        ),
        "Limit: 3\n\
         \x20 Project: [url AS url, clicks AS clicks]\n\
         \x20   Sort: [clicks DESC] fetch=Some(3)\n\
         \x20     DistributedScan: clicks cols=[\"url\", \"clicks\"] \
         filter=(((clicks > 5) OR (score < 0.5)) AND (keyword = 'map'))\n"
    );
}

#[test]
fn aggregate_over_join_stays_on_master() {
    let fx = fixture(100);
    let dims = Schema::new(vec![
        Field::new("url", DataType::Utf8, false),
        Field::new("rank", DataType::Int64, false),
    ]);
    fx.cluster
        .create_table("dims", dims, "/hdfs/warehouse/dims", &fx.cred)
        .unwrap();
    fx.cluster
        .ingest_rows(
            "dims",
            vec![
                vec![Value::from("https://site0.example/p0"), Value::from(1i64)],
                vec![Value::from("https://site1.example/p1"), Value::from(2i64)],
            ],
            &fx.cred,
        )
        .unwrap();
    // The aggregate consumes join output, so it cannot be pushed below
    // the scans: it lowers to a master-side HashAggregate and neither
    // scan line carries an `[agg pushed: ...]` annotation.
    assert_eq!(
        explain(
            &fx,
            "SELECT rank, COUNT(*) AS n FROM clicks JOIN dims \
             ON clicks.url = dims.url GROUP BY rank",
        ),
        "Project: [dims.rank AS rank, COUNT(*) AS n]\n\
         \x20 HashAggregate: group=[\"dims.rank\"] aggs=[\"COUNT(*)\"]\n\
         \x20   HashJoin: Inner on [(clicks.url = dims.url)]\n\
         \x20     DistributedScan: clicks cols=[\"url\"]\n\
         \x20     DistributedScan: dims cols=[\"url\", \"rank\"]\n"
    );
}
