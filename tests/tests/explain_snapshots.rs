//! Golden snapshots of `FeisuCluster::explain`: the rendered physical
//! plan, including the aggregation-pushdown annotation on the
//! distributed scan. Exact-string comparisons so any change to lowering
//! or rendering is a conscious one.

use feisu_format::{DataType, Field, Schema, Value};
use feisu_tests::{fixture, Fixture};

fn explain(fx: &Fixture, sql: &str) -> String {
    fx.cluster.explain(sql, &fx.cred).unwrap()
}

#[test]
fn plain_scan_with_pushed_filter() {
    let fx = fixture(100);
    assert_eq!(
        explain(&fx, "SELECT url FROM clicks WHERE clicks > 5"),
        "Project: [url AS url]\n\
         \x20 DistributedScan: clicks cols=[\"url\"] filter=(clicks > 5)\n\
         Rule: predicate_pushdown x1\n\
         Rule: projection_prune x1\n"
    );
}

#[test]
fn grouped_aggregate_is_pushed_to_leaves() {
    let fx = fixture(100);
    assert_eq!(
        explain(
            &fx,
            "SELECT keyword, COUNT(*) AS n, SUM(clicks) AS s FROM clicks \
             WHERE clicks > 10 GROUP BY keyword ORDER BY n DESC LIMIT 2",
        ),
        "Limit: 2\n\
         \x20 Project: [keyword AS keyword, COUNT(*) AS n, SUM(clicks) AS s]\n\
         \x20   Sort: [COUNT(*) DESC] fetch=Some(2)\n\
         \x20     FinalAggregate: group=[\"keyword\"] aggs=[\"COUNT(*)\", \"SUM(clicks)\"]\n\
         \x20       DistributedScan: clicks cols=[\"keyword\", \"clicks\"] filter=(clicks > 10) \
         [agg pushed: COUNT(*), SUM(clicks) group by keyword]\n\
         Rule: predicate_pushdown x1\n\
         Rule: projection_prune x1\n\
         Rule: limit_into_sort x1\n"
    );
}

#[test]
fn complex_filter_stays_on_scan_line() {
    let fx = fixture(100);
    assert_eq!(
        explain(
            &fx,
            "SELECT url, clicks FROM clicks \
             WHERE (clicks > 5 OR score < 0.5) AND keyword = 'map' \
             ORDER BY clicks DESC LIMIT 3",
        ),
        "Limit: 3\n\
         \x20 Project: [url AS url, clicks AS clicks]\n\
         \x20   Sort: [clicks DESC] fetch=Some(3)\n\
         \x20     DistributedScan: clicks cols=[\"url\", \"clicks\"] \
         filter=(((clicks > 5) OR (score < 0.5)) AND (keyword = 'map'))\n\
         Rule: predicate_pushdown x1\n\
         Rule: projection_prune x1\n\
         Rule: limit_into_sort x1\n"
    );
}

#[test]
fn aggregate_over_join_stays_on_master() {
    let fx = fixture(100);
    let dims = Schema::new(vec![
        Field::new("url", DataType::Utf8, false),
        Field::new("rank", DataType::Int64, false),
    ]);
    fx.cluster
        .create_table("dims", dims, "/hdfs/warehouse/dims", &fx.cred)
        .unwrap();
    fx.cluster
        .ingest_rows(
            "dims",
            vec![
                vec![Value::from("https://site0.example/p0"), Value::from(1i64)],
                vec![Value::from("https://site1.example/p1"), Value::from(2i64)],
            ],
            &fx.cred,
        )
        .unwrap();
    // The aggregate consumes join output, so it cannot be pushed below
    // the scans: it lowers to a master-side HashAggregate and neither
    // scan line carries an `[agg pushed: ...]` annotation.
    assert_eq!(
        explain(
            &fx,
            "SELECT rank, COUNT(*) AS n FROM clicks JOIN dims \
             ON clicks.url = dims.url GROUP BY rank",
        ),
        "Project: [dims.rank AS rank, COUNT(*) AS n]\n\
         \x20 HashAggregate: group=[\"dims.rank\"] aggs=[\"COUNT(*)\"]\n\
         \x20   HashJoin: Inner on [(clicks.url = dims.url)]\n\
         \x20     DistributedScan: clicks cols=[\"url\"]\n\
         \x20     DistributedScan: dims cols=[\"url\", \"rank\"]\n\
         Rule: projection_prune x1\n"
    );
}

#[test]
fn star_join_is_reordered_fact_first() {
    let fx = fixture(100);
    // Two dimensions and a large fact, listed dims-first so the
    // syntactic left-deep order starts with a d1 x d2 cross product
    // (100 x 100 = 10k rows). Ingest-time stats let the cost model put
    // the fact on the build side first and join each dimension through
    // its extracted equi-key instead.
    for dim in ["d1", "d2"] {
        let schema = Schema::new(vec![Field::new("k", DataType::Int64, false)]);
        fx.cluster
            .create_table(dim, schema, &format!("/hdfs/warehouse/{dim}"), &fx.cred)
            .unwrap();
        fx.cluster
            .ingest_rows(
                dim,
                (0..100i64).map(|i| vec![Value::from(i)]).collect(),
                &fx.cred,
            )
            .unwrap();
    }
    let fact = Schema::new(vec![
        Field::new("k1", DataType::Int64, false),
        Field::new("k2", DataType::Int64, false),
        Field::new("v", DataType::Int64, false),
    ]);
    fx.cluster
        .create_table("f", fact, "/hdfs/warehouse/f", &fx.cred)
        .unwrap();
    fx.cluster
        .ingest_rows(
            "f",
            (0..2000i64)
                .map(|i| {
                    vec![
                        Value::from(i % 100),
                        Value::from((i / 7) % 100),
                        Value::from(i),
                    ]
                })
                .collect(),
            &fx.cred,
        )
        .unwrap();
    assert_eq!(
        explain(
            &fx,
            "SELECT SUM(f.v) AS s FROM d1, d2, f \
             WHERE f.k1 = d1.k AND f.k2 = d2.k",
        ),
        "Project: [SUM(f.v) AS s]\n\
         \x20 HashAggregate: group=[] aggs=[\"SUM(f.v)\"]\n\
         \x20   HashJoin: Inner on [(f.k2 = d2.k)]\n\
         \x20     HashJoin: Inner on [(f.k1 = d1.k)]\n\
         \x20       DistributedScan: d1 cols=[\"k\"]\n\
         \x20       DistributedScan: f cols=[\"k1\", \"k2\", \"v\"]\n\
         \x20     DistributedScan: d2 cols=[\"k\"]\n\
         Rule: predicate_pushdown x1\n\
         JoinOrder: dp [d1, d2, f] -> [d1, f, d2]\n"
    );
}
