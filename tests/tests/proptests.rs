//! Property-based tests over the core data structures and invariants.

use feisu_common::{BlockId, SimInstant};
use feisu_format::encoding::{bitpack, delta, dict, rle, varint, zigzag};
use feisu_format::json::{self, Json};
use feisu_format::{compress, Block, Column, DataType, Field, Schema, Value};
use feisu_index::bitvec::{BitVec, CompressedBits};
use feisu_index::btree::BTreeColumnIndex;
use feisu_index::smart::{scan_evaluate, SmartIndex};
use feisu_sql::ast::BinaryOp;
use feisu_sql::cnf::{to_cnf, SimplePredicate};
use feisu_sql::eval::eval_truth;
use feisu_sql::parser::parse_expr;
use proptest::prelude::*;

// ---------------------------------------------------------- encodings

proptest! {
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::encode(v, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(varint::decode(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(zigzag::decode(zigzag::encode(v)), v);
    }

    #[test]
    fn delta_roundtrip(values in proptest::collection::vec(any::<i64>(), 0..300)) {
        let mut buf = Vec::new();
        delta::encode(&values, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(delta::decode(&buf, &mut pos).unwrap(), values);
    }

    #[test]
    fn rle_roundtrip(values in proptest::collection::vec(-5i64..5, 0..300)) {
        let mut buf = Vec::new();
        rle::encode(&values, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(rle::decode(&buf, &mut pos).unwrap(), values);
    }

    #[test]
    fn bitpack_roundtrip(width in 1u32..=64, values in proptest::collection::vec(any::<u64>(), 0..200)) {
        let masked: Vec<u64> = values
            .iter()
            .map(|v| if width == 64 { *v } else { v & ((1u64 << width) - 1) })
            .collect();
        let mut buf = Vec::new();
        bitpack::encode(&masked, width, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(bitpack::decode(&buf, &mut pos).unwrap(), masked);
    }

    #[test]
    fn dict_roundtrip(values in proptest::collection::vec("[a-z]{0,8}", 0..200)) {
        let refs: Vec<&str> = values.iter().map(|s| s.as_str()).collect();
        let mut buf = Vec::new();
        dict::encode(&refs, &mut buf);
        let mut pos = 0;
        prop_assert_eq!(dict::decode(&buf, &mut pos).unwrap(), values);
    }

    #[test]
    fn lz_compression_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..5000)) {
        let c = compress::compress(compress::Codec::Lz, &data);
        prop_assert_eq!(compress::decompress(&c).unwrap(), data.clone());
        let a = compress::compress_adaptive(&data);
        prop_assert_eq!(compress::decompress(&a).unwrap(), data);
    }
}

// --------------------------------------------------------------- block

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn block_serialization_roundtrip(
        rows in 0usize..200,
        ints in any::<u64>(),
    ) {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64, true),
            Field::new("b", DataType::Utf8, false),
            Field::new("c", DataType::Float64, false),
            Field::new("d", DataType::Bool, false),
        ]);
        // Deterministic pseudo-random per case.
        let mut rng = feisu_common::rng::DetRng::new(ints);
        let a = Column::from_values(
            DataType::Int64,
            &(0..rows)
                .map(|_| if rng.chance(0.1) { Value::Null } else { Value::Int64(rng.range_i64(-50, 50)) })
                .collect::<Vec<_>>(),
        ).unwrap();
        let b = Column::from_utf8((0..rows).map(|_| format!("s{}", rng.next_below(10))).collect());
        let c = Column::from_f64((0..rows).map(|_| rng.next_f64()).collect());
        let d = Column::from_bool((0..rows).map(|_| rng.chance(0.5)).collect());
        let block = Block::new(BlockId(1), schema, vec![a, b, c, d]).unwrap();
        let back = Block::deserialize(&block.serialize()).unwrap();
        prop_assert_eq!(back, block);
    }

    /// Late materialization correctness: decoding any subset of columns
    /// through the offset directory is exactly full-decode-then-project.
    #[test]
    fn block_subset_decode_equals_full_then_project(
        rows in 0usize..200,
        ints in any::<u64>(),
        mask in 0u8..16,
    ) {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64, true),
            Field::new("b", DataType::Utf8, false),
            Field::new("c", DataType::Float64, false),
            Field::new("d", DataType::Bool, false),
        ]);
        let mut rng = feisu_common::rng::DetRng::new(ints);
        let a = Column::from_values(
            DataType::Int64,
            &(0..rows)
                .map(|_| if rng.chance(0.1) { Value::Null } else { Value::Int64(rng.range_i64(-50, 50)) })
                .collect::<Vec<_>>(),
        ).unwrap();
        let b = Column::from_utf8((0..rows).map(|_| format!("s{}", rng.next_below(10))).collect());
        let c = Column::from_f64((0..rows).map(|_| rng.next_f64()).collect());
        let d = Column::from_bool((0..rows).map(|_| rng.chance(0.5)).collect());
        let block = Block::new(BlockId(1), schema, vec![a, b, c, d]).unwrap();
        let bytes = block.serialize();

        let names: Vec<&str> = block
            .schema()
            .fields()
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, f)| f.name.as_str())
            .collect();
        let subset = Block::deserialize_columns(&bytes, &names).unwrap();
        prop_assert_eq!(subset.rows(), block.rows());
        prop_assert_eq!(subset.id(), block.id());
        prop_assert_eq!(subset.schema().len(), names.len());

        let full = Block::deserialize(&bytes).unwrap();
        for name in names {
            prop_assert_eq!(
                subset.column_by_name(name).unwrap(),
                full.column_by_name(name).unwrap(),
                "column {} differs from full decode", name
            );
        }
    }
}

// -------------------------------------------------------------- bitvec

proptest! {
    #[test]
    fn bitvec_algebra_laws(bits_a in proptest::collection::vec(any::<bool>(), 0..300)) {
        let n = bits_a.len();
        let a = BitVec::from_bools(bits_a.iter().copied());
        let b = BitVec::from_bools(bits_a.iter().map(|x| !x));
        // Complement laws.
        prop_assert_eq!(a.and(&b).unwrap().count_ones(), 0);
        prop_assert_eq!(a.or(&b).unwrap().count_ones(), n);
        // De Morgan.
        prop_assert_eq!(a.and(&b).unwrap().not(), a.not().or(&b.not()).unwrap());
        // Double negation.
        prop_assert_eq!(a.not().not(), a);
    }

    #[test]
    fn compressed_bits_lossless(bits in proptest::collection::vec(any::<bool>(), 0..500)) {
        let v = BitVec::from_bools(bits.into_iter());
        let c = CompressedBits::from_bitvec(&v);
        prop_assert_eq!(c.to_bitvec(), v.clone());
        prop_assert_eq!(c.count_ones(), v.count_ones());
        prop_assert_eq!(c.len(), v.len());
    }
}

// ------------------------------------------------------ CNF equivalence

/// Random boolean expressions over integer columns a, b.
fn arb_bool_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![(
        prop_oneof![Just("a"), Just("b")],
        prop_oneof![
            Just(">"),
            Just(">="),
            Just("<"),
            Just("<="),
            Just("="),
            Just("!=")
        ],
        -3i64..4
    )
        .prop_map(|(c, op, v)| format!("{c} {op} {v}")),];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} AND {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} OR {r})")),
            inner.prop_map(|e| format!("(NOT {e})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn cnf_preserves_three_valued_semantics(src in arb_bool_expr()) {
        let expr = parse_expr(&src).unwrap();
        let cnf_expr = to_cnf(&expr).to_expr().unwrap();
        let candidates = [Value::Null, Value::Int64(-2), Value::Int64(0), Value::Int64(3)];
        for a in &candidates {
            for b in &candidates {
                let row = |name: &str| -> Option<Value> {
                    match name {
                        "a" => Some(a.clone()),
                        "b" => Some(b.clone()),
                        _ => None,
                    }
                };
                let orig = eval_truth(&expr, &row).unwrap();
                let cnf = eval_truth(&cnf_expr, &row).unwrap();
                prop_assert_eq!(orig, cnf, "{} with a={}, b={}", src, a, b);
            }
        }
    }
}

// ------------------------------------------- SmartIndex vs scan oracle

fn arb_predicate() -> impl Strategy<Value = SimplePredicate> {
    (
        prop_oneof![
            Just(BinaryOp::Eq),
            Just(BinaryOp::NotEq),
            Just(BinaryOp::Lt),
            Just(BinaryOp::LtEq),
            Just(BinaryOp::Gt),
            Just(BinaryOp::GtEq),
        ],
        -30i64..30,
    )
        .prop_map(|(op, v)| SimplePredicate {
            column: "x".into(),
            op,
            value: Value::Int64(v),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn smartindex_equals_scan_oracle(
        seed in any::<u64>(),
        rows in 1usize..300,
        pred in arb_predicate(),
    ) {
        let mut rng = feisu_common::rng::DetRng::new(seed);
        let values: Vec<Value> = (0..rows)
            .map(|_| if rng.chance(0.1) { Value::Null } else { Value::Int64(rng.range_i64(-25, 25)) })
            .collect();
        let col = Column::from_values(DataType::Int64, &values).unwrap();
        let schema = Schema::new(vec![Field::new("x", DataType::Int64, true)]);
        let block = Block::new(BlockId(0), schema, vec![col.clone()]).unwrap();

        let idx = SmartIndex::build(&block, &pred, SimInstant(0), false).unwrap();
        let oracle = scan_evaluate(&col, &pred).unwrap();
        prop_assert_eq!(idx.bits(), oracle);

        // Negation property: NOT p under 3VL = rows where p is false and
        // the value is non-null.
        if let Some(nop) = pred.op.negate() {
            let npred = SimplePredicate { column: "x".into(), op: nop, value: pred.value.clone() };
            let neg_oracle = scan_evaluate(&col, &npred).unwrap();
            prop_assert_eq!(idx.negated_bits(), neg_oracle);
        }

        // B-tree agrees with both.
        let bt = BTreeColumnIndex::build(&col);
        prop_assert_eq!(bt.lookup(pred.op, &pred.value).unwrap(), idx.bits());
    }
}

// ------------------------------------------------------------- json

fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        (-1000i32..1000).prop_map(|v| Json::Number(v as f64)),
        "[a-zA-Z0-9 ]{0,10}".prop_map(Json::String),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Array),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..4).prop_map(|pairs| {
                // Deduplicate keys (objects keep insertion order).
                let mut seen = std::collections::HashSet::new();
                Json::Object(
                    pairs
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
}

fn render_json(v: &Json) -> String {
    match v {
        Json::Null => "null".into(),
        Json::Bool(b) => b.to_string(),
        Json::Number(n) => {
            if n.fract() == 0.0 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Json::String(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        Json::Array(items) => format!(
            "[{}]",
            items.iter().map(render_json).collect::<Vec<_>>().join(",")
        ),
        Json::Object(pairs) => format!(
            "{{{}}}",
            pairs
                .iter()
                .map(|(k, v)| format!("\"{k}\":{}", render_json(v)))
                .collect::<Vec<_>>()
                .join(",")
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn json_parse_roundtrip(doc in arb_json()) {
        let text = render_json(&doc);
        let parsed = json::parse(&text).unwrap();
        prop_assert_eq!(parsed, doc);
    }
}

// ------------------------------------------------- sort / aggregation

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn topn_sort_matches_full_sort(
        values in proptest::collection::vec(any::<i64>(), 0..300),
        k in 0u64..50,
    ) {
        use feisu_exec::batch::RecordBatch;
        use feisu_exec::sort::sort;
        let schema = Schema::new(vec![Field::new("x", DataType::Int64, false)]);
        let b = RecordBatch::new(schema, vec![Column::from_i64(values)]).unwrap();
        let keys = vec![(feisu_sql::ast::Expr::col("x"), false)];
        let full = sort(&b, &keys, None).unwrap();
        let top = sort(&b, &keys, Some(k)).unwrap();
        prop_assert_eq!(top.rows(), (k as usize).min(b.rows()));
        for i in 0..top.rows() {
            prop_assert_eq!(top.row(i), full.row(i));
        }
    }

    #[test]
    fn aggregate_merge_invariant(
        values in proptest::collection::vec((0i64..5, -100i64..100), 1..200),
        split in 0usize..200,
    ) {
        use feisu_exec::aggregate::AggTable;
        use feisu_exec::batch::RecordBatch;
        use feisu_sql::ast::{AggFunc, Expr};
        use feisu_sql::plan::AggExpr;
        let split = split.min(values.len());
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int64, false),
            Field::new("v", DataType::Int64, false),
        ]);
        let to_batch = |rows: &[(i64, i64)]| {
            RecordBatch::new(
                schema.clone(),
                vec![
                    Column::from_i64(rows.iter().map(|r| r.0).collect()),
                    Column::from_i64(rows.iter().map(|r| r.1).collect()),
                ],
            )
            .unwrap()
        };
        let group_by = vec![(Expr::col("g"), "g".to_string(), DataType::Int64)];
        let aggs = vec![
            AggExpr { func: AggFunc::Count, arg: None, name: "n".into(), output_type: DataType::Int64 },
            AggExpr { func: AggFunc::Sum, arg: Some(Expr::col("v")), name: "s".into(), output_type: DataType::Int64 },
            AggExpr { func: AggFunc::Min, arg: Some(Expr::col("v")), name: "lo".into(), output_type: DataType::Int64 },
            AggExpr { func: AggFunc::Max, arg: Some(Expr::col("v")), name: "hi".into(), output_type: DataType::Int64 },
        ];
        let out_schema = Schema::new(vec![
            Field::new("g", DataType::Int64, true),
            Field::new("n", DataType::Int64, true),
            Field::new("s", DataType::Int64, true),
            Field::new("lo", DataType::Int64, true),
            Field::new("hi", DataType::Int64, true),
        ]);

        let mut whole = AggTable::new(group_by.clone(), aggs.clone());
        whole.update(&to_batch(&values)).unwrap();

        let mut left = AggTable::new(group_by.clone(), aggs.clone());
        left.update(&to_batch(&values[..split])).unwrap();
        let mut right = AggTable::new(group_by.clone(), aggs.clone());
        right.update(&to_batch(&values[split..])).unwrap();
        // Merge via the transport representation, as the cluster does.
        let mut merged = AggTable::from_transport(
            group_by.clone(), aggs.clone(), &left.to_transport().unwrap()).unwrap();
        let right2 = AggTable::from_transport(
            group_by, aggs, &right.to_transport().unwrap()).unwrap();
        merged.merge(&right2).unwrap();

        prop_assert_eq!(
            merged.finish(&out_schema).unwrap(),
            whole.finish(&out_schema).unwrap()
        );
    }
}

// ------------------------------------------------ parser round-trip

/// Random expressions rendered by `Display` must re-parse to the same
/// tree (Display emits fully parenthesized forms).
fn arb_display_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        "[a-z][a-z0-9_]{0,6}".prop_map(|c| c),
        (-100i64..100).prop_map(|v| v.to_string()),
        Just("'text'".to_string()),
    ];
    leaf.prop_recursive(3, 20, 2, |inner| {
        prop_oneof![
            (inner.clone(), Just("+"), inner.clone())
                .prop_map(|(l, op, r)| format!("({l} {op} {r})")),
            (inner.clone(), Just(">"), inner.clone())
                .prop_map(|(l, op, r)| format!("({l} {op} {r})")),
            (inner.clone(), Just("AND"), inner.clone())
                .prop_map(|(l, op, r)| format!("({l} {op} {r})")),
            inner.prop_map(|e| format!("(NOT {e})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn expr_display_reparses_identically(src in arb_display_expr()) {
        // Some generated identifiers may collide with keywords; skip those.
        let Ok(parsed) = parse_expr(&src) else { return Ok(()); };
        let rendered = parsed.to_string();
        let reparsed = parse_expr(&rendered).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    #[test]
    fn utf8_columns_roundtrip_through_blocks(
        strings in proptest::collection::vec("\\PC{0,12}", 1..100)
    ) {
        let schema = Schema::new(vec![Field::new("s", DataType::Utf8, false)]);
        let col = Column::from_utf8(strings);
        let block = Block::new(BlockId(9), schema, vec![col]).unwrap();
        let back = Block::deserialize(&block.serialize()).unwrap();
        prop_assert_eq!(back, block);
    }
}

// ------------------------------------------- corruption robustness

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    /// Decoders must *reject* corrupt bytes with an error — never panic,
    /// never loop. (Byte flips that keep the payload valid may legally
    /// decode to different data; decode success just must not crash.)
    #[test]
    fn block_deserialize_never_panics_on_corruption(
        flip_at in 0usize..4096,
        flip_bits in 1u8..=255,
        truncate_to in 0usize..4096,
    ) {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64, true),
            Field::new("b", DataType::Utf8, false),
        ]);
        let a = Column::from_values(
            DataType::Int64,
            &(0..100)
                .map(|i| if i % 9 == 0 { Value::Null } else { Value::Int64(i) })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let b = Column::from_utf8((0..100).map(|i| format!("s{i}")).collect());
        let block = Block::new(BlockId(1), schema, vec![a, b]).unwrap();
        let mut bytes = block.serialize();
        // Bit flip somewhere in range.
        let i = flip_at % bytes.len();
        bytes[i] ^= flip_bits;
        let _ = Block::deserialize(&bytes); // must not panic
        // Truncation.
        bytes.truncate(truncate_to % (bytes.len() + 1));
        let _ = Block::deserialize(&bytes); // must not panic
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
        let _ = feisu_format::compress::decompress(&data);
    }

    #[test]
    fn json_parser_never_panics_on_garbage(input in "\\PC{0,200}") {
        let _ = json::parse(&input);
    }
}

// --------------------------------------------- cost model invariants

proptest! {
    #[test]
    fn cost_model_is_monotone_in_bytes(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        use feisu_cluster::{CostModel, StorageMedium};
        let m = CostModel::default();
        let (lo, hi) = (a.min(b), a.max(b));
        for medium in [StorageMedium::Hdd, StorageMedium::Ssd, StorageMedium::Memory] {
            prop_assert!(
                m.read(medium, feisu_common::ByteSize(lo))
                    <= m.read(medium, feisu_common::ByteSize(hi))
            );
        }
        prop_assert!(
            m.network(2, feisu_common::ByteSize(lo)) <= m.network(2, feisu_common::ByteSize(hi))
        );
        prop_assert!(
            m.network(1, feisu_common::ByteSize(lo)) <= m.network(3, feisu_common::ByteSize(lo))
        );
    }
}
