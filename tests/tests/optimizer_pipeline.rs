//! End-to-end coverage of the staged optimizer pipeline and the
//! cost-based join reordering in lowering: the kill switches must never
//! change answers, WHERE-false queries must short-circuit before any
//! leaf task is scheduled, and the optimizer trace must surface in the
//! profile and the metrics registry.

use feisu_core::engine::ClusterSpec;
use feisu_format::{DataType, Field, Schema, Value};
use feisu_tests::{assert_same_rows, fixture, fixture_with, rows_to_batch, Fixture};
use proptest::prelude::*;

// ------------------------------------------------------------ fixtures

/// Four small join tables sharing an Int64 key domain so every join has
/// matches: a(k,v) 40 rows, b(k,w) 30 rows, c(k,x) 20 rows, e(k,y) 25
/// rows.
fn join_tables() -> Vec<(&'static str, &'static str, Vec<(i64, i64)>)> {
    vec![
        ("a", "v", (0..40).map(|i| (i % 8, i)).collect()),
        ("b", "w", (0..30).map(|i| (i % 10, i * 3)).collect()),
        ("c", "x", (0..20).map(|i| (i % 5, i * 7)).collect()),
        ("e", "y", (0..25).map(|i| (i % 6, i + 100)).collect()),
    ]
}

/// Creates the join tables on the cluster and mirrors them into the
/// oracle provider.
fn add_join_tables(fx: &mut Fixture) {
    for (name, val_col, rows) in join_tables() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64, false),
            Field::new(val_col, DataType::Int64, false),
        ]);
        fx.cluster
            .create_table(
                name,
                schema.clone(),
                &format!("/hdfs/warehouse/{name}"),
                &fx.cred,
            )
            .unwrap();
        let values: Vec<Vec<Value>> = rows
            .iter()
            .map(|(k, v)| vec![Value::from(*k), Value::from(*v)])
            .collect();
        fx.cluster
            .ingest_rows(name, values.clone(), &fx.cred)
            .unwrap();
        fx.oracle.insert(name, rows_to_batch(&schema, &values));
    }
}

fn spec_optimizer_off() -> ClusterSpec {
    let mut spec = ClusterSpec::small();
    spec.config.optimizer.enabled = false;
    spec
}

/// A 2–4 table star query over the join tables, always with explicit
/// `JOIN ... ON` syntax so it stays executable with the optimizer off
/// (no rule pipeline to turn comma cross-products into equi-joins).
fn star_sql(n_tables: usize, threshold: i64, agg: bool) -> String {
    let mut from = String::from("a JOIN b ON a.k = b.k");
    if n_tables >= 3 {
        from.push_str(" JOIN c ON a.k = c.k");
    }
    if n_tables >= 4 {
        from.push_str(" JOIN e ON a.k = e.k");
    }
    let select = if agg {
        "a.k AS k, COUNT(*) AS n, SUM(b.w) AS s"
    } else {
        "a.v AS v, b.w AS w"
    };
    let tail = if agg { " GROUP BY a.k" } else { "" };
    format!("SELECT {select} FROM {from} WHERE a.v > {threshold}{tail}")
}

// ------------------------------------------------- empty short-circuit

#[test]
fn where_false_runs_zero_leaf_tasks() {
    let fx = fixture(300);
    let r = fx
        .cluster
        .query("SELECT url, clicks FROM clicks WHERE 1 = 0", &fx.cred)
        .unwrap();
    // Empty answer, schema preserved.
    assert_eq!(r.batch.rows(), 0);
    assert_eq!(r.batch.schema().len(), 2);
    // The plan was pruned to Empty before lowering: no distributed scan
    // ran, so not a single leaf task span was recorded.
    assert!(
        r.profile.tree.find_all("leaf_task").is_empty(),
        "WHERE-false must not schedule leaf tasks"
    );
    assert_eq!(r.stats.tasks, 0);
    // The master span carries the rule trace and the registry saw the
    // prune.
    assert_eq!(r.profile.tree.roots[0].name, "master");
    assert!(
        r.profile.tree.roots[0].attr("rule.prune_empty").is_some(),
        "prune_empty must appear in the profile's rule trace"
    );
    let m = fx.cluster.metrics();
    assert_eq!(m.counter("feisu.optimizer.empty_pruned").get(), 1);
    assert!(m.counter("feisu.optimizer.rules_fired").get() > 0);
}

#[test]
fn where_false_still_runs_with_optimizer_off() {
    // The kill switch disables the short-circuit but not the answer:
    // the filter is evaluated row by row and drops everything.
    let fx = fixture_with(300, spec_optimizer_off(), "/hdfs/warehouse/clicks");
    let r = fx
        .cluster
        .query("SELECT url, clicks FROM clicks WHERE 1 = 0", &fx.cred)
        .unwrap();
    assert_eq!(r.batch.rows(), 0);
    assert!(
        !r.profile.tree.find_all("leaf_task").is_empty(),
        "without the optimizer the scan actually runs"
    );
    assert_eq!(
        fx.cluster
            .metrics()
            .counter("feisu.optimizer.rules_fired")
            .get(),
        0
    );
}

// ----------------------------------------------------- kill switches

#[test]
fn optimizer_kill_switch_preserves_results() {
    let mut on = fixture(200);
    add_join_tables(&mut on);
    let mut off = fixture_with(200, spec_optimizer_off(), "/hdfs/warehouse/clicks");
    add_join_tables(&mut off);
    for sql in [
        "SELECT url FROM clicks WHERE clicks > 50",
        "SELECT keyword, COUNT(*) AS n FROM clicks WHERE clicks > 10 GROUP BY keyword",
        "SELECT url, clicks FROM clicks WHERE clicks > 5 AND 1 = 1 ORDER BY clicks DESC LIMIT 7",
        "SELECT a.v AS v, b.w AS w FROM a JOIN b ON a.k = b.k WHERE a.v > 10",
        "SELECT a.k AS k, COUNT(*) AS n, SUM(c.x) AS s FROM a JOIN b ON a.k = b.k \
         JOIN c ON a.k = c.k GROUP BY a.k",
    ] {
        let got_on = on.cluster.query(sql, &on.cred).unwrap();
        let got_off = off.cluster.query(sql, &off.cred).unwrap();
        assert_same_rows(&got_on.batch, &got_off.batch, sql);
        if !sql.contains("JOIN") {
            // Single-table plans keep scan order whether the filter sits
            // above or inside the scan: bit-identical, not just same bag.
            assert_eq!(got_on.batch, got_off.batch, "{sql}");
        }
        // Both must also agree with the single-process oracle.
        let want = feisu_exec::executor::run_sql(sql, &mut on.oracle).unwrap();
        assert_same_rows(&got_on.batch, &want, sql);
    }
}

#[test]
fn join_reorder_kill_switch_preserves_results() {
    let mut spec_no_reorder = ClusterSpec::small();
    spec_no_reorder.config.optimizer.join_reorder = false;
    let mut on = fixture(50);
    add_join_tables(&mut on);
    let mut off = fixture_with(50, spec_no_reorder, "/hdfs/warehouse/clicks");
    add_join_tables(&mut off);
    // Comma syntax: the rule pipeline (still on in both clusters) turns
    // the WHERE equalities into join keys; only the join-order search is
    // switched off in the second cluster.
    let sql = "SELECT SUM(b.w) AS s FROM b, c, a WHERE a.k = b.k AND a.k = c.k";
    let got_on = on.cluster.query(sql, &on.cred).unwrap();
    let got_off = off.cluster.query(sql, &off.cred).unwrap();
    assert_same_rows(&got_on.batch, &got_off.batch, sql);
    let want = feisu_exec::executor::run_sql(sql, &mut on.oracle).unwrap();
    assert_same_rows(&got_on.batch, &want, sql);
    // The reordering cluster traced its join-order decision on the
    // master span.
    assert!(
        got_on.profile.tree.roots[0].attr("join_order.0").is_some(),
        "3-way join must record a join-order trace"
    );
    assert_eq!(
        off.cluster
            .metrics()
            .counter("feisu.optimizer.joins_reordered")
            .get(),
        0
    );
}

// ------------------------------------------------- randomized queries

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random 2–4 table star joins (optionally aggregated) answer
    /// identically on the optimized cluster, the kill-switched cluster,
    /// and the single-process oracle.
    #[test]
    fn random_multi_join_matches_oracle_and_kill_switch(
        n_tables in 2usize..5,
        threshold in -1i64..40,
        agg_die in 0usize..2,
    ) {
        let sql = star_sql(n_tables, threshold, agg_die == 1);
        let mut on = fixture(10);
        add_join_tables(&mut on);
        let mut off = fixture_with(10, spec_optimizer_off(), "/hdfs/warehouse/clicks");
        add_join_tables(&mut off);
        let got_on = on.cluster.query(&sql, &on.cred).unwrap();
        let got_off = off.cluster.query(&sql, &off.cred).unwrap();
        let want = feisu_exec::executor::run_sql(&sql, &mut on.oracle).unwrap();
        assert_same_rows(&got_on.batch, &want, &sql);
        assert_same_rows(&got_on.batch, &got_off.batch, &sql);
    }
}
