//! Topology-aware multi-level merge tree + repartition exchange (PR 9).
//!
//! Covers the §12 determinism contract for the new merge shapes:
//! multi-level partitioned merges must equal single-node aggregation for
//! random COUNT/SUM/AVG/MIN/MAX workloads at tree depths 2–4 and
//! partition counts 1–8, integer answers must be bit-identical across
//! tree shapes and partition counts, serial and concurrent runs must be
//! bit-identical with the exchange enabled, a 2-DC grid must bill more
//! network than a single rack for the same query, and the
//! straggler-limit clamp must pin leaf time exactly at the limit.

use feisu_common::config::MergeTreeShape;
use feisu_common::SimDuration;
use feisu_core::engine::{ClusterSpec, FeisuCluster, QueryOptions};
use feisu_exec::MemProvider;
use feisu_format::Value;
use feisu_storage::auth::Credential;
use feisu_tests::{assert_same_rows, clicks_schema, rows_to_batch};
use proptest::prelude::*;

/// A cluster with custom grid/merge-tree settings plus its oracle twin.
struct Fx {
    cluster: FeisuCluster,
    oracle: MemProvider,
    cred: Credential,
}

fn build(
    (dcs, racks, npr): (u32, u32, u32),
    shape: MergeTreeShape,
    parts: usize,
    rows: &[Vec<Value>],
) -> Fx {
    let mut spec = ClusterSpec::small();
    spec.datacenters = dcs;
    spec.racks_per_dc = racks;
    spec.nodes_per_rack = npr;
    spec.rows_per_block = 16; // many blocks → many leaf tasks
    spec.config.merge_tree.shape = shape;
    spec.config.merge_tree.exchange_partitions = parts;
    // Mirror `fixture_with`: CI pins the pool width via env to prove
    // thread-count independence; explicit specs win.
    if spec.config.execution_threads == 0 {
        if let Ok(v) = std::env::var("FEISU_EXECUTION_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                spec.config.execution_threads = n;
            }
        }
    }
    let cluster = FeisuCluster::new(spec).expect("cluster");
    let user = cluster.register_user("tester");
    cluster.grant_all(user);
    let cred = cluster.login(user).expect("login");
    cluster
        .create_table("clicks", clicks_schema(), "/hdfs/warehouse/clicks", &cred)
        .expect("create table");
    cluster
        .ingest_rows("clicks", rows.to_vec(), &cred)
        .expect("ingest");
    let mut oracle = MemProvider::new();
    oracle.insert("clicks", rows_to_batch(&clicks_schema(), rows));
    Fx {
        cluster,
        oracle,
        cred,
    }
}

fn arb_clicks_row() -> impl Strategy<Value = Vec<Value>> {
    ((0..12i64, -50..50i64), 0..10i64, 0..8i64, 0..6i64).prop_map(|((g, v), null_die, s, d)| {
        vec![
            Value::from(format!("https://u{g}.example/p{}", g % 3)),
            Value::from(["map", "music", "news", "stock"][(g % 4) as usize]),
            // Roughly one null click value in ten.
            if null_die == 0 {
                Value::Null
            } else {
                Value::from(v)
            },
            Value::from(s as f64 / 4.0),
            Value::from(20160101 + d),
        ]
    })
}

/// Grid shapes giving merge trees of depth 2 (one rack: rack stem →
/// master), 3 (two racks in one DC) and 4 (two DCs), counting the leaf
/// level.
const GRIDS: [(u32, u32, u32); 3] = [(1, 1, 4), (1, 2, 2), (2, 2, 1)];

const QUERIES: [&str; 4] = [
    "SELECT keyword, COUNT(*), SUM(clicks), AVG(score), MIN(clicks), MAX(clicks) \
     FROM clicks GROUP BY keyword",
    "SELECT url, COUNT(*), SUM(clicks) FROM clicks GROUP BY url",
    "SELECT COUNT(*), SUM(clicks), AVG(clicks), MIN(score), MAX(score) FROM clicks",
    "SELECT day, MIN(clicks), MAX(clicks), COUNT(*) FROM clicks GROUP BY day",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The multi-level partitioned merge tree computes exactly what a
    /// single-node executor computes, for every tree depth and
    /// partition count.
    #[test]
    fn partitioned_merge_tree_matches_single_node(
        rows in proptest::collection::vec(arb_clicks_row(), 1..200),
        grid_idx in 0..GRIDS.len(),
        parts in 1..=8usize,
        query_idx in 0..QUERIES.len(),
    ) {
        let sql = QUERIES[query_idx];
        let mut fx = build(GRIDS[grid_idx], MergeTreeShape::Topology, parts, &rows);
        let got = fx.cluster.query(sql, &fx.cred).expect("cluster query");
        let want = feisu_exec::executor::run_sql(sql, &mut fx.oracle).expect("oracle");
        assert_same_rows(&got.batch, &want, sql);
    }

    /// Integer aggregates are bit-identical across tree shapes and
    /// partition counts (float partials may re-associate across shapes;
    /// integer state merging is exact and order-free).
    #[test]
    fn integer_answers_identical_across_shapes_and_partitions(
        rows in proptest::collection::vec(arb_clicks_row(), 1..150),
        grid_idx in 0..GRIDS.len(),
    ) {
        let sql = "SELECT keyword, COUNT(*), SUM(clicks), MIN(clicks), MAX(clicks) \
                   FROM clicks GROUP BY keyword";
        let grid = GRIDS[grid_idx];
        let baseline = build(grid, MergeTreeShape::TwoLevel, 1, &rows);
        let want = baseline.cluster.query(sql, &baseline.cred).expect("two-level").batch;
        for parts in [1usize, 3, 8] {
            let fx = build(grid, MergeTreeShape::Topology, parts, &rows);
            let got = fx.cluster.query(sql, &fx.cred).expect("topology").batch;
            prop_assert_eq!(&got, &want, "parts={}", parts);
        }
    }
}

/// Serial and 8-thread runs are bit-identical — results, stats, wire
/// bytes and response times — with the exchange enabled.
#[test]
fn serial_vs_concurrent_bit_identity_with_exchange() {
    let rows: Vec<Vec<Value>> = feisu_tests::clicks_rows(500);
    let sql = "SELECT url, COUNT(*), SUM(clicks), AVG(score) FROM clicks GROUP BY url";
    let mut results = Vec::new();
    for threads in [1usize, 8] {
        let mut spec = ClusterSpec::small();
        spec.rows_per_block = 16;
        spec.config.execution_threads = threads;
        spec.config.merge_tree.shape = MergeTreeShape::Topology;
        spec.config.merge_tree.exchange_partitions = 4;
        let fx = {
            let cluster = FeisuCluster::new(spec).expect("cluster");
            let user = cluster.register_user("tester");
            cluster.grant_all(user);
            let cred = cluster.login(user).expect("login");
            cluster
                .create_table("clicks", clicks_schema(), "/hdfs/warehouse/clicks", &cred)
                .expect("create table");
            cluster
                .ingest_rows("clicks", rows.clone(), &cred)
                .expect("ingest");
            (cluster, cred)
        };
        results.push(fx.0.query(sql, &fx.1).expect("query"));
    }
    let (serial, pooled) = (&results[0], &results[1]);
    assert_eq!(
        serial, pooled,
        "serial and 8-thread runs must be bit-identical"
    );
    assert!(
        serial.stats.wire_stem_master.0 > 0,
        "wire accounting recorded"
    );
}

/// Satellite: hop billing comes from the real topology. The same query
/// over the same data on the same number of nodes must cost strictly
/// more when the nodes straddle two data centers than when they share a
/// rack — cross-DC uplinks are 6 hops, intra-rack 2.
#[test]
fn two_dc_grid_bills_more_network_than_single_rack() {
    let rows = feisu_tests::clicks_rows(400);
    let sql = "SELECT url, COUNT(*), SUM(clicks) FROM clicks GROUP BY url";
    let mut responses = Vec::new();
    for (dcs, racks, npr) in [(1u32, 1u32, 4u32), (2, 1, 2)] {
        let mut spec = ClusterSpec::small();
        spec.datacenters = dcs;
        spec.racks_per_dc = racks;
        spec.nodes_per_rack = npr;
        spec.rows_per_block = 16;
        // Every node holds every block, so scheduling (and thus leaf io)
        // is identical across the two grids; only merge-tree network and
        // shape differ.
        spec.config.replication_factor = 4;
        // Make network dominate any cpu-billing difference between the
        // two tree shapes.
        spec.cost.net_hop_latency = SimDuration::nanos(500_000);
        spec.cost.net_ns_per_byte = 100.0;
        let cluster = FeisuCluster::new(spec).expect("cluster");
        let user = cluster.register_user("tester");
        cluster.grant_all(user);
        let cred = cluster.login(user).expect("login");
        cluster
            .create_table("clicks", clicks_schema(), "/hdfs/warehouse/clicks", &cred)
            .expect("create table");
        cluster
            .ingest_rows("clicks", rows.clone(), &cred)
            .expect("ingest");
        let r = cluster.query(sql, &cred).expect("query");
        responses.push(r);
    }
    assert_same_rows(
        &responses[0].batch,
        &responses[1].batch,
        "same answers on both grids",
    );
    assert!(
        responses[1].response_time > responses[0].response_time,
        "2-DC grid must bill more network than 1 rack: {} vs {}",
        responses[1].response_time,
        responses[0].response_time
    );
}

/// Satellite: the straggler-limit clamp. When partial results are
/// returned, leaf time is pinned *exactly* at the limit — raising the
/// limit by a delta small enough to keep the same kept-task set raises
/// the response by exactly that delta.
#[test]
fn straggler_limit_pins_leaf_time_exactly() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    spec.use_smartindex = false;
    spec.rows_per_block = 16;
    let fx = feisu_tests::fixture_with(600, spec, "/hdfs/warehouse/clicks");
    let sql = "SELECT COUNT(*) FROM clicks";
    let full = fx.cluster.query(sql, &fx.cred).expect("full");
    let l1 = SimDuration::nanos(full.response_time.as_nanos() / 2);
    let delta = SimDuration::nanos(1_000);
    let l2 = l1 + delta;
    let run = |limit| {
        fx.cluster
            .query_with(
                sql,
                &fx.cred,
                &QueryOptions {
                    processed_ratio: 0.1,
                    time_limit: Some(limit),
                },
            )
            .expect("limited query")
    };
    let r1 = run(l1);
    let r2 = run(l2);
    assert!(r1.partial && r2.partial, "both runs must be partial");
    assert_eq!(
        r1.stats.processed_ratio, r2.stats.processed_ratio,
        "delta chosen small enough to keep the same kept-task set"
    );
    assert_eq!(r1.batch, r2.batch, "same kept tasks, same answer");
    assert_eq!(
        r2.response_time.as_nanos() - r1.response_time.as_nanos(),
        delta.as_nanos(),
        "leaf time is clamped to exactly the limit"
    );
}
