//! Property tests for the two transport-correctness fixes in this PR:
//!
//! 1. Any leaf-split + transport round-trip + two-level stem merge of
//!    `SUM`/`AVG`/`COUNT`/`MIN`/`MAX` must equal single-node execution
//!    exactly — including i64 sums near `i64::MAX`, which used to round
//!    on the wire when shipped as Float64.
//! 2. Zone-map block skipping is purely an optimization: any query must
//!    return identical result batches with `FeisuConfig.zone_maps` on
//!    and off.

use feisu_core::engine::ClusterSpec;
use feisu_exec::aggregate::AggTable;
use feisu_exec::batch::RecordBatch;
use feisu_format::{ColumnBuilder, DataType, Field, Schema, Value};
use feisu_sql::ast::{AggFunc, Expr};
use feisu_sql::plan::AggExpr;
use feisu_tests::{assert_same_rows, fixture_with, Fixture};
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

// ---------------------------------------------------------------------
// Part 1: AggTable split / transport / merge vs whole-batch execution.
// ---------------------------------------------------------------------

const GROUPS: [&str; 4] = ["beijing", "shanghai", "shenzhen", "tianjin"];

/// One input row: group key index, nullable i64 measure, f64 measure.
type Row = (usize, Option<i64>, f64);

/// i64 measures mix small values with values adjacent to the i64
/// boundaries: those are exactly what a Float64 transport column rounds
/// (anything past 2^53) and what wrapping-sum associativity must keep
/// stable across arbitrary splits.
fn arb_row() -> impl Strategy<Value = Row> {
    let v = prop_oneof![
        (-1000i64..1000).prop_map(Some),
        (0i64..16).prop_map(|d| Some(i64::MAX - d)),
        (0i64..16).prop_map(|d| Some(i64::MIN + d)),
        ((1i64 << 53) - 4..(1i64 << 53) + 4).prop_map(Some),
        Just(None),
    ];
    let w = (0i64..1_000_000).prop_map(|x| x as f64 / 100.0);
    (0usize..GROUPS.len(), v, w)
}

fn input_schema() -> Schema {
    Schema::new(vec![
        Field::new("g", DataType::Utf8, false),
        Field::new("v", DataType::Int64, true),
        Field::new("w", DataType::Float64, false),
    ])
}

fn rows_to_batch(rows: &[Row]) -> RecordBatch {
    let mut g = ColumnBuilder::new(DataType::Utf8);
    let mut v = ColumnBuilder::new(DataType::Int64);
    let mut w = ColumnBuilder::new(DataType::Float64);
    for (gi, vi, wi) in rows {
        g.push(Value::Utf8(GROUPS[*gi].to_string()));
        v.push(vi.map_or(Value::Null, Value::Int64));
        w.push(Value::Float64(*wi));
    }
    RecordBatch::new(input_schema(), vec![g.finish(), v.finish(), w.finish()]).unwrap()
}

fn group_by() -> Vec<(Expr, String, DataType)> {
    vec![(Expr::col("g"), "g".into(), DataType::Utf8)]
}

fn aggregates() -> Vec<AggExpr> {
    vec![
        AggExpr {
            func: AggFunc::Count,
            arg: None,
            name: "COUNT(*)".into(),
            output_type: DataType::Int64,
        },
        AggExpr {
            func: AggFunc::Sum,
            arg: Some(Expr::col("v")),
            name: "SUM(v)".into(),
            output_type: DataType::Int64,
        },
        AggExpr {
            func: AggFunc::Avg,
            arg: Some(Expr::col("w")),
            name: "AVG(w)".into(),
            output_type: DataType::Float64,
        },
        AggExpr {
            func: AggFunc::Min,
            arg: Some(Expr::col("v")),
            name: "MIN(v)".into(),
            output_type: DataType::Int64,
        },
        AggExpr {
            func: AggFunc::Max,
            arg: Some(Expr::col("v")),
            name: "MAX(v)".into(),
            output_type: DataType::Int64,
        },
    ]
}

fn output_schema() -> Schema {
    Schema::new(vec![
        Field::new("g", DataType::Utf8, true),
        Field::new("COUNT(*)", DataType::Int64, true),
        Field::new("SUM(v)", DataType::Int64, true),
        Field::new("AVG(w)", DataType::Float64, true),
        Field::new("MIN(v)", DataType::Int64, true),
        Field::new("MAX(v)", DataType::Int64, true),
    ])
}

/// Runs `rows` through the distributed shape: split across `nleaves`
/// leaf tables, each shipped as a transport batch, merged pairwise at
/// stems (transport again), then merged at the master.
fn distributed(rows: &[Row], nleaves: usize) -> RecordBatch {
    let shipped: Vec<RecordBatch> = (0..nleaves)
        .map(|leaf| {
            let slice: Vec<Row> = rows
                .iter()
                .enumerate()
                .filter(|(i, _)| i % nleaves == leaf)
                .map(|(_, r)| *r)
                .collect();
            let mut t = AggTable::new(group_by(), aggregates());
            t.update(&rows_to_batch(&slice)).unwrap();
            t.to_transport().unwrap()
        })
        .collect();
    let stems: Vec<RecordBatch> = shipped
        .chunks(2)
        .map(|pair| {
            let mut merged: Option<AggTable> = None;
            for b in pair {
                let t = AggTable::from_transport(group_by(), aggregates(), b).unwrap();
                match &mut merged {
                    None => merged = Some(t),
                    Some(m) => m.merge(&t).unwrap(),
                }
            }
            merged.unwrap().to_transport().unwrap()
        })
        .collect();
    let mut root: Option<AggTable> = None;
    for b in &stems {
        let t = AggTable::from_transport(group_by(), aggregates(), b).unwrap();
        match &mut root {
            None => root = Some(t),
            Some(m) => m.merge(&t).unwrap(),
        }
    }
    root.unwrap().finish(&output_schema()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn split_transport_merge_equals_single_node(
        rows in proptest::collection::vec(arb_row(), 1..160),
        nleaves in 1usize..8,
    ) {
        let mut whole = AggTable::new(group_by(), aggregates());
        whole.update(&rows_to_batch(&rows)).unwrap();
        let want = whole.finish(&output_schema()).unwrap();
        let got = distributed(&rows, nleaves);
        // Int64 sums must survive the wire bit-for-bit; spot-check that
        // directly before the row-bag compare (which tolerates float
        // formatting only on Float64 columns).
        prop_assert_eq!(
            got.column(2).clone(),
            want.column(2).clone(),
            "SUM(v) must round-trip exactly over {} leaves",
            nleaves
        );
        assert_same_rows(&got, &want, &format!("{} leaves", nleaves));
    }
}

// ---------------------------------------------------------------------
// Part 2: zone-map skipping never changes results.
// ---------------------------------------------------------------------

/// One cluster pair (zone maps on / off) over identical data. Cluster
/// construction dominates runtime, so both are built once and shared.
static FX: OnceLock<Mutex<(Fixture, Fixture)>> = OnceLock::new();

fn with_fixtures<R>(f: impl FnOnce(&Fixture, &Fixture) -> R) -> R {
    let fx = FX.get_or_init(|| {
        let on = ClusterSpec::small();
        let mut off = ClusterSpec::small();
        assert!(on.config.zone_maps, "zone maps default on");
        off.config.zone_maps = false;
        Mutex::new((
            fixture_with(600, on, "/hdfs/warehouse/clicks"),
            fixture_with(600, off, "/hdfs/warehouse/clicks"),
        ))
    });
    let guard = fx.lock().unwrap();
    f(&guard.0, &guard.1)
}

/// Range-style predicates over the zone-mapped columns: these are the
/// shapes the footer zone maps can disprove, so skipping actually fires
/// on some blocks while others survive.
fn arb_zone_predicate() -> impl Strategy<Value = String> {
    let cmp = prop_oneof![Just(">"), Just(">="), Just("<"), Just("<="), Just("=")].boxed();
    prop_oneof![
        (cmp.clone(), -5i64..106).prop_map(|(op, v)| format!("clicks {op} {v}")),
        (cmp.clone(), -2i64..15).prop_map(|(op, d)| format!("day {op} {}", 20160101 + d)),
        (cmp, 0u32..10).prop_map(|(op, v)| format!("score {op} 0.{v}")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn zone_skipping_is_result_transparent(
        pred in arb_zone_predicate(),
        shape in 0usize..3,
    ) {
        let sql = match shape {
            0 => format!("SELECT url, clicks, day FROM clicks WHERE {pred}"),
            1 => format!("SELECT COUNT(*), SUM(clicks) FROM clicks WHERE {pred}"),
            _ => format!(
                "SELECT keyword, COUNT(*), MIN(day), MAX(clicks) \
                 FROM clicks WHERE {pred} GROUP BY keyword"
            ),
        };
        with_fixtures(|on, off| {
            let a = on.cluster.query(&sql, &on.cred).unwrap();
            let b = off.cluster.query(&sql, &off.cred).unwrap();
            prop_assert_eq!(&a.batch, &b.batch, "zone maps changed results for {}", sql);
            Ok(())
        })?;
    }
}
