//! Engine surface features: EXPLAIN, JSON ingestion, SSD data cache,
//! cluster reporting.

use feisu_common::FeisuError;
use feisu_core::engine::ClusterSpec;
use feisu_format::Value as FValue;
use feisu_tests::{fixture, fixture_with};

#[test]
fn explain_shows_optimized_plan() {
    let fx = fixture(100);
    let plan = fx
        .cluster
        .explain(
            "SELECT url FROM clicks WHERE clicks > 5 ORDER BY url LIMIT 3",
            &fx.cred,
        )
        .unwrap();
    assert!(plan.contains("Limit: 3"), "{plan}");
    assert!(plan.contains("fetch=Some(3)"), "{plan}");
    assert!(plan.contains("Scan: clicks"), "{plan}");
    // Pushdown happened: predicate on the scan line, no residual filter.
    assert!(plan.contains("filter=(clicks > 5)"), "{plan}");
    assert!(!plan.contains("Filter:"), "{plan}");
}

#[test]
fn explain_respects_access_control() {
    let fx = fixture(10);
    let intern = fx.cluster.register_user("intern");
    let cred = fx.cluster.login(intern).unwrap();
    let err = fx
        .cluster
        .explain("SELECT url FROM clicks", &cred)
        .unwrap_err();
    assert!(matches!(err, FeisuError::PermissionDenied(_)));
}

#[test]
fn json_ingest_flattens_and_queries() {
    let fx = fixture(10);
    let docs = [
        r#"{"user": {"id": 1, "city": "beijing"}, "clicks": 10}"#,
        r#"{"user": {"id": 2, "city": "shanghai"}, "clicks": 25}"#,
        r#"{"user": {"id": 3, "city": "beijing"}, "clicks": 7}"#,
    ];
    let blocks = fx
        .cluster
        .ingest_json("events", "/hdfs/json/events", &docs, &fx.cred)
        .unwrap();
    assert!(blocks >= 1);
    let r = fx
        .cluster
        .query(
            "SELECT COUNT(*) FROM events WHERE user.city = 'beijing'",
            &fx.cred,
        )
        .unwrap();
    assert_eq!(r.batch.column(0).value(0), FValue::Int64(2));
    let r = fx
        .cluster
        .query("SELECT SUM(clicks) FROM events", &fx.cred)
        .unwrap();
    assert_eq!(r.batch.column(0).value(0), FValue::Int64(42));
}

#[test]
fn json_ingest_rejects_schema_drift() {
    let fx = fixture(10);
    fx.cluster
        .ingest_json("j", "/hdfs/json/j", &[r#"{"a": 1}"#], &fx.cred)
        .unwrap();
    let err = fx
        .cluster
        .ingest_json("j", "/hdfs/json/j", &[r#"{"b": "x"}"#], &fx.cred)
        .unwrap_err();
    assert!(matches!(err, FeisuError::Analysis(_)));
    // Same shape appends fine.
    fx.cluster
        .ingest_json("j", "/hdfs/json/j", &[r#"{"a": 5}"#], &fx.cred)
        .unwrap();
    let r = fx
        .cluster
        .query("SELECT COUNT(*) FROM j", &fx.cred)
        .unwrap();
    assert_eq!(r.batch.column(0).value(0), FValue::Int64(2));
}

#[test]
fn ssd_cache_accelerates_repeat_reads() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    spec.use_smartindex = false; // isolate the data cache
    spec.cache_pins = vec!["/hdfs/".to_string()];
    let fx = fixture_with(400, spec, "/hdfs/warehouse/clicks");
    let sql = "SELECT url FROM clicks WHERE clicks > 10";
    let cold = fx.cluster.query(sql, &fx.cred).unwrap();
    let warm = fx.cluster.query(sql, &fx.cred).unwrap();
    assert_eq!(cold.batch.rows(), warm.batch.rows());
    assert!(
        warm.response_time < cold.response_time,
        "SSD cache must beat HDD: {} vs {}",
        warm.response_time,
        cold.response_time
    );
    let stats = fx.cluster.router().cache().unwrap().stats();
    assert!(stats.hits() > 0, "cache saw hits: {stats:?}");
}

#[test]
fn smartindex_works_on_dotted_json_columns() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    let fx = fixture_with(10, spec, "/hdfs/warehouse/clicks");
    let docs: Vec<String> = (0..200)
        .map(|i| {
            format!(
                r#"{{"user": {{"id": {i}, "vip": {} }}, "spend": {}}}"#,
                i % 2,
                i * 3
            )
        })
        .collect();
    let doc_refs: Vec<&str> = docs.iter().map(|d| d.as_str()).collect();
    fx.cluster
        .ingest_json("purchases", "/hdfs/json/purchases", &doc_refs, &fx.cred)
        .unwrap();
    let sql = "SELECT COUNT(*) FROM purchases WHERE user.id > 100 AND user.vip = 1";
    let cold = fx.cluster.query(sql, &fx.cred).unwrap();
    let warm = fx.cluster.query(sql, &fx.cred).unwrap();
    assert_eq!(cold.batch, warm.batch);
    // ids 101..=199 with odd id (vip=1): 50 rows.
    assert_eq!(cold.batch.column(0).value(0), FValue::Int64(50));
    assert!(
        warm.stats.index_hits > 0,
        "dotted columns must be index-keyed"
    );
    // Every warm task is either answered from cached bits or skipped via
    // footer zone maps (skipped blocks read only their footer, so they
    // are not memory-served).
    assert_eq!(
        warm.stats.memory_served_tasks + warm.stats.blocks_skipped,
        warm.stats.tasks,
        "fully cached or zone-skipped dotted-column COUNT"
    );
    assert!(warm.stats.blocks_skipped > 0, "id zones prune low blocks");
}
