//! Trace replay equivalence: a generated workload trace runs through the
//! distributed cluster AND the single-process oracle over identical data;
//! every answer must agree. This is the broadest correctness net in the
//! suite — it sweeps parser, analyzer, optimizer, CNF, SmartIndex,
//! partial aggregation, stem merging and scheduling in one pass.

use feisu_core::engine::{ClusterSpec, FeisuCluster};
use feisu_exec::batch::RecordBatch;
use feisu_exec::MemProvider;
use feisu_tests::assert_same_rows;
use feisu_workload::datasets::{generate_chunk, DatasetSpec};
use feisu_workload::trace::{generate_trace, TraceSpec};

fn setup(
    rows: usize,
    fields: usize,
) -> (FeisuCluster, feisu_storage::auth::Credential, MemProvider) {
    let mut spec = ClusterSpec::small();
    spec.rows_per_block = 256;
    let cluster = FeisuCluster::new(spec).unwrap();
    let user = cluster.register_user("replay");
    cluster.grant_all(user);
    let cred = cluster.login(user).unwrap();

    let mut ds = DatasetSpec::t1(rows);
    ds.fields = fields;
    let schema = ds.schema();
    cluster
        .create_table("t1", schema.clone(), "/hdfs/replay/t1", &cred)
        .unwrap();
    let columns = generate_chunk(&ds, 0, rows);
    cluster
        .ingest_columns("t1", columns.clone(), &cred)
        .unwrap();

    let mut oracle = MemProvider::new();
    oracle.insert("t1", RecordBatch::new(schema, columns).unwrap());
    (cluster, cred, oracle)
}

#[test]
fn replayed_trace_matches_oracle_everywhere() {
    let (cluster, cred, mut oracle) = setup(1024, 70);
    let trace = generate_trace(&TraceSpec {
        queries: 120,
        span: feisu_common::SimDuration::hours(2),
        similarity: 0.6,
        locality_theta: 0.9,
        column_pool: 40,
        tables: vec!["t1".into()],
        ..TraceSpec::default()
    });
    let mut checked = 0usize;
    for q in &trace {
        // ORDER BY … LIMIT with non-unique keys is legitimately
        // tie-ambiguous between engines; skip only those.
        if q.sql.contains("LIMIT") {
            continue;
        }
        let got = cluster
            .query(&q.sql, &cred)
            .unwrap_or_else(|e| panic!("cluster failed `{}`: {e}", q.sql));
        let want = feisu_exec::executor::run_sql(&q.sql, &mut oracle)
            .unwrap_or_else(|e| panic!("oracle failed `{}`: {e}", q.sql));
        assert_same_rows(&got.batch, &want, &q.sql);
        checked += 1;
    }
    assert!(checked >= 80, "enough statements exercised: {checked}");
}

#[test]
fn replay_is_deterministic_across_cluster_instances() {
    let trace = generate_trace(&TraceSpec {
        queries: 40,
        tables: vec!["t1".into()],
        ..TraceSpec::default()
    });
    let run = || {
        let (cluster, cred, _) = setup(512, 70);
        trace
            .iter()
            .filter(|q| !q.sql.contains("LIMIT"))
            .map(|q| {
                let r = cluster.query(&q.sql, &cred).unwrap();
                (r.response_time, r.batch.rows())
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
