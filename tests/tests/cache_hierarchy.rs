//! The multi-tier block cache through the engine surface: ingest
//! invalidation (stale bytes must never be served), session quota
//! wiring, and the cache-transparency property — cache-on and cache-off
//! clusters answer every query identically.

use feisu_common::config::CacheAdmission;
use feisu_common::rng::DetRng;
use feisu_common::ByteSize;
use feisu_core::engine::ClusterSpec;
use feisu_format::{Block, Column, DataType, Value};
use feisu_tests::{clicks_schema, fixture_with};
use proptest::prelude::*;

/// A two-tier spec that admits everything, with task reuse and the
/// SmartIndex off so repeat queries really re-read their blocks.
fn two_tier_spec() -> ClusterSpec {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    spec.use_smartindex = false;
    spec.config.cache.enabled = true;
    spec.config.cache.admission = CacheAdmission::Always;
    spec
}

/// Regression for the stale-read bug: before path-keyed invalidation,
/// rewriting a block left its old bytes in the per-node caches and a
/// re-query served the *previous* contents. A rewrite through the
/// router (the single ingest choke point) must drop every cached copy,
/// and the next query must see the new data.
#[test]
fn rewrite_through_router_invalidates_every_cached_block() {
    let fx = fixture_with(120, two_tier_spec(), "/hdfs/warehouse/clicks");
    let sql = "SELECT SUM(clicks) FROM clicks";
    let cold = fx.cluster.query(sql, &fx.cred).unwrap();
    let warm = fx.cluster.query(sql, &fx.cred).unwrap();
    assert_eq!(cold.batch, warm.batch, "warm run must agree before rewrite");
    assert!(
        fx.cluster.metrics().counter("feisu.cache.ssd.hits").get() > 0,
        "the warm run must actually be cache-served"
    );

    // Rewrite every block in place: same paths, same row counts, but
    // clicks becomes the constant 1 — SUM(clicks) is then exactly the
    // table's row count.
    let desc = fx.cluster.catalog().table("clicks").unwrap();
    let blocks = &desc.partitions[0].blocks;
    let schema = clicks_schema();
    let mut total_rows = 0i64;
    for b in blocks {
        total_rows += b.rows as i64;
        let n = b.rows;
        let cols = vec![
            Column::from_utf8(
                (0..n)
                    .map(|j| format!("https://rewrite.example/{j}"))
                    .collect(),
            ),
            Column::from_utf8((0..n).map(|_| "map".to_string()).collect()),
            Column::from_values(DataType::Int64, &vec![Value::Int64(1); n]).unwrap(),
            Column::from_f64(vec![0.5; n]),
            Column::from_i64(vec![20160101; n]),
        ];
        let block = Block::new(b.id, schema.clone(), cols).unwrap();
        fx.cluster
            .router()
            .write(
                &b.path,
                block.serialize().into(),
                None,
                &fx.cred,
                fx.cluster.now(),
            )
            .expect("in-place rewrite");
    }

    let fresh = fx.cluster.query(sql, &fx.cred).unwrap();
    assert_eq!(
        fresh.batch.column(0).value(0),
        Value::Int64(total_rows),
        "query after rewrite must see the new bytes, not the cached ones"
    );
    // Every warm block held a cached copy somewhere; each rewrite
    // dropped at least one.
    assert!(
        fx.cluster
            .metrics()
            .counter("feisu.cache.invalidations")
            .get()
            >= blocks.len() as u64,
        "rewrites must invalidate each cached block"
    );
}

/// Session-level quota wiring end to end: a zero-quota user's reads are
/// never admitted (and never served stale), and lifting the quota
/// restores normal caching for the same session.
#[test]
fn session_zero_quota_blocks_admission_until_lifted() {
    let fx = fixture_with(120, two_tier_spec(), "/hdfs/warehouse/clicks");
    let session = fx.cluster.session(fx.cred.clone());
    session.set_cache_quota(Some(ByteSize(0)));

    let sql = "SELECT SUM(clicks) FROM clicks";
    let a = session.query(sql).unwrap();
    let b = session.query(sql).unwrap();
    assert_eq!(a.batch, b.batch);
    let stats = fx.cluster.cache().unwrap().stats();
    assert_eq!(stats.hits(), 0, "zero-quota user must never hit: {stats:?}");
    assert!(
        stats.quota_rejections > 0,
        "admissions must be quota-rejected"
    );

    // Back to the configured default (unlimited here): the ladder works.
    session.set_cache_quota(None);
    let c = session.query(sql).unwrap();
    let d = session.query(sql).unwrap();
    assert_eq!(a.batch, c.batch);
    assert_eq!(a.batch, d.batch);
    let stats = fx.cluster.cache().unwrap().stats();
    assert!(stats.hits() > 0, "lifted quota must cache again: {stats:?}");
}

/// A tiny random workload generator over the fixture's clicks table.
fn random_queries(rng: &mut DetRng, n: usize) -> Vec<String> {
    let mut queries = Vec::with_capacity(2 * n);
    for _ in 0..n {
        let q = match rng.next_below(5) {
            0 => format!(
                "SELECT COUNT(*) FROM clicks WHERE clicks > {}",
                rng.range_i64(0, 99)
            ),
            1 => "SELECT SUM(clicks) FROM clicks".to_string(),
            2 => format!(
                "SELECT url FROM clicks WHERE score < 0.{}",
                rng.next_below(10)
            ),
            3 => format!(
                "SELECT url, clicks FROM clicks WHERE clicks >= {}",
                rng.range_i64(0, 99)
            ),
            _ => format!(
                "SELECT keyword FROM clicks WHERE day = {}",
                20160101 + rng.range_i64(0, 3)
            ),
        };
        queries.push(q);
    }
    // Repeat the whole list so the second pass runs against warm tiers.
    let again = queries.clone();
    queries.extend(again);
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    /// Cache transparency: a cluster with a deliberately *starved*
    /// hierarchy (tiny tiers, tiny ghost, short TTL — constant
    /// admission, promotion, demotion, eviction and expiry churn) must
    /// return bit-identical result batches to a cluster with no cache
    /// at all, for every query of a random workload. Only simulated
    /// times and served-from tiers may differ.
    #[test]
    fn random_workload_cache_on_equals_cache_off(
        seed in any::<u64>(),
        rows in 48usize..160,
    ) {
        let mut rng = DetRng::new(seed);
        let queries = random_queries(&mut rng, 6);

        let mut on = two_tier_spec();
        on.config.cache.admission = CacheAdmission::Frequency;
        on.config.cache.mem_capacity_per_node = ByteSize(8 * 1024);
        on.config.cache.ssd_capacity_per_node = ByteSize(16 * 1024);
        on.config.cache.ghost_capacity = 8;
        on.config.cache.ttl = Some(feisu_common::SimDuration::millis(1));
        let mut off = ClusterSpec::small();
        off.task_reuse = false;
        off.use_smartindex = false;
        prop_assert!(!off.config.cache.enabled);

        let fx_on = fixture_with(rows, on, "/hdfs/warehouse/clicks");
        let fx_off = fixture_with(rows, off, "/hdfs/warehouse/clicks");
        for sql in &queries {
            let a = fx_on.cluster.query(sql, &fx_on.cred).unwrap();
            let b = fx_off.cluster.query(sql, &fx_off.cred).unwrap();
            prop_assert_eq!(&a.batch, &b.batch, "cache changed results for `{}`", sql);
        }
    }
}
