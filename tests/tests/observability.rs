//! End-to-end observability: per-query EXPLAIN ANALYZE profiles and the
//! cluster-wide metrics registry must agree with the `QueryStats` the
//! engine returns.

use feisu_common::SimDuration;
use feisu_core::engine::{ClusterSpec, QueryOptions, QueryStats};
use feisu_tests::{fixture, fixture_with};

#[test]
fn profile_renders_master_stem_leaf_tree() {
    let fx = fixture(500);
    let r = fx
        .cluster
        .query("SELECT url FROM clicks WHERE clicks > 50", &fx.cred)
        .unwrap();
    let tree = &r.profile.tree;
    assert_eq!(tree.roots.len(), 1, "exactly one master root");
    assert_eq!(tree.roots[0].name, "master");
    assert!(
        tree.max_depth() >= 3,
        "master -> stem -> leaf_task expected, depth {}",
        tree.max_depth()
    );
    let stems = tree.find_all("stem");
    assert!(!stems.is_empty(), "at least one stem span");
    for stem in &stems {
        assert!(!stem.children.is_empty(), "stems adopt their leaf spans");
    }
    let leaves = tree.find_all("leaf_task");
    assert_eq!(leaves.len(), r.stats.tasks, "one span per leaf task");
    // The master span covers the full response on the relative timeline.
    assert_eq!(tree.roots[0].duration(), r.response_time);

    let text = r.profile.render();
    assert!(text.starts_with("EXPLAIN ANALYZE query "), "{text}");
    assert!(text.contains("smartindex: hits"), "{text}");
    assert!(text.contains("bytes read"), "{text}");
    assert!(text.contains("hdfs="), "per-backend bytes: {text}");
    assert!(text.contains("└─"), "tree rendering: {text}");
}

#[test]
fn registry_counters_mirror_query_stats() {
    let fx = fixture(400);
    let registry = fx.cluster.metrics().clone();
    let mut expect = QueryStats::default();
    let mut queries = 0u64;
    for sql in [
        "SELECT url FROM clicks WHERE clicks > 50",
        "SELECT COUNT(*) FROM clicks WHERE keyword = 'map'",
        "SELECT url, score FROM clicks WHERE score < 0.4",
    ] {
        let r = fx.cluster.query(sql, &fx.cred).unwrap();
        expect.merge(&r.stats);
        queries += 1;
    }
    assert_eq!(registry.counter("feisu.query.count").get(), queries);
    assert_eq!(registry.counter("feisu.query.errors").get(), 0);
    assert_eq!(
        registry.counter("feisu.task.count").get(),
        expect.tasks as u64
    );
    assert_eq!(
        registry.counter("feisu.task.reused").get(),
        expect.reused_tasks as u64
    );
    assert_eq!(
        registry.counter("feisu.task.bytes_read").get(),
        expect.bytes_read.0
    );
    assert_eq!(
        registry.counter("feisu.task.memory_served").get(),
        expect.memory_served_tasks as u64
    );
    assert_eq!(
        registry.histogram("feisu.query.response_ns").count(),
        queries
    );
    // Subsystem counters feed the same registry: SmartIndex totals agree
    // with the per-leaf stats roll-up.
    let idx = fx.cluster.index_stats();
    assert_eq!(registry.counter("feisu.index.hits").get(), idx.hits);
    assert_eq!(registry.counter("feisu.index.misses").get(), idx.misses);
    // The per-domain storage counters saw the ingest writes and scan reads.
    assert!(registry.counter("feisu.storage.hdfs.writes").get() > 0);
    assert!(registry.counter("feisu.storage.hdfs.reads").get() > 0);
}

#[test]
fn failed_queries_count_as_errors() {
    let fx = fixture(50);
    assert!(fx
        .cluster
        .query("SELECT nope FROM clicks", &fx.cred)
        .is_err());
    assert_eq!(fx.cluster.metrics().counter("feisu.query.errors").get(), 1);
}

#[test]
fn abandoned_tasks_mark_spans_and_drive_the_ratio() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    spec.use_smartindex = false;
    let fx = fixture_with(600, spec, "/hdfs/warehouse/clicks");
    let sql = "SELECT COUNT(*) FROM clicks";
    let full = fx.cluster.query(sql, &fx.cred).unwrap();
    assert!((full.stats.processed_ratio - 1.0).abs() < 1e-12);
    let opts = QueryOptions {
        processed_ratio: 0.2,
        time_limit: Some(SimDuration::nanos(full.response_time.as_nanos() / 2)),
    };
    let partial = fx.cluster.query_with(sql, &fx.cred, &opts).unwrap();
    assert!(partial.partial);
    let leaves = partial.profile.tree.find_all("leaf_task");
    let abandoned: Vec<_> = leaves
        .iter()
        .filter(|l| l.attr("abandoned").is_some())
        .collect();
    assert!(!abandoned.is_empty(), "some tasks must be abandoned");
    // The reported ratio is exactly (kept / total) from the span records.
    let want = (leaves.len() - abandoned.len()) as f64 / leaves.len() as f64;
    assert!(
        (partial.stats.processed_ratio - want).abs() < 1e-12,
        "{} vs {}",
        partial.stats.processed_ratio,
        want
    );
    assert!(partial.stats.processed_ratio < 1.0);
    assert_eq!(fx.cluster.metrics().counter("feisu.query.partial").get(), 1);
}

#[test]
fn cache_served_tasks_show_their_tier() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    spec.use_smartindex = false;
    spec.cache_pins = vec!["/hdfs/".to_string()];
    let fx = fixture_with(400, spec, "/hdfs/warehouse/clicks");
    let sql = "SELECT url FROM clicks WHERE clicks > 10";
    let cold = fx.cluster.query(sql, &fx.cred).unwrap();
    let warm = fx.cluster.query(sql, &fx.cred).unwrap();
    let tier_of = |r: &feisu_core::engine::QueryResult| {
        r.profile
            .tree
            .find("leaf_task")
            .and_then(|l| l.attr("tier"))
            .map(|v| v.to_string())
    };
    // Cold reads come from the owning domain (local replica or remote),
    // warm ones from the per-node SSD cache.
    let cold_tier = tier_of(&cold).expect("cold tier attr");
    assert!(
        cold_tier == "local_disk" || cold_tier == "remote",
        "cold tier: {cold_tier}"
    );
    assert_eq!(tier_of(&warm).as_deref(), Some("ssd_cache"));
    assert!(warm.profile.render().contains("ssd_cache="), "summary tier");
    let hits = fx.cluster.metrics().counter("feisu.cache.ssd.hits").get();
    assert!(hits > 0, "registry saw the cache hits");
}

#[test]
fn memory_tier_hits_show_their_own_tier() {
    let mut spec = ClusterSpec::small();
    spec.task_reuse = false;
    spec.use_smartindex = false;
    spec.config.cache.enabled = true;
    spec.config.cache.admission = feisu_common::config::CacheAdmission::Always;
    let fx = fixture_with(400, spec, "/hdfs/warehouse/clicks");
    let sql = "SELECT url FROM clicks WHERE clicks > 10";
    let tier_of = |r: &feisu_core::engine::QueryResult| {
        r.profile
            .tree
            .find("leaf_task")
            .and_then(|l| l.attr("tier"))
            .map(|v| v.to_string())
    };
    // Miss → SSD admission → SSD hit (promotes) → memory hit, each step
    // strictly faster than the last.
    let cold = fx.cluster.query(sql, &fx.cred).unwrap();
    let ssd = fx.cluster.query(sql, &fx.cred).unwrap();
    let mem = fx.cluster.query(sql, &fx.cred).unwrap();
    assert_eq!(tier_of(&ssd).as_deref(), Some("ssd_cache"));
    assert_eq!(tier_of(&mem).as_deref(), Some("mem_cache"));
    assert!(mem.profile.render().contains("mem_cache="), "summary tier");
    assert!(ssd.response_time < cold.response_time);
    assert!(mem.response_time < ssd.response_time);
    assert!(fx.cluster.metrics().counter("feisu.cache.mem.hits").get() > 0);
    assert!(fx.cluster.metrics().counter("feisu.cache.promotions").get() > 0);
    // The events of both cache-served queries count as cache-hit tasks.
    let log = fx.cluster.query_log().snapshot();
    let last = log.last().expect("logged");
    assert!(
        last.cache_hit_tasks > 0,
        "mem_cache tasks count as cache hits"
    );
}

#[test]
fn query_stats_merge_combines_counters_and_ratio() {
    let a = QueryStats {
        tasks: 6,
        reused_tasks: 1,
        bytes_read: feisu_common::ByteSize(100),
        processed_ratio: 1.0,
        ..QueryStats::default()
    };
    let mut acc = a;
    let b = QueryStats {
        tasks: 2,
        backup_tasks: 1,
        bytes_read: feisu_common::ByteSize(50),
        processed_ratio: 0.5,
        ..QueryStats::default()
    };
    acc.merge(&b);
    assert_eq!(acc.tasks, 8);
    assert_eq!(acc.reused_tasks, 1);
    assert_eq!(acc.backup_tasks, 1);
    assert_eq!(acc.bytes_read, feisu_common::ByteSize(150));
    // Weighted by task count: (1.0*6 + 0.5*2) / 8.
    assert!((acc.processed_ratio - 0.875).abs() < 1e-12);
    // Zero-task merges leave the ratio untouched.
    let mut c = acc;
    c.merge(&QueryStats::default());
    assert!((c.processed_ratio - 0.875).abs() < 1e-12);
}
