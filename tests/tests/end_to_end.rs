//! End-to-end SQL correctness: the distributed cluster must agree with
//! the single-process oracle executor on a broad query battery.

use feisu_tests::{check_against_oracle, fixture};

#[test]
fn plain_scans_agree_with_oracle() {
    let mut fx = fixture(500);
    for sql in [
        "SELECT url FROM clicks WHERE clicks > 50",
        "SELECT url, clicks FROM clicks WHERE clicks <= 10",
        "SELECT keyword FROM clicks WHERE keyword = 'map'",
        "SELECT url FROM clicks WHERE keyword != 'map' AND clicks >= 90",
        "SELECT url FROM clicks WHERE clicks > 20 OR score < 0.2",
        "SELECT url FROM clicks WHERE url CONTAINS 'site3'",
        "SELECT url FROM clicks WHERE clicks IS NULL",
        "SELECT url FROM clicks WHERE clicks IS NOT NULL AND day = 20160101",
    ] {
        check_against_oracle(&mut fx, sql);
    }
}

#[test]
fn negation_forms_agree_with_oracle() {
    let mut fx = fixture(400);
    for sql in [
        // The paper's Q10/Q11/Q12 trio.
        "SELECT COUNT(*) FROM clicks WHERE (clicks > 0) AND (clicks <= 5)",
        "SELECT COUNT(*) FROM clicks WHERE clicks > 0 AND !(clicks > 5)",
        "SELECT COUNT(*) FROM clicks WHERE NOT (clicks <= 0) AND NOT (clicks > 5)",
        "SELECT url FROM clicks WHERE NOT (keyword = 'map' OR clicks > 90)",
    ] {
        check_against_oracle(&mut fx, sql);
    }
}

#[test]
fn aggregations_agree_with_oracle() {
    let mut fx = fixture(700);
    for sql in [
        "SELECT COUNT(*) FROM clicks",
        "SELECT COUNT(clicks) FROM clicks",
        "SELECT SUM(clicks) FROM clicks WHERE day = 20160101",
        "SELECT AVG(score) FROM clicks WHERE clicks > 30",
        "SELECT MIN(clicks), MAX(clicks) FROM clicks",
        "SELECT keyword, COUNT(*) FROM clicks GROUP BY keyword",
        "SELECT keyword, SUM(clicks) AS s FROM clicks GROUP BY keyword HAVING s > 100",
        "SELECT day, COUNT(*) AS n, AVG(score) FROM clicks WHERE clicks > 10 GROUP BY day",
    ] {
        check_against_oracle(&mut fx, sql);
    }
}

#[test]
fn order_and_limit_agree_with_oracle() {
    let mut fx = fixture(300);
    for sql in [
        // Unique sort keys so LIMIT cut-offs are unambiguous.
        "SELECT keyword, COUNT(*) AS n FROM clicks GROUP BY keyword ORDER BY n DESC",
        "SELECT day, COUNT(*) AS n FROM clicks GROUP BY day ORDER BY day LIMIT 3",
        "SELECT keyword, COUNT(*) FROM clicks GROUP BY keyword ORDER BY keyword LIMIT 2",
    ] {
        check_against_oracle(&mut fx, sql);
    }
}

#[test]
fn empty_results_are_clean() {
    let fx = fixture(100);
    let r = fx
        .cluster
        .query("SELECT url FROM clicks WHERE clicks > 100000", &fx.cred)
        .unwrap();
    assert_eq!(r.batch.rows(), 0);
    // Zone maps should prune every block: value is out of range.
    assert_eq!(r.stats.pruned_blocks, r.stats.tasks);
    let r = fx
        .cluster
        .query(
            "SELECT COUNT(*) FROM clicks WHERE clicks > 100000",
            &fx.cred,
        )
        .unwrap();
    assert_eq!(r.batch.column(0).value(0), feisu_format::Value::Int64(0));
}

#[test]
fn projection_pruning_reduces_io() {
    let fx = fixture(400);
    let narrow = fx
        .cluster
        .query("SELECT day FROM clicks WHERE day >= 0", &fx.cred)
        .unwrap();
    // Fresh cluster for a fair comparison (index caches would skew it).
    let fx2 = fixture(400);
    let wide = fx2
        .cluster
        .query(
            "SELECT url, keyword, clicks, score, day FROM clicks WHERE day >= 0",
            &fx2.cred,
        )
        .unwrap();
    assert!(
        narrow.stats.bytes_read < wide.stats.bytes_read,
        "columnar projection must cut bytes: {} vs {}",
        narrow.stats.bytes_read,
        wide.stats.bytes_read
    );
}

#[test]
fn multi_block_tables_concat_correctly() {
    // 500 rows at ≤64 rows/block = ≥8 blocks spread over nodes.
    let fx = fixture(500);
    let r = fx
        .cluster
        .query("SELECT COUNT(*) FROM clicks", &fx.cred)
        .unwrap();
    assert_eq!(r.batch.column(0).value(0), feisu_format::Value::Int64(500));
    assert!(
        r.stats.tasks >= 8,
        "expected many blocks, got {}",
        r.stats.tasks
    );
}

#[test]
fn join_against_dimension_table() {
    let mut fx = fixture(200);
    // A small dimension table on the KV-domain side of the catalog.
    let dim_schema = feisu_format::Schema::new(vec![
        feisu_format::Field::new("keyword", feisu_format::DataType::Utf8, false),
        feisu_format::Field::new("category", feisu_format::DataType::Utf8, false),
    ]);
    fx.cluster
        .create_table("dim", dim_schema.clone(), "/hdfs/warehouse/dim", &fx.cred)
        .unwrap();
    let dim_rows = vec![
        vec![
            feisu_format::Value::from("map"),
            feisu_format::Value::from("geo"),
        ],
        vec![
            feisu_format::Value::from("music"),
            feisu_format::Value::from("media"),
        ],
        vec![
            feisu_format::Value::from("news"),
            feisu_format::Value::from("media"),
        ],
    ];
    fx.cluster
        .ingest_rows("dim", dim_rows.clone(), &fx.cred)
        .unwrap();
    fx.oracle
        .insert("dim", feisu_tests::rows_to_batch(&dim_schema, &dim_rows));
    for sql in [
        "SELECT category, COUNT(*) FROM clicks JOIN dim ON clicks.keyword = dim.keyword \
         GROUP BY category",
        "SELECT clicks.url, dim.category FROM clicks JOIN dim ON clicks.keyword = dim.keyword \
         WHERE clicks.clicks > 80",
        "SELECT clicks.url FROM clicks LEFT JOIN dim ON clicks.keyword = dim.keyword \
         WHERE dim.category IS NULL",
    ] {
        check_against_oracle(&mut fx, sql);
    }
}

#[test]
fn response_time_is_deterministic() {
    let a = fixture(300);
    let b = fixture(300);
    let sql = "SELECT COUNT(*) FROM clicks WHERE clicks > 42";
    let ra = a.cluster.query(sql, &a.cred).unwrap();
    let rb = b.cluster.query(sql, &b.cred).unwrap();
    assert_eq!(ra.response_time, rb.response_time);
    assert_eq!(ra.stats.bytes_read, rb.stats.bytes_read);
}
