//! Shared fixtures for the workspace integration tests.
//!
//! The central helper builds a populated [`FeisuCluster`] *and* a
//! [`MemProvider`] holding identical data, so every distributed answer
//! can be checked against the single-process oracle executor.

use feisu_core::engine::{ClusterSpec, FeisuCluster};
use feisu_exec::batch::RecordBatch;
use feisu_exec::MemProvider;
use feisu_format::{Column, DataType, Field, Schema, Value};
use feisu_storage::auth::Credential;

/// A cluster plus its oracle twin.
pub struct Fixture {
    pub cluster: FeisuCluster,
    pub oracle: MemProvider,
    pub cred: Credential,
    pub user: feisu_common::UserId,
}

/// Deterministic small clicks table used across tests.
pub fn clicks_schema() -> Schema {
    Schema::new(vec![
        Field::new("url", DataType::Utf8, false),
        Field::new("keyword", DataType::Utf8, false),
        Field::new("clicks", DataType::Int64, true),
        Field::new("score", DataType::Float64, false),
        Field::new("day", DataType::Int64, false),
    ])
}

/// Generates `rows` deterministic rows of the clicks table.
pub fn clicks_rows(rows: usize) -> Vec<Vec<Value>> {
    (0..rows)
        .map(|i| {
            vec![
                Value::from(format!("https://site{}.example/p{}", i % 7, i % 3)),
                Value::from(["map", "music", "news", "stock"][i % 4]),
                if i % 11 == 10 {
                    Value::Null
                } else {
                    Value::from(((i * 13) % 100) as i64)
                },
                Value::from((i % 10) as f64 / 10.0),
                Value::from(20160101 + (i / 50) as i64),
            ]
        })
        .collect()
}

/// Builds a small cluster with the clicks table on HDFS (plus the same
/// data in the oracle), a registered user, and a credential.
pub fn fixture(rows: usize) -> Fixture {
    fixture_with(rows, ClusterSpec::small(), "/hdfs/warehouse/clicks")
}

/// Fixture with custom spec and table location.
pub fn fixture_with(rows: usize, mut spec: ClusterSpec, location: &str) -> Fixture {
    // Small blocks so multi-block paths are exercised even in tests.
    spec.rows_per_block = spec.rows_per_block.min(64);
    // CI runs the e2e suites at a pinned pool width (scripts/ci.sh sets
    // FEISU_EXECUTION_THREADS=8) to prove simulated results don't depend
    // on the executor's thread count.
    // Specs that pin an explicit thread count (determinism sweeps) win.
    if spec.config.execution_threads == 0 {
        if let Ok(v) = std::env::var("FEISU_EXECUTION_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                spec.config.execution_threads = n;
            }
        }
    }
    let cluster = FeisuCluster::new(spec).expect("cluster");
    let user = cluster.register_user("tester");
    cluster.grant_all(user);
    let cred = cluster.login(user).expect("login");
    cluster
        .create_table("clicks", clicks_schema(), location, &cred)
        .expect("create table");
    let rows_data = clicks_rows(rows);
    cluster
        .ingest_rows("clicks", rows_data.clone(), &cred)
        .expect("ingest");

    let mut oracle = MemProvider::new();
    oracle.insert("clicks", rows_to_batch(&clicks_schema(), &rows_data));
    Fixture {
        cluster,
        oracle,
        cred,
        user,
    }
}

/// Materializes rows into a record batch (oracle-side storage).
pub fn rows_to_batch(schema: &Schema, rows: &[Vec<Value>]) -> RecordBatch {
    let mut builders: Vec<feisu_format::ColumnBuilder> = schema
        .fields()
        .iter()
        .map(|f| feisu_format::ColumnBuilder::new(f.data_type))
        .collect();
    for row in rows {
        for (b, v) in builders.iter_mut().zip(row.iter().cloned()) {
            b.push(v);
        }
    }
    let columns: Vec<Column> = builders.into_iter().map(|b| b.finish()).collect();
    RecordBatch::new(schema.clone(), columns).expect("batch")
}

/// Compares two batches as *bags of rows* (distributed execution may
/// reorder) after verifying schema compatibility.
pub fn assert_same_rows(got: &RecordBatch, want: &RecordBatch, context: &str) {
    assert_eq!(
        got.schema().len(),
        want.schema().len(),
        "{context}: column count"
    );
    assert_eq!(got.rows(), want.rows(), "{context}: row count");
    let canon = |b: &RecordBatch| {
        let mut rows: Vec<String> = (0..b.rows())
            .map(|i| {
                b.row(i)
                    .iter()
                    .map(|v| match v {
                        // Distributed partial aggregation reorders float
                        // sums; compare at 9 significant digits.
                        Value::Float64(f) => format!("{f:.9e}"),
                        other => other.to_string(),
                    })
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(canon(got), canon(want), "{context}: row contents");
}

/// Runs a query on both engines and asserts identical row bags.
pub fn check_against_oracle(fx: &mut Fixture, sql: &str) {
    let got = fx
        .cluster
        .query(sql, &fx.cred)
        .unwrap_or_else(|e| panic!("cluster failed `{sql}`: {e}"));
    let want = feisu_exec::executor::run_sql(sql, &mut fx.oracle)
        .unwrap_or_else(|e| panic!("oracle failed `{sql}`: {e}"));
    assert_same_rows(&got.batch, &want, sql);
}
