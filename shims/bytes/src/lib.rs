//! Offline shim for `bytes`.
//!
//! Provides a cheaply clonable, immutable, reference-counted byte buffer
//! with the subset of the `bytes::Bytes` API the workspace uses. Backed
//! by `Arc<[u8]>`: clones are pointer bumps, which is what the storage
//! simulator relies on when the same block bytes are shared between
//! domains, caches, and leaf servers.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Shares a static slice. (The real crate avoids the copy; for the
    /// simulator the one-time copy at construction is irrelevant.)
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// A shared sub-range. Copies once; clones of the slice then share.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes(Arc::from(&self.0[range]))
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes(Arc::from(data))
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes(Arc::from(data.into_bytes()))
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![7u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn slice_copies_range() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4]);
        assert_eq!(&a.slice(1..3)[..], &[1, 2]);
    }
}
