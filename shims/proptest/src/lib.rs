//! Offline shim for `proptest`.
//!
//! A deterministic property-testing harness exposing the API subset the
//! workspace tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_recursive` / `boxed`, `any::<T>()` for integers and bools,
//! range strategies, a small regex-subset string strategy (`"[a-z]{0,8}"`,
//! `"\\PC{0,12}"` and friends), `collection::vec`, tuple strategies,
//! [`Just`], `prop_oneof!`, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//! - no shrinking — failures report the case number and seed instead of a
//!   minimized input (generation is deterministic per test name + case,
//!   so failures reproduce exactly across runs);
//! - value trees are not kept; a strategy is just a seeded generator.

// ------------------------------------------------------------------ rng

/// Deterministic splitmix64 generator. Every test case derives its seed
/// from the test's module path + case index, so runs are reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    pub fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ------------------------------------------------------------- strategy

pub mod strategy {
    use super::TestRng;
    use std::rc::Rc;

    /// A seeded generator of values. The real crate's `Strategy` carries a
    /// value tree for shrinking; this shim's carries only generation.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds strategies for recursive data. `depth` bounds nesting;
        /// the desired-size and branch hints are accepted for signature
        /// compatibility but unused (depth alone bounds generation here).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut levels = vec![self.boxed()];
            for _ in 0..depth {
                let deeper = recurse(levels.last().expect("at least base level").clone());
                levels.push(deeper.boxed());
            }
            Recursive { levels }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// Type-erased strategy handle; clones share the underlying generator.
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Depth-bounded recursive strategy: level 0 is the base case, level
    /// `i` may nest `i` levels deep. Generation picks a level uniformly.
    pub struct Recursive<V> {
        levels: Vec<BoxedStrategy<V>>,
    }

    impl<V> Strategy for Recursive<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.levels.len() as u64) as usize;
            self.levels[i].generate(rng)
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct OneOf<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    // Tuples of strategies generate tuples of values, left to right.
    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A1);
    tuple_strategy!(A2, B2);
    tuple_strategy!(A3, B3, C3);
    tuple_strategy!(A4, B4, C4, D4);

    // Integer range strategies: `lo..hi` and `lo..=hi`.
    macro_rules! range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u128;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u128;
                    (lo + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )+};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

// ------------------------------------------------------------ arbitrary

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    // Bias occasionally toward boundary values, which pure
                    // uniform sampling would essentially never produce.
                    if rng.chance(16) {
                        const EDGES: [i128; 5] =
                            [<$t>::MIN as i128, <$t>::MAX as i128, 0, 1, -1i128 as i128];
                        let e = EDGES[rng.below(EDGES.len() as u64) as usize];
                        if e >= <$t>::MIN as i128 && e <= <$t>::MAX as i128 {
                            return e as $t;
                        }
                    }
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

// ----------------------------------------------------- string (regex)

/// `&'static str` regex-subset strategies. Supported syntax: literal
/// characters, `[...]` classes with ranges, `\PC` (any non-control char),
/// and `{n}` / `{m,n}` repetition after an atom.
mod string {
    use super::strategy::Strategy;
    use super::TestRng;

    enum Atom {
        Lit(char),
        Class(Vec<char>),
        AnyPrintable,
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        match chars.next() {
                            Some(']') => break,
                            Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                                let lo = prev.take().expect("range start");
                                let hi = chars.next().expect("range end");
                                for cp in lo as u32..=hi as u32 {
                                    if let Some(ch) = char::from_u32(cp) {
                                        set.push(ch);
                                    }
                                }
                            }
                            Some(ch) => {
                                if let Some(p) = prev.take() {
                                    set.push(p);
                                }
                                prev = Some(ch);
                            }
                            None => panic!("unterminated class in pattern {pattern:?}"),
                        }
                    }
                    if let Some(p) = prev {
                        set.push(p);
                    }
                    assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                    Atom::Class(set)
                }
                '\\' => match chars.next() {
                    Some('P') => {
                        let cat = chars.next();
                        assert_eq!(cat, Some('C'), "only \\PC is supported, got \\P{cat:?}");
                        Atom::AnyPrintable
                    }
                    Some(esc) => Atom::Lit(esc),
                    None => panic!("dangling escape in pattern {pattern:?}"),
                },
                other => Atom::Lit(other),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.parse().expect("repeat lower bound"),
                        n.parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = spec.parse().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn printable(rng: &mut TestRng) -> char {
        // Mix plain ASCII with multi-byte scalars so UTF-8 handling is
        // genuinely exercised; every range below is control-free.
        match rng.below(10) {
            0..=5 => char::from_u32(0x20 + rng.below(0x5f) as u32).expect("ascii printable"),
            6 | 7 => char::from_u32(0xa1 + rng.below(0x2ff) as u32).unwrap_or('é'),
            8 => char::from_u32(0x4e00 + rng.below(0x500) as u32).unwrap_or('中'),
            _ => char::from_u32(0x1f300 + rng.below(0xff) as u32).unwrap_or('✨'),
        }
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in parse(self) {
                let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
                for _ in 0..n {
                    match &piece.atom {
                        Atom::Lit(c) => out.push(*c),
                        Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                        Atom::AnyPrintable => out.push(printable(rng)),
                    }
                }
            }
            out
        }
    }
}

// ----------------------------------------------------------- collection

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A strategy for vectors whose length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------- test_runner

pub mod test_runner {
    use super::strategy::Strategy;
    use super::{fnv1a, TestRng};
    use std::fmt;

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Drives `config.cases` deterministic cases of `test` over values from
    /// `strategy`. Panics (failing the surrounding `#[test]`) on the first
    /// `TestCaseError::Fail`; `Reject` skips the case.
    pub fn run_cases<S, F>(config: &ProptestConfig, name: &str, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name.as_bytes());
        for case in 0..config.cases {
            let seed = base ^ (case as u64).wrapping_mul(0xa076_1d64_78bd_642f);
            let mut rng = TestRng::from_seed(seed);
            let value = strategy.generate(&mut rng);
            match test(value) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest {name}: case {case}/{} failed (seed {seed:#x}): {msg}",
                    config.cases
                ),
            }
        }
    }
}

// -------------------------------------------------------------- macros

/// Declares deterministic property tests. Supports the
/// `#![proptest_config(...)]` inner attribute and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])+
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            $crate::test_runner::run_cases(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                &__strategy,
                |($($arg,)+)| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case (without panicking the whole run machinery).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($left),
                " == ",
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}: {}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

// ---------------------------------------------------------------- tests

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..2000 {
            let v = (-3i64..4).generate(&mut rng);
            assert!((-3..4).contains(&v));
            let w = (1u32..=64).generate(&mut rng);
            assert!((1..=64).contains(&w));
        }
    }

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..500 {
            let s = "[a-z]{0,8}".generate(&mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = "[a-z][a-z0-9_]{0,6}".generate(&mut rng);
            assert!(!t.is_empty() && t.chars().count() <= 7);
            assert!(t.chars().next().expect("head").is_ascii_lowercase());

            let p = "\\PC{0,12}".generate(&mut rng);
            assert!(p.chars().count() <= 12);
            assert!(p.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn oneof_and_recursion_respect_depth() {
        fn arb() -> impl Strategy<Value = String> {
            let leaf = prop_oneof![Just("x".to_string()), Just("y".to_string())];
            leaf.prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| format!("({l} {r})"))
            })
        }
        let mut rng = TestRng::from_seed(3);
        let mut seen_nested = false;
        for _ in 0..200 {
            let s = arb().generate(&mut rng);
            let depth = s.chars().filter(|c| *c == '(').count();
            assert!(depth <= 7, "depth 3 binary nesting gives at most 7 opens");
            seen_nested |= depth > 0;
        }
        assert!(seen_nested);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = TestRng::from_seed(seed);
            crate::collection::vec(any::<u64>(), 0..50).generate(&mut rng)
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_plumbing_works(v in any::<u64>(), s in "[a-z]{1,4}") {
            prop_assert!(s.len() <= 4, "len was {}", s.len());
            prop_assert_eq!(v.wrapping_add(0), v);
            if s.is_empty() { return Ok(()); }
        }
    }
}
