//! Offline shim for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the API subset the
//! workspace benches use (`bench_function`, `benchmark_group`,
//! `iter`/`iter_batched`, throughput annotations, the `criterion_group!`
//! and `criterion_main!` macros). It really measures — median and mean
//! of `sample_size` timed samples — and prints one line per benchmark,
//! but does none of Criterion's statistics, plotting, or state files.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation; printed alongside the timing when set.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Batch sizing hint for `iter_batched`; the shim treats all variants as
/// "one setup per measured invocation".
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Per-invocation timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn human_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.2} {unit}/s")
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Calibrate the per-sample iteration count so one sample is neither
    // sub-microsecond noise nor unbounded.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_nanos().max(1);
    let target_sample_ns: u128 = 5_000_000; // ~5 ms per sample
    let iters = ((target_sample_ns / per_iter).clamp(1, 100_000)) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            format!("  {}", human_rate(n as f64 / (median / 1e9), "B"))
        }
        Some(Throughput::Elements(n)) => {
            format!("  {}", human_rate(n as f64 / (median / 1e9), "elem"))
        }
        None => String::new(),
    };
    println!(
        "bench {label:<44} median {:>12}  mean {:>12}{rate}",
        human_time(median),
        human_time(mean)
    );
}

/// The harness entry point; mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    pub fn benchmark_group<S: fmt::Display>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }
}

/// Group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(
            &format!("{}/{name}", self.name),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut ran = 0u64;
        Criterion::default()
            .sample_size(2)
            .bench_function("shim_smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
