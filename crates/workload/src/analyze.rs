//! Trace analyses — the statistics behind Figures 4, 5 and 8.
//!
//! §IV-A: "We split the query log traces based on fixed time span (e.g.,
//! 1-hour, 2-hour) and analyzed the number of repeated accessed columns
//! in the time span… Figure 5 shows the ratio of queries that have at
//! least one exact same query predicate with different time spans."
//! These functions compute exactly those series over any trace.

use crate::trace::{QueryShape, TraceQuery};
use feisu_common::hash::{FxHashMap, FxHashSet};
use feisu_common::SimDuration;

/// Fig. 4: average number of *identical* (repeatedly accessed) columns
/// per window of length `span` — columns touched by at least two queries
/// in the window.
pub fn identical_columns_per_span(trace: &[TraceQuery], span: SimDuration) -> f64 {
    let mut windows = 0usize;
    let mut total_identical = 0usize;
    for window in windows_of(trace, span) {
        let mut counts: FxHashMap<&str, usize> = FxHashMap::default();
        for q in window {
            let mut seen_in_query: FxHashSet<&str> = FxHashSet::default();
            for c in &q.columns {
                if seen_in_query.insert(c) {
                    *counts.entry(c.as_str()).or_insert(0) += 1;
                }
            }
        }
        total_identical += counts.values().filter(|&&n| n >= 2).count();
        windows += 1;
    }
    if windows == 0 {
        0.0
    } else {
        total_identical as f64 / windows as f64
    }
}

/// Fig. 5: fraction of queries sharing at least one exact predicate with
/// another query inside the same window of length `span`.
pub fn predicate_similarity_ratio(trace: &[TraceQuery], span: SimDuration) -> f64 {
    let mut total = 0usize;
    let mut similar = 0usize;
    for window in windows_of(trace, span) {
        let mut counts: FxHashMap<String, usize> = FxHashMap::default();
        for q in window {
            let mut seen: FxHashSet<String> = FxHashSet::default();
            for p in &q.predicates {
                if seen.insert(p.key()) {
                    *counts.entry(p.key()).or_insert(0) += 1;
                }
            }
        }
        for q in window {
            total += 1;
            if q.predicates
                .iter()
                .any(|p| counts.get(&p.key()).copied().unwrap_or(0) >= 2)
            {
                similar += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        similar as f64 / total as f64
    }
}

/// Fig. 8: keyword frequency — the fraction of queries whose SQL uses
/// each keyword. Returned sorted by descending frequency.
pub fn keyword_frequency(trace: &[TraceQuery]) -> Vec<(String, f64)> {
    const KEYWORDS: &[&str] = &[
        "SELECT", "WHERE", "COUNT", "GROUP BY", "ORDER BY", "LIMIT", "JOIN", "SUM", "AVG", "MIN",
        "MAX", "CONTAINS", "HAVING",
    ];
    let n = trace.len().max(1) as f64;
    let mut v: Vec<(String, f64)> = KEYWORDS
        .iter()
        .map(|kw| {
            let hits = trace
                .iter()
                .filter(|q| q.sql.to_ascii_uppercase().contains(kw))
                .count();
            (kw.to_string(), hits as f64 / n)
        })
        .collect();
    v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    v
}

/// Fraction of queries that are scans/aggregations (the paper's ">99%"
/// headline for Fig. 8).
pub fn scan_family_ratio(trace: &[TraceQuery]) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    let scans = trace.iter().filter(|q| q.shape != QueryShape::Join).count();
    scans as f64 / trace.len() as f64
}

/// Splits a time-ordered trace into consecutive windows of length `span`.
fn windows_of(trace: &[TraceQuery], span: SimDuration) -> impl Iterator<Item = &[TraceQuery]> {
    let span_ns = span.as_nanos().max(1);
    let mut starts = Vec::new();
    let mut begin = 0usize;
    let window_idx = |ns: u64| ns / span_ns;
    let mut current = trace.first().map(|q| window_idx(q.at.as_nanos()));
    for (i, q) in trace.iter().enumerate() {
        let w = window_idx(q.at.as_nanos());
        if Some(w) != current {
            starts.push((begin, i));
            begin = i;
            current = Some(w);
        }
    }
    if !trace.is_empty() {
        starts.push((begin, trace.len()));
    }
    starts.into_iter().map(move |(a, b)| &trace[a..b])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate_trace, TraceSpec};

    fn trace(similarity: f64, theta: f64) -> Vec<TraceQuery> {
        generate_trace(&TraceSpec {
            queries: 2000,
            span: SimDuration::hours(100),
            similarity,
            locality_theta: theta,
            ..TraceSpec::default()
        })
    }

    #[test]
    fn fig4_identical_columns_grow_with_span() {
        let t = trace(0.6, 0.9);
        let half_hour = identical_columns_per_span(&t, SimDuration::minutes(30));
        let four_hours = identical_columns_per_span(&t, SimDuration::hours(4));
        let eight_hours = identical_columns_per_span(&t, SimDuration::hours(8));
        assert!(
            half_hour < four_hours && four_hours <= eight_hours,
            "identical columns must grow with span: {half_hour} {four_hours} {eight_hours}"
        );
        assert!(half_hour > 0.0);
    }

    #[test]
    fn fig5_similarity_ratio_grows_with_span_and_knob() {
        let t = trace(0.6, 0.9);
        let small = predicate_similarity_ratio(&t, SimDuration::minutes(30));
        let large = predicate_similarity_ratio(&t, SimDuration::hours(8));
        assert!(large > small, "ratio grows with span: {small} vs {large}");

        let loose = trace(0.05, 0.9);
        let tight = trace(0.9, 0.9);
        let r_loose = predicate_similarity_ratio(&loose, SimDuration::hours(2));
        let r_tight = predicate_similarity_ratio(&tight, SimDuration::hours(2));
        assert!(
            r_tight > r_loose + 0.2,
            "similarity knob must move the ratio: {r_loose} vs {r_tight}"
        );
    }

    #[test]
    fn fig8_keyword_ranking() {
        let t = trace(0.6, 0.9);
        let freqs = keyword_frequency(&t);
        assert_eq!(freqs[0].0, "SELECT");
        assert!((freqs[0].1 - 1.0).abs() < 1e-9, "every query SELECTs");
        let get = |kw: &str| freqs.iter().find(|(k, _)| k == kw).unwrap().1;
        assert!(get("WHERE") > 0.99);
        assert!(get("COUNT") > 0.3);
        assert!(get("JOIN") < 0.02, "joins are <1%: {}", get("JOIN"));
        assert!(scan_family_ratio(&t) > 0.99);
    }

    #[test]
    fn empty_trace_is_zero() {
        assert_eq!(identical_columns_per_span(&[], SimDuration::hours(1)), 0.0);
        assert_eq!(predicate_similarity_ratio(&[], SimDuration::hours(1)), 0.0);
        assert_eq!(scan_family_ratio(&[]), 0.0);
    }
}
