//! Workload generation and trace analysis.
//!
//! The paper evaluates Feisu on production datasets (Table I) and
//! motivates SmartIndex from a two-month production query trace (§IV-A).
//! Neither is available outside Baidu, so this crate generates
//! *schema-faithful, statistically matched* substitutes:
//!
//! * [`datasets`] — T1/T2 (200-attribute URL-click logs sharing a schema)
//!   and T3 (57-attribute webpage traces whose fields are a subset of
//!   T1/T2's), scaled by row count;
//! * [`trace`] — a query-log generator with explicit *query similarity*
//!   (probability of reusing a recently issued predicate) and *column
//!   locality* (Zipfian column popularity) knobs, plus the keyword mix of
//!   Fig. 8 (scans with filters and aggregation dominate at >99%);
//! * [`analyze`] — the trace statistics the paper reports: identical
//!   columns per time span (Fig. 4), ratio of queries sharing a predicate
//!   per span (Fig. 5), keyword frequency (Fig. 8).

pub mod analyze;
pub mod datasets;
pub mod trace;

pub use datasets::{generate_chunk, DatasetSpec};
pub use trace::{generate_trace, TraceQuery, TraceSpec};
