//! Query-trace generation with explicit similarity and locality knobs.
//!
//! §IV-A's production findings: within short time spans (1) a small set
//! of columns is repeatedly accessed (data locality) and (2) a large
//! fraction of queries shares at least one exact predicate (query
//! similarity). The human driver is trial-and-error exploration: "a user
//! is likely to first issue an aggregation query without query
//! predicates and then add predicates one by one based on the query
//! results."
//!
//! The generator models exactly that: sessions of users who zoom into a
//! table by re-issuing a recent predicate set with one change, plus a
//! background of fresh ad-hoc queries. Column choice is Zipfian. The
//! statement mix matches Fig. 8 (scan + aggregation ≥ 99%, joins rare).

use feisu_common::rng::DetRng;
use feisu_common::{SimDuration, SimInstant};
use feisu_format::Value;
use feisu_sql::ast::BinaryOp;
use feisu_sql::cnf::SimplePredicate;

/// Statement shapes for keyword accounting (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryShape {
    /// `SELECT cols FROM t WHERE …` (plain scan).
    Scan,
    /// `SELECT agg(..) FROM t WHERE …` (scan + aggregate).
    Aggregate,
    /// adds GROUP BY.
    GroupBy,
    /// adds ORDER BY … LIMIT.
    OrderBy,
    /// two-table join.
    Join,
}

/// One generated query.
#[derive(Debug, Clone)]
pub struct TraceQuery {
    pub at: SimInstant,
    pub shape: QueryShape,
    pub table: String,
    pub sql: String,
    /// Columns the query touches (select + predicates).
    pub columns: Vec<String>,
    /// Simple predicates in the WHERE clause.
    pub predicates: Vec<SimplePredicate>,
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Total queries to generate.
    pub queries: usize,
    /// Trace duration; arrivals are uniform over it.
    pub span: SimDuration,
    /// Probability that a new query reuses a predicate issued recently
    /// (the paper's query-similarity knob).
    pub similarity: f64,
    /// Zipf exponent over the column pool (the data-locality knob).
    pub locality_theta: f64,
    /// Columns in the predicate pool (named `c0..`).
    pub column_pool: usize,
    /// How many recent queries a session may copy predicates from.
    pub session_window: usize,
    /// Tables to spread queries over.
    pub tables: Vec<String>,
    pub seed: u64,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            queries: 5000,
            span: SimDuration::hours(24 * 60), // two months, as in §IV-A
            similarity: 0.6,
            locality_theta: 0.9,
            column_pool: 40,
            session_window: 50,
            tables: vec!["t1".into()],
            seed: 0xACE,
        }
    }
}

/// Generates a deterministic trace.
pub fn generate_trace(spec: &TraceSpec) -> Vec<TraceQuery> {
    let mut rng = DetRng::new(spec.seed);
    let mut out: Vec<TraceQuery> = Vec::with_capacity(spec.queries);
    let mut recent: Vec<SimplePredicate> = Vec::new();
    for i in 0..spec.queries {
        // Arrival: jittered uniform spacing keeps windows well-populated.
        let base = spec.span.as_nanos() / spec.queries.max(1) as u64;
        let at = SimInstant(base * i as u64 + rng.next_below(base.max(1)));
        let table = spec.tables[rng.index(spec.tables.len())].clone();

        // Statement mix per Fig. 8: scans and aggregations dominate.
        let r = rng.next_f64();
        let shape = if r < 0.45 {
            QueryShape::Scan
        } else if r < 0.80 {
            QueryShape::Aggregate
        } else if r < 0.92 {
            QueryShape::GroupBy
        } else if r < 0.992 {
            QueryShape::OrderBy
        } else {
            QueryShape::Join
        };

        // Predicates: 1–2, each either reused (similarity) or fresh.
        let n_preds = 1 + rng.next_below(2) as usize;
        let mut predicates = Vec::with_capacity(n_preds);
        for _ in 0..n_preds {
            let reused = !recent.is_empty() && rng.chance(spec.similarity);
            let p = if reused {
                let start = recent.len().saturating_sub(spec.session_window);
                recent[start + rng.index(recent.len() - start)].clone()
            } else {
                fresh_predicate(&mut rng, spec)
            };
            if !predicates.contains(&p) {
                predicates.push(p);
            }
        }
        for p in &predicates {
            recent.push(p.clone());
        }
        if recent.len() > spec.session_window * 4 {
            let cut = recent.len() - spec.session_window * 2;
            recent.drain(..cut);
        }

        // Selected column: also Zipfian (drives Fig. 4 locality).
        let select_col = format!("c{}", zipf_col(&mut rng, spec));
        let mut columns = vec![select_col.clone()];
        for p in &predicates {
            if !columns.contains(&p.column) {
                columns.push(p.column.clone());
            }
        }

        let where_clause = predicates
            .iter()
            .map(|p| format!("({} {} {})", p.column, p.op, p.value))
            .collect::<Vec<_>>()
            .join(if rng.chance(0.85) { " AND " } else { " OR " });
        let sql = match shape {
            QueryShape::Scan => {
                format!("SELECT {select_col} FROM {table} WHERE {where_clause}")
            }
            QueryShape::Aggregate => {
                format!("SELECT COUNT(*) FROM {table} WHERE {where_clause}")
            }
            QueryShape::GroupBy => format!(
                "SELECT {select_col}, COUNT(*) FROM {table} WHERE {where_clause} GROUP BY {select_col}"
            ),
            QueryShape::OrderBy => format!(
                "SELECT {select_col} FROM {table} WHERE {where_clause} ORDER BY {select_col} DESC LIMIT 10"
            ),
            QueryShape::Join => format!(
                "SELECT a.{select_col} FROM {table} AS a JOIN {table} AS b ON a.url = b.url WHERE a.{c} {op} {v}",
                c = predicates[0].column,
                op = predicates[0].op,
                v = predicates[0].value,
            ),
        };
        out.push(TraceQuery {
            at,
            shape,
            table,
            sql,
            columns,
            predicates,
        });
    }
    out
}

/// Maps a Zipf popularity rank onto a *numeric* filler column index of
/// the dataset schema (filler columns cycle Int64/Float64/Utf8), so the
/// generated integer predicates always type-check.
fn zipf_col(rng: &mut DetRng, spec: &TraceSpec) -> usize {
    let rank = rng.zipf(spec.column_pool, spec.locality_theta);
    (rank / 2) * 3 + (rank % 2)
}

fn fresh_predicate(rng: &mut DetRng, spec: &TraceSpec) -> SimplePredicate {
    let column = format!("c{}", zipf_col(rng, spec));
    let op = match rng.next_below(6) {
        0 => BinaryOp::Eq,
        1 => BinaryOp::NotEq,
        2 => BinaryOp::Lt,
        3 => BinaryOp::LtEq,
        4 => BinaryOp::Gt,
        _ => BinaryOp::GtEq,
    };
    // Filler int columns hold 0..=99; constants stay in range so
    // selectivity is meaningful.
    let value = Value::Int64(rng.range_i64(0, 99));
    SimplePredicate { column, op, value }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let spec = TraceSpec {
            queries: 200,
            ..TraceSpec::default()
        };
        let a = generate_trace(&spec);
        let b = generate_trace(&spec);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sql, y.sql);
            assert_eq!(x.at, y.at);
        }
    }

    #[test]
    fn arrivals_are_ordered_and_within_span() {
        let spec = TraceSpec {
            queries: 500,
            span: SimDuration::hours(10),
            ..TraceSpec::default()
        };
        let t = generate_trace(&spec);
        for w in t.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(t.last().unwrap().at.as_nanos() <= spec.span.as_nanos());
    }

    #[test]
    fn all_sql_parses() {
        let spec = TraceSpec {
            queries: 300,
            ..TraceSpec::default()
        };
        for q in generate_trace(&spec) {
            feisu_sql::parser::parse_query(&q.sql).unwrap_or_else(|e| panic!("{}: {e}", q.sql));
        }
    }

    #[test]
    fn similarity_knob_controls_reuse() {
        let reuse_fraction = |similarity: f64| {
            let spec = TraceSpec {
                queries: 1000,
                similarity,
                ..TraceSpec::default()
            };
            let t = generate_trace(&spec);
            let mut seen = std::collections::HashSet::new();
            let mut reused = 0usize;
            for q in &t {
                if q.predicates.iter().any(|p| seen.contains(&p.key())) {
                    reused += 1;
                }
                for p in &q.predicates {
                    seen.insert(p.key());
                }
            }
            reused as f64 / t.len() as f64
        };
        let low = reuse_fraction(0.05);
        let high = reuse_fraction(0.9);
        assert!(
            high > low + 0.2,
            "similarity must raise predicate reuse: {low} vs {high}"
        );
    }

    #[test]
    fn shape_mix_matches_fig8() {
        let spec = TraceSpec {
            queries: 5000,
            ..TraceSpec::default()
        };
        let t = generate_trace(&spec);
        let joins = t.iter().filter(|q| q.shape == QueryShape::Join).count();
        let scans_aggs = t.iter().filter(|q| q.shape != QueryShape::Join).count();
        assert!(
            scans_aggs as f64 / t.len() as f64 > 0.99,
            "scan-family must exceed 99%"
        );
        assert!(joins > 0, "joins exist but are rare");
    }

    #[test]
    fn columns_include_predicates() {
        let spec = TraceSpec {
            queries: 50,
            ..TraceSpec::default()
        };
        for q in generate_trace(&spec) {
            for p in &q.predicates {
                assert!(q.columns.contains(&p.column));
            }
        }
    }
}
