//! Synthetic stand-ins for the paper's Table I datasets.
//!
//! | Table | Records | Size   | Fields | Contents                      |
//! |-------|---------|--------|--------|-------------------------------|
//! | T1    | 30 B    | 62 TB  | 200    | URL-click log + query attrs   |
//! | T2    | 130 B   | 200 TB | 200    | same schema as T1             |
//! | T3    | 10 B    | 7 TB   | 57     | webpage trace, subset of T1/2 |
//!
//! The generators reproduce the *shape*: shared T1/T2 schema, T3 schema
//! as a strict field subset, Zipfian URL/keyword popularity, clustered
//! day columns (so delta encoding and zone maps behave like production),
//! and hot predicate columns named `c0..` that the trace generator
//! targets. Row counts scale down via [`DatasetSpec::rows`].

use feisu_common::rng::DetRng;
use feisu_format::{Column, DataType, Field, Schema, Value};

/// Parameters for one synthetic table.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    pub name: String,
    /// Total rows to generate.
    pub rows: usize,
    /// Attribute count (paper: 200 for T1/T2, 57 for T3).
    pub fields: usize,
    /// Distinct URLs in the pool.
    pub url_pool: usize,
    pub seed: u64,
}

impl DatasetSpec {
    /// T1 scaled to `rows` rows.
    pub fn t1(rows: usize) -> DatasetSpec {
        DatasetSpec {
            name: "t1".into(),
            rows,
            fields: 200,
            url_pool: 5000,
            seed: 0x71,
        }
    }

    /// T2 scaled to `rows` rows (same schema as T1).
    pub fn t2(rows: usize) -> DatasetSpec {
        DatasetSpec {
            name: "t2".into(),
            rows,
            fields: 200,
            url_pool: 5000,
            seed: 0x72,
        }
    }

    /// T3 scaled to `rows` rows (57 fields, subset of T1's).
    pub fn t3(rows: usize) -> DatasetSpec {
        DatasetSpec {
            name: "t3".into(),
            rows,
            fields: 57,
            url_pool: 2000,
            seed: 0x73,
        }
    }

    /// A small variant for unit tests and examples.
    pub fn tiny(name: &str, rows: usize, fields: usize) -> DatasetSpec {
        DatasetSpec {
            name: name.into(),
            rows,
            fields: fields.max(6),
            url_pool: 50,
            seed: 0x7F,
        }
    }

    /// The schema: fixed leading business attributes followed by numbered
    /// filler attributes cycling through the supported types. Because the
    /// leading fields and the numbering are shared, any T3 schema is a
    /// strict subset (prefix) of the T1/T2 schema, as in the paper.
    pub fn schema(&self) -> Schema {
        let mut fields = vec![
            Field::new("url", DataType::Utf8, false),
            Field::new("query", DataType::Utf8, false),
            Field::new("clicks", DataType::Int64, true),
            Field::new("dwell_ms", DataType::Int64, false),
            Field::new("day", DataType::Int64, false),
            Field::new("score", DataType::Float64, false),
        ];
        let mut i = 0usize;
        while fields.len() < self.fields {
            let dt = match i % 3 {
                0 => DataType::Int64,
                1 => DataType::Float64,
                _ => DataType::Utf8,
            };
            fields.push(Field::new(format!("c{i}"), dt, i % 5 == 4));
            i += 1;
        }
        Schema::new(fields)
    }
}

/// Query keywords drawn from a Zipfian pool (search terms are heavily
/// skewed in production).
const KEYWORDS: &[&str] = &[
    "weather",
    "map",
    "music",
    "video",
    "news",
    "stock",
    "translate",
    "travel",
    "game",
    "recipe",
    "movie",
    "baike",
    "tieba",
    "image",
    "shopping",
];

/// Generates rows `[start, start+len)` of the table as columns. Chunked
/// so callers can stream multi-million-row tables into block-sized
/// ingests without materializing everything.
pub fn generate_chunk(spec: &DatasetSpec, start: usize, len: usize) -> Vec<Column> {
    let schema = spec.schema();
    let len = len.min(spec.rows.saturating_sub(start));
    // Per-chunk deterministic stream: same (spec, start) ⇒ same data.
    let mut rng = DetRng::new(spec.seed ^ (start as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let mut urls = Vec::with_capacity(len);
    let mut queries = Vec::with_capacity(len);
    let mut clicks = Vec::with_capacity(len);
    let mut dwell = Vec::with_capacity(len);
    let mut day = Vec::with_capacity(len);
    let mut score = Vec::with_capacity(len);
    for r in 0..len {
        let url_rank = rng.zipf(spec.url_pool, 0.9);
        urls.push(format!(
            "https://site{url_rank}.example/page{}",
            rng.next_below(100)
        ));
        let kw = KEYWORDS[rng.zipf(KEYWORDS.len(), 0.8)];
        queries.push(kw.to_string());
        clicks.push(if rng.chance(0.02) {
            Value::Null
        } else {
            Value::Int64(rng.zipf(1000, 1.2) as i64)
        });
        dwell.push(rng.range_i64(10, 120_000));
        // Days are clustered: rows arrive roughly in time order.
        day.push(20160101 + ((start + r) / 5000) as i64 % 60);
        score.push(rng.next_f64());
    }
    let mut columns = vec![
        Column::from_utf8(urls),
        Column::from_utf8(queries),
        Column::from_values(DataType::Int64, &clicks).expect("typed clicks"),
        Column::from_i64(dwell),
        Column::from_i64(day),
        Column::from_f64(score),
    ];
    for fi in 6..schema.len() {
        let f = schema.field(fi);
        let c = match f.data_type {
            DataType::Int64 => {
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    // Filler ints bounded so predicates like `cN > k`
                    // have controllable selectivity.
                    v.push(Value::Int64(rng.range_i64(0, 99)));
                }
                if f.nullable {
                    for slot in v.iter_mut() {
                        if rng.chance(0.01) {
                            *slot = Value::Null;
                        }
                    }
                }
                Column::from_values(DataType::Int64, &v).expect("typed filler int")
            }
            DataType::Float64 => {
                Column::from_f64((0..len).map(|_| rng.next_f64() * 100.0).collect())
            }
            DataType::Utf8 => Column::from_utf8(
                (0..len)
                    .map(|_| format!("tag{}", rng.zipf(64, 0.9)))
                    .collect(),
            ),
            DataType::Bool => Column::from_bool((0..len).map(|_| rng.chance(0.5)).collect()),
        };
        columns.push(c);
    }
    columns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        assert_eq!(DatasetSpec::t1(100).schema().len(), 200);
        assert_eq!(DatasetSpec::t2(100).schema().len(), 200);
        assert_eq!(DatasetSpec::t3(100).schema().len(), 57);
    }

    #[test]
    fn t3_schema_is_subset_of_t1() {
        let t1 = DatasetSpec::t1(1).schema();
        let t3 = DatasetSpec::t3(1).schema();
        for f in t3.fields() {
            let f1 = t1.field_by_name(&f.name).expect("field present in t1");
            assert_eq!(f1.data_type, f.data_type, "{}", f.name);
        }
    }

    #[test]
    fn chunks_are_deterministic_and_sized() {
        let spec = DatasetSpec::tiny("t", 100, 10);
        let a = generate_chunk(&spec, 0, 40);
        let b = generate_chunk(&spec, 0, 40);
        assert_eq!(a, b);
        assert_eq!(a[0].len(), 40);
        // Tail chunk clamps to remaining rows.
        let tail = generate_chunk(&spec, 80, 40);
        assert_eq!(tail[0].len(), 20);
    }

    #[test]
    fn columns_match_schema_types() {
        let spec = DatasetSpec::tiny("t", 50, 12);
        let schema = spec.schema();
        let cols = generate_chunk(&spec, 0, 50);
        assert_eq!(cols.len(), schema.len());
        for (c, f) in cols.iter().zip(schema.fields()) {
            assert_eq!(c.data_type(), f.data_type, "{}", f.name);
        }
    }

    #[test]
    fn url_popularity_is_skewed() {
        let spec = DatasetSpec::tiny("t", 2000, 6);
        let cols = generate_chunk(&spec, 0, 2000);
        let urls = cols[0].utf8_slice();
        let hot = urls.iter().filter(|u| u.contains("site0.")).count();
        assert!(
            hot > 2000 / 50,
            "rank-0 site should be far above uniform: {hot}"
        );
    }

    #[test]
    fn day_column_is_clustered() {
        let spec = DatasetSpec::t1(20_000);
        let cols = generate_chunk(&spec, 0, 10_000);
        let days = cols[4].i64_slice();
        let distinct: std::collections::HashSet<_> = days.iter().collect();
        assert!(distinct.len() <= 3, "first chunk spans few days");
    }
}
