//! Authentication and authorization (paper §V-A).
//!
//! Each storage domain "has its own access control"; Feisu bridges them
//! with Single-Sign-On: a user authenticates once, receives a signed
//! credential, and the common storage layer maps that credential to
//! per-domain grants ("mapping their authentication information to
//! running job credential", §III-C). The X.509/PAM machinery of the
//! production system is replaced by signed-token stand-ins; the
//! *authorization logic* — grants, expiry, revocation — is fully real.

use feisu_common::hash::{hash_one, FxHashMap};
use feisu_common::{DomainId, FeisuError, Result, SimDuration, SimInstant, UserId};
use parking_lot::RwLock;

/// Access level a user holds on a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Grant {
    Read,
    ReadWrite,
}

/// A signed SSO credential. The signature binds user, issue time and
/// expiry to the service's secret; tampering with any field invalidates
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credential {
    pub user: UserId,
    pub issued_at: SimInstant,
    pub expires_at: SimInstant,
    signature: u64,
}

impl Credential {
    /// The signature payload.
    fn payload(user: UserId, issued_at: SimInstant, expires_at: SimInstant, secret: u64) -> u64 {
        hash_one(&(
            user.raw(),
            issued_at.as_nanos(),
            expires_at.as_nanos(),
            secret,
        ))
    }
}

#[derive(Debug, Default)]
struct UserRecord {
    grants: FxHashMap<DomainId, Grant>,
    revoked: bool,
}

/// The SSO authority: issues credentials, stores per-domain grants,
/// validates access.
pub struct AuthService {
    secret: u64,
    users: RwLock<FxHashMap<UserId, UserRecord>>,
}

impl AuthService {
    pub fn new(secret: u64) -> Self {
        AuthService {
            secret,
            users: RwLock::new(FxHashMap::default()),
        }
    }

    /// Registers a user (idempotent).
    pub fn register(&self, user: UserId) {
        self.users.write().entry(user).or_default();
    }

    /// Grants `level` on `domain` to `user`.
    pub fn grant(&self, user: UserId, domain: DomainId, level: Grant) {
        self.users
            .write()
            .entry(user)
            .or_default()
            .grants
            .insert(domain, level);
    }

    /// Removes a grant.
    pub fn revoke_grant(&self, user: UserId, domain: DomainId) {
        if let Some(rec) = self.users.write().get_mut(&user) {
            rec.grants.remove(&domain);
        }
    }

    /// Disables the user entirely (all credentials stop validating).
    pub fn revoke_user(&self, user: UserId) {
        self.users.write().entry(user).or_default().revoked = true;
    }

    /// Issues a credential valid for `validity` from `now`. The user must
    /// be registered.
    pub fn issue(
        &self,
        user: UserId,
        now: SimInstant,
        validity: SimDuration,
    ) -> Result<Credential> {
        let users = self.users.read();
        let rec = users
            .get(&user)
            .ok_or_else(|| FeisuError::Unauthenticated(format!("unknown user {user}")))?;
        if rec.revoked {
            return Err(FeisuError::Unauthenticated(format!("{user} is revoked")));
        }
        let expires_at = now + validity;
        Ok(Credential {
            user,
            issued_at: now,
            expires_at,
            signature: Credential::payload(user, now, expires_at, self.secret),
        })
    }

    /// Validates a credential: signature, expiry, revocation.
    pub fn authenticate(&self, cred: &Credential, now: SimInstant) -> Result<()> {
        let expected = Credential::payload(cred.user, cred.issued_at, cred.expires_at, self.secret);
        if cred.signature != expected {
            return Err(FeisuError::Unauthenticated(
                "bad credential signature".into(),
            ));
        }
        if now > cred.expires_at {
            return Err(FeisuError::Unauthenticated(format!(
                "credential for {} expired",
                cred.user
            )));
        }
        let users = self.users.read();
        let rec = users
            .get(&cred.user)
            .ok_or_else(|| FeisuError::Unauthenticated(format!("unknown user {}", cred.user)))?;
        if rec.revoked {
            return Err(FeisuError::Unauthenticated(format!(
                "{} is revoked",
                cred.user
            )));
        }
        Ok(())
    }

    /// Full SSO check: authenticate, then verify the per-domain grant.
    pub fn authorize(
        &self,
        cred: &Credential,
        domain: DomainId,
        need: Grant,
        now: SimInstant,
    ) -> Result<()> {
        self.authenticate(cred, now)?;
        let users = self.users.read();
        let rec = users.get(&cred.user).expect("authenticated user exists");
        match rec.grants.get(&domain) {
            Some(level) if *level >= need => Ok(()),
            Some(_) => Err(FeisuError::PermissionDenied(format!(
                "{} lacks {need:?} on {domain}",
                cred.user
            ))),
            None => Err(FeisuError::PermissionDenied(format!(
                "{} has no grant on {domain}",
                cred.user
            ))),
        }
    }

    /// Domains the user may read — the scope of the unified data view.
    pub fn readable_domains(&self, user: UserId) -> Vec<DomainId> {
        let users = self.users.read();
        let mut v: Vec<DomainId> = users
            .get(&user)
            .map(|rec| rec.grants.keys().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> AuthService {
        let s = AuthService::new(0xBA1D);
        s.register(UserId(1));
        s.grant(UserId(1), DomainId(0), Grant::Read);
        s.grant(UserId(1), DomainId(1), Grant::ReadWrite);
        s
    }

    #[test]
    fn issue_and_authenticate() {
        let s = service();
        let c = s
            .issue(UserId(1), SimInstant(0), SimDuration::hours(8))
            .unwrap();
        assert!(s.authenticate(&c, SimInstant(0)).is_ok());
        assert!(s
            .authenticate(&c, SimInstant::EPOCH + SimDuration::hours(9))
            .is_err());
    }

    #[test]
    fn tampered_credential_rejected() {
        let s = service();
        let mut c = s
            .issue(UserId(1), SimInstant(0), SimDuration::hours(8))
            .unwrap();
        c.expires_at = SimInstant::EPOCH + SimDuration::hours(10_000);
        assert!(s.authenticate(&c, SimInstant(0)).is_err());
        let mut c2 = s
            .issue(UserId(1), SimInstant(0), SimDuration::hours(8))
            .unwrap();
        c2.user = UserId(2);
        assert!(s.authenticate(&c2, SimInstant(0)).is_err());
    }

    #[test]
    fn authorize_respects_grant_levels() {
        let s = service();
        let c = s
            .issue(UserId(1), SimInstant(0), SimDuration::hours(8))
            .unwrap();
        assert!(s
            .authorize(&c, DomainId(0), Grant::Read, SimInstant(0))
            .is_ok());
        assert!(s
            .authorize(&c, DomainId(0), Grant::ReadWrite, SimInstant(0))
            .is_err());
        assert!(s
            .authorize(&c, DomainId(1), Grant::ReadWrite, SimInstant(0))
            .is_ok());
        assert!(s
            .authorize(&c, DomainId(9), Grant::Read, SimInstant(0))
            .is_err());
    }

    #[test]
    fn unknown_user_cannot_get_credential() {
        let s = service();
        assert!(s
            .issue(UserId(7), SimInstant(0), SimDuration::hours(1))
            .is_err());
    }

    #[test]
    fn revocation_cuts_existing_credentials() {
        let s = service();
        let c = s
            .issue(UserId(1), SimInstant(0), SimDuration::hours(8))
            .unwrap();
        s.revoke_user(UserId(1));
        assert!(s.authenticate(&c, SimInstant(0)).is_err());
    }

    #[test]
    fn grant_revocation() {
        let s = service();
        let c = s
            .issue(UserId(1), SimInstant(0), SimDuration::hours(8))
            .unwrap();
        s.revoke_grant(UserId(1), DomainId(0));
        assert!(s
            .authorize(&c, DomainId(0), Grant::Read, SimInstant(0))
            .is_err());
        assert_eq!(s.readable_domains(UserId(1)), vec![DomainId(1)]);
    }
}
