//! Per-node SSD data cache (paper §IV-B).
//!
//! "We implement a cache layer in Feisu's storage system using SSDs. The
//! SSD cache is managed using LRU. Currently not all query's data will be
//! cached… We manually set the cache preferences for different data based
//! on practical knowledge." — because with ad-hoc workloads, automatic
//! policies saw >80% miss rates.
//!
//! Accordingly the cache only admits paths matched by an explicit
//! preference rule; everything else bypasses it.

use bytes::Bytes;
use feisu_common::hash::FxHashMap;
use feisu_common::{ByteSize, NodeId};
use feisu_obs::{Counter, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Admission rule: paths with this prefix are cacheable.
#[derive(Debug, Clone)]
pub struct CachePreference {
    pub path_prefix: String,
}

#[derive(Debug, Default)]
struct NodeCache {
    entries: FxHashMap<String, (Bytes, u64)>,
    lru: VecDeque<(String, u64)>,
    used: u64,
    next_stamp: u64,
}

impl NodeCache {
    /// The lazy LRU queue holds one record per *touch*, not per entry, so
    /// dead records (superseded stamps, removed keys) accumulate on
    /// hit-heavy workloads that never trigger eviction. Drop them once
    /// the queue is more than twice the live-entry count — amortized
    /// O(1) per touch, and the queue stays within 2× of the map.
    fn compact_lru(&mut self) {
        if self.lru.len() <= 2 * self.entries.len() {
            return;
        }
        self.lru
            .retain(|(key, stamp)| self.entries.get(key).is_some_and(|(_, s)| s == stamp));
    }
}

/// Cache statistics (drives the §IV-B evaluation claims).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub rejected: u64,
    pub evictions: u64,
}

impl CacheStats {
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Registry handles mirroring [`CacheStats`].
struct CacheMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    rejected: Arc<Counter>,
    evictions: Arc<Counter>,
}

/// One SSD cache per node, sharing a capacity setting and preference
/// rules.
pub struct SsdCache {
    capacity_per_node: u64,
    preferences: Vec<CachePreference>,
    nodes: Mutex<FxHashMap<NodeId, NodeCache>>,
    stats: Mutex<CacheStats>,
    // Behind a Mutex because the cache is attached after it is shared
    // (`Arc<SsdCache>` inside the router).
    metrics: Mutex<Option<CacheMetrics>>,
}

impl SsdCache {
    pub fn new(capacity_per_node: ByteSize, preferences: Vec<CachePreference>) -> Self {
        SsdCache {
            capacity_per_node: capacity_per_node.as_u64(),
            preferences,
            nodes: Mutex::new(FxHashMap::default()),
            stats: Mutex::new(CacheStats::default()),
            metrics: Mutex::new(None),
        }
    }

    /// Starts publishing `feisu.ssd_cache.*` counters.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        *self.metrics.lock() = Some(CacheMetrics {
            hits: registry.counter("feisu.ssd_cache.hits"),
            misses: registry.counter("feisu.ssd_cache.misses"),
            rejected: registry.counter("feisu.ssd_cache.rejected"),
            evictions: registry.counter("feisu.ssd_cache.evictions"),
        });
    }

    /// Whether a path is admitted by the manual preference rules.
    pub fn admits(&self, path: &str) -> bool {
        self.preferences
            .iter()
            .any(|p| path.starts_with(&p.path_prefix))
    }

    /// Looks up a path in `node`'s cache. A miss leaves the node map
    /// untouched — probing thousands of nodes that never cached anything
    /// must not grow it.
    pub fn get(&self, node: NodeId, path: &str) -> Option<Bytes> {
        let mut nodes = self.nodes.lock();
        let hit = match nodes.get_mut(&node) {
            Some(cache) => match cache.entries.get_mut(path) {
                Some((data, stamp)) => {
                    cache.next_stamp += 1;
                    *stamp = cache.next_stamp;
                    let s = *stamp;
                    let data = data.clone();
                    cache.lru.push_back((path.to_string(), s));
                    cache.compact_lru();
                    Some(data)
                }
                None => None,
            },
            None => None,
        };
        let mut stats = self.stats.lock();
        if hit.is_some() {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
        drop(stats);
        if let Some(m) = self.metrics.lock().as_ref() {
            if hit.is_some() {
                m.hits.inc();
            } else {
                m.misses.inc();
            }
        }
        hit
    }

    /// Offers a path's bytes for caching on `node`; rejected unless a
    /// preference rule admits it or `force` (user pin) is set.
    pub fn put(&self, node: NodeId, path: &str, data: Bytes, force: bool) {
        if !force && !self.admits(path) {
            self.note_rejected();
            return;
        }
        let size = data.len() as u64;
        if size > self.capacity_per_node {
            self.note_rejected();
            return;
        }
        let mut nodes = self.nodes.lock();
        let cache = nodes.entry(node).or_default();
        if let Some((old, _)) = cache.entries.remove(path) {
            cache.used -= old.len() as u64;
        }
        let mut evictions = 0u64;
        while cache.used + size > self.capacity_per_node {
            // Lazy LRU queue: pop until a live record is found.
            match cache.lru.pop_front() {
                Some((key, stamp)) => {
                    let live = cache.entries.get(&key).is_some_and(|(_, s)| *s == stamp);
                    if live {
                        let (old, _) = cache.entries.remove(&key).expect("checked");
                        cache.used -= old.len() as u64;
                        evictions += 1;
                    }
                }
                None => break,
            }
        }
        cache.next_stamp += 1;
        let stamp = cache.next_stamp;
        cache.lru.push_back((path.to_string(), stamp));
        cache.used += size;
        cache.entries.insert(path.to_string(), (data, stamp));
        cache.compact_lru();
        if evictions > 0 {
            self.stats.lock().evictions += evictions;
            if let Some(m) = self.metrics.lock().as_ref() {
                m.evictions.add(evictions);
            }
        }
    }

    fn note_rejected(&self) {
        self.stats.lock().rejected += 1;
        if let Some(m) = self.metrics.lock().as_ref() {
            m.rejected.inc();
        }
    }

    /// Bytes cached on one node.
    pub fn used_on(&self, node: NodeId) -> ByteSize {
        ByteSize(self.nodes.lock().get(&node).map_or(0, |c| c.used))
    }

    /// Length of the lazy LRU queue on one node (bounded-growth tests).
    pub fn lru_queue_len_on(&self, node: NodeId) -> usize {
        self.nodes.lock().get(&node).map_or(0, |c| c.lru.len())
    }

    /// Nodes with allocated cache state (miss-allocation regression).
    pub fn tracked_nodes(&self) -> usize {
        self.nodes.lock().len()
    }

    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Drops everything cached on a node (e.g. node restart).
    pub fn invalidate_node(&self, node: NodeId) {
        self.nodes.lock().remove(&node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(kb: u64) -> SsdCache {
        SsdCache::new(
            ByteSize::kib(kb),
            vec![CachePreference {
                path_prefix: "/hdfs/hot/".into(),
            }],
        )
    }

    #[test]
    fn admission_by_preference_only() {
        let c = cache(64);
        c.put(
            NodeId(0),
            "/hdfs/cold/x",
            Bytes::from_static(b"data"),
            false,
        );
        assert!(c.get(NodeId(0), "/hdfs/cold/x").is_none());
        assert_eq!(c.stats().rejected, 1);
        c.put(NodeId(0), "/hdfs/hot/x", Bytes::from_static(b"data"), false);
        assert!(c.get(NodeId(0), "/hdfs/hot/x").is_some());
    }

    #[test]
    fn force_pin_bypasses_preferences() {
        let c = cache(64);
        c.put(NodeId(0), "/hdfs/cold/x", Bytes::from_static(b"data"), true);
        assert!(c.get(NodeId(0), "/hdfs/cold/x").is_some());
    }

    #[test]
    fn caches_are_per_node() {
        let c = cache(64);
        c.put(NodeId(0), "/hdfs/hot/x", Bytes::from_static(b"data"), false);
        assert!(c.get(NodeId(1), "/hdfs/hot/x").is_none());
        assert!(c.get(NodeId(0), "/hdfs/hot/x").is_some());
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let c = cache(1); // 1 KiB
        let blob = Bytes::from(vec![0u8; 400]);
        c.put(NodeId(0), "/hdfs/hot/a", blob.clone(), false);
        c.put(NodeId(0), "/hdfs/hot/b", blob.clone(), false);
        // Touch a so b is LRU.
        assert!(c.get(NodeId(0), "/hdfs/hot/a").is_some());
        c.put(NodeId(0), "/hdfs/hot/c", blob.clone(), false);
        assert!(c.get(NodeId(0), "/hdfs/hot/b").is_none(), "b evicted");
        assert!(c.get(NodeId(0), "/hdfs/hot/a").is_some());
        assert!(c.get(NodeId(0), "/hdfs/hot/c").is_some());
        assert!(c.stats().evictions >= 1);
        assert!(c.used_on(NodeId(0)).as_u64() <= 1024);
    }

    #[test]
    fn oversized_object_rejected() {
        let c = cache(1);
        c.put(
            NodeId(0),
            "/hdfs/hot/big",
            Bytes::from(vec![0u8; 4096]),
            false,
        );
        assert!(c.get(NodeId(0), "/hdfs/hot/big").is_none());
    }

    #[test]
    fn invalidate_node_clears() {
        let c = cache(64);
        c.put(NodeId(0), "/hdfs/hot/x", Bytes::from_static(b"d"), false);
        c.invalidate_node(NodeId(0));
        assert!(c.get(NodeId(0), "/hdfs/hot/x").is_none());
        assert_eq!(c.used_on(NodeId(0)), ByteSize::ZERO);
    }

    #[test]
    fn attached_registry_mirrors_stats() {
        let registry = MetricsRegistry::new();
        let c = cache(64);
        c.attach_metrics(&registry);
        c.put(NodeId(0), "/hdfs/cold/x", Bytes::from_static(b"d"), false);
        c.put(NodeId(0), "/hdfs/hot/x", Bytes::from_static(b"d"), false);
        c.get(NodeId(0), "/hdfs/hot/x");
        c.get(NodeId(0), "/hdfs/hot/y");
        assert_eq!(registry.counter("feisu.ssd_cache.rejected").get(), 1);
        assert_eq!(registry.counter("feisu.ssd_cache.hits").get(), 1);
        assert_eq!(registry.counter("feisu.ssd_cache.misses").get(), 1);
    }

    #[test]
    fn hit_heavy_workload_keeps_lru_queue_bounded() {
        let c = cache(64);
        c.put(NodeId(0), "/hdfs/hot/a", Bytes::from_static(b"a"), false);
        c.put(NodeId(0), "/hdfs/hot/b", Bytes::from_static(b"b"), false);
        for _ in 0..10_000 {
            assert!(c.get(NodeId(0), "/hdfs/hot/a").is_some());
        }
        // Two live entries: the lazy queue must stay within 2× of that,
        // not grow by one record per hit.
        assert!(
            c.lru_queue_len_on(NodeId(0)) <= 4,
            "queue leaked: {} records for 2 entries",
            c.lru_queue_len_on(NodeId(0))
        );
        // Compaction must not lose recency: b is still the LRU victim.
        let blob = Bytes::from(vec![0u8; 64 * 1024 - 1]);
        c.put(NodeId(0), "/hdfs/hot/c", blob, false);
        assert!(c.get(NodeId(0), "/hdfs/hot/b").is_none(), "b evicted");
        assert!(c.get(NodeId(0), "/hdfs/hot/a").is_some());
    }

    #[test]
    fn pure_misses_do_not_allocate_node_state() {
        let c = cache(64);
        for n in 0..4_000 {
            assert!(c.get(NodeId(n), "/hdfs/hot/x").is_none());
        }
        assert_eq!(c.tracked_nodes(), 0, "misses must not allocate NodeCache");
        assert_eq!(c.stats().misses, 4_000);
        // A real put still allocates exactly one.
        c.put(NodeId(7), "/hdfs/hot/x", Bytes::from_static(b"d"), false);
        assert_eq!(c.tracked_nodes(), 1);
        assert!(c.get(NodeId(7), "/hdfs/hot/x").is_some());
    }

    #[test]
    fn reinsert_updates_accounting() {
        let c = cache(64);
        c.put(NodeId(0), "/hdfs/hot/x", Bytes::from(vec![0u8; 100]), false);
        c.put(NodeId(0), "/hdfs/hot/x", Bytes::from(vec![0u8; 200]), false);
        assert_eq!(c.used_on(NodeId(0)), ByteSize(200));
    }
}
