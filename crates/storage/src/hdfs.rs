//! HDFS-like distributed file system domain.
//!
//! Business data (web links, pages, indices) live in global file systems
//! (§II). Placement follows the classic HDFS policy: first replica on the
//! writer's node (or a random one), second on a different node in the
//! same rack, third on a node in a different rack — giving both
//! rack-failure tolerance and cheap local reads.

use crate::domain::{ObjectStore, ReadResult, StorageDomain, StoredObject};
use bytes::Bytes;
use feisu_cluster::{CostModel, StorageMedium, Topology};
use feisu_common::hash::{FxHashMap, FxHashSet};
use feisu_common::rng::DetRng;
use feisu_common::{ByteSize, DomainId, NodeId, Result, SimDuration};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// A replicated distributed file system over the simulated cluster.
pub struct HdfsDomain {
    store: ObjectStore,
    replication: usize,
    rng: Mutex<DetRng>,
}

impl HdfsDomain {
    pub fn new(
        id: DomainId,
        prefix: impl Into<String>,
        topology: Arc<Topology>,
        cost: CostModel,
        replication: usize,
        seed: u64,
    ) -> Self {
        HdfsDomain {
            store: ObjectStore {
                id,
                prefix: prefix.into(),
                medium: StorageMedium::Hdd,
                topology,
                cost,
                extra_read_latency: SimDuration::ZERO,
                objects: RwLock::new(FxHashMap::default()),
                down_nodes: RwLock::new(FxHashSet::default()),
            },
            replication: replication.max(1),
            rng: Mutex::new(DetRng::new(seed)),
        }
    }

    /// HDFS-style placement: writer-local, same-rack, off-rack.
    fn place(&self, near: Option<NodeId>) -> Vec<NodeId> {
        let topo = &self.store.topology;
        let nodes = topo.nodes();
        assert!(!nodes.is_empty(), "placement on empty topology");
        let mut rng = self.rng.lock();
        let first = near
            .filter(|n| topo.contains(*n))
            .unwrap_or_else(|| nodes[rng.index(nodes.len())].id);
        let mut replicas = vec![first];
        if self.replication >= 2 {
            let first_rack = topo.node(first).expect("placed node exists").rack;
            let same_rack: Vec<NodeId> = topo
                .rack_members(first_rack)
                .filter(|&n| n != first)
                .collect();
            if let Some(&second) = pick(&same_rack, &mut rng) {
                replicas.push(second);
            }
        }
        while replicas.len() < self.replication {
            let first_rack = topo.node(first).expect("placed node exists").rack;
            let candidates: Vec<NodeId> = nodes
                .iter()
                .filter(|n| n.rack != first_rack && !replicas.contains(&n.id))
                .map(|n| n.id)
                .collect();
            match pick(&candidates, &mut rng) {
                Some(&next) => replicas.push(next),
                None => {
                    // Cluster smaller than the replication factor: fall
                    // back to any unused node, then stop.
                    let fallback: Vec<NodeId> = nodes
                        .iter()
                        .map(|n| n.id)
                        .filter(|n| !replicas.contains(n))
                        .collect();
                    match pick(&fallback, &mut rng) {
                        Some(&next) => replicas.push(next),
                        None => break,
                    }
                }
            }
        }
        replicas
    }
}

fn pick<'a>(candidates: &'a [NodeId], rng: &mut DetRng) -> Option<&'a NodeId> {
    if candidates.is_empty() {
        None
    } else {
        Some(&candidates[rng.index(candidates.len())])
    }
}

impl StorageDomain for HdfsDomain {
    fn id(&self) -> DomainId {
        self.store.id
    }

    fn prefix(&self) -> &str {
        &self.store.prefix
    }

    fn put(&self, path: &str, data: Bytes, near: Option<NodeId>) -> Result<()> {
        let replicas = self.place(near);
        self.store
            .objects
            .write()
            .insert(path.to_string(), StoredObject { data, replicas });
        Ok(())
    }

    fn read_from(&self, path: &str, reader: NodeId) -> Result<ReadResult> {
        self.store.read_from(path, reader)
    }

    fn replicas(&self, path: &str) -> Result<Vec<NodeId>> {
        self.store.replicas(path)
    }

    fn exists(&self, path: &str) -> bool {
        self.store.exists(path)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.store.list(prefix)
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.store.delete(path)
    }

    fn set_node_available(&self, node: NodeId, up: bool) {
        self.store.set_node_available(node, up);
    }

    fn stored_bytes(&self) -> ByteSize {
        self.store.stored_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain(replication: usize) -> (HdfsDomain, Arc<Topology>) {
        let topo = Arc::new(Topology::grid(2, 2, 3)); // 12 nodes
        let d = HdfsDomain::new(
            DomainId(1),
            "hdfs",
            topo.clone(),
            CostModel::default(),
            replication,
            42,
        );
        (d, topo)
    }

    #[test]
    fn put_get_roundtrip() {
        let (d, _) = domain(3);
        d.put("/a/b", Bytes::from_static(b"hello"), Some(NodeId(0)))
            .unwrap();
        let r = d.read_from("/a/b", NodeId(0)).unwrap();
        assert_eq!(&r.data[..], b"hello");
        assert_eq!(r.served_from, NodeId(0), "local replica preferred");
        assert_eq!(r.cost.network, feisu_common::SimDuration::ZERO);
    }

    #[test]
    fn placement_is_rack_aware() {
        let (d, topo) = domain(3);
        d.put("/x", Bytes::from_static(b"x"), Some(NodeId(0)))
            .unwrap();
        let reps = d.replicas("/x").unwrap();
        assert_eq!(reps.len(), 3);
        assert_eq!(reps[0], NodeId(0));
        let racks: Vec<u32> = reps.iter().map(|&n| topo.node(n).unwrap().rack).collect();
        assert_eq!(racks[0], racks[1], "second replica same rack");
        assert_ne!(racks[0], racks[2], "third replica off-rack");
    }

    #[test]
    fn remote_read_costs_network() {
        let (d, topo) = domain(1);
        d.put("/x", Bytes::from(vec![0u8; 1024]), Some(NodeId(0)))
            .unwrap();
        // Find a node in another data center.
        let far = topo.nodes().iter().find(|n| n.datacenter != 0).unwrap().id;
        let r = d.read_from("/x", far).unwrap();
        assert!(r.cost.network > feisu_common::SimDuration::ZERO);
        assert_eq!(r.served_from, NodeId(0));
    }

    #[test]
    fn failover_to_replica_on_node_down() {
        let (d, _) = domain(3);
        d.put("/x", Bytes::from_static(b"x"), Some(NodeId(0)))
            .unwrap();
        d.set_node_available(NodeId(0), false);
        let r = d.read_from("/x", NodeId(0)).unwrap();
        assert_ne!(r.served_from, NodeId(0));
        // All replicas down → error.
        for rep in d.replicas("/x").unwrap() {
            d.set_node_available(rep, false);
        }
        assert!(d.read_from("/x", NodeId(0)).is_err());
        // Recovery restores service.
        d.set_node_available(NodeId(0), true);
        assert!(d.read_from("/x", NodeId(0)).is_ok());
    }

    #[test]
    fn replication_clamped_to_cluster_size() {
        let topo = Arc::new(Topology::grid(1, 1, 2));
        let d = HdfsDomain::new(DomainId(1), "hdfs", topo, CostModel::default(), 5, 7);
        d.put("/x", Bytes::from_static(b"x"), None).unwrap();
        assert_eq!(d.replicas("/x").unwrap().len(), 2);
    }

    #[test]
    fn list_and_delete() {
        let (d, _) = domain(1);
        d.put("/t1/b0", Bytes::from_static(b"0"), None).unwrap();
        d.put("/t1/b1", Bytes::from_static(b"1"), None).unwrap();
        d.put("/t2/b0", Bytes::from_static(b"2"), None).unwrap();
        assert_eq!(
            d.list("/t1/"),
            vec!["/t1/b0".to_string(), "/t1/b1".to_string()]
        );
        d.delete("/t1/b0").unwrap();
        assert!(!d.exists("/t1/b0"));
        assert!(d.delete("/t1/b0").is_err());
    }

    #[test]
    fn stored_bytes_counts_replicas() {
        let (d, _) = domain(3);
        d.put("/x", Bytes::from(vec![0u8; 100]), None).unwrap();
        assert_eq!(d.stored_bytes(), ByteSize(300));
    }
}
