//! Per-node local file system domain.
//!
//! "Log data are stored in the local file systems of the online machines"
//! (§II) — 2.3 GB/hour/node of it. There is no replication: an object
//! lives exactly on the node that produced it, which is why Feisu's
//! scheduler must run log-scanning tasks *on* those nodes (the
//! light-weight leaf process of §III-B). Reading another node's local
//! data pays the full network transfer.

use crate::domain::{ReadResult, StorageDomain};
use bytes::Bytes;
use feisu_cluster::simclock::TimeTally;
use feisu_cluster::{CostModel, StorageMedium, Topology};
use feisu_common::hash::{FxHashMap, FxHashSet};
use feisu_common::{ByteSize, DomainId, FeisuError, NodeId, Result};
use parking_lot::RwLock;
use std::sync::Arc;

/// The union of every node's local file system. Paths are namespaced by
/// owner node internally; lookups search the owner.
pub struct LocalFsDomain {
    id: DomainId,
    prefix: String,
    topology: Arc<Topology>,
    cost: CostModel,
    /// path → (owner node, bytes)
    objects: RwLock<FxHashMap<String, (NodeId, Bytes)>>,
    down_nodes: RwLock<FxHashSet<NodeId>>,
}

impl LocalFsDomain {
    pub fn new(
        id: DomainId,
        prefix: impl Into<String>,
        topology: Arc<Topology>,
        cost: CostModel,
    ) -> Self {
        LocalFsDomain {
            id,
            prefix: prefix.into(),
            topology,
            cost,
            objects: RwLock::new(FxHashMap::default()),
            down_nodes: RwLock::new(FxHashSet::default()),
        }
    }

    /// The node owning a path.
    pub fn owner(&self, path: &str) -> Option<NodeId> {
        self.objects.read().get(path).map(|(n, _)| *n)
    }
}

impl StorageDomain for LocalFsDomain {
    fn id(&self) -> DomainId {
        self.id
    }

    fn prefix(&self) -> &str {
        &self.prefix
    }

    fn put(&self, path: &str, data: Bytes, near: Option<NodeId>) -> Result<()> {
        let owner = near.ok_or_else(|| {
            FeisuError::Storage("local fs requires an owning node for writes".into())
        })?;
        if !self.topology.contains(owner) {
            return Err(FeisuError::Storage(format!("{owner} not in topology")));
        }
        self.objects.write().insert(path.to_string(), (owner, data));
        Ok(())
    }

    fn read_from(&self, path: &str, reader: NodeId) -> Result<ReadResult> {
        let objects = self.objects.read();
        let (owner, data) = objects
            .get(path)
            .ok_or_else(|| FeisuError::Storage(format!("local: no such object `{path}`")))?;
        if self.down_nodes.read().contains(owner) {
            return Err(FeisuError::Storage(format!(
                "local: owner {owner} of `{path}` is down (no replicas exist)"
            )));
        }
        let size = ByteSize(data.len() as u64);
        let hops = self.topology.hops(reader, *owner)?;
        let mut cost = TimeTally::new();
        cost.add_io(self.cost.read(StorageMedium::Hdd, size));
        cost.add_network(self.cost.network(hops, size));
        Ok(ReadResult {
            data: data.clone(),
            cost,
            served_from: *owner,
            medium: StorageMedium::Hdd,
            hops,
            cache_tier: None,
        })
    }

    fn replicas(&self, path: &str) -> Result<Vec<NodeId>> {
        self.owner(path)
            .map(|n| vec![n])
            .ok_or_else(|| FeisuError::Storage(format!("local: no such object `{path}`")))
    }

    fn exists(&self, path: &str) -> bool {
        self.objects.read().contains_key(path)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .objects
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        v
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.objects
            .write()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| FeisuError::Storage(format!("local: no such object `{path}`")))
    }

    fn set_node_available(&self, node: NodeId, up: bool) {
        let mut down = self.down_nodes.write();
        if up {
            down.remove(&node);
        } else {
            down.insert(node);
        }
    }

    fn stored_bytes(&self) -> ByteSize {
        ByteSize(
            self.objects
                .read()
                .values()
                .map(|(_, d)| d.len() as u64)
                .sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> LocalFsDomain {
        LocalFsDomain::new(
            DomainId(0),
            "local",
            Arc::new(Topology::grid(1, 2, 2)),
            CostModel::default(),
        )
    }

    #[test]
    fn write_requires_owner() {
        let d = domain();
        assert!(d.put("/log/0", Bytes::from_static(b"x"), None).is_err());
        assert!(d
            .put("/log/0", Bytes::from_static(b"x"), Some(NodeId(99)))
            .is_err());
        d.put("/log/0", Bytes::from_static(b"x"), Some(NodeId(1)))
            .unwrap();
        assert_eq!(d.owner("/log/0"), Some(NodeId(1)));
        assert_eq!(d.replicas("/log/0").unwrap(), vec![NodeId(1)]);
    }

    #[test]
    fn local_read_is_free_of_network() {
        let d = domain();
        d.put("/log/0", Bytes::from(vec![0u8; 2048]), Some(NodeId(1)))
            .unwrap();
        let local = d.read_from("/log/0", NodeId(1)).unwrap();
        assert_eq!(local.cost.network, feisu_common::SimDuration::ZERO);
        let remote = d.read_from("/log/0", NodeId(3)).unwrap();
        assert!(remote.cost.network > feisu_common::SimDuration::ZERO);
        assert!(remote.cost.total() > local.cost.total());
    }

    #[test]
    fn no_replicas_means_owner_down_is_fatal() {
        let d = domain();
        d.put("/log/0", Bytes::from_static(b"x"), Some(NodeId(1)))
            .unwrap();
        d.set_node_available(NodeId(1), false);
        assert!(d.read_from("/log/0", NodeId(0)).is_err());
        d.set_node_available(NodeId(1), true);
        assert!(d.read_from("/log/0", NodeId(0)).is_ok());
    }

    #[test]
    fn missing_object_errors() {
        let d = domain();
        assert!(d.read_from("/nope", NodeId(0)).is_err());
        assert!(d.replicas("/nope").is_err());
        assert!(!d.exists("/nope"));
    }
}
