//! Key-value label store domain.
//!
//! "Labeled data can be stored in key-value stores" (§II): small,
//! hand-produced records (training labels, bad-case annotations) accessed
//! by point lookups. Modeled as an SSD-backed hash-partitioned store:
//! a key's home node is chosen by consistent hashing over the topology,
//! reads are a single SSD access plus network hops.

use crate::domain::{ReadResult, StorageDomain};
use bytes::Bytes;
use feisu_cluster::simclock::TimeTally;
use feisu_cluster::{CostModel, StorageMedium, Topology};
use feisu_common::hash::{hash_one, FxHashMap, FxHashSet};
use feisu_common::{ByteSize, DomainId, FeisuError, NodeId, Result};
use parking_lot::RwLock;
use std::sync::Arc;

/// Hash-partitioned SSD key-value store.
pub struct KvDomain {
    id: DomainId,
    prefix: String,
    topology: Arc<Topology>,
    cost: CostModel,
    objects: RwLock<FxHashMap<String, Bytes>>,
    down_nodes: RwLock<FxHashSet<NodeId>>,
}

impl KvDomain {
    pub fn new(
        id: DomainId,
        prefix: impl Into<String>,
        topology: Arc<Topology>,
        cost: CostModel,
    ) -> Self {
        KvDomain {
            id,
            prefix: prefix.into(),
            topology,
            cost,
            objects: RwLock::new(FxHashMap::default()),
            down_nodes: RwLock::new(FxHashSet::default()),
        }
    }

    /// Home node of a key (rendezvous by hash).
    pub fn home(&self, path: &str) -> NodeId {
        let nodes = self.topology.nodes();
        assert!(!nodes.is_empty());
        nodes[(hash_one(&path) % nodes.len() as u64) as usize].id
    }
}

impl StorageDomain for KvDomain {
    fn id(&self) -> DomainId {
        self.id
    }

    fn prefix(&self) -> &str {
        &self.prefix
    }

    fn put(&self, path: &str, data: Bytes, _near: Option<NodeId>) -> Result<()> {
        self.objects.write().insert(path.to_string(), data);
        Ok(())
    }

    fn read_from(&self, path: &str, reader: NodeId) -> Result<ReadResult> {
        let objects = self.objects.read();
        let data = objects
            .get(path)
            .ok_or_else(|| FeisuError::Storage(format!("kv: no such key `{path}`")))?;
        let home = self.home(path);
        if self.down_nodes.read().contains(&home) {
            return Err(FeisuError::Storage(format!(
                "kv: home node {home} for `{path}` is down"
            )));
        }
        let size = ByteSize(data.len() as u64);
        let hops = self.topology.hops(reader, home)?;
        let mut cost = TimeTally::new();
        cost.add_io(self.cost.read(StorageMedium::Ssd, size));
        cost.add_network(self.cost.network(hops, size));
        Ok(ReadResult {
            data: data.clone(),
            cost,
            served_from: home,
            medium: StorageMedium::Ssd,
            hops,
            cache_tier: None,
        })
    }

    fn replicas(&self, path: &str) -> Result<Vec<NodeId>> {
        if self.objects.read().contains_key(path) {
            Ok(vec![self.home(path)])
        } else {
            Err(FeisuError::Storage(format!("kv: no such key `{path}`")))
        }
    }

    fn exists(&self, path: &str) -> bool {
        self.objects.read().contains_key(path)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .objects
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        v
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.objects
            .write()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| FeisuError::Storage(format!("kv: no such key `{path}`")))
    }

    fn set_node_available(&self, node: NodeId, up: bool) {
        let mut down = self.down_nodes.write();
        if up {
            down.remove(&node);
        } else {
            down.insert(node);
        }
    }

    fn stored_bytes(&self) -> ByteSize {
        ByteSize(self.objects.read().values().map(|d| d.len() as u64).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> KvDomain {
        KvDomain::new(
            DomainId(3),
            "kv",
            Arc::new(Topology::grid(1, 2, 2)),
            CostModel::default(),
        )
    }

    #[test]
    fn point_lookup_roundtrip() {
        let d = domain();
        d.put("/labels/q1", Bytes::from_static(b"relevant"), None)
            .unwrap();
        let r = d.read_from("/labels/q1", NodeId(0)).unwrap();
        assert_eq!(&r.data[..], b"relevant");
        assert_eq!(r.medium, StorageMedium::Ssd);
    }

    #[test]
    fn home_is_stable() {
        let d = domain();
        assert_eq!(d.home("/labels/q1"), d.home("/labels/q1"));
    }

    #[test]
    fn ssd_faster_than_hdd_read() {
        let d = domain();
        d.put("/k", Bytes::from(vec![0u8; 4096]), None).unwrap();
        let home = d.home("/k");
        let r = d.read_from("/k", home).unwrap();
        let hdd = CostModel::default().read(StorageMedium::Hdd, ByteSize(4096));
        assert!(r.cost.io < hdd);
    }

    #[test]
    fn down_home_node_fails_lookup() {
        let d = domain();
        d.put("/k", Bytes::from_static(b"v"), None).unwrap();
        d.set_node_available(d.home("/k"), false);
        assert!(d.read_from("/k", NodeId(0)).is_err());
    }
}
