//! Heterogeneous storage substrate.
//!
//! Baidu's data lives on several *independent* storage systems (paper
//! §II): log data on online machines' local file systems, business data
//! on HDFS, archival data on the Fatman cold store, labeled data in
//! key-value stores. Feisu never copies them into one warehouse; instead
//! its common storage layer (§III-C) routes unified paths
//! (`/hdfs/...`, `/ffs/...`, `/kv/...`, local by default) to per-domain
//! plugins and maps one sign-on to per-domain credentials (§V-A).
//!
//! Every backend here is a real implementation against the simulated
//! cluster: replica placement is rack-aware, reads pick the cheapest
//! replica by hop distance, and every byte moved is charged to the
//! deterministic cost model.

pub mod auth;
pub mod cache;
pub mod domain;
pub mod fatman;
pub mod hdfs;
pub mod kv;
pub mod localfs;
pub mod router;

pub use auth::{AuthService, Credential, Grant};
pub use bytes::Bytes;
pub use cache::{
    BlockCache, CacheAttr, CacheHit, CachePin, CacheStats, CacheTier, CacheTierRow, TieredCache,
};
pub use domain::{ReadResult, StorageDomain};
pub use router::StorageRouter;
