//! Fatman-like cold archival storage domain.
//!
//! Fatman is Baidu's "cost-saving and reliable archival storage based on
//! volunteer resources" (the paper's reference \[3\]): it scavenges idle
//! disk space across many machines, so reads are cheap in dollars but
//! slow — the volunteer node must be woken, and data may need recoding.
//! We model that as a replicated store on HDD with a large fixed per-read
//! latency penalty and placement that deliberately spreads replicas
//! across data centers (archival durability over read locality).

use crate::domain::{ObjectStore, ReadResult, StorageDomain, StoredObject};
use bytes::Bytes;
use feisu_cluster::{CostModel, StorageMedium, Topology};
use feisu_common::hash::{FxHashMap, FxHashSet};
use feisu_common::rng::DetRng;
use feisu_common::{ByteSize, DomainId, NodeId, Result, SimDuration};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// Cold archival store: durable, geo-spread, slow to read.
pub struct FatmanDomain {
    store: ObjectStore,
    replication: usize,
    rng: Mutex<DetRng>,
}

impl FatmanDomain {
    pub fn new(
        id: DomainId,
        prefix: impl Into<String>,
        topology: Arc<Topology>,
        cost: CostModel,
        replication: usize,
        seed: u64,
    ) -> Self {
        FatmanDomain {
            store: ObjectStore {
                id,
                prefix: prefix.into(),
                medium: StorageMedium::Hdd,
                topology,
                cost,
                // Cold-storage wake-up/recode penalty per read.
                extra_read_latency: SimDuration::millis(200),
                objects: RwLock::new(FxHashMap::default()),
                down_nodes: RwLock::new(FxHashSet::default()),
            },
            replication: replication.max(1),
            rng: Mutex::new(DetRng::new(seed)),
        }
    }

    /// Archival placement: replicas spread over distinct data centers
    /// where possible, ignoring the writer's locality entirely.
    fn place(&self) -> Vec<NodeId> {
        let nodes = self.store.topology.nodes();
        assert!(!nodes.is_empty(), "placement on empty topology");
        let mut rng = self.rng.lock();
        let mut replicas: Vec<NodeId> = Vec::new();
        let mut used_dcs: Vec<u32> = Vec::new();
        // First pass: one replica per distinct data center.
        while replicas.len() < self.replication {
            let candidates: Vec<NodeId> = nodes
                .iter()
                .filter(|n| !used_dcs.contains(&n.datacenter) && !replicas.contains(&n.id))
                .map(|n| n.id)
                .collect();
            if candidates.is_empty() {
                break;
            }
            let chosen = candidates[rng.index(candidates.len())];
            used_dcs.push(self.store.topology.node(chosen).expect("exists").datacenter);
            replicas.push(chosen);
        }
        // Second pass: fill up anywhere.
        while replicas.len() < self.replication {
            let candidates: Vec<NodeId> = nodes
                .iter()
                .filter(|n| !replicas.contains(&n.id))
                .map(|n| n.id)
                .collect();
            if candidates.is_empty() {
                break;
            }
            replicas.push(candidates[rng.index(candidates.len())]);
        }
        replicas
    }
}

impl StorageDomain for FatmanDomain {
    fn id(&self) -> DomainId {
        self.store.id
    }

    fn prefix(&self) -> &str {
        &self.store.prefix
    }

    fn put(&self, path: &str, data: Bytes, _near: Option<NodeId>) -> Result<()> {
        let replicas = self.place();
        self.store
            .objects
            .write()
            .insert(path.to_string(), StoredObject { data, replicas });
        Ok(())
    }

    fn read_from(&self, path: &str, reader: NodeId) -> Result<ReadResult> {
        self.store.read_from(path, reader)
    }

    fn replicas(&self, path: &str) -> Result<Vec<NodeId>> {
        self.store.replicas(path)
    }

    fn exists(&self, path: &str) -> bool {
        self.store.exists(path)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.store.list(prefix)
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.store.delete(path)
    }

    fn set_node_available(&self, node: NodeId, up: bool) {
        self.store.set_node_available(node, up);
    }

    fn stored_bytes(&self) -> ByteSize {
        self.store.stored_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_pay_cold_penalty() {
        let topo = Arc::new(Topology::grid(2, 2, 2));
        let cold = FatmanDomain::new(DomainId(2), "ffs", topo.clone(), CostModel::default(), 2, 1);
        cold.put("/arch/x", Bytes::from(vec![0u8; 1024]), None)
            .unwrap();
        let r = cold
            .read_from("/arch/x", cold.replicas("/arch/x").unwrap()[0])
            .unwrap();
        // IO cost includes the 200 ms penalty on top of HDD seek+stream.
        assert!(r.cost.io >= SimDuration::millis(200));
    }

    #[test]
    fn replicas_spread_across_datacenters() {
        let topo = Arc::new(Topology::grid(3, 1, 2));
        let cold = FatmanDomain::new(DomainId(2), "ffs", topo.clone(), CostModel::default(), 3, 5);
        cold.put("/arch/x", Bytes::from_static(b"x"), None).unwrap();
        let dcs: std::collections::HashSet<u32> = cold
            .replicas("/arch/x")
            .unwrap()
            .iter()
            .map(|&n| topo.node(n).unwrap().datacenter)
            .collect();
        assert_eq!(dcs.len(), 3, "one replica per data center");
    }

    #[test]
    fn more_replicas_than_dcs_still_placed() {
        let topo = Arc::new(Topology::grid(1, 2, 3));
        let cold = FatmanDomain::new(DomainId(2), "ffs", topo, CostModel::default(), 4, 9);
        cold.put("/arch/x", Bytes::from_static(b"x"), None).unwrap();
        assert_eq!(cold.replicas("/arch/x").unwrap().len(), 4);
    }
}
