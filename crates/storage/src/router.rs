//! The common storage layer (paper §III-C).
//!
//! "All data files are given full paths with prefix flags to activate
//! different storage plugins. For example, the file path in Hadoop
//! filesystem will be `/hdfs/path/to/filename`, and in Fatman filesystem
//! the path will be `/ffs/path/to/filename`. If a prefix string can not
//! be recognized, local filesystem is activated by default." On top of
//! routing, the layer enforces SSO authorization per domain and fronts
//! reads with the per-node SSD cache of §IV-B.

use crate::auth::{AuthService, Credential, Grant};
use crate::cache::{BlockCache, CacheAttr, CacheTier};
use crate::domain::{ReadResult, StorageDomain};
use bytes::Bytes;
use feisu_cluster::simclock::TimeTally;
use feisu_cluster::{CostModel, StorageMedium};
use feisu_common::{ByteSize, FeisuError, NodeId, Result, SimInstant};
use feisu_obs::{Counter, MetricsRegistry};
use parking_lot::Mutex;
use std::sync::Arc;

/// Per-domain read/write counters, indexed like `domains`.
struct DomainMetrics {
    reads: Arc<Counter>,
    bytes_read: Arc<Counter>,
    writes: Arc<Counter>,
}

/// The unified entry point to every storage domain.
pub struct StorageRouter {
    domains: Vec<Arc<dyn StorageDomain>>,
    /// Index into `domains` used when no prefix matches (the local FS).
    default_domain: usize,
    auth: Arc<AuthService>,
    cache: Option<Arc<dyn BlockCache>>,
    cost: CostModel,
    // Behind a Mutex because the router is attached after it is shared
    // (`Arc<StorageRouter>` throughout the engine).
    metrics: Mutex<Option<Vec<DomainMetrics>>>,
}

impl StorageRouter {
    pub fn new(
        domains: Vec<Arc<dyn StorageDomain>>,
        default_domain: usize,
        auth: Arc<AuthService>,
        cache: Option<Arc<dyn BlockCache>>,
        cost: CostModel,
    ) -> Self {
        assert!(
            default_domain < domains.len(),
            "default domain out of range"
        );
        StorageRouter {
            domains,
            default_domain,
            auth,
            cache,
            cost,
            metrics: Mutex::new(None),
        }
    }

    /// Starts publishing `feisu.storage.<prefix>.*` counters, one set per
    /// domain, plus the block cache's counters when a cache is configured.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        let per_domain = self
            .domains
            .iter()
            .map(|d| {
                let p = d.prefix();
                DomainMetrics {
                    reads: registry.counter(&format!("feisu.storage.{p}.reads")),
                    bytes_read: registry.counter(&format!("feisu.storage.{p}.bytes_read")),
                    writes: registry.counter(&format!("feisu.storage.{p}.writes")),
                }
            })
            .collect();
        *self.metrics.lock() = Some(per_domain);
        if let Some(cache) = &self.cache {
            cache.attach_metrics(registry);
        }
    }

    fn domain_index(&self, path: &str) -> usize {
        if let Some(stripped) = path.strip_prefix('/') {
            if let Some((prefix, _)) = stripped.split_once('/') {
                if let Some(i) = self.domains.iter().position(|d| d.prefix() == prefix) {
                    return i;
                }
            }
        }
        self.default_domain
    }

    fn note_read(&self, path: &str, bytes: u64) {
        if let Some(m) = self.metrics.lock().as_ref() {
            let dm = &m[self.domain_index(path)];
            dm.reads.inc();
            dm.bytes_read.add(bytes);
        }
    }

    /// Splits `/prefix/rest` into the owning domain and the domain-local
    /// path. Unrecognized prefixes fall through to the default (local)
    /// domain with the path unchanged, per the paper.
    pub fn resolve(&self, path: &str) -> (&Arc<dyn StorageDomain>, String) {
        if let Some(stripped) = path.strip_prefix('/') {
            if let Some((prefix, rest)) = stripped.split_once('/') {
                for d in &self.domains {
                    if d.prefix() == prefix {
                        return (d, format!("/{rest}"));
                    }
                }
            }
        }
        (&self.domains[self.default_domain], path.to_string())
    }

    /// The domain a path routes to (for scheduling and authorization).
    pub fn domain_of(&self, path: &str) -> &Arc<dyn StorageDomain> {
        self.resolve(path).0
    }

    /// Authorized read through the cache hierarchy. A memory-tier hit
    /// costs a cache access plus memory streaming; an SSD-tier hit costs
    /// a local SSD access; a miss pays the domain read cost and the bytes
    /// are offered to the cache, attributed to `table` (for quota
    /// accounting) and the credential's user.
    pub fn read_attributed(
        &self,
        path: &str,
        reader: NodeId,
        cred: &Credential,
        now: SimInstant,
        table: Option<&str>,
    ) -> Result<ReadResult> {
        let (domain, inner) = self.resolve(path);
        self.auth.authorize(cred, domain.id(), Grant::Read, now)?;
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(reader, path, now) {
                let size = ByteSize(hit.data.len() as u64);
                let mut cost = TimeTally::new();
                let (io, medium) = match hit.tier {
                    CacheTier::Memory => (self.cost.mem_cache_read(size), StorageMedium::Memory),
                    CacheTier::Ssd => {
                        (self.cost.read(StorageMedium::Ssd, size), StorageMedium::Ssd)
                    }
                };
                cost.add_io(io);
                return Ok(ReadResult {
                    data: hit.data,
                    cost,
                    served_from: reader,
                    medium,
                    hops: 0,
                    cache_tier: Some(hit.tier),
                });
            }
        }
        let result = domain.read_from(&inner, reader)?;
        self.note_read(path, result.data.len() as u64);
        if let Some(cache) = &self.cache {
            cache.admit(
                reader,
                path,
                result.data.clone(),
                CacheAttr {
                    user: cred.user,
                    table,
                },
                now,
            );
        }
        Ok(result)
    }

    /// [`Self::read_attributed`] with no table attribution (internal
    /// reads: spill files, personalization data, ...).
    pub fn read(
        &self,
        path: &str,
        reader: NodeId,
        cred: &Credential,
        now: SimInstant,
    ) -> Result<ReadResult> {
        self.read_attributed(path, reader, cred, now, None)
    }

    /// Authorized write. A successful write invalidates any cached copy
    /// of the path on every node — this is the single choke point every
    /// ingest path funnels through, so re-ingested data can never be
    /// served stale from the cache.
    pub fn write(
        &self,
        path: &str,
        data: Bytes,
        near: Option<NodeId>,
        cred: &Credential,
        now: SimInstant,
    ) -> Result<()> {
        let (domain, inner) = self.resolve(path);
        self.auth
            .authorize(cred, domain.id(), Grant::ReadWrite, now)?;
        if let Some(m) = self.metrics.lock().as_ref() {
            m[self.domain_index(path)].writes.inc();
        }
        domain.put(&inner, data, near)?;
        if let Some(cache) = &self.cache {
            cache.invalidate_path(path);
        }
        Ok(())
    }

    /// Replica locations in unified-path terms (for the scheduler).
    pub fn replicas(&self, path: &str) -> Result<Vec<NodeId>> {
        let (domain, inner) = self.resolve(path);
        domain.replicas(&inner)
    }

    pub fn exists(&self, path: &str) -> bool {
        let (domain, inner) = self.resolve(path);
        domain.exists(&inner)
    }

    /// Lists unified paths under a unified prefix. The prefix must route
    /// to exactly one domain.
    pub fn list(&self, unified_prefix: &str) -> Vec<String> {
        let (domain, inner) = self.resolve(unified_prefix);
        let dp = domain.prefix();
        domain
            .list(&inner)
            .into_iter()
            .map(|p| {
                // Re-attach the routing prefix unless this is the default
                // domain reached without one.
                if unified_prefix.starts_with(&format!("/{dp}/")) {
                    format!("/{dp}{p}")
                } else {
                    p
                }
            })
            .collect()
    }

    pub fn auth(&self) -> &Arc<AuthService> {
        &self.auth
    }

    pub fn cache(&self) -> Option<&Arc<dyn BlockCache>> {
        self.cache.as_ref()
    }

    pub fn domains(&self) -> &[Arc<dyn StorageDomain>] {
        &self.domains
    }

    /// Fails if no domain claims this path's prefix *and* the path has an
    /// explicit prefix-looking shape that is not a known domain — used by
    /// the client layer's syntax check to warn about likely typos while
    /// still allowing bare local paths.
    pub fn validate_path(&self, path: &str) -> Result<()> {
        if !path.starts_with('/') {
            return Err(FeisuError::Storage(format!(
                "paths must be absolute: `{path}`"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CachePin, TieredCache};
    use crate::fatman::FatmanDomain;
    use crate::hdfs::HdfsDomain;
    use crate::kv::KvDomain;
    use crate::localfs::LocalFsDomain;
    use feisu_cluster::Topology;
    use feisu_common::config::CacheSettings;
    use feisu_common::{DomainId, SimDuration, UserId};

    fn router(with_cache: bool) -> (StorageRouter, Credential) {
        let topo = Arc::new(Topology::grid(1, 2, 2));
        let cost = CostModel::default();
        let local = Arc::new(LocalFsDomain::new(
            DomainId(0),
            "local",
            topo.clone(),
            cost.clone(),
        ));
        let hdfs = Arc::new(HdfsDomain::new(
            DomainId(1),
            "hdfs",
            topo.clone(),
            cost.clone(),
            2,
            1,
        ));
        let ffs = Arc::new(FatmanDomain::new(
            DomainId(2),
            "ffs",
            topo.clone(),
            cost.clone(),
            2,
            2,
        ));
        let kv = Arc::new(KvDomain::new(DomainId(3), "kv", topo.clone(), cost.clone()));
        let auth = Arc::new(AuthService::new(7));
        auth.register(UserId(1));
        auth.grant(UserId(1), DomainId(0), Grant::ReadWrite);
        auth.grant(UserId(1), DomainId(1), Grant::ReadWrite);
        auth.grant(UserId(1), DomainId(3), Grant::Read); // read-only on kv
        let cred = auth
            .issue(UserId(1), SimInstant(0), SimDuration::hours(8))
            .unwrap();
        let cache = with_cache.then(|| {
            let mut settings = CacheSettings::legacy_single_tier();
            settings.ssd_capacity_per_node = ByteSize::mib(4);
            Arc::new(TieredCache::new(
                settings,
                vec![CachePin {
                    path_prefix: "/hdfs/".into(),
                }],
            )) as Arc<dyn BlockCache>
        });
        let r = StorageRouter::new(vec![local, hdfs, ffs, kv], 0, auth, cache, cost);
        (r, cred)
    }

    /// Router with a two-tier (memory + SSD) cache admitting everything.
    fn router_two_tier() -> (StorageRouter, Credential) {
        let topo = Arc::new(Topology::grid(1, 2, 2));
        let cost = CostModel::default();
        let local = Arc::new(LocalFsDomain::new(
            DomainId(0),
            "local",
            topo.clone(),
            cost.clone(),
        ));
        let hdfs = Arc::new(HdfsDomain::new(
            DomainId(1),
            "hdfs",
            topo.clone(),
            cost.clone(),
            2,
            1,
        ));
        let auth = Arc::new(AuthService::new(7));
        auth.register(UserId(1));
        auth.grant(UserId(1), DomainId(0), Grant::ReadWrite);
        auth.grant(UserId(1), DomainId(1), Grant::ReadWrite);
        let cred = auth
            .issue(UserId(1), SimInstant(0), SimDuration::hours(8))
            .unwrap();
        let settings = CacheSettings {
            enabled: true,
            mem_capacity_per_node: ByteSize::mib(4),
            ssd_capacity_per_node: ByteSize::mib(4),
            admission: feisu_common::config::CacheAdmission::Always,
            ..CacheSettings::default()
        };
        let cache = Arc::new(TieredCache::new(settings, Vec::new())) as Arc<dyn BlockCache>;
        let r = StorageRouter::new(vec![local, hdfs], 0, auth, Some(cache), cost);
        (r, cred)
    }

    #[test]
    fn prefix_routing() {
        let (r, _) = router(false);
        assert_eq!(r.domain_of("/hdfs/a/b").prefix(), "hdfs");
        assert_eq!(r.domain_of("/ffs/a").prefix(), "ffs");
        assert_eq!(r.domain_of("/kv/k").prefix(), "kv");
        // Unrecognized prefix falls to local, per the paper.
        assert_eq!(r.domain_of("/data/logs/x").prefix(), "local");
        let (_, inner) = r.resolve("/hdfs/a/b");
        assert_eq!(inner, "/a/b");
        let (_, inner) = r.resolve("/data/logs/x");
        assert_eq!(inner, "/data/logs/x");
    }

    #[test]
    fn write_then_read_through_router() {
        let (r, cred) = router(false);
        r.write(
            "/hdfs/t/b0",
            Bytes::from_static(b"abc"),
            Some(NodeId(0)),
            &cred,
            SimInstant(0),
        )
        .unwrap();
        let got = r
            .read("/hdfs/t/b0", NodeId(0), &cred, SimInstant(0))
            .unwrap();
        assert_eq!(&got.data[..], b"abc");
        assert!(r.exists("/hdfs/t/b0"));
        assert!(!r.exists("/hdfs/t/b1"));
    }

    #[test]
    fn authorization_enforced_per_domain() {
        let (r, cred) = router(false);
        // Read-only on kv: write denied, read of missing key is a storage
        // error (authz passed).
        let w = r.write(
            "/kv/k",
            Bytes::from_static(b"v"),
            None,
            &cred,
            SimInstant(0),
        );
        assert!(matches!(w, Err(FeisuError::PermissionDenied(_))));
        // No grant at all on ffs.
        let rd = r.read("/ffs/x", NodeId(0), &cred, SimInstant(0));
        assert!(matches!(rd, Err(FeisuError::PermissionDenied(_))));
    }

    #[test]
    fn expired_credential_rejected() {
        let (r, cred) = router(false);
        let later = SimInstant::EPOCH + SimDuration::hours(100);
        let rd = r.read("/hdfs/x", NodeId(0), &cred, later);
        assert!(matches!(rd, Err(FeisuError::Unauthenticated(_))));
    }

    #[test]
    fn ssd_cache_serves_second_read() {
        let (r, cred) = router(true);
        let blob = Bytes::from(vec![7u8; 100_000]);
        r.write("/hdfs/t/b0", blob, Some(NodeId(0)), &cred, SimInstant(0))
            .unwrap();
        let first = r
            .read("/hdfs/t/b0", NodeId(1), &cred, SimInstant(0))
            .unwrap();
        let second = r
            .read("/hdfs/t/b0", NodeId(1), &cred, SimInstant(0))
            .unwrap();
        assert_eq!(second.medium, StorageMedium::Ssd);
        assert_eq!(second.cache_tier, Some(CacheTier::Ssd));
        assert!(second.cost.total() < first.cost.total());
        assert_eq!(second.served_from, NodeId(1));
        assert_eq!(r.cache().unwrap().stats().ssd_hits, 1);
    }

    #[test]
    fn memory_tier_serves_third_read_cheaper() {
        let (r, cred) = router_two_tier();
        let blob = Bytes::from(vec![7u8; 100_000]);
        r.write("/hdfs/t/b0", blob, Some(NodeId(0)), &cred, SimInstant(0))
            .unwrap();
        // Miss → admitted to SSD tier; hit → served from SSD, promoted;
        // next hit → served from memory, strictly cheaper.
        r.read("/hdfs/t/b0", NodeId(1), &cred, SimInstant(0))
            .unwrap();
        let ssd = r
            .read("/hdfs/t/b0", NodeId(1), &cred, SimInstant(0))
            .unwrap();
        let mem = r
            .read("/hdfs/t/b0", NodeId(1), &cred, SimInstant(0))
            .unwrap();
        assert_eq!(ssd.cache_tier, Some(CacheTier::Ssd));
        assert_eq!(mem.cache_tier, Some(CacheTier::Memory));
        assert_eq!(mem.medium, StorageMedium::Memory);
        assert!(mem.cost.total() < ssd.cost.total());
        let stats = r.cache().unwrap().stats();
        assert_eq!(
            (stats.ssd_hits, stats.mem_hits, stats.promotions),
            (1, 1, 1)
        );
    }

    #[test]
    fn rewrite_invalidates_cached_bytes() {
        let (r, cred) = router(true);
        r.write(
            "/hdfs/t/b0",
            Bytes::from_static(b"old-bytes"),
            Some(NodeId(0)),
            &cred,
            SimInstant(0),
        )
        .unwrap();
        // Warm the cache with the old bytes.
        r.read("/hdfs/t/b0", NodeId(1), &cred, SimInstant(0))
            .unwrap();
        let cached = r
            .read("/hdfs/t/b0", NodeId(1), &cred, SimInstant(0))
            .unwrap();
        assert_eq!(cached.cache_tier, Some(CacheTier::Ssd));
        // Rewriting the path must drop the stale copy everywhere.
        r.write(
            "/hdfs/t/b0",
            Bytes::from_static(b"new-bytes"),
            Some(NodeId(0)),
            &cred,
            SimInstant(0),
        )
        .unwrap();
        let fresh = r
            .read("/hdfs/t/b0", NodeId(1), &cred, SimInstant(0))
            .unwrap();
        assert_eq!(fresh.cache_tier, None, "stale cache entry must be gone");
        assert_eq!(&fresh.data[..], b"new-bytes");
        assert_eq!(r.cache().unwrap().stats().invalidations, 1);
    }

    #[test]
    fn attached_registry_counts_per_domain_traffic() {
        let registry = feisu_obs::MetricsRegistry::new();
        let (r, cred) = router(true);
        r.attach_metrics(&registry);
        r.write(
            "/hdfs/t/b0",
            Bytes::from(vec![7u8; 100]),
            Some(NodeId(0)),
            &cred,
            SimInstant(0),
        )
        .unwrap();
        r.read("/hdfs/t/b0", NodeId(1), &cred, SimInstant(0))
            .unwrap();
        // Second read is an SSD-cache hit: no new domain read.
        r.read("/hdfs/t/b0", NodeId(1), &cred, SimInstant(0))
            .unwrap();
        assert_eq!(registry.counter("feisu.storage.hdfs.writes").get(), 1);
        assert_eq!(registry.counter("feisu.storage.hdfs.reads").get(), 1);
        assert_eq!(registry.counter("feisu.storage.hdfs.bytes_read").get(), 100);
        assert_eq!(registry.counter("feisu.cache.ssd.hits").get(), 1);
        assert_eq!(registry.counter("feisu.storage.local.reads").get(), 0);
    }

    #[test]
    fn list_reattaches_prefix() {
        let (r, cred) = router(false);
        r.write(
            "/hdfs/t/b0",
            Bytes::from_static(b"0"),
            None,
            &cred,
            SimInstant(0),
        )
        .unwrap();
        r.write(
            "/hdfs/t/b1",
            Bytes::from_static(b"1"),
            None,
            &cred,
            SimInstant(0),
        )
        .unwrap();
        assert_eq!(
            r.list("/hdfs/t/"),
            vec!["/hdfs/t/b0".to_string(), "/hdfs/t/b1".to_string()]
        );
    }

    #[test]
    fn validate_path_requires_absolute() {
        let (r, _) = router(false);
        assert!(r.validate_path("/hdfs/x").is_ok());
        assert!(r.validate_path("relative/x").is_err());
    }
}
