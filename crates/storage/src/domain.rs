//! The storage-domain abstraction.
//!
//! "Each storage system works in an independent domain. Data on different
//! systems have different storage layouts, and cannot be shared among
//! systems" (§II). Every backend implements [`StorageDomain`]; the router
//! composes them behind unified paths.

use crate::cache::CacheTier;
use bytes::Bytes;
use feisu_cluster::simclock::TimeTally;
use feisu_cluster::{CostModel, StorageMedium, Topology};
use feisu_common::hash::{FxHashMap, FxHashSet};
use feisu_common::{ByteSize, DomainId, FeisuError, NodeId, Result};
use parking_lot::RwLock;
use std::sync::Arc;

/// Result of one read: the bytes plus the simulated cost it incurred and
/// where it was actually served from.
#[derive(Debug, Clone)]
pub struct ReadResult {
    pub data: Bytes,
    pub cost: TimeTally,
    pub served_from: NodeId,
    pub medium: StorageMedium,
    /// Network hops the data crossed to reach the reader (0 = local).
    pub hops: u32,
    /// Which tier of the per-node block cache served the read, if it was
    /// a cache hit rather than a domain read.
    pub cache_tier: Option<CacheTier>,
}

/// One independent storage system.
pub trait StorageDomain: Send + Sync {
    /// Stable identifier.
    fn id(&self) -> DomainId;
    /// Path prefix (e.g. `hdfs` for `/hdfs/...`).
    fn prefix(&self) -> &str;
    /// Writes an object; `near` hints the writing node for locality-aware
    /// placement.
    fn put(&self, path: &str, data: Bytes, near: Option<NodeId>) -> Result<()>;
    /// Reads an object from the perspective of `reader`, charging disk
    /// and network cost to the returned tally.
    fn read_from(&self, path: &str, reader: NodeId) -> Result<ReadResult>;
    /// Nodes currently holding a replica of the object.
    fn replicas(&self, path: &str) -> Result<Vec<NodeId>>;
    fn exists(&self, path: &str) -> bool;
    /// Paths under a prefix, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;
    fn delete(&self, path: &str) -> Result<()>;
    /// Failure injection: mark a node's replicas (un)available.
    fn set_node_available(&self, node: NodeId, up: bool);
    /// Total bytes stored (for reporting).
    fn stored_bytes(&self) -> ByteSize;
}

/// Shared implementation for replica-based object stores; the concrete
/// domains differ in medium, placement and latency profile.
pub(crate) struct ObjectStore {
    pub id: DomainId,
    pub prefix: String,
    pub medium: StorageMedium,
    pub topology: Arc<Topology>,
    pub cost: CostModel,
    /// Extra fixed latency per read (Fatman's cold-storage penalty).
    pub extra_read_latency: feisu_common::SimDuration,
    pub objects: RwLock<FxHashMap<String, StoredObject>>,
    pub down_nodes: RwLock<FxHashSet<NodeId>>,
}

pub(crate) struct StoredObject {
    pub data: Bytes,
    pub replicas: Vec<NodeId>,
}

impl ObjectStore {
    pub(crate) fn read_from(&self, path: &str, reader: NodeId) -> Result<ReadResult> {
        let objects = self.objects.read();
        let obj = objects.get(path).ok_or_else(|| {
            FeisuError::Storage(format!("{}: no such object `{path}`", self.prefix))
        })?;
        let down = self.down_nodes.read();
        // Pick the live replica with the fewest hops from the reader.
        let mut best: Option<(u32, NodeId)> = None;
        for &rep in &obj.replicas {
            if down.contains(&rep) {
                continue;
            }
            let hops = self.topology.hops(reader, rep)?;
            if best.is_none_or(|(h, _)| hops < h) {
                best = Some((hops, rep));
            }
        }
        let (hops, served_from) = best.ok_or_else(|| {
            FeisuError::Storage(format!(
                "{}: all replicas of `{path}` unavailable",
                self.prefix
            ))
        })?;
        let size = ByteSize(obj.data.len() as u64);
        let mut cost = TimeTally::new();
        cost.add_io(self.cost.read(self.medium, size) + self.extra_read_latency);
        cost.add_network(self.cost.network(hops, size));
        Ok(ReadResult {
            data: obj.data.clone(),
            cost,
            served_from,
            medium: self.medium,
            hops,
            cache_tier: None,
        })
    }

    pub(crate) fn replicas(&self, path: &str) -> Result<Vec<NodeId>> {
        self.objects
            .read()
            .get(path)
            .map(|o| o.replicas.clone())
            .ok_or_else(|| FeisuError::Storage(format!("{}: no such object `{path}`", self.prefix)))
    }

    pub(crate) fn exists(&self, path: &str) -> bool {
        self.objects.read().contains_key(path)
    }

    pub(crate) fn list(&self, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .objects
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        v
    }

    pub(crate) fn delete(&self, path: &str) -> Result<()> {
        self.objects
            .write()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| FeisuError::Storage(format!("{}: no such object `{path}`", self.prefix)))
    }

    pub(crate) fn set_node_available(&self, node: NodeId, up: bool) {
        let mut down = self.down_nodes.write();
        if up {
            down.remove(&node);
        } else {
            down.insert(node);
        }
    }

    pub(crate) fn stored_bytes(&self) -> ByteSize {
        ByteSize(
            self.objects
                .read()
                .values()
                .map(|o| o.data.len() as u64 * o.replicas.len() as u64)
                .sum(),
        )
    }
}
