//! Multi-tier per-node block cache (paper §IV-B, rebuilt).
//!
//! The paper's SSD cache admits by manually curated path prefixes,
//! because with fully ad-hoc workloads automatic policies saw >80% miss
//! rates. This subsystem keeps those prefix rules as *pin overrides* but
//! grows the cache into the shape that works at fleet scale (see "Data
//! Caching for Enterprise-Grade Petabyte-Scale OLAP" in PAPERS.md):
//!
//! * **Two tiers per node** — a DRAM tier in front of the SSD tier.
//!   Blocks enter the hierarchy at the SSD tier and are promoted into
//!   memory on their next hit; memory evictions demote back to SSD.
//! * **Ghost-LRU admission** — a per-node shadow LRU remembers
//!   once-seen and recently-evicted keys. Under [`CacheAdmission::Frequency`]
//!   an unpinned block is admitted only on its *second* sighting, so
//!   one-hit-wonder scans never evict hot blocks.
//! * **Sharded locks** — node state is spread over [`SHARDS`] mutexes
//!   keyed by node id, so leaf probes on different nodes never contend
//!   (the old implementation serialized every probe cluster-wide).
//! * **Quotas** — per-user and per-table byte budgets per node,
//!   attributed from the session credential that triggered the read.
//!   Over-quota owners evict their own coldest entries first; an entry
//!   that cannot fit its owner's quota is rejected even when pinned.
//! * **TTL + path-keyed invalidation** — entries expire after an
//!   optional TTL, and `invalidate_path` (hooked into every ingest
//!   write) drops a rewritten path from every node so re-ingested data
//!   can never be served stale.
//!
//! Everything is deterministic given a deterministic call sequence: the
//! structure keeps no wall-clock state, and all statistics are exact
//! totals (atomics / per-shard counters), so race-free workloads remain
//! bit-identical serial vs concurrent (DESIGN.md §15).

use bytes::Bytes;
use feisu_common::config::{CacheAdmission, CacheSettings};
use feisu_common::hash::FxHashMap;
use feisu_common::{ByteSize, NodeId, SimInstant, UserId};
use feisu_obs::{Counter, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of lock shards the per-node state is spread over. Node ids map
/// to shards by modulo, so any two distinct nodes in a small cluster get
/// distinct locks.
pub const SHARDS: usize = 64;

/// Which tier of the hierarchy holds (or served) an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheTier {
    /// The per-node DRAM tier.
    Memory,
    /// The per-node SSD tier.
    Ssd,
}

impl CacheTier {
    /// Short label used in metrics names and `system.cache` rows.
    pub fn label(self) -> &'static str {
        match self {
            CacheTier::Memory => "mem",
            CacheTier::Ssd => "ssd",
        }
    }
}

/// Pin rule: paths with this prefix bypass the admission filter (the
/// paper's manual §IV-B preferences, surviving as overrides).
#[derive(Debug, Clone)]
pub struct CachePin {
    pub path_prefix: String,
}

/// Attribution of an admission for quota accounting: the user whose
/// query read the block, and the table it belongs to (if any).
#[derive(Debug, Clone, Copy)]
pub struct CacheAttr<'a> {
    pub user: UserId,
    pub table: Option<&'a str>,
}

/// One successful probe: the bytes and the tier that held them.
#[derive(Debug, Clone)]
pub struct CacheHit {
    pub data: Bytes,
    pub tier: CacheTier,
}

/// One `system.cache` introspection row (per node, per tier).
#[derive(Debug, Clone)]
pub struct CacheTierRow {
    /// `"mem"`, `"ssd"` or `"ghost"`.
    pub tier: &'static str,
    pub entries: usize,
    pub used_bytes: u64,
    pub capacity_bytes: u64,
    /// For the ghost row: admissions it granted.
    pub hits: u64,
    pub evictions: u64,
}

/// Exact cluster-wide cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub mem_hits: u64,
    pub ssd_hits: u64,
    pub misses: u64,
    /// Offers turned away for any reason (admission filter, oversized
    /// object, quota). Supersets `ghost_registered` and
    /// `quota_rejections`.
    pub rejected: u64,
    /// First sightings recorded in a ghost LRU (not cached yet).
    pub ghost_registered: u64,
    /// Admissions granted because the ghost remembered the key.
    pub ghost_admissions: u64,
    /// Offers rejected because the entry cannot fit its owner's quota.
    pub quota_rejections: u64,
    pub mem_evictions: u64,
    pub ssd_evictions: u64,
    /// Evictions forced by an owner's byte quota rather than tier
    /// capacity (also counted in the per-tier eviction totals).
    pub quota_evictions: u64,
    /// Entries dropped because their TTL lapsed before a probe.
    pub ttl_expired: u64,
    /// Entries dropped by path-keyed invalidation (ingest overwrites).
    pub invalidations: u64,
    /// SSD→memory promotions on hit.
    pub promotions: u64,
}

impl CacheStats {
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.ssd_hits
    }

    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits() + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// The cache hierarchy as the router sees it. One concrete
/// implementation exists ([`TieredCache`]); the trait keeps the read
/// path, the engine and `system.cache` decoupled from its internals.
pub trait BlockCache: Send + Sync {
    /// Probes `node`'s hierarchy. A hit refreshes recency and may promote
    /// the entry from SSD to memory; a miss leaves the node map untouched
    /// (probing thousands of nodes that never cached anything must not
    /// grow it). `now` drives TTL expiry.
    fn get(&self, node: NodeId, path: &str, now: SimInstant) -> Option<CacheHit>;
    /// Offers bytes read from a storage domain for caching on `node`.
    fn admit(&self, node: NodeId, path: &str, data: Bytes, attr: CacheAttr<'_>, now: SimInstant);
    /// Drops `path` from every node's tiers (ingest rewrote the object).
    fn invalidate_path(&self, path: &str);
    /// Drops everything cached on one node (node restart).
    fn invalidate_node(&self, node: NodeId);
    /// Starts publishing `feisu.cache.{tier}.*` counters.
    fn attach_metrics(&self, registry: &MetricsRegistry);
    fn stats(&self) -> CacheStats;
    /// `system.cache` rows for one node: `mem`, `ssd`, `ghost`.
    fn node_tier_rows(&self, node: NodeId) -> Vec<CacheTierRow>;
    /// Sets (`Some`) or clears (`None`, back to the configured default)
    /// a user's per-node byte quota.
    fn set_user_quota(&self, user: UserId, quota: Option<ByteSize>);
    /// Sets or clears a table's per-node byte quota.
    fn set_table_quota(&self, table: &str, quota: Option<ByteSize>);
    /// Bytes held by one tier on one node.
    fn used_on(&self, node: NodeId, tier: CacheTier) -> ByteSize;
    /// Bytes attributed to one user on one node (both tiers).
    fn user_used_on(&self, node: NodeId, user: UserId) -> ByteSize;
    /// Nodes with allocated cache state.
    fn tracked_nodes(&self) -> usize;
}

/// One cached object. `stamp` is the lazy-LRU liveness token; usage is
/// attributed to `user`/`table` until the entry fully leaves the node.
#[derive(Debug)]
struct Entry {
    data: Bytes,
    stamp: u64,
    inserted_at: SimInstant,
    user: UserId,
    table: Option<String>,
}

impl Entry {
    fn len(&self) -> u64 {
        self.data.len() as u64
    }
}

/// One tier's storage on one node: a map plus a lazy LRU queue (one
/// record per touch; dead records are compacted once the queue exceeds
/// twice the live-entry count, amortized O(1) per touch).
#[derive(Debug, Default)]
struct TierCache {
    entries: FxHashMap<String, Entry>,
    lru: VecDeque<(String, u64)>,
    used: u64,
    next_stamp: u64,
    /// Per-node hit counter (feeds `system.cache`).
    hits: u64,
    /// Per-node eviction counter (capacity + quota).
    evictions: u64,
}

impl TierCache {
    fn compact_lru(&mut self) {
        if self.lru.len() <= 2 * self.entries.len() {
            return;
        }
        self.lru
            .retain(|(key, stamp)| self.entries.get(key).is_some_and(|e| e.stamp == *stamp));
    }

    /// Refreshes recency of a present entry and returns its bytes.
    fn touch(&mut self, path: &str) -> Bytes {
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        let e = self.entries.get_mut(path).expect("touch of absent entry");
        e.stamp = stamp;
        let data = e.data.clone();
        self.lru.push_back((path.to_string(), stamp));
        self.compact_lru();
        data
    }

    /// Inserts an absent path, updating accounting and recency.
    fn insert(&mut self, path: String, mut e: Entry) {
        debug_assert!(!self.entries.contains_key(&path));
        self.next_stamp += 1;
        e.stamp = self.next_stamp;
        self.used += e.len();
        self.lru.push_back((path.clone(), e.stamp));
        self.entries.insert(path, e);
        self.compact_lru();
    }

    fn remove(&mut self, path: &str) -> Option<Entry> {
        let e = self.entries.remove(path)?;
        self.used -= e.len();
        Some(e)
    }

    /// Pops the least-recently-used live entry.
    fn pop_lru(&mut self) -> Option<(String, Entry)> {
        while let Some((key, stamp)) = self.lru.pop_front() {
            if self.entries.get(&key).is_some_and(|e| e.stamp == stamp) {
                let e = self.remove(&key).expect("checked live");
                return Some((key, e));
            }
        }
        None
    }

    /// Pops the least-recently-used live entry matching a predicate
    /// (quota eviction: an owner sheds its own coldest entries).
    fn pop_lru_matching(&mut self, pred: impl Fn(&Entry) -> bool) -> Option<(String, Entry)> {
        let idx = self.lru.iter().position(|(key, stamp)| {
            self.entries
                .get(key)
                .is_some_and(|e| e.stamp == *stamp && pred(e))
        })?;
        let (key, _) = self.lru.remove(idx).expect("index in range");
        let e = self.remove(&key).expect("checked live");
        Some((key, e))
    }
}

/// Shadow LRU of keys only: once-seen and recently-evicted paths.
#[derive(Debug, Default)]
struct GhostLru {
    keys: FxHashMap<String, u64>,
    lru: VecDeque<(String, u64)>,
    next_stamp: u64,
    /// Per-node count of admissions this ghost granted.
    admissions: u64,
}

impl GhostLru {
    /// Records (or refreshes) a key, evicting the oldest beyond capacity.
    fn remember(&mut self, path: &str, capacity: usize) {
        if capacity == 0 {
            return;
        }
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        self.keys.insert(path.to_string(), stamp);
        self.lru.push_back((path.to_string(), stamp));
        while self.keys.len() > capacity {
            match self.lru.pop_front() {
                Some((key, s)) => {
                    if self.keys.get(&key) == Some(&s) {
                        self.keys.remove(&key);
                    }
                }
                None => break,
            }
        }
        if self.lru.len() > 2 * self.keys.len() {
            self.lru.retain(|(key, s)| self.keys.get(key) == Some(s));
        }
    }

    /// Removes and reports whether the key was remembered.
    fn recall(&mut self, path: &str) -> bool {
        self.keys.remove(path).is_some()
    }
}

/// All cache state of one node.
#[derive(Debug, Default)]
struct NodeCache {
    mem: TierCache,
    ssd: TierCache,
    ghost: GhostLru,
    /// Bytes attributed per user across both tiers.
    user_used: FxHashMap<UserId, u64>,
    /// Bytes attributed per table across both tiers.
    table_used: FxHashMap<String, u64>,
}

impl NodeCache {
    fn note_add(&mut self, e: &Entry) {
        *self.user_used.entry(e.user).or_default() += e.len();
        if let Some(t) = &e.table {
            *self.table_used.entry(t.clone()).or_default() += e.len();
        }
    }

    /// Reverses `note_add` when an entry fully leaves the node.
    fn note_drop(&mut self, e: &Entry) {
        if let Some(u) = self.user_used.get_mut(&e.user) {
            *u = u.saturating_sub(e.len());
            if *u == 0 {
                self.user_used.remove(&e.user);
            }
        }
        if let Some(t) = &e.table {
            if let Some(u) = self.table_used.get_mut(t) {
                *u = u.saturating_sub(e.len());
                if *u == 0 {
                    self.table_used.remove(t);
                }
            }
        }
    }
}

/// Exact totals, updated with relaxed atomics (sums commute, so totals
/// are scheduling-independent for race-free workloads).
#[derive(Debug, Default)]
struct AtomicStats {
    mem_hits: AtomicU64,
    ssd_hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
    ghost_registered: AtomicU64,
    ghost_admissions: AtomicU64,
    quota_rejections: AtomicU64,
    mem_evictions: AtomicU64,
    ssd_evictions: AtomicU64,
    quota_evictions: AtomicU64,
    ttl_expired: AtomicU64,
    invalidations: AtomicU64,
    promotions: AtomicU64,
}

/// Registry handles mirroring [`CacheStats`] as `feisu.cache.*`.
struct CacheMetrics {
    mem_hits: Arc<Counter>,
    ssd_hits: Arc<Counter>,
    misses: Arc<Counter>,
    rejected: Arc<Counter>,
    ghost_registered: Arc<Counter>,
    ghost_admissions: Arc<Counter>,
    quota_rejections: Arc<Counter>,
    mem_evictions: Arc<Counter>,
    ssd_evictions: Arc<Counter>,
    quota_evictions: Arc<Counter>,
    ttl_expired: Arc<Counter>,
    invalidations: Arc<Counter>,
    promotions: Arc<Counter>,
}

/// Statistic events, applied to the atomics and mirrored to the registry.
#[derive(Clone, Copy)]
enum Ev {
    MemHit,
    SsdHit,
    Miss,
    Rejected,
    GhostRegistered,
    GhostAdmission,
    QuotaRejection,
    MemEvictions(u64),
    SsdEvictions(u64),
    QuotaEvictions(u64),
    TtlExpired,
    Invalidations(u64),
    Promotion,
}

/// The two-tier cache hierarchy with ghost admission and quotas.
pub struct TieredCache {
    settings: CacheSettings,
    pins: Vec<CachePin>,
    /// Per-node state, sharded by node id so probes on different nodes
    /// never contend on one lock.
    shards: Vec<Mutex<FxHashMap<NodeId, NodeCache>>>,
    /// Explicit per-user quota overrides (absent = configured default).
    user_quotas: Mutex<FxHashMap<UserId, u64>>,
    table_quotas: Mutex<FxHashMap<String, u64>>,
    stats: AtomicStats,
    // Behind a Mutex because the cache is attached after it is shared
    // (`Arc<dyn BlockCache>` inside the router).
    metrics: Mutex<Option<CacheMetrics>>,
}

impl TieredCache {
    pub fn new(settings: CacheSettings, pins: Vec<CachePin>) -> Self {
        TieredCache {
            settings,
            pins,
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            user_quotas: Mutex::new(FxHashMap::default()),
            table_quotas: Mutex::new(FxHashMap::default()),
            stats: AtomicStats::default(),
            metrics: Mutex::new(None),
        }
    }

    pub fn settings(&self) -> &CacheSettings {
        &self.settings
    }

    /// Whether a path matches a pin rule.
    pub fn pinned(&self, path: &str) -> bool {
        self.pins.iter().any(|p| path.starts_with(&p.path_prefix))
    }

    fn shard(&self, node: NodeId) -> &Mutex<FxHashMap<NodeId, NodeCache>> {
        &self.shards[node.0 as usize % SHARDS]
    }

    fn mem_cap(&self) -> u64 {
        self.settings.mem_capacity_per_node.as_u64()
    }

    fn ssd_cap(&self) -> u64 {
        self.settings.ssd_capacity_per_node.as_u64()
    }

    fn expired(&self, e: &Entry, now: SimInstant) -> bool {
        self.settings
            .ttl
            .is_some_and(|ttl| now >= e.inserted_at + ttl)
    }

    fn note(&self, ev: Ev) {
        let s = &self.stats;
        let m = self.metrics.lock();
        let m = m.as_ref();
        let apply = |a: &AtomicU64, c: Option<&Arc<Counter>>, n: u64| {
            a.fetch_add(n, Ordering::Relaxed);
            if let Some(c) = c {
                c.add(n);
            }
        };
        match ev {
            Ev::MemHit => apply(&s.mem_hits, m.map(|m| &m.mem_hits), 1),
            Ev::SsdHit => apply(&s.ssd_hits, m.map(|m| &m.ssd_hits), 1),
            Ev::Miss => apply(&s.misses, m.map(|m| &m.misses), 1),
            Ev::Rejected => apply(&s.rejected, m.map(|m| &m.rejected), 1),
            Ev::GhostRegistered => apply(&s.ghost_registered, m.map(|m| &m.ghost_registered), 1),
            Ev::GhostAdmission => apply(&s.ghost_admissions, m.map(|m| &m.ghost_admissions), 1),
            Ev::QuotaRejection => apply(&s.quota_rejections, m.map(|m| &m.quota_rejections), 1),
            Ev::MemEvictions(n) if n > 0 => apply(&s.mem_evictions, m.map(|m| &m.mem_evictions), n),
            Ev::SsdEvictions(n) if n > 0 => apply(&s.ssd_evictions, m.map(|m| &m.ssd_evictions), n),
            Ev::QuotaEvictions(n) if n > 0 => {
                apply(&s.quota_evictions, m.map(|m| &m.quota_evictions), n)
            }
            Ev::TtlExpired => apply(&s.ttl_expired, m.map(|m| &m.ttl_expired), 1),
            Ev::Invalidations(n) if n > 0 => {
                apply(&s.invalidations, m.map(|m| &m.invalidations), n)
            }
            Ev::Promotion => apply(&s.promotions, m.map(|m| &m.promotions), 1),
            Ev::MemEvictions(_)
            | Ev::SsdEvictions(_)
            | Ev::QuotaEvictions(_)
            | Ev::Invalidations(_) => {}
        }
    }

    fn user_quota_for(&self, user: UserId) -> Option<u64> {
        self.user_quotas
            .lock()
            .get(&user)
            .copied()
            .or(self.settings.default_user_quota.map(|q| q.as_u64()))
    }

    fn table_quota_for(&self, table: &str) -> Option<u64> {
        self.table_quotas
            .lock()
            .get(table)
            .copied()
            .or(self.settings.default_table_quota.map(|q| q.as_u64()))
    }

    /// Inserts into the SSD tier, evicting its LRU into the ghost until
    /// the entry fits. Returns the eviction count.
    fn insert_into_ssd(&self, nc: &mut NodeCache, path: String, e: Entry) -> u64 {
        let size = e.len();
        let mut evictions = 0u64;
        while nc.ssd.used + size > self.ssd_cap() {
            let Some((key, victim)) = nc.ssd.pop_lru() else {
                break;
            };
            nc.ghost.remember(&key, self.settings.ghost_capacity);
            nc.note_drop(&victim);
            nc.ssd.evictions += 1;
            evictions += 1;
        }
        nc.ssd.insert(path, e);
        evictions
    }

    /// Inserts into the memory tier; evicted memory entries demote to the
    /// SSD tier (or leave the node entirely if they cannot fit there).
    /// Returns (memory evictions, SSD evictions caused by demotions).
    fn insert_into_mem(&self, nc: &mut NodeCache, path: String, e: Entry) -> (u64, u64) {
        let size = e.len();
        let mut mem_ev = 0u64;
        let mut ssd_ev = 0u64;
        while nc.mem.used + size > self.mem_cap() {
            let Some((key, demoted)) = nc.mem.pop_lru() else {
                break;
            };
            nc.mem.evictions += 1;
            mem_ev += 1;
            if self.ssd_cap() > 0 && demoted.len() <= self.ssd_cap() {
                ssd_ev += self.insert_into_ssd(nc, key, demoted);
            } else {
                nc.ghost.remember(&key, self.settings.ghost_capacity);
                nc.note_drop(&demoted);
            }
        }
        nc.mem.insert(path, e);
        (mem_ev, ssd_ev)
    }

    /// Length of a tier's lazy LRU queue on one node (bounded-growth
    /// tests).
    pub fn lru_queue_len_on(&self, node: NodeId, tier: CacheTier) -> usize {
        self.shard(node)
            .lock()
            .get(&node)
            .map_or(0, |nc| match tier {
                CacheTier::Memory => nc.mem.lru.len(),
                CacheTier::Ssd => nc.ssd.lru.len(),
            })
    }

    /// Keys remembered by one node's ghost.
    pub fn ghost_len_on(&self, node: NodeId) -> usize {
        self.shard(node)
            .lock()
            .get(&node)
            .map_or(0, |nc| nc.ghost.keys.len())
    }

    /// Bytes attributed to one table on one node.
    pub fn table_used_on(&self, node: NodeId, table: &str) -> ByteSize {
        ByteSize(
            self.shard(node)
                .lock()
                .get(&node)
                .and_then(|nc| nc.table_used.get(table).copied())
                .unwrap_or(0),
        )
    }
}

impl BlockCache for TieredCache {
    fn get(&self, node: NodeId, path: &str, now: SimInstant) -> Option<CacheHit> {
        let mut shard = self.shard(node).lock();
        let Some(nc) = shard.get_mut(&node) else {
            drop(shard);
            self.note(Ev::Miss);
            return None;
        };
        // Memory tier first.
        if nc.mem.entries.contains_key(path) {
            if self.expired(&nc.mem.entries[path], now) {
                let e = nc.mem.remove(path).expect("checked");
                nc.note_drop(&e);
                drop(shard);
                self.note(Ev::TtlExpired);
                self.note(Ev::Miss);
                return None;
            }
            let data = nc.mem.touch(path);
            nc.mem.hits += 1;
            drop(shard);
            self.note(Ev::MemHit);
            return Some(CacheHit {
                data,
                tier: CacheTier::Memory,
            });
        }
        // SSD tier; a hit promotes the entry into memory when it fits.
        if nc.ssd.entries.contains_key(path) {
            if self.expired(&nc.ssd.entries[path], now) {
                let e = nc.ssd.remove(path).expect("checked");
                nc.note_drop(&e);
                drop(shard);
                self.note(Ev::TtlExpired);
                self.note(Ev::Miss);
                return None;
            }
            nc.ssd.hits += 1;
            let promote = self.mem_cap() > 0 && nc.ssd.entries[path].len() <= self.mem_cap();
            if !promote {
                let data = nc.ssd.touch(path);
                drop(shard);
                self.note(Ev::SsdHit);
                return Some(CacheHit {
                    data,
                    tier: CacheTier::Ssd,
                });
            }
            let e = nc.ssd.remove(path).expect("checked");
            let data = e.data.clone();
            let (mem_ev, ssd_ev) = self.insert_into_mem(nc, path.to_string(), e);
            drop(shard);
            self.note(Ev::SsdHit);
            self.note(Ev::Promotion);
            self.note(Ev::MemEvictions(mem_ev));
            self.note(Ev::SsdEvictions(ssd_ev));
            // This probe was still served by the SSD tier; the *next*
            // one finds the entry in memory.
            return Some(CacheHit {
                data,
                tier: CacheTier::Ssd,
            });
        }
        drop(shard);
        self.note(Ev::Miss);
        None
    }

    fn admit(&self, node: NodeId, path: &str, data: Bytes, attr: CacheAttr<'_>, now: SimInstant) {
        let size = data.len() as u64;
        // Entries enter the hierarchy at the SSD tier (they climb to
        // memory on their next hit); with no SSD tier configured they
        // enter at the memory tier directly.
        let enter_mem = self.ssd_cap() == 0;
        let entry_cap = if enter_mem {
            self.mem_cap()
        } else {
            self.ssd_cap()
        };
        if size > entry_cap {
            self.note(Ev::Rejected);
            return;
        }
        let pinned = self.pinned(path);
        // Legacy prefix admission rejects before any node state exists.
        if self.settings.admission == CacheAdmission::PinnedOnly && !pinned {
            self.note(Ev::Rejected);
            return;
        }
        // Resolve quotas before taking the shard lock (lock order: quota
        // maps are leaves, never nested inside a shard).
        let user_quota = self.user_quota_for(attr.user);
        let table_quota = attr.table.and_then(|t| self.table_quota_for(t));
        // An entry that cannot fit its owner's quota is rejected outright
        // — quota wins even over a pin.
        if user_quota.is_some_and(|q| size > q) || table_quota.is_some_and(|q| size > q) {
            self.note(Ev::QuotaRejection);
            self.note(Ev::Rejected);
            return;
        }

        let mut shard = self.shard(node).lock();
        let nc = shard.entry(node).or_default();
        // Frequency admission: unpinned blocks pass only if the ghost
        // remembers them; first sightings are registered and rejected.
        if self.settings.admission == CacheAdmission::Frequency && !pinned {
            if nc.ghost.recall(path) {
                nc.ghost.admissions += 1;
                drop(shard);
                self.note(Ev::GhostAdmission);
                shard = self.shard(node).lock();
            } else {
                nc.ghost.remember(path, self.settings.ghost_capacity);
                drop(shard);
                self.note(Ev::GhostRegistered);
                self.note(Ev::Rejected);
                return;
            }
        }
        let nc = shard.entry(node).or_default();

        // Replace an existing copy (concurrent readers may both miss and
        // both offer the same path; last write wins, accounting exact).
        if let Some(old) = nc.mem.remove(path) {
            nc.note_drop(&old);
        }
        if let Some(old) = nc.ssd.remove(path) {
            nc.note_drop(&old);
        }

        // Quota pressure: the owner sheds its own coldest entries (SSD
        // tier first — those are the coldest by construction).
        let mut quota_ev = 0u64;
        let mut mem_ev = 0u64;
        let mut ssd_ev = 0u64;
        if let Some(q) = user_quota {
            while nc.user_used.get(&attr.user).copied().unwrap_or(0) + size > q {
                if let Some((key, victim)) = nc.ssd.pop_lru_matching(|e| e.user == attr.user) {
                    nc.ghost.remember(&key, self.settings.ghost_capacity);
                    nc.note_drop(&victim);
                    nc.ssd.evictions += 1;
                    ssd_ev += 1;
                } else if let Some((key, victim)) = nc.mem.pop_lru_matching(|e| e.user == attr.user)
                {
                    nc.ghost.remember(&key, self.settings.ghost_capacity);
                    nc.note_drop(&victim);
                    nc.mem.evictions += 1;
                    mem_ev += 1;
                } else {
                    break;
                }
                quota_ev += 1;
            }
        }
        if let (Some(q), Some(table)) = (table_quota, attr.table) {
            while nc.table_used.get(table).copied().unwrap_or(0) + size > q {
                if let Some((key, victim)) = nc
                    .ssd
                    .pop_lru_matching(|e| e.table.as_deref() == Some(table))
                {
                    nc.ghost.remember(&key, self.settings.ghost_capacity);
                    nc.note_drop(&victim);
                    nc.ssd.evictions += 1;
                    ssd_ev += 1;
                } else if let Some((key, victim)) = nc
                    .mem
                    .pop_lru_matching(|e| e.table.as_deref() == Some(table))
                {
                    nc.ghost.remember(&key, self.settings.ghost_capacity);
                    nc.note_drop(&victim);
                    nc.mem.evictions += 1;
                    mem_ev += 1;
                } else {
                    break;
                }
                quota_ev += 1;
            }
        }

        let entry = Entry {
            data,
            stamp: 0,
            inserted_at: now,
            user: attr.user,
            table: attr.table.map(str::to_string),
        };
        nc.note_add(&entry);
        if enter_mem {
            let (m, s) = self.insert_into_mem(nc, path.to_string(), entry);
            mem_ev += m;
            ssd_ev += s;
        } else {
            ssd_ev += self.insert_into_ssd(nc, path.to_string(), entry);
        }
        drop(shard);
        self.note(Ev::QuotaEvictions(quota_ev));
        self.note(Ev::MemEvictions(mem_ev));
        self.note(Ev::SsdEvictions(ssd_ev));
    }

    fn invalidate_path(&self, path: &str) {
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut s = shard.lock();
            for nc in s.values_mut() {
                if let Some(e) = nc.mem.remove(path) {
                    nc.note_drop(&e);
                    dropped += 1;
                }
                if let Some(e) = nc.ssd.remove(path) {
                    nc.note_drop(&e);
                    dropped += 1;
                }
            }
        }
        self.note(Ev::Invalidations(dropped));
    }

    fn invalidate_node(&self, node: NodeId) {
        self.shard(node).lock().remove(&node);
    }

    fn attach_metrics(&self, registry: &MetricsRegistry) {
        *self.metrics.lock() = Some(CacheMetrics {
            mem_hits: registry.counter("feisu.cache.mem.hits"),
            ssd_hits: registry.counter("feisu.cache.ssd.hits"),
            misses: registry.counter("feisu.cache.misses"),
            rejected: registry.counter("feisu.cache.rejected"),
            ghost_registered: registry.counter("feisu.cache.ghost.registered"),
            ghost_admissions: registry.counter("feisu.cache.ghost.admissions"),
            quota_rejections: registry.counter("feisu.cache.quota.rejections"),
            mem_evictions: registry.counter("feisu.cache.mem.evictions"),
            ssd_evictions: registry.counter("feisu.cache.ssd.evictions"),
            quota_evictions: registry.counter("feisu.cache.quota.evictions"),
            ttl_expired: registry.counter("feisu.cache.ttl_expired"),
            invalidations: registry.counter("feisu.cache.invalidations"),
            promotions: registry.counter("feisu.cache.promotions"),
        });
    }

    fn stats(&self) -> CacheStats {
        let s = &self.stats;
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        CacheStats {
            mem_hits: g(&s.mem_hits),
            ssd_hits: g(&s.ssd_hits),
            misses: g(&s.misses),
            rejected: g(&s.rejected),
            ghost_registered: g(&s.ghost_registered),
            ghost_admissions: g(&s.ghost_admissions),
            quota_rejections: g(&s.quota_rejections),
            mem_evictions: g(&s.mem_evictions),
            ssd_evictions: g(&s.ssd_evictions),
            quota_evictions: g(&s.quota_evictions),
            ttl_expired: g(&s.ttl_expired),
            invalidations: g(&s.invalidations),
            promotions: g(&s.promotions),
        }
    }

    fn node_tier_rows(&self, node: NodeId) -> Vec<CacheTierRow> {
        let shard = self.shard(node).lock();
        let nc = shard.get(&node);
        let tier = |t: Option<&TierCache>, cap: u64, label: &'static str| CacheTierRow {
            tier: label,
            entries: t.map_or(0, |t| t.entries.len()),
            used_bytes: t.map_or(0, |t| t.used),
            capacity_bytes: cap,
            hits: t.map_or(0, |t| t.hits),
            evictions: t.map_or(0, |t| t.evictions),
        };
        vec![
            tier(nc.map(|n| &n.mem), self.mem_cap(), "mem"),
            tier(nc.map(|n| &n.ssd), self.ssd_cap(), "ssd"),
            CacheTierRow {
                tier: "ghost",
                entries: nc.map_or(0, |n| n.ghost.keys.len()),
                used_bytes: 0,
                capacity_bytes: 0,
                hits: nc.map_or(0, |n| n.ghost.admissions),
                evictions: 0,
            },
        ]
    }

    fn set_user_quota(&self, user: UserId, quota: Option<ByteSize>) {
        let mut q = self.user_quotas.lock();
        match quota {
            Some(b) => {
                q.insert(user, b.as_u64());
            }
            None => {
                q.remove(&user);
            }
        }
    }

    fn set_table_quota(&self, table: &str, quota: Option<ByteSize>) {
        let mut q = self.table_quotas.lock();
        match quota {
            Some(b) => {
                q.insert(table.to_string(), b.as_u64());
            }
            None => {
                q.remove(table);
            }
        }
    }

    fn used_on(&self, node: NodeId, tier: CacheTier) -> ByteSize {
        ByteSize(
            self.shard(node)
                .lock()
                .get(&node)
                .map_or(0, |nc| match tier {
                    CacheTier::Memory => nc.mem.used,
                    CacheTier::Ssd => nc.ssd.used,
                }),
        )
    }

    fn user_used_on(&self, node: NodeId, user: UserId) -> ByteSize {
        ByteSize(
            self.shard(node)
                .lock()
                .get(&node)
                .and_then(|nc| nc.user_used.get(&user).copied())
                .unwrap_or(0),
        )
    }

    fn tracked_nodes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_common::SimDuration;

    const NOW: SimInstant = SimInstant(0);

    fn attr(user: u64) -> CacheAttr<'static> {
        CacheAttr {
            user: UserId(user),
            table: None,
        }
    }

    fn tattr(user: u64, table: &'static str) -> CacheAttr<'static> {
        CacheAttr {
            user: UserId(user),
            table: Some(table),
        }
    }

    fn legacy(kib: u64) -> TieredCache {
        let mut s = CacheSettings::legacy_single_tier();
        s.ssd_capacity_per_node = ByteSize::kib(kib);
        TieredCache::new(
            s,
            vec![CachePin {
                path_prefix: "/hdfs/hot/".into(),
            }],
        )
    }

    fn open(mem_kib: u64, ssd_kib: u64) -> TieredCache {
        let s = CacheSettings {
            enabled: true,
            mem_capacity_per_node: ByteSize::kib(mem_kib),
            ssd_capacity_per_node: ByteSize::kib(ssd_kib),
            ghost_capacity: 1024,
            admission: CacheAdmission::Always,
            ttl: None,
            default_user_quota: None,
            default_table_quota: None,
        };
        TieredCache::new(s, Vec::new())
    }

    #[test]
    fn legacy_admission_by_pin_only() {
        let c = legacy(64);
        c.admit(
            NodeId(0),
            "/hdfs/cold/x",
            Bytes::from_static(b"data"),
            attr(1),
            NOW,
        );
        assert!(c.get(NodeId(0), "/hdfs/cold/x", NOW).is_none());
        assert_eq!(c.stats().rejected, 1);
        assert_eq!(c.tracked_nodes(), 0, "legacy rejects allocate nothing");
        c.admit(
            NodeId(0),
            "/hdfs/hot/x",
            Bytes::from_static(b"data"),
            attr(1),
            NOW,
        );
        let hit = c
            .get(NodeId(0), "/hdfs/hot/x", NOW)
            .expect("pinned path cached");
        assert_eq!(hit.tier, CacheTier::Ssd, "legacy mode has no memory tier");
    }

    #[test]
    fn ghost_admission_requires_second_sighting() {
        let c = open(64, 64);
        let mut s = c.settings.clone();
        s.admission = CacheAdmission::Frequency;
        let c = TieredCache::new(s, Vec::new());
        let blob = Bytes::from_static(b"data");
        // First sighting: registered in the ghost, not cached.
        c.admit(NodeId(0), "/hdfs/t/b0", blob.clone(), attr(1), NOW);
        assert!(c.get(NodeId(0), "/hdfs/t/b0", NOW).is_none());
        assert_eq!(c.stats().ghost_registered, 1);
        assert_eq!(c.stats().rejected, 1);
        // Second sighting: the ghost remembers, so it is admitted.
        c.admit(NodeId(0), "/hdfs/t/b0", blob, attr(1), NOW);
        assert!(c.get(NodeId(0), "/hdfs/t/b0", NOW).is_some());
        assert_eq!(c.stats().ghost_admissions, 1);
    }

    #[test]
    fn pins_bypass_the_ghost_filter() {
        let mut s = CacheSettings::default();
        s.enabled = true;
        s.mem_capacity_per_node = ByteSize::kib(64);
        s.ssd_capacity_per_node = ByteSize::kib(64);
        let c = TieredCache::new(
            s,
            vec![CachePin {
                path_prefix: "/hdfs/hot/".into(),
            }],
        );
        c.admit(
            NodeId(0),
            "/hdfs/hot/x",
            Bytes::from_static(b"d"),
            attr(1),
            NOW,
        );
        assert!(
            c.get(NodeId(0), "/hdfs/hot/x", NOW).is_some(),
            "first touch"
        );
    }

    #[test]
    fn promotion_to_memory_on_ssd_hit() {
        let c = open(64, 64);
        c.admit(
            NodeId(0),
            "/t/b0",
            Bytes::from(vec![1u8; 100]),
            attr(1),
            NOW,
        );
        assert_eq!(c.used_on(NodeId(0), CacheTier::Ssd), ByteSize(100));
        // First hit serves from SSD and promotes.
        let h1 = c.get(NodeId(0), "/t/b0", NOW).unwrap();
        assert_eq!(h1.tier, CacheTier::Ssd);
        assert_eq!(c.used_on(NodeId(0), CacheTier::Memory), ByteSize(100));
        assert_eq!(c.used_on(NodeId(0), CacheTier::Ssd), ByteSize::ZERO);
        // Second hit is served by the memory tier.
        let h2 = c.get(NodeId(0), "/t/b0", NOW).unwrap();
        assert_eq!(h2.tier, CacheTier::Memory);
        let s = c.stats();
        assert_eq!((s.ssd_hits, s.mem_hits, s.promotions), (1, 1, 1));
    }

    #[test]
    fn memory_evictions_demote_back_to_ssd() {
        // Memory holds one 600 B entry; SSD holds both.
        let mut s = CacheSettings::default();
        s.enabled = true;
        s.mem_capacity_per_node = ByteSize(1000);
        s.ssd_capacity_per_node = ByteSize::kib(64);
        s.admission = CacheAdmission::Always;
        let c = TieredCache::new(s, Vec::new());
        c.admit(NodeId(0), "/t/a", Bytes::from(vec![1u8; 600]), attr(1), NOW);
        c.admit(NodeId(0), "/t/b", Bytes::from(vec![2u8; 600]), attr(1), NOW);
        assert!(c.get(NodeId(0), "/t/a", NOW).is_some()); // a → memory
        assert!(c.get(NodeId(0), "/t/b", NOW).is_some()); // b → memory, a demoted
        assert_eq!(c.stats().mem_evictions, 1);
        // Both remain cached: a back in SSD, b in memory.
        assert_eq!(
            c.get(NodeId(0), "/t/b", NOW).unwrap().tier,
            CacheTier::Memory
        );
        assert_eq!(c.get(NodeId(0), "/t/a", NOW).unwrap().tier, CacheTier::Ssd);
    }

    #[test]
    fn caches_are_per_node() {
        let c = open(64, 64);
        c.admit(NodeId(0), "/t/x", Bytes::from_static(b"data"), attr(1), NOW);
        assert!(c.get(NodeId(1), "/t/x", NOW).is_none());
        assert!(c.get(NodeId(0), "/t/x", NOW).is_some());
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let c = legacy(1); // 1 KiB SSD tier
        let blob = Bytes::from(vec![0u8; 400]);
        c.admit(NodeId(0), "/hdfs/hot/a", blob.clone(), attr(1), NOW);
        c.admit(NodeId(0), "/hdfs/hot/b", blob.clone(), attr(1), NOW);
        // Touch a so b is LRU.
        assert!(c.get(NodeId(0), "/hdfs/hot/a", NOW).is_some());
        c.admit(NodeId(0), "/hdfs/hot/c", blob, attr(1), NOW);
        assert!(c.get(NodeId(0), "/hdfs/hot/b", NOW).is_none(), "b evicted");
        assert!(c.get(NodeId(0), "/hdfs/hot/a", NOW).is_some());
        assert!(c.get(NodeId(0), "/hdfs/hot/c", NOW).is_some());
        assert!(c.stats().ssd_evictions >= 1);
        assert!(c.used_on(NodeId(0), CacheTier::Ssd).as_u64() <= 1024);
        // Evicted keys land in the ghost... but the legacy point has no
        // ghost (capacity 0).
        assert_eq!(c.ghost_len_on(NodeId(0)), 0);
    }

    #[test]
    fn evicted_keys_are_remembered_by_the_ghost() {
        let c = open(0, 1); // SSD-only, 1 KiB
        let blob = Bytes::from(vec![0u8; 700]);
        c.admit(NodeId(0), "/t/a", blob.clone(), attr(1), NOW);
        c.admit(NodeId(0), "/t/b", blob, attr(1), NOW); // evicts a
        assert_eq!(c.stats().ssd_evictions, 1);
        assert_eq!(c.ghost_len_on(NodeId(0)), 1);
    }

    #[test]
    fn oversized_object_rejected() {
        let c = legacy(1);
        c.admit(
            NodeId(0),
            "/hdfs/hot/big",
            Bytes::from(vec![0u8; 4096]),
            attr(1),
            NOW,
        );
        assert!(c.get(NodeId(0), "/hdfs/hot/big", NOW).is_none());
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn invalidate_node_clears() {
        let c = open(64, 64);
        c.admit(NodeId(0), "/t/x", Bytes::from_static(b"d"), attr(1), NOW);
        c.invalidate_node(NodeId(0));
        assert!(c.get(NodeId(0), "/t/x", NOW).is_none());
        assert_eq!(c.used_on(NodeId(0), CacheTier::Ssd), ByteSize::ZERO);
    }

    #[test]
    fn invalidate_path_clears_every_node_and_counts() {
        let c = open(64, 64);
        c.admit(NodeId(0), "/t/x", Bytes::from_static(b"d"), attr(1), NOW);
        c.admit(NodeId(1), "/t/x", Bytes::from_static(b"d"), attr(1), NOW);
        c.get(NodeId(0), "/t/x", NOW); // promote on node 0 → memory tier
        c.invalidate_path("/t/x");
        assert!(c.get(NodeId(0), "/t/x", NOW).is_none());
        assert!(c.get(NodeId(1), "/t/x", NOW).is_none());
        assert_eq!(c.stats().invalidations, 2);
        assert_eq!(c.user_used_on(NodeId(0), UserId(1)), ByteSize::ZERO);
    }

    #[test]
    fn ttl_expires_entries_on_probe() {
        let mut s = CacheSettings::default();
        s.enabled = true;
        s.admission = CacheAdmission::Always;
        s.ttl = Some(SimDuration::hours(1));
        let c = TieredCache::new(s, Vec::new());
        c.admit(NodeId(0), "/t/x", Bytes::from_static(b"d"), attr(1), NOW);
        assert!(c
            .get(NodeId(0), "/t/x", NOW + SimDuration::minutes(59))
            .is_some());
        let later = NOW + SimDuration::hours(2);
        assert!(c.get(NodeId(0), "/t/x", later).is_none(), "expired");
        assert_eq!(c.stats().ttl_expired, 1);
        assert_eq!(c.user_used_on(NodeId(0), UserId(1)), ByteSize::ZERO);
    }

    #[test]
    fn attached_registry_mirrors_stats() {
        let registry = MetricsRegistry::new();
        let c = legacy(64);
        c.attach_metrics(&registry);
        c.admit(
            NodeId(0),
            "/hdfs/cold/x",
            Bytes::from_static(b"d"),
            attr(1),
            NOW,
        );
        c.admit(
            NodeId(0),
            "/hdfs/hot/x",
            Bytes::from_static(b"d"),
            attr(1),
            NOW,
        );
        c.get(NodeId(0), "/hdfs/hot/x", NOW);
        c.get(NodeId(0), "/hdfs/hot/y", NOW);
        assert_eq!(registry.counter("feisu.cache.rejected").get(), 1);
        assert_eq!(registry.counter("feisu.cache.ssd.hits").get(), 1);
        assert_eq!(registry.counter("feisu.cache.misses").get(), 1);
    }

    #[test]
    fn hit_heavy_workload_keeps_lru_queues_bounded() {
        let c = legacy(64);
        c.admit(
            NodeId(0),
            "/hdfs/hot/a",
            Bytes::from_static(b"a"),
            attr(1),
            NOW,
        );
        c.admit(
            NodeId(0),
            "/hdfs/hot/b",
            Bytes::from_static(b"b"),
            attr(1),
            NOW,
        );
        for _ in 0..10_000 {
            assert!(c.get(NodeId(0), "/hdfs/hot/a", NOW).is_some());
        }
        // Two live entries: the lazy queue must stay within 2× of that,
        // not grow by one record per hit.
        let qlen = c.lru_queue_len_on(NodeId(0), CacheTier::Ssd);
        assert!(qlen <= 4, "queue leaked: {qlen} records for 2 entries");
        // Compaction must not lose recency: b is still the LRU victim.
        let blob = Bytes::from(vec![0u8; 64 * 1024 - 1]);
        c.admit(NodeId(0), "/hdfs/hot/c", blob, attr(1), NOW);
        assert!(c.get(NodeId(0), "/hdfs/hot/b", NOW).is_none(), "b evicted");
        assert!(c.get(NodeId(0), "/hdfs/hot/a", NOW).is_some());
    }

    #[test]
    fn pure_misses_do_not_allocate_node_state() {
        let c = open(64, 64);
        for n in 0..4_000 {
            assert!(c.get(NodeId(n), "/t/x", NOW).is_none());
        }
        assert_eq!(c.tracked_nodes(), 0, "misses must not allocate NodeCache");
        assert_eq!(c.stats().misses, 4_000);
        // A real admit still allocates exactly one.
        c.admit(NodeId(7), "/t/x", Bytes::from_static(b"d"), attr(1), NOW);
        assert_eq!(c.tracked_nodes(), 1);
        assert!(c.get(NodeId(7), "/t/x", NOW).is_some());
    }

    #[test]
    fn readmit_updates_accounting() {
        let c = open(64, 64);
        c.admit(NodeId(0), "/t/x", Bytes::from(vec![0u8; 100]), attr(1), NOW);
        c.admit(NodeId(0), "/t/x", Bytes::from(vec![0u8; 200]), attr(1), NOW);
        assert_eq!(c.used_on(NodeId(0), CacheTier::Ssd), ByteSize(200));
        assert_eq!(c.user_used_on(NodeId(0), UserId(1)), ByteSize(200));
    }

    #[test]
    fn eviction_under_quota_pressure_sheds_own_entries() {
        let mut s = CacheSettings::default();
        s.enabled = true;
        s.admission = CacheAdmission::Always;
        s.mem_capacity_per_node = ByteSize::kib(64);
        s.ssd_capacity_per_node = ByteSize::kib(64);
        s.default_user_quota = Some(ByteSize(1000));
        let c = TieredCache::new(s, Vec::new());
        let blob = Bytes::from(vec![0u8; 400]);
        c.admit(NodeId(0), "/t/a", blob.clone(), attr(1), NOW);
        c.admit(NodeId(0), "/t/b", blob.clone(), attr(1), NOW);
        // A third 400 B entry would put user 1 at 1200 B: its own LRU
        // entry (a) is evicted; user 2 is untouched.
        c.admit(NodeId(0), "/t/other", blob.clone(), attr(2), NOW);
        c.admit(NodeId(0), "/t/c", blob, attr(1), NOW);
        assert_eq!(c.stats().quota_evictions, 1);
        assert!(
            c.get(NodeId(0), "/t/a", NOW).is_none(),
            "a evicted for quota"
        );
        assert!(c.get(NodeId(0), "/t/b", NOW).is_some());
        assert!(c.get(NodeId(0), "/t/c", NOW).is_some());
        assert!(
            c.get(NodeId(0), "/t/other", NOW).is_some(),
            "user 2 untouched"
        );
        assert!(c.user_used_on(NodeId(0), UserId(1)).as_u64() <= 1000);
    }

    #[test]
    fn zero_quota_user_caches_nothing() {
        let mut s = CacheSettings::default();
        s.enabled = true;
        s.admission = CacheAdmission::Always;
        let c = TieredCache::new(s, Vec::new());
        c.set_user_quota(UserId(3), Some(ByteSize::ZERO));
        c.admit(NodeId(0), "/t/x", Bytes::from_static(b"d"), attr(3), NOW);
        assert!(c.get(NodeId(0), "/t/x", NOW).is_none());
        let st = c.stats();
        assert_eq!((st.quota_rejections, st.rejected), (1, 1));
        // Clearing the override restores the (unlimited) default.
        c.set_user_quota(UserId(3), None);
        c.admit(NodeId(0), "/t/x", Bytes::from_static(b"d"), attr(3), NOW);
        assert!(c.get(NodeId(0), "/t/x", NOW).is_some());
    }

    #[test]
    fn pin_vs_quota_conflict_quota_wins() {
        let mut s = CacheSettings::default();
        s.enabled = true;
        s.admission = CacheAdmission::Frequency;
        let c = TieredCache::new(
            s,
            vec![CachePin {
                path_prefix: "/hdfs/hot/".into(),
            }],
        );
        c.set_user_quota(UserId(1), Some(ByteSize(10)));
        // Pinned, but larger than the user's whole quota: rejected.
        c.admit(
            NodeId(0),
            "/hdfs/hot/x",
            Bytes::from(vec![0u8; 100]),
            attr(1),
            NOW,
        );
        assert!(c.get(NodeId(0), "/hdfs/hot/x", NOW).is_none());
        assert_eq!(c.stats().quota_rejections, 1);
    }

    #[test]
    fn table_quota_evicts_same_table_entries() {
        let mut s = CacheSettings::default();
        s.enabled = true;
        s.admission = CacheAdmission::Always;
        s.default_table_quota = Some(ByteSize(1000));
        let c = TieredCache::new(s, Vec::new());
        let blob = Bytes::from(vec![0u8; 400]);
        c.admit(NodeId(0), "/t/a", blob.clone(), tattr(1, "clicks"), NOW);
        c.admit(NodeId(0), "/t/b", blob.clone(), tattr(1, "clicks"), NOW);
        c.admit(NodeId(0), "/u/x", blob.clone(), tattr(1, "views"), NOW);
        c.admit(NodeId(0), "/t/c", blob, tattr(1, "clicks"), NOW);
        assert!(
            c.get(NodeId(0), "/t/a", NOW).is_none(),
            "clicks LRU evicted"
        );
        assert!(
            c.get(NodeId(0), "/u/x", NOW).is_some(),
            "other table untouched"
        );
        assert!(c.table_used_on(NodeId(0), "clicks").as_u64() <= 1000);
    }

    #[test]
    fn ghost_capacity_is_bounded() {
        let mut s = CacheSettings::default();
        s.enabled = true;
        s.admission = CacheAdmission::Frequency;
        s.ghost_capacity = 8;
        let c = TieredCache::new(s, Vec::new());
        for i in 0..100 {
            c.admit(
                NodeId(0),
                &format!("/t/b{i}"),
                Bytes::from_static(b"d"),
                attr(1),
                NOW,
            );
        }
        assert!(c.ghost_len_on(NodeId(0)) <= 8);
        // An old key fell out of the ghost: offering it again is still a
        // first sighting.
        c.admit(NodeId(0), "/t/b0", Bytes::from_static(b"d"), attr(1), NOW);
        assert!(c.get(NodeId(0), "/t/b0", NOW).is_none());
    }

    #[test]
    fn node_tier_rows_report_state() {
        let c = open(64, 64);
        c.admit(NodeId(0), "/t/x", Bytes::from(vec![0u8; 128]), attr(1), NOW);
        c.get(NodeId(0), "/t/x", NOW); // ssd hit + promotion
        let rows = c.node_tier_rows(NodeId(0));
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].tier, "mem");
        assert_eq!(rows[0].entries, 1);
        assert_eq!(rows[0].used_bytes, 128);
        assert_eq!(rows[1].tier, "ssd");
        assert_eq!(rows[1].hits, 1);
        assert_eq!(rows[2].tier, "ghost");
        // An untouched node reports zero rows of the same shape.
        let empty = c.node_tier_rows(NodeId(9));
        assert_eq!(empty.len(), 3);
        assert_eq!(empty[0].entries, 0);
    }
}
