//! Traffic-flow classes and bandwidth arbitration.
//!
//! §V-C divides Feisu traffic into three classes with strict priority:
//! control/state flow (cluster commands, heartbeats) highest, write data
//! flow (temporaries, intermediate results, bypassed to global storage)
//! next, and read data flow (result collection) lowest, because reads are
//! cheap to retry against replicated persistent storage. This module
//! models a link whose bandwidth is divided by strict priority: a class
//! only sees what the higher classes left over.

use feisu_common::{ByteSize, SimDuration};
use feisu_obs::{Counter, MetricsRegistry};
use std::sync::Arc;

/// Traffic classes in descending priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficClass {
    /// Cluster-level operation commands and heartbeats.
    ControlState,
    /// Temporary data / intermediate results written during execution.
    WriteData,
    /// Result collection back to clients.
    ReadData,
}

impl TrafficClass {
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::ControlState,
        TrafficClass::WriteData,
        TrafficClass::ReadData,
    ];
}

/// Per-link transfer metrics, present once attached to a registry.
#[derive(Debug, Clone)]
struct LinkMetrics {
    transfers: Arc<Counter>,
    bytes: Arc<Counter>,
    starved: Arc<Counter>,
}

/// A link with strict-priority bandwidth sharing.
#[derive(Debug, Clone)]
pub struct PriorityLink {
    /// Line rate in bytes per simulated second.
    line_rate: u64,
    /// Currently active demand per class, bytes per second.
    demand: [u64; 3],
    metrics: Option<LinkMetrics>,
}

impl PriorityLink {
    /// `line_rate` in bytes/second (1 Gbps ⇒ 125_000_000).
    pub fn new(line_rate: u64) -> Self {
        assert!(line_rate > 0);
        PriorityLink {
            line_rate,
            demand: [0; 3],
            metrics: None,
        }
    }

    /// Starts publishing `feisu.traffic.*` transfer counters.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(LinkMetrics {
            transfers: registry.counter("feisu.traffic.transfers"),
            bytes: registry.counter("feisu.traffic.bytes"),
            starved: registry.counter("feisu.traffic.starved"),
        });
    }

    fn idx(class: TrafficClass) -> usize {
        match class {
            TrafficClass::ControlState => 0,
            TrafficClass::WriteData => 1,
            TrafficClass::ReadData => 2,
        }
    }

    /// Registers sustained demand (bytes/second) for a class.
    pub fn set_demand(&mut self, class: TrafficClass, bytes_per_sec: u64) {
        self.demand[Self::idx(class)] = bytes_per_sec;
    }

    /// Bandwidth actually granted to `class` under strict priority.
    pub fn granted(&self, class: TrafficClass) -> u64 {
        let i = Self::idx(class);
        let higher: u64 = self.demand[..i]
            .iter()
            .map(|&d| d.min(self.line_rate))
            .sum();
        let remaining = self.line_rate.saturating_sub(higher.min(self.line_rate));
        self.demand[i].min(remaining)
    }

    /// Time to transfer `size` for `class` at its currently granted rate.
    /// Returns `None` when the class is fully starved.
    pub fn transfer_time(&self, class: TrafficClass, size: ByteSize) -> Option<SimDuration> {
        let rate = self.granted(class);
        if rate == 0 {
            if let Some(m) = &self.metrics {
                m.starved.inc();
            }
            return None;
        }
        if let Some(m) = &self.metrics {
            m.transfers.inc();
            m.bytes.add(size.as_u64());
        }
        let ns = size.as_u64() as f64 / rate as f64 * 1e9;
        Some(SimDuration::nanos(ns as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS: u64 = 125_000_000;

    #[test]
    fn control_always_gets_its_demand() {
        let mut l = PriorityLink::new(GBPS);
        l.set_demand(TrafficClass::ControlState, 1_000_000);
        l.set_demand(TrafficClass::ReadData, GBPS * 10);
        assert_eq!(l.granted(TrafficClass::ControlState), 1_000_000);
    }

    #[test]
    fn lower_classes_get_leftovers_in_order() {
        let mut l = PriorityLink::new(GBPS);
        l.set_demand(TrafficClass::ControlState, 25_000_000);
        l.set_demand(TrafficClass::WriteData, 80_000_000);
        l.set_demand(TrafficClass::ReadData, 50_000_000);
        assert_eq!(l.granted(TrafficClass::WriteData), 80_000_000);
        // Read sees 125 - 25 - 80 = 20 MB/s.
        assert_eq!(l.granted(TrafficClass::ReadData), 20_000_000);
    }

    #[test]
    fn saturated_link_starves_reads() {
        let mut l = PriorityLink::new(GBPS);
        l.set_demand(TrafficClass::WriteData, GBPS);
        l.set_demand(TrafficClass::ReadData, 1);
        assert_eq!(l.granted(TrafficClass::ReadData), 0);
        assert!(l
            .transfer_time(TrafficClass::ReadData, ByteSize::kib(1))
            .is_none());
    }

    #[test]
    fn attached_metrics_count_transfers_and_starvation() {
        let registry = MetricsRegistry::new();
        let mut l = PriorityLink::new(GBPS);
        l.attach_metrics(&registry);
        l.set_demand(TrafficClass::ReadData, GBPS);
        l.transfer_time(TrafficClass::ReadData, ByteSize::kib(4))
            .unwrap();
        l.set_demand(TrafficClass::WriteData, GBPS);
        assert!(l
            .transfer_time(TrafficClass::ReadData, ByteSize::kib(1))
            .is_none());
        assert_eq!(registry.counter("feisu.traffic.transfers").get(), 1);
        assert_eq!(registry.counter("feisu.traffic.bytes").get(), 4096);
        assert_eq!(registry.counter("feisu.traffic.starved").get(), 1);
    }

    #[test]
    fn transfer_time_matches_rate() {
        let mut l = PriorityLink::new(GBPS);
        l.set_demand(TrafficClass::ReadData, GBPS);
        let t = l
            .transfer_time(TrafficClass::ReadData, ByteSize(GBPS))
            .unwrap();
        let secs = t.as_secs_f64();
        assert!((0.99..1.01).contains(&secs), "got {secs}");
    }
}
