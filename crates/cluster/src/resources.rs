//! Per-node resource consumption agreements.
//!
//! "To guarantee that Feisu doesn't affect the service quality of the
//! business application on top of each storage system, we define a
//! resource consumption agreement between Feisu and each storage system"
//! (§V-A). A node advertises its total slots (cores); the business side
//! claims a fluctuating share; Feisu may only use up to
//! `agreement_share × total` of what remains, and must release slots when
//! the business load spikes (container preemption, §V-B).

use feisu_common::{FeisuError, Result};

/// Tracks slot usage on one node under a resource agreement.
#[derive(Debug, Clone)]
pub struct ResourceAgreement {
    total_slots: u32,
    agreement_share: f64,
    business_slots: u32,
    feisu_slots: u32,
}

impl ResourceAgreement {
    pub fn new(total_slots: u32, agreement_share: f64) -> Self {
        assert!((0.0..=1.0).contains(&agreement_share));
        ResourceAgreement {
            total_slots,
            agreement_share,
            business_slots: 0,
            feisu_slots: 0,
        }
    }

    /// Slots Feisu is currently permitted to hold (floor of share × free).
    pub fn feisu_limit(&self) -> u32 {
        let free = self.total_slots.saturating_sub(self.business_slots);
        (free as f64 * self.agreement_share).floor() as u32
    }

    /// Slots Feisu currently holds.
    pub fn feisu_in_use(&self) -> u32 {
        self.feisu_slots
    }

    /// Whether Feisu currently holds more than the agreement allows (can
    /// happen transiently after a business-load spike); the excess must be
    /// preempted.
    pub fn over_budget(&self) -> u32 {
        self.feisu_slots.saturating_sub(self.feisu_limit())
    }

    /// Tries to take one Feisu task slot.
    pub fn acquire(&mut self) -> Result<()> {
        if self.feisu_slots < self.feisu_limit() {
            self.feisu_slots += 1;
            Ok(())
        } else {
            Err(FeisuError::Scheduling(format!(
                "resource agreement exhausted: {}/{} feisu slots in use",
                self.feisu_slots,
                self.feisu_limit()
            )))
        }
    }

    /// Releases one Feisu task slot.
    pub fn release(&mut self) {
        self.feisu_slots = self.feisu_slots.saturating_sub(1);
    }

    /// Business-critical applications update their own usage; business
    /// demand is always granted (it has absolute priority) and shrinks the
    /// Feisu limit. Returns how many Feisu tasks must now be preempted.
    pub fn set_business_load(&mut self, slots: u32) -> u32 {
        self.business_slots = slots.min(self.total_slots);
        self.over_budget()
    }

    /// Forced preemption acknowledgment: the caller killed `n` tasks.
    pub fn preempted(&mut self, n: u32) {
        self.feisu_slots = self.feisu_slots.saturating_sub(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_scales_with_free_capacity() {
        let mut a = ResourceAgreement::new(8, 0.25);
        assert_eq!(a.feisu_limit(), 2);
        a.set_business_load(4);
        assert_eq!(a.feisu_limit(), 1);
        a.set_business_load(8);
        assert_eq!(a.feisu_limit(), 0);
    }

    #[test]
    fn acquire_respects_limit() {
        let mut a = ResourceAgreement::new(8, 0.5);
        assert!(a.acquire().is_ok());
        assert!(a.acquire().is_ok());
        assert!(a.acquire().is_ok());
        assert!(a.acquire().is_ok());
        assert!(a.acquire().is_err());
        a.release();
        assert!(a.acquire().is_ok());
    }

    #[test]
    fn business_spike_triggers_preemption() {
        let mut a = ResourceAgreement::new(8, 0.5);
        for _ in 0..4 {
            a.acquire().unwrap();
        }
        let must_kill = a.set_business_load(6);
        // free = 2, limit = 1, holding 4 → kill 3.
        assert_eq!(must_kill, 3);
        a.preempted(3);
        assert_eq!(a.feisu_in_use(), 1);
        assert_eq!(a.over_budget(), 0);
    }

    #[test]
    fn business_load_clamped_to_total() {
        let mut a = ResourceAgreement::new(4, 1.0);
        a.set_business_load(100);
        assert_eq!(a.feisu_limit(), 0);
    }
}
