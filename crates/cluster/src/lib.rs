//! Simulated cluster substrate.
//!
//! The paper evaluates Feisu on a 4,000-node production cluster (§VI-A).
//! This crate replaces that hardware with a deterministic simulation that
//! preserves everything the evaluation measures:
//!
//! * [`simclock`] — a shared simulated clock; all performance accounting
//!   is in simulated nanoseconds, making benchmarks machine-independent;
//! * [`cost`] — a calibrated cost model for HDD/SSD/memory/network I/O and
//!   CPU work, matching the paper's hardware (1 Gbps Ethernet, SATA
//!   disks, one SSD per node);
//! * [`topology`] — data centers, racks and nodes, with hop-distance
//!   computation used by locality-aware scheduling;
//! * [`heartbeat`] — the cluster-manager heartbeat table with failure
//!   detection (Feisu deliberately avoids ZooKeeper at this scale,
//!   §III-C);
//! * [`resources`] — the per-node resource consumption agreement that
//!   keeps Feisu from disturbing business-critical services (§V-A/B);
//! * [`traffic`] — the three-class traffic priority scheme (§V-C).

pub mod cost;
pub mod heartbeat;
pub mod resources;
pub mod simclock;
pub mod topology;
pub mod traffic;

pub use cost::{CostModel, StorageMedium};
pub use simclock::SimClock;
pub use topology::{NodeInfo, Topology};
