//! Heartbeat tracking and failure detection.
//!
//! "Cluster manager manages runtime information of workers… It
//! communicates with the job manager using periodic RPC. Feisu does not
//! adopt systems like Zookeeper for survival detection because the number
//! of workers is too large and the workers are geographically distributed"
//! (§III-C). This module is that bookkeeping: a table of last-seen beats
//! plus per-node load statistics, with failure declared after a
//! configurable number of missed intervals. Failure *injection* for tests
//! is done simply by not beating a node.

use feisu_common::hash::FxHashMap;
use feisu_common::{NodeId, SimDuration, SimInstant};
use feisu_obs::{Counter, Gauge, MetricsRegistry};
use std::sync::Arc;

/// Load statistics a worker reports with each heartbeat; the scheduler
/// prefers lightly loaded nodes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoadStats {
    /// Tasks currently queued or running on the worker.
    pub running_tasks: u32,
    /// Fraction of the node's resource-agreement share currently used.
    pub utilization: f64,
}

#[derive(Debug, Clone)]
struct BeatRecord {
    last_seen: SimInstant,
    load: LoadStats,
}

/// Counter/gauge handles the table updates when metrics are attached.
#[derive(Debug)]
struct HeartbeatMetrics {
    beats: Arc<Counter>,
    registered: Arc<Gauge>,
}

/// The cluster manager's heartbeat table.
#[derive(Debug)]
pub struct HeartbeatTable {
    interval: SimDuration,
    miss_limit: u32,
    records: FxHashMap<NodeId, BeatRecord>,
    metrics: Option<HeartbeatMetrics>,
}

impl HeartbeatTable {
    pub fn new(interval: SimDuration, miss_limit: u32) -> Self {
        assert!(miss_limit >= 1, "miss_limit must be >= 1");
        HeartbeatTable {
            interval,
            miss_limit,
            records: FxHashMap::default(),
            metrics: None,
        }
    }

    /// Starts publishing `feisu.heartbeat.*` to a registry.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        let m = HeartbeatMetrics {
            beats: registry.counter("feisu.heartbeat.beats"),
            registered: registry.gauge("feisu.heartbeat.registered"),
        };
        m.registered.set(self.records.len() as i64);
        self.metrics = Some(m);
    }

    /// Registers a worker (first heartbeat).
    pub fn register(&mut self, node: NodeId, now: SimInstant) {
        self.records.insert(
            node,
            BeatRecord {
                last_seen: now,
                load: LoadStats::default(),
            },
        );
        if let Some(m) = &self.metrics {
            m.registered.set(self.records.len() as i64);
        }
    }

    /// Records a heartbeat with fresh load statistics. `last_seen` is
    /// monotonic: concurrent queries beat with their own admission
    /// instants, and a straggling beat from an earlier instant must not
    /// roll a node's liveness backwards.
    pub fn beat(&mut self, node: NodeId, now: SimInstant, load: LoadStats) {
        let rec = self.records.entry(node).or_insert(BeatRecord {
            last_seen: now,
            load,
        });
        rec.last_seen = rec.last_seen.max(now);
        rec.load = load;
        if let Some(m) = &self.metrics {
            m.beats.inc();
            m.registered.set(self.records.len() as i64);
        }
    }

    /// Whether the node is considered alive at `now`.
    pub fn is_alive(&self, node: NodeId, now: SimInstant) -> bool {
        match self.records.get(&node) {
            None => false,
            Some(rec) => now.since(rec.last_seen) <= self.interval * self.miss_limit as u64,
        }
    }

    /// Load statistics of a node, if registered.
    pub fn load(&self, node: NodeId) -> Option<LoadStats> {
        self.records.get(&node).map(|r| r.load)
    }

    /// Last heartbeat instant of a node, if registered (drives the
    /// `last_seen_ns` column of the `system.nodes` virtual table).
    pub fn last_seen(&self, node: NodeId) -> Option<SimInstant> {
        self.records.get(&node).map(|r| r.last_seen)
    }

    /// All nodes alive at `now`.
    pub fn alive_nodes(&self, now: SimInstant) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .records
            .iter()
            .filter(|(_, r)| now.since(r.last_seen) <= self.interval * self.miss_limit as u64)
            .map(|(&id, _)| id)
            .collect();
        v.sort_unstable();
        v
    }

    /// Nodes that were registered but have gone silent.
    pub fn dead_nodes(&self, now: SimInstant) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .records
            .iter()
            .filter(|(_, r)| now.since(r.last_seen) > self.interval * self.miss_limit as u64)
            .map(|(&id, _)| id)
            .collect();
        v.sort_unstable();
        v
    }

    /// Removes a node entirely (decommission).
    pub fn remove(&mut self, node: NodeId) {
        self.records.remove(&node);
        if let Some(m) = &self.metrics {
            m.registered.set(self.records.len() as i64);
        }
    }

    pub fn registered_count(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> HeartbeatTable {
        HeartbeatTable::new(SimDuration::secs(3), 3)
    }

    #[test]
    fn fresh_node_is_alive() {
        let mut t = table();
        t.register(NodeId(1), SimInstant(0));
        assert!(t.is_alive(NodeId(1), SimInstant(0)));
        assert!(t.is_alive(NodeId(1), SimInstant::EPOCH + SimDuration::secs(9)));
    }

    #[test]
    fn silent_node_declared_dead_after_miss_limit() {
        let mut t = table();
        t.register(NodeId(1), SimInstant(0));
        let just_past = SimInstant::EPOCH + SimDuration::secs(9) + SimDuration::nanos(1);
        assert!(!t.is_alive(NodeId(1), just_past));
        assert_eq!(t.dead_nodes(just_past), vec![NodeId(1)]);
    }

    #[test]
    fn beat_revives_node() {
        let mut t = table();
        t.register(NodeId(1), SimInstant(0));
        let late = SimInstant::EPOCH + SimDuration::secs(60);
        assert!(!t.is_alive(NodeId(1), late));
        t.beat(
            NodeId(1),
            late,
            LoadStats {
                running_tasks: 2,
                utilization: 0.5,
            },
        );
        assert!(t.is_alive(NodeId(1), late));
        assert_eq!(t.load(NodeId(1)).unwrap().running_tasks, 2);
        assert_eq!(t.last_seen(NodeId(1)), Some(late));
        assert_eq!(t.last_seen(NodeId(9)), None);
    }

    #[test]
    fn attached_metrics_track_beats_and_membership() {
        let registry = MetricsRegistry::new();
        let mut t = table();
        t.register(NodeId(1), SimInstant(0));
        t.attach_metrics(&registry);
        assert_eq!(registry.gauge("feisu.heartbeat.registered").get(), 1);
        t.register(NodeId(2), SimInstant(0));
        t.beat(NodeId(1), SimInstant(0), LoadStats::default());
        t.beat(NodeId(2), SimInstant(0), LoadStats::default());
        assert_eq!(registry.counter("feisu.heartbeat.beats").get(), 2);
        assert_eq!(registry.gauge("feisu.heartbeat.registered").get(), 2);
        t.remove(NodeId(1));
        assert_eq!(registry.gauge("feisu.heartbeat.registered").get(), 1);
    }

    #[test]
    fn unknown_node_is_dead() {
        let t = table();
        assert!(!t.is_alive(NodeId(5), SimInstant(0)));
        assert_eq!(t.load(NodeId(5)), None);
    }

    #[test]
    fn alive_and_dead_partition_registered() {
        let mut t = table();
        t.register(NodeId(1), SimInstant(0));
        t.register(NodeId(2), SimInstant(0));
        let now = SimInstant::EPOCH + SimDuration::secs(20);
        t.beat(NodeId(2), now, LoadStats::default());
        assert_eq!(t.alive_nodes(now), vec![NodeId(2)]);
        assert_eq!(t.dead_nodes(now), vec![NodeId(1)]);
        assert_eq!(t.registered_count(), 2);
        t.remove(NodeId(1));
        assert_eq!(t.registered_count(), 1);
    }
}
