//! Calibrated I/O, network and CPU cost model.
//!
//! The model is calibrated against the paper's experiment hardware
//! (§VI-A): 4-core 2.4 GHz Xeon nodes with four 3 TB SATA disks
//! (~100 MB/s sequential, ~5 ms seek), one 500 GB SSD (~400 MB/s, ~60 µs
//! access), 64 GB of RAM (~10 GB/s streaming), and 1 Gbps full-duplex
//! Ethernet (125 MB/s, ~100 µs per switch hop). Changing the constants
//! changes absolute numbers but not the structural comparisons the
//! benchmarks report (who wins, roughly by how much).

use feisu_common::{ByteSize, SimDuration};

/// Where a byte physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageMedium {
    /// Rotational SATA disk.
    Hdd,
    /// SATA SSD (the per-node cache device).
    Ssd,
    /// DRAM (SmartIndex storage, hot buffers).
    Memory,
}

/// All tunables of the simulation cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fixed per-request latency for an HDD read (seek + rotation).
    pub hdd_seek: SimDuration,
    /// HDD streaming cost per byte.
    pub hdd_ns_per_byte: f64,
    /// Fixed per-request latency for an SSD read.
    pub ssd_seek: SimDuration,
    /// SSD streaming cost per byte.
    pub ssd_ns_per_byte: f64,
    /// Memory streaming cost per byte.
    pub mem_ns_per_byte: f64,
    /// Per-hop switch latency.
    pub net_hop_latency: SimDuration,
    /// Network cost per byte at full line rate (1 Gbps ⇒ 8 ns/B).
    pub net_ns_per_byte: f64,
    /// CPU cost to evaluate one predicate against one value.
    pub cpu_ns_per_predicate_row: f64,
    /// CPU cost to insert one row into a hash-join build table.
    pub cpu_ns_per_join_build_row: f64,
    /// CPU cost to probe the build table with one row.
    pub cpu_ns_per_join_probe_row: f64,
    /// CPU cost of one sort comparison.
    pub cpu_ns_per_sort_cmp: f64,
    /// CPU cost to materialize one projected output row.
    pub cpu_ns_per_project_row: f64,
    /// CPU cost to fold one row into an aggregation hash table.
    pub cpu_ns_per_agg_update_row: f64,
    /// CPU cost to merge one partial-aggregate transport row.
    pub cpu_ns_per_agg_merge_row: f64,
    /// CPU cost to decompress one byte.
    pub cpu_ns_per_decompress_byte: f64,
    /// Fixed cost of dispatching one task over RPC.
    pub rpc_overhead: SimDuration,
    /// Fixed per-request latency of the block cache's DRAM tier. Unlike
    /// raw `StorageMedium::Memory` streaming (SmartIndex buffers already
    /// in the process), a memory-tier cache hit pays for a lookup in the
    /// cache's index and a buffer handoff, so it has a small but nonzero
    /// access floor.
    pub mem_cache_seek: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            hdd_seek: SimDuration::millis(5),
            hdd_ns_per_byte: 10.0, // 100 MB/s
            ssd_seek: SimDuration::micros(60),
            ssd_ns_per_byte: 2.5, // 400 MB/s
            mem_ns_per_byte: 0.1, // 10 GB/s
            net_hop_latency: SimDuration::micros(100),
            net_ns_per_byte: 8.0, // 1 Gbps
            cpu_ns_per_predicate_row: 2.0,
            // The per-operator rates are calibrated to the same per-row
            // cost the engine historically charged through
            // `predicate_eval` for every operator, so default simulated
            // times are unchanged by the per-operator split.
            cpu_ns_per_join_build_row: 2.0,
            cpu_ns_per_join_probe_row: 2.0,
            cpu_ns_per_sort_cmp: 2.0,
            cpu_ns_per_project_row: 2.0,
            cpu_ns_per_agg_update_row: 2.0,
            cpu_ns_per_agg_merge_row: 2.0,
            cpu_ns_per_decompress_byte: 0.5,
            rpc_overhead: SimDuration::micros(200),
            mem_cache_seek: SimDuration::micros(5),
        }
    }
}

impl CostModel {
    /// Fixed per-request access latency of a medium. Columnar scans pay
    /// one of these per column touched (each column is a separate extent).
    pub fn seek(&self, medium: StorageMedium) -> SimDuration {
        match medium {
            StorageMedium::Hdd => self.hdd_seek,
            StorageMedium::Ssd => self.ssd_seek,
            StorageMedium::Memory => SimDuration::ZERO,
        }
    }

    /// Cost of reading `size` bytes from `medium` in one sequential request.
    pub fn read(&self, medium: StorageMedium, size: ByteSize) -> SimDuration {
        let (seek, per_byte) = match medium {
            StorageMedium::Hdd => (self.hdd_seek, self.hdd_ns_per_byte),
            StorageMedium::Ssd => (self.ssd_seek, self.ssd_ns_per_byte),
            StorageMedium::Memory => (SimDuration::ZERO, self.mem_ns_per_byte),
        };
        seek + SimDuration::nanos((size.as_u64() as f64 * per_byte) as u64)
    }

    /// Cost of serving `size` bytes from the block cache's DRAM tier:
    /// the cache access floor plus memory streaming. Sits strictly
    /// between a raw memory read and an SSD read for block-sized
    /// objects.
    pub fn mem_cache_read(&self, size: ByteSize) -> SimDuration {
        self.mem_cache_seek + self.read(StorageMedium::Memory, size)
    }

    /// Cost of moving `size` bytes across `hops` network hops (0 hops =
    /// local, no cost).
    pub fn network(&self, hops: u32, size: ByteSize) -> SimDuration {
        if hops == 0 {
            return SimDuration::ZERO;
        }
        self.net_hop_latency * hops as u64
            + SimDuration::nanos((size.as_u64() as f64 * self.net_ns_per_byte) as u64)
    }

    /// CPU cost of evaluating one predicate over `rows` values.
    pub fn predicate_eval(&self, rows: usize) -> SimDuration {
        SimDuration::nanos((rows as f64 * self.cpu_ns_per_predicate_row) as u64)
    }

    /// CPU cost of decompressing `size` bytes.
    pub fn decompress(&self, size: ByteSize) -> SimDuration {
        SimDuration::nanos((size.as_u64() as f64 * self.cpu_ns_per_decompress_byte) as u64)
    }

    /// CPU cost of building a hash-join table over `rows` rows.
    pub fn join_build(&self, rows: usize) -> SimDuration {
        SimDuration::nanos((rows as f64 * self.cpu_ns_per_join_build_row) as u64)
    }

    /// CPU cost of probing a hash-join table with `rows` rows.
    pub fn join_probe(&self, rows: usize) -> SimDuration {
        SimDuration::nanos((rows as f64 * self.cpu_ns_per_join_probe_row) as u64)
    }

    /// CPU cost of `cmps` sort comparisons.
    pub fn sort_cmp(&self, cmps: usize) -> SimDuration {
        SimDuration::nanos((cmps as f64 * self.cpu_ns_per_sort_cmp) as u64)
    }

    /// CPU cost of projecting `rows` output rows.
    pub fn project(&self, rows: usize) -> SimDuration {
        SimDuration::nanos((rows as f64 * self.cpu_ns_per_project_row) as u64)
    }

    /// CPU cost of folding `rows` rows into an aggregation table.
    pub fn agg_update(&self, rows: usize) -> SimDuration {
        SimDuration::nanos((rows as f64 * self.cpu_ns_per_agg_update_row) as u64)
    }

    /// CPU cost of merging `rows` partial-aggregate transport rows.
    pub fn agg_merge(&self, rows: usize) -> SimDuration {
        SimDuration::nanos((rows as f64 * self.cpu_ns_per_agg_merge_row) as u64)
    }

    /// Elapsed CPU time of a hash-partitioned parallel merge on one stem
    /// server: `part_rows[p]` transport rows are folded by partition
    /// merger `p`, all mergers running concurrently on a `cores`-core
    /// node. Elapsed time is bounded below by the largest single
    /// partition (one merger is one thread) and by total work divided by
    /// the core count (the node cannot run more mergers than cores at
    /// once). With one partition this degenerates to `agg_merge`.
    pub fn parallel_agg_merge(&self, part_rows: &[usize], cores: u32) -> SimDuration {
        let largest = part_rows.iter().copied().max().unwrap_or(0);
        let total: usize = part_rows.iter().sum();
        let cores = cores.max(1) as u64;
        let by_cores = SimDuration::nanos(self.agg_merge(total).as_nanos().div_ceil(cores));
        self.agg_merge(largest).max(by_cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hdd_read_dominated_by_seek_for_small_io() {
        let m = CostModel::default();
        let small = m.read(StorageMedium::Hdd, ByteSize::bytes(100));
        assert!(small >= SimDuration::millis(5));
        assert!(small < SimDuration::millis(6));
    }

    #[test]
    fn media_ordering_memory_fastest() {
        let m = CostModel::default();
        let size = ByteSize::mib(4);
        let hdd = m.read(StorageMedium::Hdd, size);
        let ssd = m.read(StorageMedium::Ssd, size);
        let mem = m.read(StorageMedium::Memory, size);
        assert!(mem < ssd && ssd < hdd);
    }

    #[test]
    fn hdd_throughput_calibration() {
        // 100 MB at 100 MB/s ≈ 1 s (+5 ms seek).
        let m = CostModel::default();
        let t = m.read(StorageMedium::Hdd, ByteSize::mib(100));
        let secs = t.as_secs_f64();
        assert!((1.0..1.1).contains(&secs), "got {secs}");
    }

    #[test]
    fn mem_cache_tier_sits_between_memory_and_ssd() {
        let m = CostModel::default();
        let size = ByteSize::mib(4);
        let mem = m.read(StorageMedium::Memory, size);
        let tier = m.mem_cache_read(size);
        let ssd = m.read(StorageMedium::Ssd, size);
        assert!(mem < tier && tier < ssd);
        // The floor applies even to tiny objects.
        assert!(m.mem_cache_read(ByteSize::bytes(1)) >= m.mem_cache_seek);
    }

    #[test]
    fn network_zero_hops_free() {
        let m = CostModel::default();
        assert_eq!(m.network(0, ByteSize::gib(1)), SimDuration::ZERO);
        let one_hop = m.network(1, ByteSize::mib(1));
        let three_hops = m.network(3, ByteSize::mib(1));
        assert!(three_hops > one_hop);
    }

    #[test]
    fn network_gbps_calibration() {
        // 125 MB over 1 Gbps ≈ 1 s.
        let m = CostModel::default();
        let t = m.network(1, ByteSize::mib(125));
        let secs = t.as_secs_f64();
        assert!((1.0..1.1).contains(&secs), "got {secs}");
    }

    #[test]
    fn per_operator_rates_default_to_the_legacy_predicate_rate() {
        // The engine historically billed every operator through
        // `predicate_eval`; the dedicated entries must default to the same
        // rate so simulated times are bit-identical out of the box.
        let m = CostModel::default();
        for rows in [0usize, 1, 7, 4096] {
            let legacy = m.predicate_eval(rows);
            assert_eq!(m.join_build(rows), legacy);
            assert_eq!(m.join_probe(rows), legacy);
            assert_eq!(m.sort_cmp(rows), legacy);
            assert_eq!(m.project(rows), legacy);
            assert_eq!(m.agg_update(rows), legacy);
            assert_eq!(m.agg_merge(rows), legacy);
        }
    }

    #[test]
    fn per_operator_rates_are_independently_tunable() {
        let mut m = CostModel::default();
        m.cpu_ns_per_sort_cmp = 4.0;
        assert_eq!(m.sort_cmp(100), SimDuration::nanos(400));
        // Other operators keep their own rates.
        assert_eq!(m.project(100), SimDuration::nanos(200));
    }

    #[test]
    fn parallel_agg_merge_bounded_by_largest_partition_and_cores() {
        let m = CostModel::default();
        // One partition == the serial merge.
        assert_eq!(m.parallel_agg_merge(&[1000], 4), m.agg_merge(1000));
        // Balanced partitions on enough cores: elapsed = one share.
        assert_eq!(
            m.parallel_agg_merge(&[250, 250, 250, 250], 4),
            m.agg_merge(250)
        );
        // Skewed partitions: the heavy one dominates.
        assert_eq!(
            m.parallel_agg_merge(&[700, 100, 100, 100], 4),
            m.agg_merge(700)
        );
        // More partitions than cores: total/cores is the floor.
        let eight_way = m.parallel_agg_merge(&[125; 8], 4);
        assert_eq!(
            eight_way,
            SimDuration::nanos(m.agg_merge(1000).as_nanos().div_ceil(4))
        );
        // Empty = free; zero cores clamps to one.
        assert_eq!(m.parallel_agg_merge(&[], 4), SimDuration::ZERO);
        assert_eq!(m.parallel_agg_merge(&[10], 0), m.agg_merge(10));
    }

    #[test]
    fn cpu_costs_scale_linearly() {
        let m = CostModel::default();
        let a = m.predicate_eval(1000);
        let b = m.predicate_eval(2000);
        assert_eq!(b.as_nanos(), a.as_nanos() * 2);
        assert!(m.decompress(ByteSize::kib(1)) > SimDuration::ZERO);
    }
}
