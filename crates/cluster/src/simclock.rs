//! The simulated clock.
//!
//! Every latency/throughput number Feisu reports is *simulated time*:
//! deterministic, hardware-independent, and advanced explicitly by the
//! component doing the (modeled) work. A single `SimClock` is shared by a
//! whole simulated cluster; per-task accounting uses local
//! [`TimeTally`] accumulators that are folded into critical-path maxima by
//! the execution tree, which is how a parallel cluster's elapsed time is
//! computed without real sleeping.

use feisu_common::{SimDuration, SimInstant};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, monotonically advancing simulated wall clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
}

impl SimClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        SimInstant(self.now_ns.load(Ordering::Relaxed))
    }

    /// Advances the wall clock by `d` and returns the new now.
    pub fn advance(&self, d: SimDuration) -> SimInstant {
        let new = self.now_ns.fetch_add(d.as_nanos(), Ordering::Relaxed) + d.as_nanos();
        SimInstant(new)
    }

    /// Moves the clock forward to at least `t` (no-op if already past it).
    /// Used when a query's critical path finishes at a known instant.
    pub fn advance_to(&self, t: SimInstant) {
        self.now_ns.fetch_max(t.as_nanos(), Ordering::Relaxed);
    }
}

impl feisu_obs::SimTimeSource for SimClock {
    fn sim_now(&self) -> SimInstant {
        self.now()
    }
}

/// Local accumulator for one task's simulated work, split by category so
/// experiments can report I/O vs CPU vs network breakdowns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimeTally {
    pub io: SimDuration,
    pub cpu: SimDuration,
    pub network: SimDuration,
}

impl TimeTally {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn total(&self) -> SimDuration {
        self.io + self.cpu + self.network
    }

    pub fn add_io(&mut self, d: SimDuration) {
        self.io += d;
    }

    pub fn add_cpu(&mut self, d: SimDuration) {
        self.cpu += d;
    }

    pub fn add_network(&mut self, d: SimDuration) {
        self.network += d;
    }

    /// Merges a sequential phase: both tallies happened one after another.
    pub fn then(&self, next: &TimeTally) -> TimeTally {
        TimeTally {
            io: self.io + next.io,
            cpu: self.cpu + next.cpu,
            network: self.network + next.network,
        }
    }

    /// Merges parallel branches: elapsed time is the max of the branches,
    /// attributed proportionally to the slower branch's categories. This is
    /// the fold stem servers apply over their children.
    pub fn join_parallel(branches: &[TimeTally]) -> TimeTally {
        branches
            .iter()
            .copied()
            .max_by_key(|t| t.total())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let c = SimClock::new();
        assert_eq!(c.now(), SimInstant(0));
        c.advance(SimDuration::millis(5));
        assert_eq!(c.now(), SimInstant(5_000_000));
        c.advance_to(SimInstant(1_000));
        // advance_to never goes backwards.
        assert_eq!(c.now(), SimInstant(5_000_000));
        c.advance_to(SimInstant(9_000_000));
        assert_eq!(c.now(), SimInstant(9_000_000));
    }

    #[test]
    fn clones_share_state() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(SimDuration::secs(1));
        assert_eq!(b.now(), SimInstant(1_000_000_000));
    }

    #[test]
    fn tally_sequential_and_parallel() {
        let mut t1 = TimeTally::new();
        t1.add_io(SimDuration::millis(10));
        t1.add_cpu(SimDuration::millis(2));
        let mut t2 = TimeTally::new();
        t2.add_network(SimDuration::millis(5));

        let seq = t1.then(&t2);
        assert_eq!(seq.total(), SimDuration::millis(17));

        let par = TimeTally::join_parallel(&[t1, t2]);
        assert_eq!(par.total(), SimDuration::millis(12));
    }

    #[test]
    fn parallel_join_of_empty_is_zero() {
        assert_eq!(TimeTally::join_parallel(&[]).total(), SimDuration::ZERO);
    }
}
