//! Cluster topology: data centers, racks, nodes and hop distances.
//!
//! The master "schedules a query based on data location, the cluster's
//! network structure, and the load statistics on the leaf servers"
//! (§III-B). The topology gives the scheduler the network-structure part:
//! the hop distance between two nodes is 0 (same node), 2 (same rack,
//! via the top-of-rack switch), 4 (same data center, via aggregation
//! switches) or 6 (cross-data-center).

use feisu_common::hash::FxHashMap;
use feisu_common::{FeisuError, NodeId, Result};

/// Static description of one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInfo {
    pub id: NodeId,
    pub datacenter: u32,
    pub rack: u32,
    /// CPU cores available in total (paper hardware: 4).
    pub cores: u32,
    /// Whether the node carries the per-node SSD cache device.
    pub has_ssd: bool,
}

/// The whole cluster's static layout.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<NodeInfo>,
    by_id: FxHashMap<NodeId, usize>,
}

impl Topology {
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience builder: `dcs` data centers, each with `racks_per_dc`
    /// racks of `nodes_per_rack` nodes, ids assigned sequentially.
    pub fn grid(dcs: u32, racks_per_dc: u32, nodes_per_rack: u32) -> Topology {
        let mut t = Topology::new();
        let mut id = 0u64;
        for dc in 0..dcs {
            for rack in 0..racks_per_dc {
                for _ in 0..nodes_per_rack {
                    t.add_node(NodeInfo {
                        id: NodeId(id),
                        datacenter: dc,
                        rack: dc * racks_per_dc + rack,
                        cores: 4,
                        has_ssd: true,
                    });
                    id += 1;
                }
            }
        }
        t
    }

    pub fn add_node(&mut self, node: NodeInfo) {
        self.by_id.insert(node.id, self.nodes.len());
        self.nodes.push(node);
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    pub fn node(&self, id: NodeId) -> Result<&NodeInfo> {
        self.by_id
            .get(&id)
            .map(|&i| &self.nodes[i])
            .ok_or_else(|| FeisuError::NodeUnavailable(format!("{id} not in topology")))
    }

    pub fn contains(&self, id: NodeId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Network hop distance between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> Result<u32> {
        if a == b {
            return Ok(0);
        }
        let na = self.node(a)?;
        let nb = self.node(b)?;
        Ok(if na.rack == nb.rack {
            2
        } else if na.datacenter == nb.datacenter {
            4
        } else {
            6
        })
    }

    /// Worst-case hop distance from any of `children` up to the node
    /// hosting their merge stem. This is the per-level `hops_up` of the
    /// execution tree: the slowest uplink dominates the parallel shipping
    /// wave, so a level is billed at the farthest child's distance. An
    /// empty child set is 0 hops (nothing travels).
    pub fn uplink_hops<I>(&self, children: I, stem: NodeId) -> Result<u32>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut worst = 0u32;
        for child in children {
            worst = worst.max(self.hops(child, stem)?);
        }
        Ok(worst)
    }

    /// All node ids in a given rack, used for replica placement.
    pub fn rack_members(&self, rack: u32) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(move |n| n.rack == rack)
            .map(|n| n.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_builds_expected_count() {
        let t = Topology::grid(2, 3, 4);
        assert_eq!(t.len(), 24);
        assert!(t.contains(NodeId(23)));
        assert!(!t.contains(NodeId(24)));
    }

    #[test]
    fn hop_distances() {
        let t = Topology::grid(2, 2, 2);
        // node 0,1 same rack; 0,2 same dc different rack; 0,4 cross-dc.
        assert_eq!(t.hops(NodeId(0), NodeId(0)).unwrap(), 0);
        assert_eq!(t.hops(NodeId(0), NodeId(1)).unwrap(), 2);
        assert_eq!(t.hops(NodeId(0), NodeId(2)).unwrap(), 4);
        assert_eq!(t.hops(NodeId(0), NodeId(4)).unwrap(), 6);
    }

    #[test]
    fn unknown_node_errors() {
        let t = Topology::grid(1, 1, 1);
        assert!(t.node(NodeId(99)).is_err());
        assert!(t.hops(NodeId(0), NodeId(99)).is_err());
    }

    #[test]
    fn uplink_hops_is_the_worst_child_distance() {
        let t = Topology::grid(2, 2, 2);
        // Children in the stem's own rack: 2 hops (0 for the stem itself).
        assert_eq!(t.uplink_hops([NodeId(0), NodeId(1)], NodeId(0)).unwrap(), 2);
        // A cross-DC child dominates everything nearer.
        assert_eq!(
            t.uplink_hops([NodeId(0), NodeId(1), NodeId(4)], NodeId(0))
                .unwrap(),
            6
        );
        // Empty child sets ship nothing.
        assert_eq!(t.uplink_hops([], NodeId(0)).unwrap(), 0);
        assert!(t.uplink_hops([NodeId(99)], NodeId(0)).is_err());
    }

    #[test]
    fn rack_members_listed() {
        let t = Topology::grid(1, 2, 3);
        let r0: Vec<_> = t.rack_members(0).collect();
        assert_eq!(r0, vec![NodeId(0), NodeId(1), NodeId(2)]);
        let r1: Vec<_> = t.rack_members(1).collect();
        assert_eq!(r1.len(), 3);
    }
}
