//! Leaf servers — where scans actually run (paper §III-B, Fig. 3 steps
//! 3–5).
//!
//! A leaf receives a scan sub-plan for one block: projection, the
//! predicate in conjunctive form, an optional partial-aggregation stage.
//! It rewrites the predicate against its in-memory SmartIndex cache,
//! reads (only the needed columns of) the block when necessary, filters,
//! projects, optionally pre-aggregates, and returns the result with its
//! simulated cost.
//!
//! Cost accounting models the columnar format: a scan is charged for the
//! byte fraction of the block it actually touches — projected columns
//! plus predicate columns *not* served by SmartIndex. A fully
//! index-served `COUNT(*)` touches no storage at all ("all computations
//! are conducted in memory. No scan operation is actually needed",
//! §IV-C-3).

use feisu_cluster::simclock::TimeTally;
use feisu_cluster::{CostModel, Topology};
use feisu_common::hash::FxHashMap;
use feisu_common::{ByteSize, FeisuError, NodeId, Result, SimInstant};
use feisu_exec::aggregate::AggTable;
use feisu_exec::batch::{BatchView, RecordBatch};
use feisu_format::table::BlockDesc;
use feisu_format::{Block, Column, DataType, Schema, Value};
use feisu_index::bitvec::BitVec;
use feisu_index::manager::IndexManager;
use feisu_index::rewrite::{evaluate_cnf, probe_predicate, ProbeKind};
use feisu_index::zonemap::ZoneMap;
use feisu_sql::ast::Expr;
use feisu_sql::cnf::Cnf;
use feisu_sql::eval::eval_truth;
use feisu_sql::exprutil::rename_cnf;
use feisu_storage::auth::Credential;
use feisu_storage::{CacheTier, StorageRouter};
use std::sync::Arc;

pub use feisu_sql::exprutil::rename_expr;
// The partial-aggregation stage now lives in the planner so the logical
// layer, the physical layer and the leaves share one type.
pub use feisu_sql::plan::AggStage;

/// One scan task over one block.
#[derive(Debug, Clone)]
pub struct ScanTask {
    pub table: String,
    pub block: BlockDesc,
    /// Storage column names to project, parallel to `output_schema`.
    pub projection: Vec<String>,
    /// Output schema with canonical (possibly qualified) names.
    pub output_schema: Schema,
    /// Indexable conjunctive predicate, columns in *canonical* names.
    pub cnf: Cnf,
    /// Non-indexable clauses, canonical names.
    pub residual: Vec<Expr>,
    /// Optional leaf-side partial aggregation (canonical names).
    pub agg: Option<AggStage>,
    /// Canonical → storage column-name mapping for the whole table.
    pub name_map: FxHashMap<String, String>,
}

/// Which tier of the storage hierarchy ultimately served a task's data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ServedTier {
    /// No data was read at all (answered from cached SmartIndex bits).
    /// Zone-skipped tasks are *not* memory-served: they read the block's
    /// footer from whatever tier holds it, just never a column chunk.
    #[default]
    Memory,
    /// The DRAM tier of the per-node block cache.
    MemCache,
    /// The SSD tier of the per-node block cache (§IV-B).
    SsdCache,
    /// A replica on the executing node itself.
    LocalDisk,
    /// A replica across the network.
    Remote,
}

impl std::fmt::Display for ServedTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServedTier::Memory => "memory",
            ServedTier::MemCache => "mem_cache",
            ServedTier::SsdCache => "ssd_cache",
            ServedTier::LocalDisk => "local_disk",
            ServedTier::Remote => "remote",
        })
    }
}

/// Per-task accounting surfaced in query stats.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeafTaskStats {
    pub index_hits: usize,
    pub index_built: usize,
    /// Indices built fresh but rejected by the cache (over budget). Each
    /// rejected build is also counted in `index_built`.
    pub index_rejected: usize,
    pub scanned_predicates: usize,
    pub pruned_by_zone: bool,
    /// Blocks skipped by footer zone maps before any column decode (0 or
    /// 1 per task today; a task covers one block).
    pub blocks_skipped: usize,
    /// Blocks whose column chunks were actually decoded.
    pub blocks_scanned: usize,
    /// Block bytes actually charged to storage.
    pub bytes_read: ByteSize,
    /// Whole task served from memory (no storage touch).
    pub served_from_memory: bool,
    /// Domain that owns the scanned block (`None` until the task touches
    /// storage — pruned/index-served tasks never resolve it).
    pub backend: Option<feisu_common::DomainId>,
    /// Cache tier that served the block bytes.
    pub served_tier: ServedTier,
    pub rows_in: usize,
    pub rows_out: usize,
}

/// The result a leaf sends up the tree.
#[derive(Debug)]
pub struct LeafOutput {
    /// Row data, or an aggregate transport batch when `is_agg_transport`.
    pub batch: RecordBatch,
    pub is_agg_transport: bool,
    pub tally: TimeTally,
    pub stats: LeafTaskStats,
}

/// One leaf server: a node plus its SmartIndex cache.
pub struct LeafServer {
    pub node: NodeId,
    index: IndexManager,
    topology: Arc<Topology>,
    cost: CostModel,
    /// Evaluate footer zone maps to skip provably-dead blocks
    /// (`FeisuConfig.zone_maps`). Off ⇒ every block is scanned.
    zone_maps: bool,
}

impl LeafServer {
    pub fn new(
        node: NodeId,
        index: IndexManager,
        topology: Arc<Topology>,
        cost: CostModel,
        zone_maps: bool,
    ) -> Self {
        LeafServer {
            node,
            index,
            topology,
            cost,
            zone_maps,
        }
    }

    pub fn index(&self) -> &IndexManager {
        &self.index
    }

    /// Executes one scan task. `use_index` disables SmartIndex for the
    /// paper's baseline runs. Takes `&self`: the index cache locks
    /// internally, so concurrent tasks (including backup tasks rerouted
    /// from another node) are safe.
    pub fn execute(
        &self,
        task: &ScanTask,
        router: &StorageRouter,
        cred: &Credential,
        now: SimInstant,
        use_index: bool,
    ) -> Result<LeafOutput> {
        let mut stats = LeafTaskStats {
            rows_in: task.block.rows,
            ..Default::default()
        };
        let mut tally = TimeTally::new();
        // Rewrite predicate columns from canonical to storage names so
        // they match the block's schema.
        let cnf = rename_cnf(&task.cnf, &task.name_map);

        // 1. Pure COUNT(*) with a fully cached CNF: answer from bits.
        let count_only =
            task.agg.as_ref().is_some_and(|a| a.is_count_star_only()) && task.residual.is_empty();
        if use_index && count_only {
            if let Some(bits) = self.try_serve_from_cache(&cnf, task, now)? {
                stats.index_hits = cnf.clauses.iter().map(|c| c.disjuncts.len()).sum::<usize>();
                stats.served_from_memory = true;
                stats.rows_out = bits.count_ones();
                // In-memory bitmap algebra cost.
                tally.add_cpu(self.cost.predicate_eval(cnf.clauses.len().max(1)));
                let agg = task.agg.as_ref().expect("count_only implies agg");
                let batch = count_transport(agg, bits.count_ones() as i64)?;
                return Ok(LeafOutput {
                    batch,
                    is_agg_transport: true,
                    tally,
                    stats,
                });
            }
        }

        // 2. Read the block (charged for the touched column fraction),
        // attributing any cache admission to this task's table.
        let read =
            router.read_attributed(&task.block.path, self.node, cred, now, Some(&task.table))?;
        stats.backend = Some(router.domain_of(&task.block.path).id());
        stats.served_tier = match read.cache_tier {
            Some(CacheTier::Memory) => ServedTier::MemCache,
            Some(CacheTier::Ssd) => ServedTier::SsdCache,
            None if read.hops == 0 => ServedTier::LocalDisk,
            None => ServedTier::Remote,
        };
        // Cost primitives for this read's serving tier: a memory-tier
        // cache hit pays the cache access floor instead of a device seek,
        // and streams at memory rates. Every other tier keeps the plain
        // medium model, so non-cache arithmetic below is unchanged.
        let mem_tier = read.cache_tier == Some(CacheTier::Memory);
        let access = if mem_tier {
            self.cost.mem_cache_seek
        } else {
            self.cost.seek(read.medium)
        };
        let plain_read = |size: ByteSize| {
            if mem_tier {
                self.cost.mem_cache_read(size)
            } else {
                self.cost.read(read.medium, size)
            }
        };

        // 3. Zone-map skip: evaluate the CNF against the footer zone maps
        // before decoding anything. A block whose zones disprove one
        // conjunct is skipped entirely — no chunk decompression, no
        // SmartIndex probe; storage is charged only for the metadata
        // (envelope + footer) bytes the decision needed.
        let meta = Block::read_meta(&read.data)?;
        if self.zone_maps {
            if let Some(zones) = &meta.zones {
                if zones_disprove(&cnf, &meta.schema, zones, meta.rows) {
                    stats.pruned_by_zone = true;
                    stats.blocks_skipped = 1;
                    let meta_size = ByteSize(meta.meta_bytes as u64);
                    stats.bytes_read = meta_size;
                    // Domain-specific fixed penalties still apply: the
                    // footer read wakes a cold Fatman volume like any
                    // other read.
                    let domain_extra = read
                        .cost
                        .io
                        .saturating_sub(plain_read(task.block.stored_size));
                    tally.add_io(domain_extra + plain_read(meta_size));
                    tally.add_network(self.cost.network(read.hops, meta_size));
                    tally.add_cpu(self.cost.predicate_eval(cnf.clauses.len().max(1)));
                    return self.empty_output(task, tally, stats);
                }
            }
        }
        stats.blocks_scanned = 1;

        // Late materialization: decode only the columns this task can
        // touch — projection, predicate columns not servable from cached
        // bits, residual columns — using the format's offset directory.
        // The full stored schema still drives the cost model below.
        let full_schema = meta.schema;
        let needed = self.decode_set(&full_schema, task, &cnf, now, use_index);
        let needed: Vec<&str> = needed.iter().map(|s| s.as_str()).collect();
        let mut block = Block::deserialize_columns(&read.data, &needed)?;

        // Bitmap evaluation via SmartIndex (or raw scans when disabled).
        let outcome = match evaluate_cnf(use_index.then_some(&self.index), &block, &cnf, now) {
            // A predicate we expected to serve from cache lost its entry
            // between planning the decode set and probing (concurrent
            // insert pressure from a backup task): decode everything and
            // retry once.
            Err(FeisuError::Index(_)) if block.schema().len() < full_schema.len() => {
                block = Block::deserialize(&read.data)?;
                evaluate_cnf(use_index.then_some(&self.index), &block, &cnf, now)?
            }
            other => other?,
        };
        for (_, kind) in &outcome.probes {
            match kind {
                ProbeKind::Hit | ProbeKind::NegatedHit => stats.index_hits += 1,
                ProbeKind::BuiltFresh => stats.index_built += 1,
                ProbeKind::BuiltRejected => {
                    stats.index_built += 1;
                    stats.index_rejected += 1;
                }
                ProbeKind::Scanned => stats.scanned_predicates += 1,
            }
        }

        // Columns actually touched: projection + predicate columns that
        // were *not* index-served + residual columns. Each column is its
        // own on-disk extent, so the scan pays one access latency per
        // touched column plus the streaming cost of their bytes — this is
        // where the columnar format's I/O saving (and SmartIndex's
        // avoided predicate columns) shows up.
        let (touched, ncols) = touched_fraction(&full_schema, task, &outcome.probes, &cnf);
        let size = task.block.stored_size;
        let charged = ByteSize((size.as_u64() as f64 * touched).ceil() as u64);
        stats.bytes_read = charged;
        // Domain-specific fixed penalties (e.g. Fatman's cold-read wakeup)
        // are whatever the domain charged beyond the plain medium model.
        let domain_extra = read.cost.io.saturating_sub(plain_read(size));
        tally.add_io(
            domain_extra
                + access * ncols.max(1) as u64
                + plain_read(charged).saturating_sub(access),
        );
        // Per-hop switch latency is paid in full; only the per-byte part
        // shrinks with the touched fraction.
        tally.add_network(self.cost.network(read.hops, charged));
        tally.add_cpu(self.cost.decompress(charged));
        // Predicate evaluation CPU: only freshly evaluated predicates.
        let evaluated = stats.index_built + stats.scanned_predicates;
        tally.add_cpu(self.cost.predicate_eval(evaluated * block.rows()));

        // 4. Residual row-wise filtering.
        let mut bits = outcome.bits;
        if !task.residual.is_empty() || !outcome.residual.is_empty() {
            let residuals: Vec<Expr> = task
                .residual
                .iter()
                .map(|e| rename_expr(e, &task.name_map))
                .chain(outcome.residual.iter().cloned())
                .collect();
            bits = apply_residual(&block, &bits, &residuals)?;
            tally.add_cpu(self.cost.predicate_eval(residuals.len() * block.rows()));
        }

        // 5. Project + rename to canonical output schema. The gather is
        // driven by the selection words directly — no index vector, no
        // per-row dispatch.
        stats.rows_out = bits.count_ones();
        let mut columns: Vec<Column> = Vec::with_capacity(task.projection.len());
        for name in &task.projection {
            let c = block.column_by_name(name).ok_or_else(|| {
                FeisuError::Execution(format!("block {} missing column `{name}`", task.block.id))
            })?;
            columns.push(c.filter_by_words(bits.words()));
        }
        let batch = RecordBatch::new(task.output_schema.clone(), columns)?;

        // 6. Optional leaf-side partial aggregation.
        if let Some(agg) = &task.agg {
            let mut table = AggTable::new(agg.group_by.clone(), agg.aggregates.clone());
            table.update(&batch)?;
            tally.add_cpu(self.cost.agg_update(batch.rows()));
            let transport = table.to_transport()?;
            return Ok(LeafOutput {
                batch: transport,
                is_agg_transport: true,
                tally,
                stats,
            });
        }
        Ok(LeafOutput {
            batch,
            is_agg_transport: false,
            tally,
            stats,
        })
    }

    /// Tries to answer the whole CNF from cached indices (direct or
    /// negated hits only — nothing is built, nothing is read).
    fn try_serve_from_cache(
        &self,
        cnf: &Cnf,
        task: &ScanTask,
        now: SimInstant,
    ) -> Result<Option<BitVec>> {
        use feisu_sql::cnf::Disjunct;
        // First pass: liveness feasibility check — no stats pollution, no
        // scratch predicate clones (the manager keys the negated probe
        // from borrowed parts).
        for clause in &cnf.clauses {
            for d in &clause.disjuncts {
                let Disjunct::Simple(p) = d else {
                    return Ok(None);
                };
                if !self.index.servable(task.block.id, p, now) {
                    return Ok(None);
                }
            }
        }
        // All present: serve via the rewriter (records hits in stats,
        // refreshes LRU). We pass a block-shaped dummy? No — the rewriter
        // needs the block only on miss, and there are none; probe each
        // predicate directly against the manager.
        let rows = task.block.rows;
        let mut bits = BitVec::ones(rows);
        for clause in &cnf.clauses {
            let mut clause_bits = BitVec::zeros(rows);
            for d in &clause.disjuncts {
                let Disjunct::Simple(p) = d else {
                    unreachable!()
                };
                let pbits = if let Some(idx) = self.index.get(task.block.id, p, now) {
                    idx.bits()
                } else if let Some(idx) = self.index.get_negated(task.block.id, p, now) {
                    idx.negated_bits()
                } else {
                    return Ok(None); // raced eviction between the passes
                };
                clause_bits.or_assign(&pbits)?;
            }
            bits.and_assign(&clause_bits)?;
        }
        Ok(Some(bits))
    }

    /// Storage-side column names this task can touch: projection ∪
    /// predicate columns not currently servable from cached bits ∪
    /// residual columns. This is the decode set for late materialization;
    /// names the stored schema lacks are dropped so downstream lookups
    /// surface the same errors a full decode would.
    fn decode_set(
        &self,
        schema: &Schema,
        task: &ScanTask,
        cnf: &Cnf,
        now: SimInstant,
        use_index: bool,
    ) -> Vec<String> {
        use feisu_sql::cnf::Disjunct;
        let mut needed: Vec<String> = Vec::with_capacity(task.projection.len());
        for name in &task.projection {
            push_unique(&mut needed, name);
        }
        let mut residual_cols = Vec::new();
        for clause in &cnf.clauses {
            let all_simple = clause
                .disjuncts
                .iter()
                .all(|d| matches!(d, Disjunct::Simple(_)));
            if all_simple {
                for d in &clause.disjuncts {
                    let Disjunct::Simple(p) = d else {
                        unreachable!()
                    };
                    if !use_index || !self.index.servable(task.block.id, p, now) {
                        push_unique(&mut needed, &p.column);
                    }
                }
            } else {
                // The whole clause is evaluated row-wise (evaluate_cnf
                // turns it into one residual expression), so every column
                // it mentions is read.
                clause.to_expr().columns(&mut residual_cols);
            }
        }
        for e in &task.residual {
            e.columns(&mut residual_cols);
        }
        for c in &residual_cols {
            // Residual columns are canonical; map them via name_map.
            let storage = task.name_map.get(c).map(|s| s.as_str()).unwrap_or(c);
            push_unique(&mut needed, storage);
        }
        needed.retain(|n| schema.index_of(n).is_some());
        needed
    }

    fn empty_output(
        &self,
        task: &ScanTask,
        tally: TimeTally,
        stats: LeafTaskStats,
    ) -> Result<LeafOutput> {
        if let Some(agg) = &task.agg {
            let table = AggTable::new(agg.group_by.clone(), agg.aggregates.clone());
            return Ok(LeafOutput {
                batch: table.to_transport()?,
                is_agg_transport: true,
                tally,
                stats,
            });
        }
        Ok(LeafOutput {
            batch: RecordBatch::empty(task.output_schema.clone()),
            is_agg_transport: false,
            tally,
            stats,
        })
    }

    /// Warm-up hook: pre-builds and pins an index for a predicate (the
    /// client layer's per-user personalization, §III-C).
    pub fn pin_index(
        &self,
        block: &Block,
        predicate: &feisu_sql::cnf::SimplePredicate,
        now: SimInstant,
    ) -> Result<()> {
        let idx = feisu_index::SmartIndex::build(block, predicate, now, false)?;
        self.index.insert_pinned(idx, now);
        Ok(())
    }

    /// Direct probe used by benchmarks.
    pub fn probe(
        &self,
        block: &Block,
        predicate: &feisu_sql::cnf::SimplePredicate,
        now: SimInstant,
    ) -> Result<(BitVec, ProbeKind)> {
        probe_predicate(Some(&self.index), block, predicate, now)
    }

    /// Hop distance to another node — exposed for scheduler tests.
    pub fn hops_to(&self, other: NodeId) -> Result<u32> {
        self.topology.hops(self.node, other)
    }
}

fn push_unique(names: &mut Vec<String>, name: &str) {
    if !names.iter().any(|n| n == name) {
        names.push(name.to_string());
    }
}

/// Footer zone-map disproof: true when some CNF conjunct provably matches
/// no row of the block, i.e. *every* disjunct of that clause is a simple
/// predicate the zones rule out. `cnf` is in storage names; `zones` is in
/// `schema` (stored) order. Conservative throughout: a residual disjunct,
/// an unknown column, or missing bounds on a not-all-null column all mean
/// the clause might match and the block must be scanned.
fn zones_disprove(
    cnf: &Cnf,
    schema: &Schema,
    zones: &[feisu_format::ColumnStats],
    rows: usize,
) -> bool {
    use feisu_sql::cnf::Disjunct;
    cnf.clauses.iter().any(|clause| {
        !clause.disjuncts.is_empty()
            && clause.disjuncts.iter().all(|d| {
                let Disjunct::Simple(p) = d else {
                    return false;
                };
                let Some(i) = schema.index_of(&p.column) else {
                    return false;
                };
                let Some(zone) = zones.get(i) else {
                    return false;
                };
                match (&zone.min, &zone.max) {
                    (Some(min), Some(max)) => {
                        !ZoneMap::new(min.clone(), max.clone()).may_match(p.op, &p.value)
                    }
                    // No bounds: disproven only when provably all-null
                    // (or empty) — a comparison is never true on NULL.
                    _ => zone.null_count == rows,
                }
            })
    })
}

/// Fraction of the block's bytes the scan must touch (by estimated
/// column widths) and the count of touched columns: projected columns
/// plus predicate/residual columns that were actually evaluated
/// (index-served predicate columns are skipped).
fn touched_fraction(
    schema: &Schema,
    task: &ScanTask,
    probes: &[(feisu_sql::cnf::SimplePredicate, ProbeKind)],
    cnf: &Cnf,
) -> (f64, usize) {
    let mut needed: Vec<&str> = task.projection.iter().map(|s| s.as_str()).collect();
    for (p, kind) in probes {
        if matches!(
            kind,
            ProbeKind::BuiltFresh | ProbeKind::BuiltRejected | ProbeKind::Scanned
        ) && !needed.contains(&p.column.as_str())
        {
            needed.push(&p.column);
        }
    }
    let mut residual_cols = Vec::new();
    for e in &task.residual {
        e.columns(&mut residual_cols);
    }
    for clause in &cnf.clauses {
        for d in &clause.disjuncts {
            if let feisu_sql::cnf::Disjunct::Residual(e) = d {
                e.columns(&mut residual_cols);
            }
        }
    }
    for c in &residual_cols {
        // Residual columns are canonical; map them via name_map.
        let storage = task.name_map.get(c).map(|s| s.as_str()).unwrap_or(c);
        if !needed.contains(&storage) {
            needed.push(storage);
        }
    }
    let total: usize = schema
        .fields()
        .iter()
        .map(|f| f.data_type.estimated_width())
        .sum();
    if total == 0 {
        return (1.0, schema.len());
    }
    let touched_fields: Vec<&feisu_format::Field> = schema
        .fields()
        .iter()
        .filter(|f| needed.contains(&f.name.as_str()))
        .collect();
    let touched: usize = touched_fields
        .iter()
        .map(|f| f.data_type.estimated_width())
        .sum();
    (
        (touched as f64 / total as f64).clamp(0.0, 1.0),
        touched_fields.len(),
    )
}

fn apply_residual(block: &Block, bits: &BitVec, residuals: &[Expr]) -> Result<BitVec> {
    // Evaluate residuals row-wise only on rows still selected, reading
    // the block's columns in place through a borrowed view.
    let view = BatchView::new(block.schema(), block.columns());
    let mut out = BitVec::zeros(bits.len());
    'rows: for i in bits.iter_ones() {
        let row = view.row(i);
        for e in residuals {
            if !eval_truth(e, &row)?.passes() {
                continue 'rows;
            }
        }
        out.set(i, true);
    }
    Ok(out)
}

/// Builds the one-row COUNT transport batch for a fully index-served
/// global count.
fn count_transport(agg: &AggStage, count: i64) -> Result<RecordBatch> {
    let mut table = AggTable::new(agg.group_by.clone(), agg.aggregates.clone());
    // Inject the count by folding a synthetic batch would be wasteful;
    // instead build a transport batch directly matching the schema.
    let schema = table.transport_schema();
    let columns =
        vec![Column::from_values(DataType::Int64, &[Value::Int64(count)]).expect("count column")];
    // transport_schema for COUNT(*) only = one field.
    debug_assert_eq!(schema.len(), 1);
    let batch = RecordBatch::new(schema, columns)?;
    // Keep `table` unused-warning-free.
    let _ = &mut table;
    Ok(batch)
}
