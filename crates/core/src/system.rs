//! Virtual `system.*` tables: the queryable observability plane.
//!
//! These tables have no storage blocks — each `SELECT` materializes a
//! point-in-time [`RecordBatch`] from master-side state (the query event
//! log, the metrics registry, the heartbeat/failure tables, the SSD
//! cache) and feeds it through the normal physical-plan scan path, so
//! filters, projections, aggregation pushdown, joins against user tables
//! and `EXPLAIN` all work unchanged.
//!
//! The `system.` namespace is reserved at `create_table`, so virtual
//! tables can never shadow (or be shadowed by) user data.

use crate::engine::FeisuCluster;
use crate::master::pipeline::ExecCtx;
use feisu_common::{FeisuError, Result, SimInstant};
use feisu_exec::aggregate::AggTable;
use feisu_exec::batch::RecordBatch;
use feisu_exec::physical::PhysicalPlan;
use feisu_format::{ColumnBuilder, DataType, Field, Schema, Value};
use feisu_obs::SpanId;
use feisu_sql::exprutil::rename_expr;

/// Name prefix of the virtual-table namespace.
pub const SYSTEM_PREFIX: &str = "system.";

/// True when `name` refers to the reserved virtual-table namespace.
pub fn is_system_table(name: &str) -> bool {
    name.starts_with(SYSTEM_PREFIX)
}

/// Schema of a virtual table, or `None` if the name is not one of the
/// served tables (unknown `system.*` names fail analysis like any other
/// unknown table, since `create_table` rejects the whole namespace).
pub fn system_table_schema(name: &str) -> Option<Schema> {
    match name {
        "system.queries" => Some(Schema::new(vec![
            Field::new("query_id", DataType::Int64, false),
            Field::new("user", DataType::Utf8, false),
            Field::new("sql", DataType::Utf8, false),
            Field::new("outcome", DataType::Utf8, false),
            Field::new("error", DataType::Utf8, true),
            Field::new("admitted_ns", DataType::Int64, false),
            Field::new("admission_wait_ns", DataType::Int64, false),
            Field::new("response_ns", DataType::Int64, false),
            Field::new("tasks", DataType::Int64, false),
            Field::new("rows_returned", DataType::Int64, false),
            Field::new("bytes_scanned", DataType::Int64, false),
            Field::new("bytes_returned", DataType::Int64, false),
            Field::new("wire_leaf_stem_bytes", DataType::Int64, false),
            Field::new("wire_rack_dc_bytes", DataType::Int64, false),
            Field::new("wire_stem_master_bytes", DataType::Int64, false),
            Field::new("index_hits", DataType::Int64, false),
            Field::new("blocks_skipped", DataType::Int64, false),
            Field::new("blocks_scanned", DataType::Int64, false),
            Field::new("cache_hit_tasks", DataType::Int64, false),
            Field::new("memory_served_tasks", DataType::Int64, false),
            Field::new("top_operators", DataType::Utf8, false),
        ])),
        "system.metrics" => Some(Schema::new(vec![
            Field::new("name", DataType::Utf8, false),
            Field::new("kind", DataType::Utf8, false),
            Field::new("value", DataType::Float64, false),
            Field::new("count", DataType::Int64, false),
            Field::new("p50", DataType::Int64, false),
            Field::new("p95", DataType::Int64, false),
            Field::new("p99", DataType::Int64, false),
            Field::new("rate_per_sec", DataType::Float64, false),
        ])),
        "system.nodes" => Some(Schema::new(vec![
            Field::new("node", DataType::Utf8, false),
            Field::new("alive", DataType::Bool, false),
            Field::new("failed", DataType::Bool, false),
            Field::new("slow_factor", DataType::Float64, false),
            Field::new("last_seen_ns", DataType::Int64, false),
            Field::new("running_tasks", DataType::Int64, false),
            Field::new("feisu_slots", DataType::Int64, false),
        ])),
        // One row per (node, tier): `mem` and `ssd` data tiers plus the
        // `ghost` admission shadow (its `hits` are granted admissions;
        // its capacities are key counts, reported as 0 bytes).
        "system.cache" => Some(Schema::new(vec![
            Field::new("node", DataType::Utf8, false),
            Field::new("tier", DataType::Utf8, false),
            Field::new("entries", DataType::Int64, false),
            Field::new("used_bytes", DataType::Int64, false),
            Field::new("capacity_bytes", DataType::Int64, false),
            Field::new("hits", DataType::Int64, false),
            Field::new("evictions", DataType::Int64, false),
        ])),
        _ => None,
    }
}

/// Builds a batch from row-major values against a virtual-table schema.
fn batch_from_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Result<RecordBatch> {
    let mut builders: Vec<ColumnBuilder> = schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::new(f.data_type))
        .collect();
    for row in rows {
        debug_assert_eq!(row.len(), builders.len());
        for (b, v) in builders.iter_mut().zip(row) {
            b.push(v);
        }
    }
    let columns = builders.into_iter().map(|b| b.finish()).collect();
    RecordBatch::new(schema, columns)
}

impl FeisuCluster {
    /// Materializes the full (unprojected, unfiltered) batch of one
    /// virtual table as of simulated instant `now`.
    pub(crate) fn system_table_batch(&self, table: &str, now: SimInstant) -> Result<RecordBatch> {
        let schema = system_table_schema(table)
            .ok_or_else(|| FeisuError::Analysis(format!("unknown system table `{table}`")))?;
        match table {
            "system.queries" => {
                let rows = self
                    .query_log
                    .snapshot()
                    .into_iter()
                    .map(|e| {
                        vec![
                            Value::Int64(e.query_id as i64),
                            Value::Utf8(e.user),
                            Value::Utf8(e.sql),
                            Value::Utf8(e.outcome.label().to_string()),
                            match e.outcome.error() {
                                Some(msg) => Value::Utf8(msg.to_string()),
                                None => Value::Null,
                            },
                            Value::Int64(e.admitted_ns as i64),
                            Value::Int64(e.admission_wait_ns as i64),
                            Value::Int64(e.response_ns as i64),
                            Value::Int64(e.tasks as i64),
                            Value::Int64(e.rows_returned as i64),
                            Value::Int64(e.bytes_scanned as i64),
                            Value::Int64(e.bytes_returned as i64),
                            Value::Int64(e.wire_leaf_stem_bytes as i64),
                            Value::Int64(e.wire_rack_dc_bytes as i64),
                            Value::Int64(e.wire_stem_master_bytes as i64),
                            Value::Int64(e.index_hits as i64),
                            Value::Int64(e.blocks_skipped as i64),
                            Value::Int64(e.blocks_scanned as i64),
                            Value::Int64(e.cache_hit_tasks as i64),
                            Value::Int64(e.memory_served_tasks as i64),
                            Value::Utf8(e.top_operators),
                        ]
                    })
                    .collect();
                batch_from_rows(schema, rows)
            }
            "system.metrics" => {
                // Registry rows first (counters, gauges, histograms — each
                // group name-sorted by the snapshot's BTreeMaps), then the
                // sliding-window views; deterministic end to end.
                let snap = self.metrics.snapshot();
                let mut rows = Vec::new();
                for (name, v) in &snap.counters {
                    rows.push(vec![
                        Value::Utf8(name.clone()),
                        Value::Utf8("counter".into()),
                        Value::Float64(*v as f64),
                        Value::Int64(*v as i64),
                        Value::Int64(0),
                        Value::Int64(0),
                        Value::Int64(0),
                        Value::Float64(0.0),
                    ]);
                }
                for (name, v) in &snap.gauges {
                    rows.push(vec![
                        Value::Utf8(name.clone()),
                        Value::Utf8("gauge".into()),
                        Value::Float64(*v as f64),
                        Value::Int64(*v),
                        Value::Int64(0),
                        Value::Int64(0),
                        Value::Int64(0),
                        Value::Float64(0.0),
                    ]);
                }
                for (name, h) in &snap.histograms {
                    rows.push(vec![
                        Value::Utf8(name.clone()),
                        Value::Utf8("histogram".into()),
                        Value::Float64(h.sum as f64),
                        Value::Int64(h.count as i64),
                        Value::Int64(h.p50 as i64),
                        Value::Int64(h.p95 as i64),
                        Value::Int64(h.p99 as i64),
                        Value::Float64(0.0),
                    ]);
                }
                for (name, w) in self.windows.snapshot(now) {
                    rows.push(vec![
                        Value::Utf8(name),
                        Value::Utf8("window".into()),
                        Value::Float64(w.max as f64),
                        Value::Int64(w.count as i64),
                        Value::Int64(w.p50 as i64),
                        Value::Int64(w.p95 as i64),
                        Value::Int64(w.p99 as i64),
                        Value::Float64(w.rate_per_sec),
                    ]);
                }
                batch_from_rows(schema, rows)
            }
            "system.nodes" => {
                // Lock-order contract: heartbeats (5) before
                // failed/slow (6) before resources (7, via
                // `feisu_slot_limit`). Heartbeat data is collected and the
                // lock released before anything else is touched.
                let mut nodes: Vec<_> = self.topology.nodes().to_vec();
                nodes.sort_by_key(|n| n.id.0);
                let hb_rows: Vec<(bool, u64, u32)> = {
                    let hb = self.heartbeats.lock();
                    nodes
                        .iter()
                        .map(|n| {
                            (
                                hb.is_alive(n.id, now),
                                hb.last_seen(n.id).map_or(0, |t| t.as_nanos()),
                                hb.load(n.id).map_or(0, |l| l.running_tasks),
                            )
                        })
                        .collect()
                };
                let failed = self.failed_nodes.read().clone();
                let slow = self.slow_nodes.read().clone();
                let rows = nodes
                    .iter()
                    .zip(hb_rows)
                    .map(|(n, (alive, last_seen, running))| {
                        vec![
                            Value::Utf8(n.id.to_string()),
                            Value::Bool(alive),
                            Value::Bool(failed.contains(&n.id)),
                            Value::Float64(slow.get(&n.id).copied().unwrap_or(1.0)),
                            Value::Int64(last_seen as i64),
                            Value::Int64(running as i64),
                            Value::Int64(self.feisu_slot_limit(n.id) as i64),
                        ]
                    })
                    .collect();
                batch_from_rows(schema, rows)
            }
            "system.cache" => {
                // Per-node, per-tier rows in node order. Without a cache
                // the table is empty (but still selectable), mirroring
                // "no cache state exists" rather than faking zeros.
                let mut rows = Vec::new();
                if let Some(cache) = self.router.cache() {
                    let mut nodes: Vec<_> = self.topology.nodes().to_vec();
                    nodes.sort_by_key(|n| n.id.0);
                    for n in &nodes {
                        for t in cache.node_tier_rows(n.id) {
                            rows.push(vec![
                                Value::Utf8(n.id.to_string()),
                                Value::Utf8(t.tier.to_string()),
                                Value::Int64(t.entries as i64),
                                Value::Int64(t.used_bytes as i64),
                                Value::Int64(t.capacity_bytes as i64),
                                Value::Int64(t.hits as i64),
                                Value::Int64(t.evictions as i64),
                            ]);
                        }
                    }
                }
                batch_from_rows(schema, rows)
            }
            _ => unreachable!("schema lookup above rejects unknown names"),
        }
    }

    /// Executes a `DistributedScan` over a virtual table. Mirrors the
    /// leaf execute order — filter the full storage-named batch, project,
    /// then apply any pushed-down aggregation stage — but runs entirely
    /// on the master: no tasks, no storage reads, no wire bytes.
    pub(crate) fn system_scan(
        &self,
        plan: &PhysicalPlan,
        ctx: &mut ExecCtx,
        op_span: SpanId,
    ) -> Result<RecordBatch> {
        let PhysicalPlan::DistributedScan {
            table,
            projection,
            predicate,
            agg_stage,
            name_map,
            output_schema,
            ..
        } = plan
        else {
            return Err(FeisuError::Execution(
                "system_scan on a non-scan operator".into(),
            ));
        };
        let full = self.system_table_batch(table, ctx.now)?;
        ctx.spans.attr(op_span, "virtual", "system");
        ctx.tally
            .add_cpu(self.spec.cost.predicate_eval(full.rows()));
        let filtered = match predicate {
            // Predicates arrive in canonical (possibly qualified) names;
            // the materialized batch uses storage names.
            Some(p) => feisu_exec::ops::filter(&full, &rename_expr(p, name_map))?,
            None => full,
        };
        let columns = projection
            .iter()
            .map(|name| {
                filtered.column_by_name(name).cloned().ok_or_else(|| {
                    FeisuError::Execution(format!("system table `{table}` has no column `{name}`"))
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let projected = RecordBatch::new(output_schema.clone(), columns)?;
        // Virtual scans touch no leaf: every row the table had at `now`
        // was processed.
        ctx.stats.processed_ratio = 1.0;
        if let Some(stage) = agg_stage {
            let mut agg = AggTable::new(stage.group_by.clone(), stage.aggregates.clone());
            agg.update(&projected)?;
            ctx.tally
                .add_cpu(self.spec.cost.agg_update(projected.rows()));
            return agg.to_transport();
        }
        Ok(projected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_predicate() {
        assert!(is_system_table("system.queries"));
        assert!(is_system_table("system.anything"));
        assert!(!is_system_table("systems"));
        assert!(!is_system_table("clicks"));
    }

    #[test]
    fn schemas_exist_for_served_tables_only() {
        for t in [
            "system.queries",
            "system.metrics",
            "system.nodes",
            "system.cache",
        ] {
            assert!(system_table_schema(t).is_some(), "{t}");
        }
        assert!(system_table_schema("system.unknown").is_none());
        assert!(system_table_schema("clicks").is_none());
    }

    #[test]
    fn queries_schema_matches_event_fields() {
        let schema = system_table_schema("system.queries").unwrap();
        // One column per QueryEvent field plus the derived outcome/error
        // pair replacing the enum.
        assert_eq!(schema.len(), 21);
        assert!(schema.index_of("wire_leaf_stem_bytes").is_some());
        assert!(schema.index_of("wire_rack_dc_bytes").is_some());
        assert!(schema.index_of("blocks_skipped").is_some());
        assert!(schema.index_of("blocks_scanned").is_some());
        assert!(schema.index_of("top_operators").is_some());
    }
}
