//! The client layer (paper §III-C).
//!
//! "The client-end is a versatile component … It has two major
//! functionalities: query syntax checking and access right verification…
//! The client-end also collects user query histories to personalize data
//! indexing and caching… collection on the client side is used for
//! SmartIndex to build private index for specific users or user groups."

use feisu_common::hash::FxHashMap;
use feisu_common::{Result, SimInstant, UserId};
use feisu_sql::ast::Query;
use feisu_sql::cnf::{to_cnf, SimplePredicate};
use feisu_sql::parser::parse_query;
use parking_lot::Mutex;

/// One recorded query.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    pub at: SimInstant,
    pub sql: String,
    pub tables: Vec<String>,
    pub predicates: Vec<SimplePredicate>,
    pub columns: Vec<String>,
}

/// Client-side query history, per user.
#[derive(Default)]
pub struct QueryHistory {
    entries: Mutex<FxHashMap<UserId, Vec<HistoryEntry>>>,
}

impl QueryHistory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Syntax-checks a statement, returning the parsed query — the
    /// client's first responsibility. Errors are parse diagnostics meant
    /// to "guide users to write the proper SQL-like query command".
    pub fn syntax_check(sql: &str) -> Result<Query> {
        parse_query(sql)
    }

    /// Records an accepted query for personalization.
    pub fn record(&self, user: UserId, sql: &str, query: &Query, now: SimInstant) {
        let tables: Vec<String> = query.all_tables().map(|t| t.name.clone()).collect();
        let mut predicates = Vec::new();
        if let Some(w) = &query.where_clause {
            for p in to_cnf(w).simple_clauses() {
                predicates.push(p.clone());
            }
        }
        let mut columns = Vec::new();
        for item in &query.select {
            item.expr.columns(&mut columns);
        }
        if let Some(w) = &query.where_clause {
            w.columns(&mut columns);
        }
        self.entries
            .lock()
            .entry(user)
            .or_default()
            .push(HistoryEntry {
                at: now,
                sql: sql.to_string(),
                tables,
                predicates,
                columns,
            });
    }

    /// The user's most frequent simple predicates within `window` of
    /// `now` — candidates for pinned private indices.
    pub fn frequent_predicates(
        &self,
        user: UserId,
        now: SimInstant,
        window: feisu_common::SimDuration,
        top_n: usize,
    ) -> Vec<(SimplePredicate, usize)> {
        let entries = self.entries.lock();
        let Some(history) = entries.get(&user) else {
            return Vec::new();
        };
        let mut counts: FxHashMap<String, (SimplePredicate, usize)> = FxHashMap::default();
        for e in history {
            if now.since(e.at) > window {
                continue;
            }
            for p in &e.predicates {
                counts
                    .entry(p.key())
                    .and_modify(|(_, n)| *n += 1)
                    .or_insert((p.clone(), 1));
            }
        }
        let mut v: Vec<(SimplePredicate, usize)> = counts.into_values().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.key().cmp(&b.0.key())));
        v.truncate(top_n);
        v
    }

    /// Number of recorded queries for a user.
    pub fn count(&self, user: UserId) -> usize {
        self.entries.lock().get(&user).map_or(0, |v| v.len())
    }

    /// Full history snapshot (analysis tooling).
    pub fn entries_of(&self, user: UserId) -> Vec<HistoryEntry> {
        self.entries.lock().get(&user).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_common::SimDuration;

    #[test]
    fn syntax_check_guides_users() {
        assert!(QueryHistory::syntax_check("SELECT a FROM t").is_ok());
        let err = QueryHistory::syntax_check("SELEKT a FROM t").unwrap_err();
        assert!(err.to_string().contains("parse"));
    }

    #[test]
    fn history_records_predicates_and_columns() {
        let h = QueryHistory::new();
        let sql = "SELECT a FROM t WHERE b > 5 AND c = 'x'";
        let q = QueryHistory::syntax_check(sql).unwrap();
        h.record(UserId(1), sql, &q, SimInstant(0));
        let entries = h.entries_of(UserId(1));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].predicates.len(), 2);
        assert!(entries[0].columns.contains(&"a".to_string()));
        assert!(entries[0].columns.contains(&"b".to_string()));
        assert_eq!(entries[0].tables, vec!["t".to_string()]);
    }

    #[test]
    fn frequent_predicates_ranked_and_windowed() {
        let h = QueryHistory::new();
        let record = |sql: &str, at: SimInstant| {
            let q = QueryHistory::syntax_check(sql).unwrap();
            h.record(UserId(1), sql, &q, at);
        };
        record("SELECT a FROM t WHERE b > 5", SimInstant(0));
        record("SELECT a FROM t WHERE b > 5", SimInstant(1));
        record("SELECT a FROM t WHERE c = 1", SimInstant(2));
        // Outside the window:
        record(
            "SELECT a FROM t WHERE d < 9",
            SimInstant::EPOCH + SimDuration::hours(100),
        );
        let now = SimInstant::EPOCH + SimDuration::hours(100);
        let freq = h.frequent_predicates(UserId(1), now, SimDuration::hours(100), 10);
        // d < 9 at `now` is in-window; b > 5 twice; c = 1 once.
        assert_eq!(freq[0].1, 2);
        assert_eq!(freq[0].0.column, "b");
        let tight = h.frequent_predicates(UserId(1), now, SimDuration::secs(1), 10);
        assert_eq!(tight.len(), 1);
        assert_eq!(tight[0].0.column, "d");
    }

    #[test]
    fn per_user_isolation() {
        let h = QueryHistory::new();
        let q = QueryHistory::syntax_check("SELECT a FROM t WHERE b > 1").unwrap();
        h.record(UserId(1), "q", &q, SimInstant(0));
        assert_eq!(h.count(UserId(1)), 1);
        assert_eq!(h.count(UserId(2)), 0);
        assert!(h
            .frequent_predicates(UserId(2), SimInstant(0), SimDuration::hours(1), 5)
            .is_empty());
    }
}
