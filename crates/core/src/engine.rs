//! `FeisuCluster` — the assembled system and its public API.
//!
//! One `FeisuCluster` is a whole simulated deployment: topology, storage
//! domains behind the common storage layer, the master services, and one
//! leaf server (with its SmartIndex cache) per node. Queries run through
//! the paper's pipeline (Fig. 3): client checks → entry guard → job
//! manager (with identical-task reuse) → cost-based planning → dissection
//! into per-block scan tasks → locality-aware scheduling → leaf execution
//! with SmartIndex rewrite → bottom-up merging through stem servers →
//! master finalization. All timing is simulated and deterministic.

use crate::catalog::{Catalog, CatalogView};
use crate::client::QueryHistory;
use crate::leaf::{AggStage, LeafOutput, LeafServer, LeafTaskStats, ScanTask};
use crate::master::guard::GuardLimits;
use crate::master::job_manager::task_signature;
use crate::master::scheduler::Policy;
use crate::master::{EntryGuard, JobManager, JobState, Scheduler};
use crate::stem;
use feisu_cluster::heartbeat::{HeartbeatTable, LoadStats};
use feisu_cluster::simclock::TimeTally;
use feisu_cluster::{CostModel, SimClock, Topology};
use feisu_common::config::FeisuConfig;
use feisu_common::hash::{FxHashMap, FxHashSet};
use feisu_common::ids::IdGen;
use feisu_common::{
    ByteSize, FeisuError, NodeId, QueryId, Result, SimDuration, SimInstant, UserId,
};
use feisu_exec::aggregate::AggTable;
use feisu_exec::batch::RecordBatch;
use feisu_format::{Column, Schema, Value};
use feisu_index::manager::IndexManager;
use feisu_obs::{Counter, Histogram, MetricsRegistry, QueryProfile, SpanId, SpanRecorder};
use feisu_sql::analyze::analyze;
use feisu_sql::ast::Expr;
use feisu_sql::cnf::{to_cnf, Cnf, Disjunct};
use feisu_sql::optimizer::optimize;
use feisu_sql::plan::{build_plan, LogicalPlan};
use feisu_storage::auth::{AuthService, Credential, Grant};
use feisu_storage::fatman::FatmanDomain;
use feisu_storage::hdfs::HdfsDomain;
use feisu_storage::kv::KvDomain;
use feisu_storage::localfs::LocalFsDomain;
use feisu_storage::ssd_cache::{CachePreference, SsdCache};
use feisu_storage::{StorageDomain, StorageRouter};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Deployment parameters.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    pub datacenters: u32,
    pub racks_per_dc: u32,
    pub nodes_per_rack: u32,
    pub config: FeisuConfig,
    pub cost: CostModel,
    /// Disable to get the paper's "without SmartIndex" baseline.
    pub use_smartindex: bool,
    /// Identical-task result reuse in the job manager.
    pub task_reuse: bool,
    pub scheduling: Policy,
    /// Rows per ingested block.
    pub rows_per_block: usize,
    /// SSD-cache admission prefixes (§IV-B manual preferences); empty =
    /// no SSD data cache.
    pub ssd_cache_prefixes: Vec<String>,
    /// Entry-guard capability limits (quotas, statement size).
    pub guard: GuardLimits,
    pub seed: u64,
}

impl ClusterSpec {
    /// A 4-node single-DC cluster for examples and tests.
    pub fn small() -> ClusterSpec {
        ClusterSpec {
            datacenters: 1,
            racks_per_dc: 2,
            nodes_per_rack: 2,
            config: FeisuConfig::default(),
            cost: CostModel::default(),
            use_smartindex: true,
            task_reuse: true,
            scheduling: Policy::LocalityAware,
            rows_per_block: 4096,
            ssd_cache_prefixes: Vec::new(),
            guard: GuardLimits::default(),
            seed: 0xFE15,
        }
    }

    /// `n` nodes spread over two data centers (evaluation-scale shape).
    pub fn with_nodes(n: u32) -> ClusterSpec {
        let nodes_per_rack = 4u32;
        let racks = n.div_ceil(nodes_per_rack).max(2);
        ClusterSpec {
            datacenters: 2,
            racks_per_dc: racks.div_ceil(2),
            nodes_per_rack,
            ..ClusterSpec::small()
        }
    }

    pub fn node_count(&self) -> u32 {
        self.datacenters * self.racks_per_dc * self.nodes_per_rack
    }
}

/// Per-query execution options (§III-B: "user can optionally configure
/// the processed ratio of total data sets to avoid long-tail influence,
/// or directly limit the total elapse time").
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Fraction of tasks that must complete before returning (≤ 1.0).
    pub processed_ratio: f64,
    /// Hard response-time limit.
    pub time_limit: Option<SimDuration>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            processed_ratio: 1.0,
            time_limit: None,
        }
    }
}

/// Counters for one query.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    pub tasks: usize,
    pub reused_tasks: usize,
    pub backup_tasks: usize,
    pub pruned_blocks: usize,
    pub index_hits: usize,
    pub index_built: usize,
    /// Indices built fresh but rejected by the cache budget (each is also
    /// counted in `index_built`).
    pub index_rejected: usize,
    pub scanned_predicates: usize,
    pub bytes_read: ByteSize,
    pub memory_served_tasks: usize,
    /// Results too large for the read-data flow, dumped to global storage
    /// with only the location shipped (§V-C).
    pub spilled_results: usize,
    /// Fraction of tasks whose results made it into the answer.
    pub processed_ratio: f64,
}

impl QueryStats {
    /// Folds another stats record into this one. Counting fields add;
    /// `processed_ratio` combines weighted by each side's task count, so
    /// merging scans of different sizes averages correctly (a zero-task
    /// record leaves the ratio untouched).
    pub fn merge(&mut self, other: &QueryStats) {
        let (a, b) = (self.tasks as f64, other.tasks as f64);
        if a + b > 0.0 {
            self.processed_ratio =
                (self.processed_ratio * a + other.processed_ratio * b) / (a + b);
        }
        self.tasks += other.tasks;
        self.reused_tasks += other.reused_tasks;
        self.backup_tasks += other.backup_tasks;
        self.pruned_blocks += other.pruned_blocks;
        self.index_hits += other.index_hits;
        self.index_built += other.index_built;
        self.index_rejected += other.index_rejected;
        self.scanned_predicates += other.scanned_predicates;
        self.bytes_read += other.bytes_read;
        self.memory_served_tasks += other.memory_served_tasks;
        self.spilled_results += other.spilled_results;
    }

    /// Lifts one leaf task's accounting into query-level stats, ready to
    /// [`merge`](Self::merge) into the running totals.
    pub fn from_leaf(leaf: &LeafTaskStats) -> QueryStats {
        QueryStats {
            index_hits: leaf.index_hits,
            index_built: leaf.index_built,
            index_rejected: leaf.index_rejected,
            scanned_predicates: leaf.scanned_predicates,
            bytes_read: leaf.bytes_read,
            pruned_blocks: leaf.pruned_by_zone as usize,
            memory_served_tasks: leaf.served_from_memory as usize,
            ..QueryStats::default()
        }
    }
}

/// A finished query.
#[derive(Debug)]
pub struct QueryResult {
    pub query_id: QueryId,
    pub batch: RecordBatch,
    pub response_time: SimDuration,
    pub stats: QueryStats,
    /// True when the answer covers only a fraction of the data (time
    /// limit hit with `processed_ratio` satisfied).
    pub partial: bool,
    /// `EXPLAIN ANALYZE`-style execution profile: summary counters plus
    /// the nested master→stem→leaf span tree.
    pub profile: QueryProfile,
}

/// Cached handles for the cluster-wide query/task metrics so the per-query
/// path never touches the registry's name map.
struct QueryMetrics {
    queries: Arc<Counter>,
    errors: Arc<Counter>,
    partial: Arc<Counter>,
    spilled: Arc<Counter>,
    response_ns: Arc<Histogram>,
    tasks: Arc<Counter>,
    reused: Arc<Counter>,
    backup: Arc<Counter>,
    pruned_by_zone: Arc<Counter>,
    memory_served: Arc<Counter>,
    bytes_read: Arc<Counter>,
}

impl QueryMetrics {
    fn new(registry: &MetricsRegistry) -> QueryMetrics {
        QueryMetrics {
            queries: registry.counter("feisu.query.count"),
            errors: registry.counter("feisu.query.errors"),
            partial: registry.counter("feisu.query.partial"),
            spilled: registry.counter("feisu.query.spilled_results"),
            response_ns: registry.histogram("feisu.query.response_ns"),
            tasks: registry.counter("feisu.task.count"),
            reused: registry.counter("feisu.task.reused"),
            backup: registry.counter("feisu.task.backup"),
            pruned_by_zone: registry.counter("feisu.task.pruned_by_zone"),
            memory_served: registry.counter("feisu.task.memory_served"),
            bytes_read: registry.counter("feisu.task.bytes_read"),
        }
    }
}

/// The assembled Feisu deployment.
pub struct FeisuCluster {
    spec: ClusterSpec,
    clock: SimClock,
    topology: Arc<Topology>,
    router: Arc<StorageRouter>,
    auth: Arc<AuthService>,
    catalog: Catalog,
    leaves: FxHashMap<NodeId, LeafServer>,
    heartbeats: Mutex<HeartbeatTable>,
    scheduler: Scheduler,
    guard: EntryGuard,
    jobs: JobManager,
    history: QueryHistory,
    failed_nodes: FxHashSet<NodeId>,
    slow_nodes: FxHashMap<NodeId, f64>,
    /// Per-node resource consumption agreements (§V-A): business-critical
    /// load shrinks the slots Feisu may use.
    resources: Mutex<FxHashMap<NodeId, feisu_cluster::resources::ResourceAgreement>>,
    user_names: FxHashMap<String, UserId>,
    user_ids: IdGen,
    query_ids: IdGen,
    system_cred: Credential,
    metrics: Arc<MetricsRegistry>,
    qmetrics: QueryMetrics,
}

const SYSTEM_USER: UserId = UserId(0);

impl FeisuCluster {
    /// Builds a deployment: topology, the four storage domains, auth,
    /// SSD cache, leaf servers.
    pub fn new(spec: ClusterSpec) -> Result<FeisuCluster> {
        spec.config
            .validate()
            .map_err(FeisuError::Config)?;
        let clock = SimClock::new();
        let metrics = Arc::new(MetricsRegistry::new());
        let topology = Arc::new(Topology::grid(
            spec.datacenters,
            spec.racks_per_dc,
            spec.nodes_per_rack,
        ));
        let cost = spec.cost.clone();
        let local = Arc::new(LocalFsDomain::new(
            feisu_common::DomainId(0),
            "local",
            topology.clone(),
            cost.clone(),
        ));
        let hdfs = Arc::new(HdfsDomain::new(
            feisu_common::DomainId(1),
            "hdfs",
            topology.clone(),
            cost.clone(),
            spec.config.replication_factor,
            spec.seed ^ 0x11,
        ));
        let ffs = Arc::new(FatmanDomain::new(
            feisu_common::DomainId(2),
            "ffs",
            topology.clone(),
            cost.clone(),
            spec.config.replication_factor,
            spec.seed ^ 0x22,
        ));
        let kv = Arc::new(KvDomain::new(
            feisu_common::DomainId(3),
            "kv",
            topology.clone(),
            cost.clone(),
        ));
        let auth = Arc::new(AuthService::new(spec.seed ^ 0xA0A0));
        auth.register(SYSTEM_USER);
        for d in 0..4u64 {
            auth.grant(SYSTEM_USER, feisu_common::DomainId(d), Grant::ReadWrite);
        }
        let system_cred = auth.issue(SYSTEM_USER, clock.now(), SimDuration::hours(24 * 365 * 10))?;
        let cache = (!spec.ssd_cache_prefixes.is_empty()).then(|| {
            Arc::new(SsdCache::new(
                spec.config.ssd_cache_capacity,
                spec.ssd_cache_prefixes
                    .iter()
                    .map(|p| CachePreference {
                        path_prefix: p.clone(),
                    })
                    .collect(),
            ))
        });
        let domains: Vec<Arc<dyn StorageDomain>> = vec![local, hdfs, ffs, kv];
        let router = Arc::new(StorageRouter::new(
            domains,
            0,
            auth.clone(),
            cache,
            cost.clone(),
        ));
        // Per-domain read/write counters plus the SSD-cache counters.
        router.attach_metrics(&metrics);
        let mut leaves = FxHashMap::default();
        let mut heartbeats = HeartbeatTable::new(
            spec.config.heartbeat_interval,
            spec.config.heartbeat_miss_limit,
        );
        for n in topology.nodes() {
            heartbeats.register(n.id, clock.now());
            let index =
                IndexManager::new(spec.config.index_memory_per_leaf, spec.config.index_ttl);
            // Every leaf feeds the same registry: the feisu.index.* counters
            // are cluster-wide totals.
            index.attach_metrics(&metrics);
            leaves.insert(
                n.id,
                LeafServer::new(n.id, index, topology.clone(), cost.clone()),
            );
        }
        heartbeats.attach_metrics(&metrics);
        let mut resources = FxHashMap::default();
        for n in topology.nodes() {
            resources.insert(
                n.id,
                feisu_cluster::resources::ResourceAgreement::new(
                    n.cores * 4, // task slots per node
                    spec.config.resource_agreement_share,
                ),
            );
        }
        let scheduler = Scheduler::new(spec.scheduling);
        let guard = EntryGuard::new(spec.guard.clone());
        let jobs = JobManager::new(
            SimDuration::minutes(10),
            if spec.task_reuse { 4096 } else { 0 },
        );
        let user_ids = IdGen::new();
        user_ids.next_u64(); // reserve 0 for the system user
        let qmetrics = QueryMetrics::new(&metrics);
        Ok(FeisuCluster {
            spec,
            clock,
            topology,
            router,
            auth,
            catalog: Catalog::new(),
            leaves,
            heartbeats: Mutex::new(heartbeats),
            scheduler,
            guard,
            jobs,
            history: QueryHistory::new(),
            failed_nodes: FxHashSet::default(),
            slow_nodes: FxHashMap::default(),
            resources: Mutex::new(resources),
            user_names: FxHashMap::default(),
            user_ids,
            query_ids: IdGen::new(),
            system_cred,
            metrics,
            qmetrics,
        })
    }

    // ------------------------------------------------------------ admin

    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    pub fn now(&self) -> SimInstant {
        self.clock.now()
    }

    /// Advances the simulated clock (inter-query idle time, TTL tests).
    pub fn advance_time(&self, d: SimDuration) {
        self.clock.advance(d);
    }

    pub fn node_count(&self) -> usize {
        self.topology.len()
    }

    pub fn register_user(&mut self, name: &str) -> UserId {
        if let Some(&id) = self.user_names.get(name) {
            return id;
        }
        let id = UserId(self.user_ids.next_u64());
        self.auth.register(id);
        self.user_names.insert(name.to_string(), id);
        id
    }

    /// Grants ReadWrite on every storage domain.
    pub fn grant_all(&self, user: UserId) {
        for d in self.router.domains() {
            self.auth.grant(user, d.id(), Grant::ReadWrite);
        }
    }

    /// Grants on one domain by prefix (`"hdfs"`, `"local"`, …).
    pub fn grant(&self, user: UserId, domain_prefix: &str, level: Grant) -> Result<()> {
        for d in self.router.domains() {
            if d.prefix() == domain_prefix {
                self.auth.grant(user, d.id(), level);
                return Ok(());
            }
        }
        Err(FeisuError::UnknownDomain(domain_prefix.to_string()))
    }

    /// Issues an 8-hour SSO credential.
    pub fn login(&self, user: UserId) -> Result<Credential> {
        self.auth.issue(user, self.clock.now(), SimDuration::hours(8))
    }

    pub fn auth(&self) -> &Arc<AuthService> {
        &self.auth
    }

    pub fn router(&self) -> &Arc<StorageRouter> {
        &self.router
    }

    /// The cluster-wide metrics registry (every subsystem feeds it).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn history(&self) -> &QueryHistory {
        &self.history
    }

    pub fn jobs(&self) -> &JobManager {
        &self.jobs
    }

    /// Kills a node: heartbeats stop, its replicas become unavailable.
    pub fn fail_node(&mut self, node: NodeId) {
        self.failed_nodes.insert(node);
        for d in self.router.domains() {
            d.set_node_available(node, false);
        }
    }

    /// Brings a node back.
    pub fn recover_node(&mut self, node: NodeId) {
        self.failed_nodes.remove(&node);
        for d in self.router.domains() {
            d.set_node_available(node, true);
        }
    }

    /// Marks a node as a straggler: its task times are multiplied.
    pub fn slow_node(&mut self, node: NodeId, factor: f64) {
        self.slow_nodes.insert(node, factor.max(1.0));
    }

    /// Reports business-critical load on a node (§V-A resource
    /// agreement): Feisu's usable task slots shrink accordingly, and the
    /// count of Feisu tasks that must be preempted is returned.
    pub fn set_business_load(&self, node: NodeId, slots: u32) -> u32 {
        let mut res = self.resources.lock();
        res.get_mut(&node).map_or(0, |a| a.set_business_load(slots))
    }

    /// Slots Feisu may currently use on a node under its agreement.
    pub fn feisu_slot_limit(&self, node: NodeId) -> u32 {
        self.resources.lock().get(&node).map_or(0, |a| a.feisu_limit())
    }

    /// Per-node SmartIndex statistics (summed).
    pub fn index_stats(&self) -> feisu_index::IndexStats {
        let mut total = feisu_index::IndexStats::default();
        for leaf in self.leaves.values() {
            let s = leaf.index().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.inserts += s.inserts;
            total.rejected += s.rejected;
            total.lru_evictions += s.lru_evictions;
            total.ttl_evictions += s.ttl_evictions;
        }
        total
    }

    pub fn reset_index_stats(&self) {
        for leaf in self.leaves.values() {
            leaf.index().reset_stats();
        }
    }

    // ------------------------------------------------------------ tables

    /// Registers a table stored under `location`; requires write grant on
    /// the location's domain.
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        location: &str,
        cred: &Credential,
    ) -> Result<()> {
        self.router.validate_path(location)?;
        let domain = self.router.domain_of(location);
        self.auth
            .authorize(cred, domain.id(), Grant::ReadWrite, self.clock.now())?;
        self.catalog
            .create_table(name, schema, location, self.spec.rows_per_block)
    }

    /// Ingests whole columns.
    pub fn ingest_columns(
        &self,
        table: &str,
        columns: Vec<Column>,
        cred: &Credential,
    ) -> Result<usize> {
        let ids = self.catalog.ingest(
            table,
            columns,
            &self.router,
            cred,
            None,
            self.clock.now(),
        )?;
        Ok(ids.len())
    }

    /// Ingests rows (convenience).
    pub fn ingest_rows(
        &self,
        table: &str,
        rows: Vec<Vec<Value>>,
        cred: &Credential,
    ) -> Result<usize> {
        let ids = self.catalog.ingest_rows(
            table,
            rows,
            &self.router,
            cred,
            None,
            self.clock.now(),
        )?;
        Ok(ids.len())
    }

    /// Ingests rows pinned to one node (log data on its producer).
    pub fn ingest_rows_at(
        &self,
        table: &str,
        rows: Vec<Vec<Value>>,
        node: NodeId,
        cred: &Credential,
    ) -> Result<usize> {
        let ids = self.catalog.ingest_rows(
            table,
            rows,
            &self.router,
            cred,
            Some(node),
            self.clock.now(),
        )?;
        Ok(ids.len())
    }

    // ------------------------------------------------------------ query

    /// Returns the optimized logical plan for a statement without
    /// executing it (EXPLAIN).
    pub fn explain(&self, sql: &str, cred: &Credential) -> Result<String> {
        let query = QueryHistory::syntax_check(sql)?;
        for tref in query.all_tables() {
            let location = self.catalog.location(&tref.name)?;
            let domain = self.router.domain_of(&location);
            self.auth
                .authorize(cred, domain.id(), Grant::Read, self.clock.now())?;
        }
        let resolved = analyze(&query, &CatalogView(&self.catalog))?;
        let plan = optimize(build_plan(&resolved)?)?;
        Ok(plan.display_indent())
    }

    /// Ingests nested JSON documents (paper §III-A: "nested data format
    /// such as json … will be flatten into columns"). The table is
    /// created on first ingest with the union schema of the batch; later
    /// batches must carry the same flattened schema.
    pub fn ingest_json(
        &self,
        table: &str,
        location: &str,
        documents: &[&str],
        cred: &Credential,
    ) -> Result<usize> {
        let parsed: Vec<feisu_format::json::Json> = documents
            .iter()
            .map(|d| feisu_format::json::parse(d))
            .collect::<Result<_>>()?;
        let (schema, columns) = feisu_format::json::documents_to_columns(&parsed)?;
        if self.catalog.schema(table).is_none() {
            self.create_table(table, schema.clone(), location, cred)?;
        } else {
            let existing = self.catalog.schema(table).expect("checked");
            if existing != schema {
                return Err(FeisuError::Analysis(format!(
                    "json batch schema does not match table `{table}`"
                )));
            }
        }
        let ids =
            self.catalog
                .ingest(table, columns, &self.router, cred, None, self.clock.now())?;
        Ok(ids.len())
    }

    /// Runs one SQL query with default options.
    pub fn query(&mut self, sql: &str, cred: &Credential) -> Result<QueryResult> {
        self.query_with(sql, cred, &QueryOptions::default())
    }

    /// Runs one SQL query with explicit partial-result options.
    pub fn query_with(
        &mut self,
        sql: &str,
        cred: &Credential,
        options: &QueryOptions,
    ) -> Result<QueryResult> {
        let now = self.clock.now();
        let query_id = QueryId(self.query_ids.next_u64());
        self.qmetrics.queries.inc();

        // Client layer: syntax check + history collection.
        let query = QueryHistory::syntax_check(sql)?;
        self.history.record(cred.user, sql, &query, now);

        // Entry guard: capability protection + quotas.
        let table_count = query.all_tables().count();
        self.guard.admit(cred.user, sql, table_count, now)?;
        let outcome = self.run_admitted(sql, &query, cred, options, now, query_id);
        self.guard.finish(cred.user);
        if outcome.is_err() {
            self.qmetrics.errors.inc();
        }
        outcome
    }

    fn run_admitted(
        &mut self,
        sql: &str,
        query: &feisu_sql::ast::Query,
        cred: &Credential,
        options: &QueryOptions,
        now: SimInstant,
        query_id: QueryId,
    ) -> Result<QueryResult> {
        // Access verification: read grant on every touched table's domain.
        for tref in query.all_tables() {
            let location = self.catalog.location(&tref.name)?;
            let domain = self.router.domain_of(&location);
            self.auth
                .authorize(cred, domain.id(), Grant::Read, now)?;
        }

        // Analyze, plan, optimize.
        let resolved = analyze(query, &CatalogView(&self.catalog))?;
        let plan = optimize(build_plan(&resolved)?)?;

        // Beat the heartbeat table for all live nodes.
        self.tick_heartbeats(now);

        let total_blocks: usize = resolved
            .tables
            .iter()
            .map(|t| self.catalog.table(&t.table).map(|d| d.block_count()).unwrap_or(0))
            .sum();
        let job = self
            .jobs
            .create_job(query_id, cred.user, sql, total_blocks, now);
        self.jobs.set_state(job, JobState::Running);

        let mut ctx = ExecCtx {
            cred: cred.clone(),
            now,
            options: options.clone(),
            stats: QueryStats::default(),
            tally: TimeTally::new(),
            partial: false,
            spans: SpanRecorder::new(),
            root_spans: Vec::new(),
            backend_bytes: BTreeMap::new(),
            tier_tasks: BTreeMap::new(),
        };
        // Master overhead: parsing/planning/dispatch RPC.
        ctx.tally.add_cpu(self.spec.cost.rpc_overhead);

        let result = self.exec_plan(&plan, &mut ctx);
        match &result {
            Ok(_) => self.jobs.set_state(
                job,
                if ctx.partial {
                    JobState::Abandoned
                } else {
                    JobState::Succeeded
                },
            ),
            Err(_) => self.jobs.set_state(job, JobState::Failed),
        }
        self.jobs.note_reused(job, ctx.stats.reused_tasks);
        let batch = result?;

        let response_time = ctx.tally.total();
        // The cluster's wall clock moves by the query's duration.
        self.clock.advance(response_time);

        // The processed ratio is derived from the recorded task spans: every
        // leaf task of every scan leaves one `leaf_task` span, and abandoned
        // ones carry the `abandoned` attribute.
        let total_leaf = ctx.spans.count_named("leaf_task");
        if total_leaf > 0 {
            let abandoned = ctx.spans.count_named_with_attr("leaf_task", "abandoned");
            ctx.stats.processed_ratio = (total_leaf - abandoned) as f64 / total_leaf as f64;
        }

        // Close the profile: a master span covering the whole query adopts
        // the per-scan stem spans (and any abandoned leaves).
        let master = ctx.spans.record(
            "master",
            None,
            SimInstant(0),
            SimInstant(response_time.as_nanos()),
        );
        for span in std::mem::take(&mut ctx.root_spans) {
            ctx.spans.set_parent(span, Some(master));
        }
        let mut profile = QueryProfile::new(query_id.0);
        profile.push_summary("response time", response_time);
        profile.push_summary(
            "tasks",
            format!(
                "{} (reused {}, backup {}, pruned {})",
                ctx.stats.tasks,
                ctx.stats.reused_tasks,
                ctx.stats.backup_tasks,
                ctx.stats.pruned_blocks
            ),
        );
        profile.push_summary(
            "smartindex",
            format!(
                "hits {}, built {}, rejected {}, scanned predicates {}",
                ctx.stats.index_hits,
                ctx.stats.index_built,
                ctx.stats.index_rejected,
                ctx.stats.scanned_predicates
            ),
        );
        let mut bytes_line = format!("{} total", ctx.stats.bytes_read);
        for (backend, bytes) in &ctx.backend_bytes {
            use std::fmt::Write as _;
            let _ = write!(bytes_line, " {backend}={}", ByteSize(*bytes));
        }
        profile.push_summary("bytes read", bytes_line);
        if !ctx.tier_tasks.is_empty() {
            let served = ctx
                .tier_tasks
                .iter()
                .map(|(tier, n)| format!("{tier}={n}"))
                .collect::<Vec<_>>()
                .join(" ");
            profile.push_summary("served from", served);
        }
        profile.push_summary(
            "processed ratio",
            format!("{:.1}%", ctx.stats.processed_ratio * 100.0),
        );
        if ctx.stats.spilled_results > 0 {
            profile.push_summary("spilled results", ctx.stats.spilled_results);
        }
        profile.tree = ctx.spans.tree();

        let m = &self.qmetrics;
        m.response_ns.observe(response_time.as_nanos());
        m.tasks.add(ctx.stats.tasks as u64);
        m.reused.add(ctx.stats.reused_tasks as u64);
        m.backup.add(ctx.stats.backup_tasks as u64);
        m.pruned_by_zone.add(ctx.stats.pruned_blocks as u64);
        m.memory_served.add(ctx.stats.memory_served_tasks as u64);
        m.bytes_read.add(ctx.stats.bytes_read.0);
        m.spilled.add(ctx.stats.spilled_results as u64);
        if ctx.partial {
            m.partial.inc();
        }

        Ok(QueryResult {
            query_id,
            batch,
            response_time,
            stats: ctx.stats,
            partial: ctx.partial,
            profile,
        })
    }

    fn tick_heartbeats(&self, now: SimInstant) {
        let mut hb = self.heartbeats.lock();
        for n in self.topology.nodes() {
            if !self.failed_nodes.contains(&n.id) {
                hb.beat(n.id, now, LoadStats::default());
            }
        }
    }

    // ----------------------------------------------------- plan walking

    fn exec_plan(&mut self, plan: &LogicalPlan, ctx: &mut ExecCtx) -> Result<RecordBatch> {
        match plan {
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
                output_schema,
            } => {
                // Push partial aggregation to the leaves when the input is
                // a bare scan (the dominant shape, Fig. 8).
                if let LogicalPlan::Scan {
                    table,
                    projection,
                    predicate,
                    output_schema: scan_schema,
                    ..
                } = input.as_ref()
                {
                    let stage = AggStage {
                        group_by: group_by.clone(),
                        aggregates: aggregates.clone(),
                    };
                    let merged = self.distributed_scan(
                        table,
                        projection,
                        predicate.as_ref(),
                        scan_schema,
                        Some(stage),
                        ctx,
                    )?;
                    let table = AggTable::from_transport(
                        group_by.clone(),
                        aggregates.clone(),
                        &merged,
                    )?;
                    ctx.tally
                        .add_cpu(self.spec.cost.predicate_eval(merged.rows().max(1)));
                    return table.finish(output_schema);
                }
                let batch = self.exec_plan(input, ctx)?;
                let mut agg = AggTable::new(group_by.clone(), aggregates.clone());
                agg.update(&batch)?;
                ctx.tally
                    .add_cpu(self.spec.cost.predicate_eval(batch.rows().max(1)));
                agg.finish(output_schema)
            }
            LogicalPlan::Scan {
                table,
                projection,
                predicate,
                output_schema,
                ..
            } => self.distributed_scan(
                table,
                projection,
                predicate.as_ref(),
                output_schema,
                None,
                ctx,
            ),
            LogicalPlan::Filter { input, predicate } => {
                let batch = self.exec_plan(input, ctx)?;
                ctx.tally
                    .add_cpu(self.spec.cost.predicate_eval(batch.rows().max(1)));
                feisu_exec::ops::filter(&batch, predicate)
            }
            LogicalPlan::Project {
                input,
                exprs,
                output_schema,
            } => {
                let batch = self.exec_plan(input, ctx)?;
                ctx.tally
                    .add_cpu(self.spec.cost.predicate_eval(batch.rows().max(1)));
                feisu_exec::ops::project(&batch, exprs, output_schema)
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
                output_schema,
            } => {
                let l = self.exec_plan(left, ctx)?;
                let r = self.exec_plan(right, ctx)?;
                ctx.tally.add_cpu(
                    self.spec
                        .cost
                        .predicate_eval((l.rows() + r.rows()).max(1)),
                );
                feisu_exec::join::join(&l, &r, *kind, on, output_schema)
            }
            LogicalPlan::Sort { input, keys, fetch } => {
                let batch = self.exec_plan(input, ctx)?;
                let n = batch.rows().max(2);
                ctx.tally.add_cpu(
                    self.spec
                        .cost
                        .predicate_eval(n * (usize::BITS - n.leading_zeros()) as usize),
                );
                feisu_exec::sort::sort(&batch, keys, *fetch)
            }
            LogicalPlan::Limit { input, fetch } => {
                let batch = self.exec_plan(input, ctx)?;
                feisu_exec::ops::limit(&batch, *fetch)
            }
        }
    }

    // ----------------------------------------------- distributed scans

    #[allow(clippy::too_many_arguments)]
    fn distributed_scan(
        &mut self,
        table: &str,
        projection: &[String],
        predicate: Option<&Expr>,
        output_schema: &Schema,
        agg: Option<AggStage>,
        ctx: &mut ExecCtx,
    ) -> Result<RecordBatch> {
        let desc = self.catalog.table(table)?;
        // Canonical → storage name map covers the whole table schema.
        let mut name_map: FxHashMap<String, String> = FxHashMap::default();
        for (canon, storage) in output_schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .zip(projection.iter().cloned())
        {
            name_map.insert(canon, storage);
        }
        // Predicate columns outside the projection also need mapping: a
        // canonical name is `binding.col` or bare `col`; strip qualifier.
        if let Some(p) = predicate {
            let mut cols = Vec::new();
            p.columns(&mut cols);
            for c in cols {
                // Dotted names may be real storage columns (flattened
                // JSON paths); strip the table qualifier only when the
                // full name is not a column of the table itself.
                let storage = if desc.schema.index_of(&c).is_some() {
                    c.clone()
                } else {
                    c.rsplit('.').next().unwrap_or(&c).to_string()
                };
                name_map.entry(c.clone()).or_insert(storage);
            }
        }

        // Split the predicate into indexable CNF clauses and residuals.
        let (cnf, residual) = match predicate {
            None => (Cnf::default(), Vec::new()),
            Some(p) => {
                let full = to_cnf(p);
                let mut indexable = Vec::new();
                let mut residual = Vec::new();
                for clause in full.clauses {
                    let all_simple = clause
                        .disjuncts
                        .iter()
                        .all(|d| matches!(d, Disjunct::Simple(_)));
                    if all_simple {
                        indexable.push(clause);
                    } else {
                        residual.push(clause.to_expr());
                    }
                }
                (Cnf { clauses: indexable }, residual)
            }
        };

        // One task per block.
        let blocks: Vec<_> = desc.blocks().cloned().collect();
        let agg_shape = agg.clone();
        let mut tasks: Vec<ScanTask> = Vec::with_capacity(blocks.len());
        let mut replica_sets: Vec<Vec<NodeId>> = Vec::with_capacity(blocks.len());
        for block in blocks {
            replica_sets.push(self.router.replicas(&block.path)?);
            tasks.push(ScanTask {
                table: table.to_string(),
                block,
                projection: projection.to_vec(),
                output_schema: output_schema.clone(),
                cnf: cnf.clone(),
                residual: residual.clone(),
                agg: agg.clone(),
                name_map: name_map.clone(),
            });
        }
        ctx.stats.tasks += tasks.len();
        if tasks.is_empty() {
            // Empty table: aggregate stages still need a zero-state.
            if let Some(stage) = &agg_shape {
                let t = AggTable::new(stage.group_by.clone(), stage.aggregates.clone());
                return t.to_transport();
            }
            return Ok(RecordBatch::empty(output_schema.clone()));
        }

        // Schedule.
        let assignments = {
            let hb = self.heartbeats.lock();
            self.scheduler
                .assign_all(&replica_sets, &self.topology, &hb, ctx.now)?
        };

        // Execute, tracking per-node serialized time.
        // The signature must cover the FULL predicate — indexable clauses
        // AND residual ones — or queries differing only in a residual
        // clause would wrongly share cached task results.
        let cnf_display = cnf
            .clauses
            .iter()
            .map(|c| c.to_expr().to_string())
            .chain(residual.iter().map(|e| e.to_string()))
            .collect::<Vec<_>>()
            .join("&");
        let agg_display = agg_shape
            .as_ref()
            .map(|s| {
                s.aggregates
                    .iter()
                    .map(|a| a.name.clone())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .unwrap_or_default();
        // Spans sit on the query-relative timeline; leaf work of this scan
        // starts after everything the master has already accounted.
        let scan_base = ctx.tally.total().as_nanos();

        // --- Phase 1 (serial): task-reuse lookups, in submission order.
        // Within one scan every task covers a distinct block, so no two
        // tasks share a signature — looking all of them up before any
        // store is equivalent to the serial interleaving.
        let mut planned: Vec<Planned> = Vec::with_capacity(tasks.len());
        for task in &tasks {
            let signature = task_signature(
                table,
                task.block.id,
                &cnf_display,
                projection,
                &agg_display,
            );
            match self.jobs.lookup_task(&signature, ctx.now) {
                // Reuse is a master-side cache hit: negligible leaf time.
                Some((batch, is_agg)) => planned.push(Planned::Reused { batch, is_agg }),
                None => planned.push(Planned::Run { signature }),
            }
        }

        // --- Phase 2 (parallel): run the leaf tasks. Tasks assigned to
        // the same node are serialized in submission order on one worker,
        // so each leaf's SmartIndex cache sees exactly the state sequence
        // it would under serial execution; everything order-sensitive on
        // the master side is deferred to the serial merge below. All
        // simulated time comes from per-node tallies, never wall clock, so
        // results are bit-identical at any thread count.
        let run_order: Vec<usize> = planned
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, Planned::Run { .. }))
            .map(|(i, _)| i)
            .collect();
        let threads = self.effective_threads().min(run_order.len().max(1));
        let mut results: Vec<Option<Result<TaskExec>>> =
            (0..tasks.len()).map(|_| None).collect();
        if threads <= 1 {
            for &i in &run_order {
                results[i] =
                    Some(self.execute_with_backup(&tasks[i], assignments[i], &ctx.cred, ctx.now));
            }
        } else {
            // Group run-indices by assigned node, preserving submission
            // order within each group.
            let mut groups: Vec<Vec<usize>> = Vec::new();
            let mut group_of: FxHashMap<NodeId, usize> = FxHashMap::default();
            for &i in &run_order {
                let g = *group_of.entry(assignments[i].node).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[g].push(i);
            }
            let this: &FeisuCluster = self;
            let cred = &ctx.cred;
            let now = ctx.now;
            let next = AtomicUsize::new(0);
            let workers = threads.min(groups.len());
            let chunks: Vec<Vec<(usize, Result<TaskExec>)>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let (next, groups, tasks, assignments) =
                            (&next, &groups, &tasks, &assignments);
                        s.spawn(move || {
                            let mut done = Vec::new();
                            loop {
                                let g = next.fetch_add(1, Ordering::Relaxed);
                                let Some(group) = groups.get(g) else { break };
                                for &i in group {
                                    done.push((
                                        i,
                                        this.execute_with_backup(
                                            &tasks[i],
                                            assignments[i],
                                            cred,
                                            now,
                                        ),
                                    ));
                                }
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("executor worker panicked"))
                    .collect()
            });
            for chunk in chunks {
                for (i, r) in chunk {
                    results[i] = Some(r);
                }
            }
        }

        // --- Phase 3 (serial): merge per-task results in submission
        // order. Stats folding, task-result stores, node-time accounting
        // and span recording all happen here so their order — and thus the
        // simulated outcome — is independent of worker scheduling. Errors
        // surface as the first failing task by submission order (serial
        // mode stops there; parallel mode has already run the rest, which
        // only warms caches).
        let mut node_time: FxHashMap<NodeId, SimDuration> = FxHashMap::default();
        let mut outputs: Vec<TaskRun> = Vec::new();
        for (i, plan) in planned.into_iter().enumerate() {
            let signature = match plan {
                Planned::Reused { batch, is_agg } => {
                    ctx.stats.reused_tasks += 1;
                    let out = LeafOutput {
                        batch,
                        is_agg_transport: is_agg,
                        tally: TimeTally::new(),
                        stats: LeafTaskStats::default(),
                    };
                    let done = *node_time.entry(assignments[i].node).or_default();
                    let at = SimInstant(scan_base + done.as_nanos());
                    let span = ctx.spans.record("leaf_task", None, at, at);
                    ctx.spans.attr(span, "node", assignments[i].node.to_string());
                    ctx.spans.attr(span, "reused", 1u64);
                    outputs.push(TaskRun {
                        done,
                        start_ns: at.as_nanos(),
                        end_ns: at.as_nanos(),
                        total: SimDuration::ZERO,
                        span,
                        out,
                    });
                    continue;
                }
                Planned::Run { signature } => signature,
            };
            let exec = results[i].take().expect("task was executed")?;
            let TaskExec {
                node,
                out: output,
                backup,
            } = exec;
            if backup {
                ctx.stats.backup_tasks += 1;
            }
            ctx.stats.merge(&QueryStats::from_leaf(&output.stats));
            self.jobs.store_task(
                signature,
                output.batch.clone(),
                output.is_agg_transport,
                ctx.now,
            );
            let t = node_time.entry(node).or_default();
            *t += output.tally.total();
            let done = *t;
            let total = output.tally.total();
            let start_ns = scan_base + done.as_nanos() - total.as_nanos();
            let end_ns = scan_base + done.as_nanos();
            let span = ctx
                .spans
                .record("leaf_task", None, SimInstant(start_ns), SimInstant(end_ns));
            ctx.spans.attr(span, "node", node.to_string());
            ctx.spans.attr(span, "rows", output.batch.rows());
            ctx.spans.attr(span, "bytes_read", output.stats.bytes_read);
            if output.stats.index_hits > 0 {
                ctx.spans.attr(span, "index_hits", output.stats.index_hits);
            }
            if output.stats.index_built > 0 {
                ctx.spans.attr(span, "index_built", output.stats.index_built);
            }
            if output.stats.index_rejected > 0 {
                ctx.spans
                    .attr(span, "index_rejected", output.stats.index_rejected);
            }
            if output.stats.pruned_by_zone {
                ctx.spans.attr(span, "pruned_by_zone", 1u64);
            }
            ctx.spans
                .attr(span, "tier", output.stats.served_tier.to_string());
            *ctx
                .tier_tasks
                .entry(output.stats.served_tier.to_string())
                .or_default() += 1;
            if let Some(backend) = output.stats.backend {
                if let Some(d) = self.router.domains().iter().find(|d| d.id() == backend) {
                    let prefix = d.prefix().to_string();
                    ctx.spans.attr(span, "backend", prefix.as_str());
                    *ctx.backend_bytes.entry(prefix).or_default() +=
                        output.stats.bytes_read.0;
                }
            }
            outputs.push(TaskRun {
                done,
                start_ns,
                end_ns,
                total,
                span,
                out: output,
            });
        }

        // Partial-result handling: tasks finishing after the limit are
        // abandoned if the processed ratio is already satisfied. The final
        // `QueryStats::processed_ratio` is derived from the spans at the end
        // of the query, so abandoned tasks only need their marker here.
        let total_tasks = outputs.len();
        let mut kept: Vec<TaskRun> = Vec::with_capacity(total_tasks);
        let mut abandoned = 0usize;
        if let Some(limit) = ctx.options.time_limit {
            for run in outputs {
                if run.done <= limit {
                    kept.push(run);
                } else {
                    abandoned += 1;
                    ctx.spans.attr(run.span, "abandoned", 1u64);
                    ctx.root_spans.push(run.span);
                }
            }
            let achieved = kept.len() as f64 / total_tasks as f64;
            if abandoned > 0 {
                if achieved + 1e-12 < ctx.options.processed_ratio {
                    return Err(FeisuError::Deadline(format!(
                        "only {:.0}% of tasks finished within {limit}, {:.0}% required",
                        achieved * 100.0,
                        ctx.options.processed_ratio * 100.0
                    )));
                }
                ctx.partial = true;
            }
        } else {
            kept = outputs;
        }
        if kept.is_empty() {
            if let Some(stage) = &agg_shape {
                let t = AggTable::new(stage.group_by.clone(), stage.aggregates.clone());
                return t.to_transport();
            }
            return Ok(RecordBatch::empty(output_schema.clone()));
        }

        // Critical path: slowest node, capped by the time limit when
        // partial results were returned.
        let mut critical = node_time.values().copied().fold(SimDuration::ZERO, |a, b| a.max(b));
        if let Some(limit) = ctx.options.time_limit {
            if ctx.partial {
                critical = critical.max(limit).min(limit);
            }
        }
        let mut scan_tally = TimeTally::new();
        scan_tally.add_io(critical); // critical path of leaf work

        // Merge bottom-up through the stem tree. Each stem's span starts
        // with its earliest child and ends after the slowest child plus the
        // stem's own merge time on top.
        let agg_ref = agg_shape
            .as_ref()
            .map(|s| (s.group_by.as_slice(), s.aggregates.as_slice()));
        let per_stem = self.spec.config.leaves_per_stem.max(1);
        let mut groups: Vec<Vec<TaskRun>> = Vec::new();
        for run in kept {
            if groups.last().is_none_or(|g| g.len() == per_stem) {
                groups.push(Vec::with_capacity(per_stem));
            }
            groups.last_mut().expect("just pushed").push(run);
        }
        let mut stem_outputs = Vec::new();
        for group in groups {
            let child_min = group.iter().map(|r| r.start_ns).min().unwrap_or(scan_base);
            let child_max = group.iter().map(|r| r.end_ns).max().unwrap_or(scan_base);
            let slowest_child = group
                .iter()
                .map(|r| r.total)
                .fold(SimDuration::ZERO, |a, b| a.max(b));
            let child_spans: Vec<SpanId> = group.iter().map(|r| r.span).collect();
            let task_count = group.len();
            let stem_out = stem::merge_leaf_outputs(
                group.into_iter().map(|r| r.out).collect(),
                agg_ref,
                &self.spec.cost,
                2,
            )?;
            let stem_extra = stem_out
                .tally
                .total()
                .as_nanos()
                .saturating_sub(slowest_child.as_nanos());
            let span = ctx.spans.record(
                "stem",
                None,
                SimInstant(child_min),
                SimInstant(child_max + stem_extra),
            );
            ctx.spans.attr(span, "tasks", task_count);
            for child in child_spans {
                ctx.spans.set_parent(child, Some(span));
            }
            ctx.root_spans.push(span);
            stem_outputs.push(stem_out);
        }
        let root = stem::merge_stem_outputs(stem_outputs, agg_ref, &self.spec.cost, 4)?;
        // The stem/master merge happens after the slowest leaf: charge its
        // cpu+network on top of the leaf critical path.
        scan_tally.add_cpu(root.tally.cpu);
        scan_tally.add_network(root.tally.network);
        ctx.tally = ctx.tally.then(&scan_tally);

        // §V-C read-data flow: an oversized result is dumped to global
        // storage and only its location travels to the master, which
        // fetches it through the bulk path.
        let payload = ByteSize(root.batch.footprint() as u64);
        if payload > self.spec.config.result_spill_threshold {
            ctx.stats.spilled_results += 1;
            let spill_path = format!("/hdfs/.feisu/tmp/q{}", ctx.now.as_nanos());
            // The spill is a round trip through the global store: one
            // write from the stem, one read at the master.
            self.router.write(
                &spill_path,
                bytes::Bytes::from(vec![0u8; 0]), // marker object; data stays in memory
                None,
                &self.system_cred,
                ctx.now,
            )?;
            let mut spill_tally = TimeTally::new();
            spill_tally.add_io(
                self.spec.cost.read(feisu_cluster::StorageMedium::Hdd, payload) * 2,
            );
            ctx.tally = ctx.tally.then(&spill_tally);
        }
        Ok(root.batch)
    }

    /// Worker-thread count for the leaf-task pool: the `execution_threads`
    /// knob, with `0` meaning "whatever the machine offers".
    fn effective_threads(&self) -> usize {
        match self.spec.config.execution_threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }

    /// Runs a task on its assigned node, launching a backup task when the
    /// node is dead or pathologically slow (§III-B fault tolerance).
    /// Shared-state only (`&self`): safe to call from pool workers. All
    /// master-side bookkeeping (stats, spans, node time) is the caller's
    /// job — this returns what happened, including whether a backup fired.
    fn execute_with_backup(
        &self,
        task: &ScanTask,
        assignment: crate::master::Assignment,
        cred: &Credential,
        now: SimInstant,
    ) -> Result<TaskExec> {
        let node = assignment.node;
        let slow = self.slow_nodes.get(&node).copied().unwrap_or(1.0);
        match self.run_on_leaf(task, node, cred, now) {
            Ok(mut out) => {
                let mut backup = false;
                if slow > 1.0 {
                    out.tally = scale_tally(&out.tally, slow);
                    // Straggler mitigation: a backup on a healthy node
                    // bounds the effective time at delay + normal time.
                    let normal_total = scale_tally(&out.tally, 1.0 / slow).total();
                    let backup_total = self.spec.config.backup_task_delay + normal_total;
                    if backup_total < out.tally.total() {
                        backup = true;
                        let mut t = TimeTally::new();
                        t.add_io(backup_total);
                        out.tally = t;
                    }
                }
                Ok(TaskExec { node, out, backup })
            }
            Err(e) if e.is_retryable() => {
                // Backup task on the next-best node.
                let replicas = self.router.replicas(&task.block.path)?;
                let alive: Vec<NodeId> = {
                    let hb = self.heartbeats.lock();
                    hb.alive_nodes(now)
                        .into_iter()
                        .filter(|n| *n != node && !self.failed_nodes.contains(n))
                        .collect()
                };
                let backup_node = alive
                    .iter()
                    .copied()
                    .find(|n| replicas.contains(n))
                    .or_else(|| alive.first().copied())
                    .ok_or_else(|| {
                        FeisuError::Scheduling("no backup worker available".into())
                    })?;
                let mut out = self.run_on_leaf(task, backup_node, cred, now)?;
                // The backup started after the detection delay.
                let mut t = TimeTally::new();
                t.add_io(self.spec.config.backup_task_delay + out.tally.total());
                out.tally = t;
                Ok(TaskExec {
                    node: backup_node,
                    out,
                    backup: true,
                })
            }
            Err(e) => Err(e),
        }
    }

    fn run_on_leaf(
        &self,
        task: &ScanTask,
        node: NodeId,
        cred: &Credential,
        now: SimInstant,
    ) -> Result<LeafOutput> {
        if self.failed_nodes.contains(&node) {
            return Err(FeisuError::NodeUnavailable(format!("{node} is down")));
        }
        // Resource agreement: a node with no Feisu slots at all refuses
        // the task (the caller reroutes it as a backup task on another
        // node) — exactly as in serial execution. Transient saturation is
        // different: under the pool several workers can momentarily hold
        // slots on one node (its own queue plus rerouted backup tasks)
        // where serial execution holds at most one, so a transient
        // acquire failure waits for a slot instead of erroring, keeping
        // failure semantics identical across thread counts.
        loop {
            let mut res = self.resources.lock();
            match res.get_mut(&node) {
                Some(a) => match a.acquire() {
                    Ok(()) => break,
                    Err(e) if a.feisu_limit() == 0 => return Err(e),
                    Err(_) => {}
                },
                None => break,
            }
            drop(res);
            std::thread::yield_now();
        }
        let out = match self.leaves.get(&node) {
            Some(leaf) => leaf.execute(task, &self.router, cred, now, self.spec.use_smartindex),
            None => Err(FeisuError::NodeUnavailable(format!(
                "{node} has no leaf server"
            ))),
        };
        if let Some(a) = self.resources.lock().get_mut(&node) {
            a.release();
        }
        out
    }

    // --------------------------------------------------- personalization

    /// Pre-builds *pinned* private indices for a user's most frequent
    /// predicates (client-side history, §III-C) on every replica holder.
    pub fn personalize(&self, user: UserId, top_n: usize) -> Result<usize> {
        let now = self.clock.now();
        let frequent =
            self.history
                .frequent_predicates(user, now, SimDuration::hours(24), top_n);
        let mut built = 0usize;
        for (pred, _) in frequent {
            // Find tables whose schema carries the predicate column.
            for table in self.catalog.table_names() {
                let Some(schema) = self.catalog.schema(&table) else {
                    continue;
                };
                let storage_col = if schema.index_of(&pred.column).is_some() {
                    pred.column.as_str()
                } else {
                    pred.column.rsplit('.').next().unwrap_or(&pred.column)
                };
                if schema.index_of(storage_col).is_none() {
                    continue;
                }
                let desc = self.catalog.table(&table)?;
                let storage_pred = feisu_sql::cnf::SimplePredicate {
                    column: storage_col.to_string(),
                    op: pred.op,
                    value: pred.value.clone(),
                };
                for block in desc.blocks() {
                    let replicas = self.router.replicas(&block.path)?;
                    let read = self
                        .router
                        .read(&block.path, replicas[0], &self.system_cred, now)?;
                    let parsed = feisu_format::Block::deserialize(&read.data)?;
                    for node in replicas {
                        if let Some(leaf) = self.leaves.get(&node) {
                            leaf.pin_index(&parsed, &storage_pred, now)?;
                            built += 1;
                        }
                    }
                }
            }
        }
        Ok(built)
    }

    /// Access to a node's leaf server (tests and benches).
    pub fn leaf(&self, node: NodeId) -> Option<&LeafServer> {
        self.leaves.get(&node)
    }
}

/// Mutable per-query execution context threaded through the plan walk.
struct ExecCtx {
    cred: Credential,
    now: SimInstant,
    options: QueryOptions,
    stats: QueryStats,
    tally: TimeTally,
    partial: bool,
    /// Span arena for this query's EXPLAIN ANALYZE profile.
    spans: SpanRecorder,
    /// Spans awaiting adoption by the final master span (stems, abandoned
    /// leaf tasks).
    root_spans: Vec<SpanId>,
    /// Bytes served per storage-domain prefix across all scans.
    backend_bytes: BTreeMap<String, u64>,
    /// Executed-task counts per [`crate::leaf::ServedTier`] rendering.
    tier_tasks: BTreeMap<String, usize>,
}

/// The worker pool shares the cluster by reference across threads.
#[allow(dead_code)]
fn _assert_cluster_sync() {
    fn is_sync<T: Sync>() {}
    is_sync::<FeisuCluster>();
}

/// Per-task outcome of the reuse pre-pass: either a cached result, or a
/// signature the executed result must be stored under.
enum Planned {
    Reused { batch: RecordBatch, is_agg: bool },
    Run { signature: String },
}

/// What actually happened to one executed leaf task: where it ran (its
/// assignment, or the backup node) and whether a backup task fired —
/// folded into query stats during the serial merge phase.
struct TaskExec {
    node: NodeId,
    out: LeafOutput,
    backup: bool,
}

/// One leaf task as tracked by `distributed_scan`: its output plus the
/// span bookkeeping needed for partial-result filtering and stem spans.
struct TaskRun {
    /// Completion offset in the owning node's serialized-time account.
    done: SimDuration,
    /// Span extent on the query-relative timeline.
    start_ns: u64,
    end_ns: u64,
    /// This task's own leaf time (zero for reused results).
    total: SimDuration,
    span: SpanId,
    out: LeafOutput,
}

fn scale_tally(t: &TimeTally, f: f64) -> TimeTally {
    let s = |d: SimDuration| SimDuration::nanos((d.as_nanos() as f64 * f) as u64);
    TimeTally {
        io: s(t.io),
        cpu: s(t.cpu),
        network: s(t.network),
    }
}
