//! `FeisuCluster` — the assembled system and its public API.
//!
//! One `FeisuCluster` is a whole simulated deployment: topology, storage
//! domains behind the common storage layer, the master services, and one
//! leaf server (with its SmartIndex cache) per node. Queries run through
//! the paper's pipeline (Fig. 3): client checks → entry guard → job
//! manager (with identical-task reuse) → cost-based planning → dissection
//! into per-block scan tasks → locality-aware scheduling → leaf execution
//! with SmartIndex rewrite → bottom-up merging through stem servers →
//! master finalization. All timing is simulated and deterministic.

use crate::catalog::{Catalog, CatalogView};
use crate::client::QueryHistory;
use crate::leaf::{LeafServer, LeafTaskStats};
use crate::master::assembly::QueryMetrics;
use crate::master::guard::GuardLimits;
use crate::master::scheduler::Policy;
use crate::master::{EntryGuard, JobManager, Scheduler};
use feisu_cluster::heartbeat::HeartbeatTable;
use feisu_cluster::{CostModel, SimClock, Topology};
use feisu_common::config::FeisuConfig;
use feisu_common::hash::{FxHashMap, FxHashSet};
use feisu_common::ids::IdGen;
use feisu_common::{
    ByteSize, FeisuError, NodeId, QueryId, Result, SimDuration, SimInstant, UserId,
};
use feisu_exec::batch::RecordBatch;
use feisu_exec::reorder::{lower_with, LowerOptions};
use feisu_format::{Column, Schema, Value};
use feisu_index::manager::IndexManager;
use feisu_obs::{
    MetricsRegistry, QueryEvent, QueryLog, QueryOutcome, QueryProfile, WindowedMetrics,
};
use feisu_sql::analyze::analyze;
use feisu_sql::optimizer::optimize_with_trace;
use feisu_sql::plan::build_plan;
use feisu_storage::auth::{AuthService, Credential, Grant};
use feisu_storage::fatman::FatmanDomain;
use feisu_storage::hdfs::HdfsDomain;
use feisu_storage::kv::KvDomain;
use feisu_storage::localfs::LocalFsDomain;
use feisu_storage::{BlockCache, CachePin, StorageDomain, StorageRouter, TieredCache};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// Deployment parameters.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    pub datacenters: u32,
    pub racks_per_dc: u32,
    pub nodes_per_rack: u32,
    pub config: FeisuConfig,
    pub cost: CostModel,
    /// Disable to get the paper's "without SmartIndex" baseline.
    pub use_smartindex: bool,
    /// Identical-task result reuse in the job manager.
    pub task_reuse: bool,
    pub scheduling: Policy,
    /// Rows per ingested block.
    pub rows_per_block: usize,
    /// Block-cache pin prefixes (the paper's §IV-B manual preferences,
    /// surviving as admission-filter overrides). Any pin implicitly
    /// enables the cache even when `config.cache.enabled` is false, for
    /// which case the legacy single-tier settings are used.
    pub cache_pins: Vec<String>,
    /// Entry-guard capability limits (quotas, statement size).
    pub guard: GuardLimits,
    pub seed: u64,
}

impl ClusterSpec {
    /// A 4-node single-DC cluster for examples and tests.
    pub fn small() -> ClusterSpec {
        ClusterSpec {
            datacenters: 1,
            racks_per_dc: 2,
            nodes_per_rack: 2,
            config: FeisuConfig::default(),
            cost: CostModel::default(),
            use_smartindex: true,
            task_reuse: true,
            scheduling: Policy::LocalityAware,
            rows_per_block: 4096,
            cache_pins: Vec::new(),
            guard: GuardLimits::default(),
            seed: 0xFE15,
        }
    }

    /// `n` nodes spread over two data centers (evaluation-scale shape).
    pub fn with_nodes(n: u32) -> ClusterSpec {
        let nodes_per_rack = 4u32;
        let racks = n.div_ceil(nodes_per_rack).max(2);
        ClusterSpec {
            datacenters: 2,
            racks_per_dc: racks.div_ceil(2),
            nodes_per_rack,
            ..ClusterSpec::small()
        }
    }

    pub fn node_count(&self) -> u32 {
        self.datacenters * self.racks_per_dc * self.nodes_per_rack
    }
}

/// Per-query execution options (§III-B: "user can optionally configure
/// the processed ratio of total data sets to avoid long-tail influence,
/// or directly limit the total elapse time").
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Fraction of tasks that must complete before returning (≤ 1.0).
    pub processed_ratio: f64,
    /// Hard response-time limit.
    pub time_limit: Option<SimDuration>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            processed_ratio: 1.0,
            time_limit: None,
        }
    }
}

/// Counters for one query.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    pub tasks: usize,
    pub reused_tasks: usize,
    pub backup_tasks: usize,
    pub pruned_blocks: usize,
    pub index_hits: usize,
    pub index_built: usize,
    /// Indices built fresh but rejected by the cache budget (each is also
    /// counted in `index_built`).
    pub index_rejected: usize,
    pub scanned_predicates: usize,
    /// Blocks skipped by footer zone maps before any column decode.
    pub blocks_skipped: usize,
    /// Blocks whose column chunks were actually decoded.
    pub blocks_scanned: usize,
    pub bytes_read: ByteSize,
    /// Simulated result bytes shipped leaf→stem across all scans.
    pub wire_leaf_stem: ByteSize,
    /// Simulated result bytes shipped rack-stem→DC-stem (zero for
    /// two-level merge trees and row scans).
    pub wire_rack_dc: ByteSize,
    /// Simulated result bytes shipped stem→master.
    pub wire_stem_master: ByteSize,
    pub memory_served_tasks: usize,
    /// Results too large for the read-data flow, dumped to global storage
    /// with only the location shipped (§V-C).
    pub spilled_results: usize,
    /// Fraction of tasks whose results made it into the answer.
    pub processed_ratio: f64,
}

impl QueryStats {
    /// Folds another stats record into this one. Counting fields add;
    /// `processed_ratio` combines weighted by each side's task count, so
    /// merging scans of different sizes averages correctly (a zero-task
    /// record leaves the ratio untouched).
    pub fn merge(&mut self, other: &QueryStats) {
        let (a, b) = (self.tasks as f64, other.tasks as f64);
        if a + b > 0.0 {
            self.processed_ratio = (self.processed_ratio * a + other.processed_ratio * b) / (a + b);
        }
        self.tasks += other.tasks;
        self.reused_tasks += other.reused_tasks;
        self.backup_tasks += other.backup_tasks;
        self.pruned_blocks += other.pruned_blocks;
        self.index_hits += other.index_hits;
        self.index_built += other.index_built;
        self.index_rejected += other.index_rejected;
        self.scanned_predicates += other.scanned_predicates;
        self.blocks_skipped += other.blocks_skipped;
        self.blocks_scanned += other.blocks_scanned;
        self.bytes_read += other.bytes_read;
        self.wire_leaf_stem += other.wire_leaf_stem;
        self.wire_rack_dc += other.wire_rack_dc;
        self.wire_stem_master += other.wire_stem_master;
        self.memory_served_tasks += other.memory_served_tasks;
        self.spilled_results += other.spilled_results;
    }

    /// Lifts one leaf task's accounting into query-level stats, ready to
    /// [`merge`](Self::merge) into the running totals.
    pub fn from_leaf(leaf: &LeafTaskStats) -> QueryStats {
        QueryStats {
            index_hits: leaf.index_hits,
            index_built: leaf.index_built,
            index_rejected: leaf.index_rejected,
            scanned_predicates: leaf.scanned_predicates,
            blocks_skipped: leaf.blocks_skipped,
            blocks_scanned: leaf.blocks_scanned,
            bytes_read: leaf.bytes_read,
            pruned_blocks: leaf.pruned_by_zone as usize,
            memory_served_tasks: leaf.served_from_memory as usize,
            ..QueryStats::default()
        }
    }
}

/// A finished query. `PartialEq` compares every field — id, rows,
/// simulated times, stats and the full profile tree — which is how the
/// concurrency suite asserts serial and N-thread runs are bit-identical.
#[derive(Debug, PartialEq)]
pub struct QueryResult {
    pub query_id: QueryId,
    pub batch: RecordBatch,
    pub response_time: SimDuration,
    pub stats: QueryStats,
    /// True when the answer covers only a fraction of the data (time
    /// limit hit with `processed_ratio` satisfied).
    pub partial: bool,
    /// `EXPLAIN ANALYZE`-style execution profile: summary counters plus
    /// the nested master→stem→leaf span tree.
    pub profile: QueryProfile,
}

impl QueryResult {
    /// The query's span tree as a `chrome://tracing` / Perfetto JSON
    /// array (one complete event per span, per-node thread rows).
    pub fn chrome_trace(&self) -> String {
        feisu_obs::chrome_trace(&self.profile)
    }
}

/// The assembled Feisu deployment.
///
/// The whole public surface is `&self`: a `FeisuCluster` is shared by
/// reference across client threads and admits/executes many queries at
/// once. Every piece of mutable state sits behind its own fine-grained
/// lock (see the lock map in DESIGN.md §12); there is no engine-wide
/// mutex, so leaf work from different queries genuinely overlaps.
///
/// Lock-order contract (acquire strictly in this order, release before
/// taking anything later in the list; **no lock is ever held across a
/// leaf-task execution**):
///
/// 1. `guard` user table (admission, entry/exit only)
/// 2. `history` entries (record, entry only)
/// 3. `jobs` job table / reuse cache (short map ops)
/// 4. `catalog` tables (`RwLock`, read-mostly)
/// 5. `heartbeats` (scheduling snapshot)
/// 6. `failed_nodes` / `slow_nodes` (`RwLock`, read-mostly)
/// 7. `resources` (per-task slot acquire/release — released before
///    `LeafServer::execute` runs)
/// 8. leaf-internal locks (`IndexManager`, block-cache shard locks —
///    per-node sharded, a probe only ever holds its own node's shard)
pub struct FeisuCluster {
    pub(crate) spec: ClusterSpec,
    pub(crate) clock: SimClock,
    pub(crate) topology: Arc<Topology>,
    pub(crate) router: Arc<StorageRouter>,
    pub(crate) auth: Arc<AuthService>,
    pub(crate) catalog: Catalog,
    pub(crate) leaves: FxHashMap<NodeId, LeafServer>,
    pub(crate) heartbeats: Mutex<HeartbeatTable>,
    pub(crate) scheduler: Scheduler,
    pub(crate) guard: EntryGuard,
    pub(crate) jobs: JobManager,
    pub(crate) history: QueryHistory,
    pub(crate) failed_nodes: RwLock<FxHashSet<NodeId>>,
    pub(crate) slow_nodes: RwLock<FxHashMap<NodeId, f64>>,
    /// Per-node resource consumption agreements (§V-A): business-critical
    /// load shrinks the slots Feisu may use. Shared across *all* in-flight
    /// queries, so agreements hold under concurrent load.
    pub(crate) resources: Mutex<FxHashMap<NodeId, feisu_cluster::resources::ResourceAgreement>>,
    pub(crate) user_names: Mutex<FxHashMap<String, UserId>>,
    pub(crate) user_ids: IdGen,
    pub(crate) query_ids: IdGen,
    pub(crate) session_ids: IdGen,
    pub(crate) system_cred: Credential,
    pub(crate) metrics: Arc<MetricsRegistry>,
    pub(crate) qmetrics: QueryMetrics,
    /// Always-on bounded query event log (backs `system.queries`).
    pub(crate) query_log: QueryLog,
    /// Sliding-window metric views on the simulated clock (backs the
    /// `window` rows of `system.metrics`).
    pub(crate) windows: WindowedMetrics,
}

const SYSTEM_USER: UserId = UserId(0);

impl FeisuCluster {
    /// Builds a deployment: topology, the four storage domains, auth,
    /// SSD cache, leaf servers.
    pub fn new(spec: ClusterSpec) -> Result<FeisuCluster> {
        spec.config.validate().map_err(FeisuError::Config)?;
        let clock = SimClock::new();
        let metrics = Arc::new(MetricsRegistry::new());
        let topology = Arc::new(Topology::grid(
            spec.datacenters,
            spec.racks_per_dc,
            spec.nodes_per_rack,
        ));
        let cost = spec.cost.clone();
        let local = Arc::new(LocalFsDomain::new(
            feisu_common::DomainId(0),
            "local",
            topology.clone(),
            cost.clone(),
        ));
        let hdfs = Arc::new(HdfsDomain::new(
            feisu_common::DomainId(1),
            "hdfs",
            topology.clone(),
            cost.clone(),
            spec.config.replication_factor,
            spec.seed ^ 0x11,
        ));
        let ffs = Arc::new(FatmanDomain::new(
            feisu_common::DomainId(2),
            "ffs",
            topology.clone(),
            cost.clone(),
            spec.config.replication_factor,
            spec.seed ^ 0x22,
        ));
        let kv = Arc::new(KvDomain::new(
            feisu_common::DomainId(3),
            "kv",
            topology.clone(),
            cost.clone(),
        ));
        let auth = Arc::new(AuthService::new(spec.seed ^ 0xA0A0));
        auth.register(SYSTEM_USER);
        for d in 0..4u64 {
            auth.grant(SYSTEM_USER, feisu_common::DomainId(d), Grant::ReadWrite);
        }
        let system_cred =
            auth.issue(SYSTEM_USER, clock.now(), SimDuration::hours(24 * 365 * 10))?;
        // The cache hierarchy: explicitly enabled via config, or
        // implicitly by configuring pin prefixes (which alone reproduce
        // the paper's manual single-tier behavior).
        let cache_enabled = spec.config.cache.enabled || !spec.cache_pins.is_empty();
        let cache = cache_enabled.then(|| {
            let settings = if spec.config.cache.enabled {
                spec.config.cache.clone()
            } else {
                feisu_common::config::CacheSettings::legacy_single_tier()
            };
            Arc::new(TieredCache::new(
                settings,
                spec.cache_pins
                    .iter()
                    .map(|p| CachePin {
                        path_prefix: p.clone(),
                    })
                    .collect(),
            )) as Arc<dyn BlockCache>
        });
        let domains: Vec<Arc<dyn StorageDomain>> = vec![local, hdfs, ffs, kv];
        let router = Arc::new(StorageRouter::new(
            domains,
            0,
            auth.clone(),
            cache,
            cost.clone(),
        ));
        // Per-domain read/write counters plus the block-cache counters.
        router.attach_metrics(&metrics);
        let mut leaves = FxHashMap::default();
        let mut heartbeats = HeartbeatTable::new(
            spec.config.heartbeat_interval,
            spec.config.heartbeat_miss_limit,
        );
        for n in topology.nodes() {
            heartbeats.register(n.id, clock.now());
            let index = IndexManager::new(spec.config.index_memory_per_leaf, spec.config.index_ttl);
            // Every leaf feeds the same registry: the feisu.index.* counters
            // are cluster-wide totals.
            index.attach_metrics(&metrics);
            leaves.insert(
                n.id,
                LeafServer::new(
                    n.id,
                    index,
                    topology.clone(),
                    cost.clone(),
                    spec.config.zone_maps,
                ),
            );
        }
        heartbeats.attach_metrics(&metrics);
        let mut resources = FxHashMap::default();
        for n in topology.nodes() {
            resources.insert(
                n.id,
                feisu_cluster::resources::ResourceAgreement::new(
                    n.cores * 4, // task slots per node
                    spec.config.resource_agreement_share,
                ),
            );
        }
        let scheduler = Scheduler::new(spec.scheduling);
        let guard = EntryGuard::new(spec.guard.clone());
        guard.attach_metrics(&metrics);
        let jobs = JobManager::new(
            SimDuration::minutes(10),
            if spec.task_reuse { 4096 } else { 0 },
        );
        let user_ids = IdGen::new();
        user_ids.next_u64(); // reserve 0 for the system user
        let session_ids = IdGen::new();
        session_ids.next_u64(); // session ids start at 1 (0 = no session)
        let qmetrics = QueryMetrics::new(&metrics);
        let query_log = QueryLog::new(spec.config.query_log_capacity);
        let windows = WindowedMetrics::new(SimDuration::secs(60));
        Ok(FeisuCluster {
            spec,
            clock,
            topology,
            router,
            auth,
            catalog: Catalog::new(),
            leaves,
            heartbeats: Mutex::new(heartbeats),
            scheduler,
            guard,
            jobs,
            history: QueryHistory::new(),
            failed_nodes: RwLock::new(FxHashSet::default()),
            slow_nodes: RwLock::new(FxHashMap::default()),
            resources: Mutex::new(resources),
            user_names: Mutex::new(FxHashMap::default()),
            user_ids,
            query_ids: IdGen::new(),
            session_ids,
            system_cred,
            metrics,
            qmetrics,
            query_log,
            windows,
        })
    }

    // ------------------------------------------------------------ admin

    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    pub fn now(&self) -> SimInstant {
        self.clock.now()
    }

    /// Advances the simulated clock (inter-query idle time, TTL tests).
    pub fn advance_time(&self, d: SimDuration) {
        self.clock.advance(d);
    }

    pub fn node_count(&self) -> usize {
        self.topology.len()
    }

    pub fn register_user(&self, name: &str) -> UserId {
        let mut names = self.user_names.lock();
        if let Some(&id) = names.get(name) {
            return id;
        }
        let id = UserId(self.user_ids.next_u64());
        self.auth.register(id);
        names.insert(name.to_string(), id);
        id
    }

    /// Grants ReadWrite on every storage domain.
    pub fn grant_all(&self, user: UserId) {
        for d in self.router.domains() {
            self.auth.grant(user, d.id(), Grant::ReadWrite);
        }
    }

    /// Grants on one domain by prefix (`"hdfs"`, `"local"`, …).
    pub fn grant(&self, user: UserId, domain_prefix: &str, level: Grant) -> Result<()> {
        for d in self.router.domains() {
            if d.prefix() == domain_prefix {
                self.auth.grant(user, d.id(), level);
                return Ok(());
            }
        }
        Err(FeisuError::UnknownDomain(domain_prefix.to_string()))
    }

    /// Issues an 8-hour SSO credential.
    pub fn login(&self, user: UserId) -> Result<Credential> {
        self.auth
            .issue(user, self.clock.now(), SimDuration::hours(8))
    }

    pub fn auth(&self) -> &Arc<AuthService> {
        &self.auth
    }

    pub fn router(&self) -> &Arc<StorageRouter> {
        &self.router
    }

    /// The block cache, when one is configured.
    pub fn cache(&self) -> Option<&Arc<dyn BlockCache>> {
        self.router.cache()
    }

    /// Sets (`Some`) or clears (`None`, back to the configured default)
    /// a user's per-node cache byte quota. No-op without a cache.
    pub fn set_user_cache_quota(&self, user: UserId, quota: Option<feisu_common::ByteSize>) {
        if let Some(cache) = self.router.cache() {
            cache.set_user_quota(user, quota);
        }
    }

    /// Sets or clears a table's per-node cache byte quota. No-op without
    /// a cache.
    pub fn set_table_cache_quota(&self, table: &str, quota: Option<feisu_common::ByteSize>) {
        if let Some(cache) = self.router.cache() {
            cache.set_table_quota(table, quota);
        }
    }

    /// The cluster-wide metrics registry (every subsystem feeds it).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The always-on query event log (also queryable via
    /// `SELECT ... FROM system.queries`).
    pub fn query_log(&self) -> &QueryLog {
        &self.query_log
    }

    /// Sliding-window metric views ("QPS and tail latency right now");
    /// window rows also surface in `system.metrics`.
    pub fn windowed_metrics(&self) -> &WindowedMetrics {
        &self.windows
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn history(&self) -> &QueryHistory {
        &self.history
    }

    pub fn jobs(&self) -> &JobManager {
        &self.jobs
    }

    /// The admission guard (inflight/quota introspection).
    pub fn guard(&self) -> &EntryGuard {
        &self.guard
    }

    /// Kills a node: heartbeats stop, its replicas become unavailable.
    /// Safe to call while queries run on other threads — in-flight tasks
    /// on the node fail retryably and reroute as backup tasks.
    pub fn fail_node(&self, node: NodeId) {
        self.failed_nodes.write().insert(node);
        for d in self.router.domains() {
            d.set_node_available(node, false);
        }
    }

    /// Brings a node back.
    pub fn recover_node(&self, node: NodeId) {
        self.failed_nodes.write().remove(&node);
        for d in self.router.domains() {
            d.set_node_available(node, true);
        }
    }

    /// Marks a node as a straggler: its task times are multiplied.
    pub fn slow_node(&self, node: NodeId, factor: f64) {
        self.slow_nodes.write().insert(node, factor.max(1.0));
    }

    /// Reports business-critical load on a node (§V-A resource
    /// agreement): Feisu's usable task slots shrink accordingly, and the
    /// count of Feisu tasks that must be preempted is returned.
    pub fn set_business_load(&self, node: NodeId, slots: u32) -> u32 {
        let mut res = self.resources.lock();
        res.get_mut(&node).map_or(0, |a| a.set_business_load(slots))
    }

    /// Slots Feisu may currently use on a node under its agreement.
    pub fn feisu_slot_limit(&self, node: NodeId) -> u32 {
        self.resources
            .lock()
            .get(&node)
            .map_or(0, |a| a.feisu_limit())
    }

    /// Per-node SmartIndex statistics (summed).
    pub fn index_stats(&self) -> feisu_index::IndexStats {
        let mut total = feisu_index::IndexStats::default();
        for leaf in self.leaves.values() {
            let s = leaf.index().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.inserts += s.inserts;
            total.rejected += s.rejected;
            total.lru_evictions += s.lru_evictions;
            total.ttl_evictions += s.ttl_evictions;
        }
        total
    }

    pub fn reset_index_stats(&self) {
        for leaf in self.leaves.values() {
            leaf.index().reset_stats();
        }
    }

    // ------------------------------------------------------------ tables

    /// Registers a table stored under `location`; requires write grant on
    /// the location's domain.
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        location: &str,
        cred: &Credential,
    ) -> Result<()> {
        self.router.validate_path(location)?;
        let domain = self.router.domain_of(location);
        self.auth
            .authorize(cred, domain.id(), Grant::ReadWrite, self.clock.now())?;
        self.catalog
            .create_table(name, schema, location, self.spec.rows_per_block)
    }

    /// Ingests whole columns.
    pub fn ingest_columns(
        &self,
        table: &str,
        columns: Vec<Column>,
        cred: &Credential,
    ) -> Result<usize> {
        let ids =
            self.catalog
                .ingest(table, columns, &self.router, cred, None, self.clock.now())?;
        Ok(ids.len())
    }

    /// Ingests rows (convenience).
    pub fn ingest_rows(
        &self,
        table: &str,
        rows: Vec<Vec<Value>>,
        cred: &Credential,
    ) -> Result<usize> {
        let ids =
            self.catalog
                .ingest_rows(table, rows, &self.router, cred, None, self.clock.now())?;
        Ok(ids.len())
    }

    /// Ingests rows pinned to one node (log data on its producer).
    pub fn ingest_rows_at(
        &self,
        table: &str,
        rows: Vec<Vec<Value>>,
        node: NodeId,
        cred: &Credential,
    ) -> Result<usize> {
        let ids = self.catalog.ingest_rows(
            table,
            rows,
            &self.router,
            cred,
            Some(node),
            self.clock.now(),
        )?;
        Ok(ids.len())
    }

    // ------------------------------------------------------------ query

    /// Returns the lowered physical plan for a statement without
    /// executing it (EXPLAIN): the same operator tree the pipeline will
    /// interpret, with aggregation-pushdown annotations on distributed
    /// scans.
    pub fn explain(&self, sql: &str, cred: &Credential) -> Result<String> {
        let query = QueryHistory::syntax_check(sql)?;
        for tref in query.all_tables() {
            // Virtual system tables live in no storage domain.
            if crate::system::is_system_table(&tref.name) {
                continue;
            }
            let location = self.catalog.location(&tref.name)?;
            let domain = self.router.domain_of(&location);
            self.auth
                .authorize(cred, domain.id(), Grant::Read, self.clock.now())?;
        }
        let resolved = analyze(&query, &CatalogView(&self.catalog))?;
        let plan = build_plan(&resolved)?;
        let opt = &self.spec.config.optimizer;
        let (logical, rule_trace) = if opt.enabled {
            optimize_with_trace(plan)?
        } else {
            (plan, Vec::new())
        };
        let lower_opts = LowerOptions {
            cost: &self.spec.cost,
            join_reorder: opt.enabled && opt.join_reorder,
            dp_limit: opt.dp_limit,
        };
        let (physical, lower_trace) =
            lower_with(&logical, &CatalogView(&self.catalog), &lower_opts)?;
        let mut out = physical.display_indent();
        // Trailer: which rules rewrote the plan and what each join-order
        // search decided, so EXPLAIN shows the optimizer's work without
        // executing anything. Costs are omitted to keep goldens stable.
        for fire in &rule_trace {
            use std::fmt::Write as _;
            let _ = writeln!(out, "Rule: {} x{}", fire.rule, fire.fires);
        }
        for jo in &lower_trace.join_orders {
            use std::fmt::Write as _;
            let _ = writeln!(
                out,
                "JoinOrder: {} [{}] -> [{}]",
                jo.method,
                jo.syntactic.join(", "),
                jo.chosen.join(", ")
            );
        }
        Ok(out)
    }

    /// Ingests nested JSON documents (paper §III-A: "nested data format
    /// such as json … will be flatten into columns"). The table is
    /// created on first ingest with the union schema of the batch; later
    /// batches must carry the same flattened schema.
    pub fn ingest_json(
        &self,
        table: &str,
        location: &str,
        documents: &[&str],
        cred: &Credential,
    ) -> Result<usize> {
        let parsed: Vec<feisu_format::json::Json> = documents
            .iter()
            .map(|d| feisu_format::json::parse(d))
            .collect::<Result<_>>()?;
        let (schema, columns) = feisu_format::json::documents_to_columns(&parsed)?;
        if self.catalog.schema(table).is_none() {
            self.create_table(table, schema.clone(), location, cred)?;
        } else {
            let existing = self.catalog.schema(table).expect("checked");
            if existing != schema {
                return Err(FeisuError::Analysis(format!(
                    "json batch schema does not match table `{table}`"
                )));
            }
        }
        let ids =
            self.catalog
                .ingest(table, columns, &self.router, cred, None, self.clock.now())?;
        Ok(ids.len())
    }

    /// Runs one SQL query with default options. `&self`: any number of
    /// client threads may query one shared cluster concurrently.
    pub fn query(&self, sql: &str, cred: &Credential) -> Result<QueryResult> {
        self.query_with(sql, cred, &QueryOptions::default())
    }

    /// Runs one SQL query with explicit partial-result options.
    pub fn query_with(
        &self,
        sql: &str,
        cred: &Credential,
        options: &QueryOptions,
    ) -> Result<QueryResult> {
        // Sessionless queries draw from the cluster-wide id generator;
        // use a [`crate::master::QuerySession`] when interleaving-stable
        // query ids matter (concurrent determinism comparisons).
        let query_id = QueryId(self.query_ids.next_u64());
        self.run_query(sql, cred, options, query_id)
    }

    /// The shared admission + execution path behind both the sessionless
    /// API and [`crate::master::QuerySession`].
    pub(crate) fn run_query(
        &self,
        sql: &str,
        cred: &Credential,
        options: &QueryOptions,
        query_id: QueryId,
    ) -> Result<QueryResult> {
        // Admission snapshot: the query's *entire* simulated outcome is
        // computed relative to this instant (the query-local view of
        // simulated time; DESIGN.md §12), never from the live clock.
        let now = self.clock.now();
        self.qmetrics.queries.inc();

        // Client layer: syntax check + history collection. Syntax
        // failures land in the event log but — as before this log
        // existed — not in `feisu.query.errors`, which counts failures
        // of well-formed statements.
        let query = match QueryHistory::syntax_check(sql) {
            Ok(q) => q,
            Err(e) => {
                self.query_log.push(QueryEvent::terminal(
                    query_id.0,
                    cred.user.to_string(),
                    sql.to_string(),
                    QueryOutcome::Failed(e.to_string()),
                    now.as_nanos(),
                ));
                return Err(e);
            }
        };
        self.history.record(cred.user, sql, &query, now);

        // Entry guard: capability protection + quotas. The permit is
        // RAII — errors (or panics) below release the concurrency slot.
        let table_count = query.all_tables().count();
        let _permit = match self.guard.admit(cred.user, sql, table_count, now) {
            Ok(p) => p,
            Err(e) => {
                self.query_log.push(QueryEvent::terminal(
                    query_id.0,
                    cred.user.to_string(),
                    sql.to_string(),
                    QueryOutcome::Rejected(e.to_string()),
                    now.as_nanos(),
                ));
                return Err(e);
            }
        };
        let outcome = self.run_admitted(sql, &query, cred, options, now, query_id);
        if let Err(e) = &outcome {
            self.qmetrics.errors.inc();
            self.query_log.push(QueryEvent::terminal(
                query_id.0,
                cred.user.to_string(),
                sql.to_string(),
                QueryOutcome::Failed(e.to_string()),
                now.as_nanos(),
            ));
        }
        outcome
    }

    // --------------------------------------------------- personalization

    /// Pre-builds *pinned* private indices for a user's most frequent
    /// predicates (client-side history, §III-C) on every replica holder.
    pub fn personalize(&self, user: UserId, top_n: usize) -> Result<usize> {
        let now = self.clock.now();
        let frequent = self
            .history
            .frequent_predicates(user, now, SimDuration::hours(24), top_n);
        let mut built = 0usize;
        for (pred, _) in frequent {
            // Find tables whose schema carries the predicate column.
            for table in self.catalog.table_names() {
                let Some(schema) = self.catalog.schema(&table) else {
                    continue;
                };
                let storage_col = if schema.index_of(&pred.column).is_some() {
                    pred.column.as_str()
                } else {
                    pred.column.rsplit('.').next().unwrap_or(&pred.column)
                };
                if schema.index_of(storage_col).is_none() {
                    continue;
                }
                let desc = self.catalog.table(&table)?;
                let storage_pred = feisu_sql::cnf::SimplePredicate {
                    column: storage_col.to_string(),
                    op: pred.op,
                    value: pred.value.clone(),
                };
                for block in desc.blocks() {
                    let replicas = self.router.replicas(&block.path)?;
                    let read =
                        self.router
                            .read(&block.path, replicas[0], &self.system_cred, now)?;
                    // Index building touches one column; skip decoding the
                    // rest of the block.
                    let parsed =
                        feisu_format::Block::deserialize_columns(&read.data, &[storage_col])?;
                    for node in replicas {
                        if let Some(leaf) = self.leaves.get(&node) {
                            leaf.pin_index(&parsed, &storage_pred, now)?;
                            built += 1;
                        }
                    }
                }
            }
        }
        Ok(built)
    }

    /// Access to a node's leaf server (tests and benches).
    pub fn leaf(&self, node: NodeId) -> Option<&LeafServer> {
        self.leaves.get(&node)
    }
}
