//! Feisu — the engine (paper §III).
//!
//! This crate assembles every substrate into the system the paper
//! describes: a master / stem / leaf execution tree over heterogeneous
//! storage domains, with SmartIndex-accelerated scans at the leaves.
//!
//! The public entry point is [`engine::FeisuCluster`]:
//!
//! ```
//! use feisu_core::engine::{ClusterSpec, FeisuCluster};
//! use feisu_format::{DataType, Field, Schema, Value};
//!
//! let cluster = FeisuCluster::new(ClusterSpec::small()).unwrap();
//! let admin = cluster.register_user("admin");
//! cluster.grant_all(admin);
//! let cred = cluster.login(admin).unwrap();
//!
//! let schema = Schema::new(vec![
//!     Field::new("url", DataType::Utf8, false),
//!     Field::new("clicks", DataType::Int64, false),
//! ]);
//! cluster.create_table("t", schema, "/hdfs/t", &cred).unwrap();
//! cluster
//!     .ingest_rows(
//!         "t",
//!         vec![
//!             vec![Value::from("a.com"), Value::from(3i64)],
//!             vec![Value::from("b.com"), Value::from(9i64)],
//!         ],
//!         &cred,
//!     )
//!     .unwrap();
//!
//! let result = cluster.query("SELECT url FROM t WHERE clicks > 5", &cred).unwrap();
//! assert_eq!(result.batch.rows(), 1);
//! ```

pub mod catalog;
pub mod client;
pub mod engine;
pub mod leaf;
pub mod master;
pub mod stem;
pub mod system;

pub use engine::{ClusterSpec, FeisuCluster, QueryResult, QueryStats};
