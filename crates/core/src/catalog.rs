//! The table catalog and the ingest path.
//!
//! The catalog is the master-side registry mapping table names to their
//! schemas and block descriptors (which carry unified storage paths with
//! domain prefixes, §III-C). Ingest converts row data into the columnar
//! block format — "a light-weight process … monitors the storage for
//! newly generated data and converts the data into Feisu in columnar
//! format when new data arrive" (§III-B) — and registers the resulting
//! blocks with their zone statistics.

use feisu_common::hash::FxHashMap;
use feisu_common::ids::IdGen;
use feisu_common::{BlockId, ByteSize, FeisuError, NodeId, Result, SimInstant};
use feisu_format::table::{BlockDesc, BlockZone, PartitionDesc, TableDesc};
use feisu_format::{Block, Column, Schema, Value};
use feisu_sql::stats::{ColumnStats, NdvSketch, TableStats};
use feisu_storage::auth::Credential;
use feisu_storage::StorageRouter;
use parking_lot::RwLock;
use std::cmp::Ordering;
use std::sync::Arc;

/// Master-side table registry.
pub struct Catalog {
    tables: RwLock<FxHashMap<String, TableEntry>>,
    block_ids: IdGen,
}

struct TableEntry {
    desc: TableDesc,
    /// Unified path prefix the table's blocks are written under.
    location: String,
    /// Rows per block used by the ingest splitter.
    rows_per_block: usize,
    /// Statistics accumulated at ingest, served to cost-based planning.
    stats: TableStatsBuilder,
}

/// Running per-table statistics, folded block by block at ingest.
#[derive(Default)]
struct TableStatsBuilder {
    rows: u64,
    columns: FxHashMap<String, ColumnStatsBuilder>,
}

#[derive(Default)]
struct ColumnStatsBuilder {
    min: Option<Value>,
    max: Option<Value>,
    null_count: u64,
    ndv: NdvSketch,
}

impl TableStatsBuilder {
    fn observe_block(&mut self, schema: &Schema, block: &Block) {
        self.rows += block.rows() as u64;
        for (i, f) in schema.fields().iter().enumerate() {
            let cb = self.columns.entry(f.name.clone()).or_default();
            let stats = block.stats(i);
            merge_bound(&mut cb.min, stats.min, Ordering::Less);
            merge_bound(&mut cb.max, stats.max, Ordering::Greater);
            cb.null_count += stats.null_count as u64;
            let column = block.column(i);
            for r in 0..column.len() {
                cb.ndv.observe(&column.value(r));
            }
        }
    }

    fn snapshot(&self) -> TableStats {
        let mut columns = FxHashMap::default();
        for (name, cb) in &self.columns {
            columns.insert(
                name.clone(),
                ColumnStats {
                    min: cb.min.clone(),
                    max: cb.max.clone(),
                    null_count: cb.null_count,
                    ndv: cb.ndv.estimate(),
                },
            );
        }
        TableStats {
            rows: self.rows,
            columns,
        }
    }
}

/// Folds a block bound into the running bound: `keep_when` is the
/// ordering under which the current value is retained (Less for min).
fn merge_bound(cur: &mut Option<Value>, candidate: Option<Value>, keep_when: Ordering) {
    if let Some(v) = candidate {
        match cur {
            Some(c) if c.total_cmp(&v) == keep_when || c.total_cmp(&v) == Ordering::Equal => {}
            _ => *cur = Some(v),
        }
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    pub fn new() -> Self {
        Catalog {
            tables: RwLock::new(FxHashMap::default()),
            block_ids: IdGen::new(),
        }
    }

    /// Registers a new, empty table stored under `location` (a unified
    /// path like `/hdfs/warehouse/t1`).
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        location: &str,
        rows_per_block: usize,
    ) -> Result<()> {
        if crate::system::is_system_table(name) {
            return Err(FeisuError::Analysis(format!(
                "the `system.` namespace is reserved for virtual tables (`{name}`)"
            )));
        }
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(FeisuError::Analysis(format!(
                "table `{name}` already exists"
            )));
        }
        let mut desc = TableDesc::new(name, schema);
        desc.partitions.push(PartitionDesc {
            name: "p0".into(),
            blocks: Vec::new(),
        });
        tables.insert(
            name.to_string(),
            TableEntry {
                desc,
                location: location.trim_end_matches('/').to_string(),
                rows_per_block: rows_per_block.max(1),
                stats: TableStatsBuilder::default(),
            },
        );
        Ok(())
    }

    pub fn table(&self, name: &str) -> Result<TableDesc> {
        self.tables
            .read()
            .get(name)
            .map(|e| e.desc.clone())
            .ok_or_else(|| FeisuError::Analysis(format!("unknown table `{name}`")))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    pub fn schema(&self, name: &str) -> Option<Schema> {
        self.tables.read().get(name).map(|e| e.desc.schema.clone())
    }

    /// Statistics snapshot for a table: row count plus per-column
    /// min/max/null-count and approximate NDV, maintained at ingest.
    pub fn table_stats(&self, name: &str) -> Option<TableStats> {
        self.tables.read().get(name).map(|e| e.stats.snapshot())
    }

    /// The storage location prefix of a table (for domain authorization).
    pub fn location(&self, name: &str) -> Result<String> {
        self.tables
            .read()
            .get(name)
            .map(|e| e.location.clone())
            .ok_or_else(|| FeisuError::Analysis(format!("unknown table `{name}`")))
    }

    /// Ingests rows into a table: splits into blocks, serializes, writes
    /// through the router, records descriptors with zone stats.
    ///
    /// `near` pins block placement (used to emulate log data that must
    /// stay on its producing node).
    pub fn ingest(
        &self,
        name: &str,
        columns: Vec<Column>,
        router: &StorageRouter,
        cred: &Credential,
        near: Option<NodeId>,
        now: SimInstant,
    ) -> Result<Vec<BlockId>> {
        let (schema, location, rows_per_block) = {
            let tables = self.tables.read();
            let e = tables
                .get(name)
                .ok_or_else(|| FeisuError::Analysis(format!("unknown table `{name}`")))?;
            (e.desc.schema.clone(), e.location.clone(), e.rows_per_block)
        };
        if columns.len() != schema.len() {
            return Err(FeisuError::Execution(format!(
                "ingest into `{name}`: {} columns supplied, schema has {}",
                columns.len(),
                schema.len()
            )));
        }
        let rows = columns.first().map_or(0, |c| c.len());
        for c in &columns {
            if c.len() != rows {
                return Err(FeisuError::Execution("ingest: ragged columns".into()));
            }
        }
        let mut created = Vec::new();
        let mut start = 0usize;
        while start < rows {
            let end = (start + rows_per_block).min(rows);
            let indices: Vec<usize> = (start..end).collect();
            let slice: Vec<Column> = columns.iter().map(|c| c.take(&indices)).collect();
            let id = BlockId(self.block_ids.next_u64());
            let block = Block::new(id, schema.clone(), slice)?;
            let bytes = block.serialize();
            let stored_size = ByteSize(bytes.len() as u64);
            let raw_size = ByteSize(block.footprint() as u64);
            let path = format!("{location}/b{}", id.raw());
            router.write(&path, bytes.into(), near, cred, now)?;
            let zones: Vec<BlockZone> = schema
                .fields()
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let stats = block.stats(i);
                    BlockZone {
                        column: f.name.clone(),
                        min: stats.min,
                        max: stats.max,
                        null_count: stats.null_count,
                    }
                })
                .collect();
            let desc = BlockDesc {
                id,
                path,
                rows: block.rows(),
                stored_size,
                raw_size,
                zones,
            };
            let mut tables = self.tables.write();
            let entry = tables.get_mut(name).expect("table exists");
            entry.stats.observe_block(&schema, &block);
            entry.desc.partitions[0].blocks.push(desc);
            created.push(id);
            start = end;
        }
        Ok(created)
    }

    /// Convenience for row-oriented ingest.
    pub fn ingest_rows(
        &self,
        name: &str,
        rows: Vec<Vec<Value>>,
        router: &StorageRouter,
        cred: &Credential,
        near: Option<NodeId>,
        now: SimInstant,
    ) -> Result<Vec<BlockId>> {
        let schema = self
            .schema(name)
            .ok_or_else(|| FeisuError::Analysis(format!("unknown table `{name}`")))?;
        let mut builders: Vec<feisu_format::ColumnBuilder> = schema
            .fields()
            .iter()
            .map(|f| feisu_format::ColumnBuilder::new(f.data_type))
            .collect();
        for row in rows {
            if row.len() != schema.len() {
                return Err(FeisuError::Execution(format!(
                    "row has {} values for {} fields",
                    row.len(),
                    schema.len()
                )));
            }
            for ((b, v), f) in builders.iter_mut().zip(row).zip(schema.fields()) {
                let compatible = match v.data_type() {
                    None => true, // NULL fits any nullable slot
                    Some(t) if t == f.data_type => true,
                    // Ints widen into float columns at ingest.
                    Some(feisu_format::DataType::Int64)
                        if f.data_type == feisu_format::DataType::Float64 =>
                    {
                        true
                    }
                    _ => false,
                };
                if !compatible {
                    return Err(FeisuError::Execution(format!(
                        "value {v} does not fit column `{}` of type {}",
                        f.name, f.data_type
                    )));
                }
                b.push(v);
            }
        }
        let columns: Vec<Column> = builders.into_iter().map(|b| b.finish()).collect();
        self.ingest(name, columns, router, cred, near, now)
    }
}

/// Adapter exposing the catalog to the SQL analyzer.
pub struct CatalogView<'a>(pub &'a Catalog);

impl feisu_sql::analyze::Catalog for CatalogView<'_> {
    fn table_schema(&self, name: &str) -> Option<Schema> {
        // Virtual system tables shadow nothing: the `system.` namespace
        // is rejected at `create_table`, so checking them first is safe.
        crate::system::system_table_schema(name).or_else(|| self.0.schema(name))
    }

    fn table_stats(&self, name: &str) -> Option<TableStats> {
        self.0.table_stats(name)
    }
}

/// Shared handle.
pub type CatalogRef = Arc<Catalog>;

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_cluster::{CostModel, Topology};
    use feisu_common::{SimDuration, UserId};
    use feisu_format::{DataType, Field};
    use feisu_storage::auth::{AuthService, Grant};
    use feisu_storage::hdfs::HdfsDomain;
    use feisu_storage::localfs::LocalFsDomain;

    fn setup() -> (Catalog, StorageRouter, Credential) {
        let topo = Arc::new(Topology::grid(1, 2, 2));
        let cost = CostModel::default();
        let local = Arc::new(LocalFsDomain::new(
            feisu_common::DomainId(0),
            "local",
            topo.clone(),
            cost.clone(),
        ));
        let hdfs = Arc::new(HdfsDomain::new(
            feisu_common::DomainId(1),
            "hdfs",
            topo,
            cost.clone(),
            2,
            1,
        ));
        let auth = Arc::new(AuthService::new(1));
        auth.register(UserId(1));
        auth.grant(UserId(1), feisu_common::DomainId(0), Grant::ReadWrite);
        auth.grant(UserId(1), feisu_common::DomainId(1), Grant::ReadWrite);
        let cred = auth
            .issue(UserId(1), SimInstant(0), SimDuration::hours(8))
            .unwrap();
        let router = StorageRouter::new(vec![local, hdfs], 0, auth, None, cost);
        (Catalog::new(), router, cred)
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64, false),
            Field::new("b", DataType::Utf8, false),
        ])
    }

    #[test]
    fn create_rejects_duplicates() {
        let (cat, _, _) = setup();
        cat.create_table("t", schema(), "/hdfs/t", 10).unwrap();
        assert!(cat.create_table("t", schema(), "/hdfs/t2", 10).is_err());
        assert_eq!(cat.table_names(), vec!["t".to_string()]);
    }

    #[test]
    fn ingest_splits_into_blocks_with_zones() {
        let (cat, router, cred) = setup();
        cat.create_table("t", schema(), "/hdfs/t", 10).unwrap();
        let rows: Vec<Vec<Value>> = (0..25)
            .map(|i| vec![Value::from(i as i64), Value::from(format!("s{i}"))])
            .collect();
        let ids = cat
            .ingest_rows("t", rows, &router, &cred, None, SimInstant(0))
            .unwrap();
        assert_eq!(ids.len(), 3, "25 rows at 10/block = 3 blocks");
        let desc = cat.table("t").unwrap();
        assert_eq!(desc.rows(), 25);
        let b0 = &desc.partitions[0].blocks[0];
        assert_eq!(b0.rows, 10);
        assert_eq!(b0.zone("a").unwrap().min, Some(Value::Int64(0)));
        assert_eq!(b0.zone("a").unwrap().max, Some(Value::Int64(9)));
        // Blocks are actually in storage.
        assert!(router.exists(&b0.path));
    }

    #[test]
    fn ingest_validates_shape_and_types() {
        let (cat, router, cred) = setup();
        cat.create_table("t", schema(), "/hdfs/t", 10).unwrap();
        // Wrong arity.
        assert!(cat
            .ingest_rows(
                "t",
                vec![vec![Value::from(1i64)]],
                &router,
                &cred,
                None,
                SimInstant(0)
            )
            .is_err());
        // Wrong type.
        assert!(cat
            .ingest_rows(
                "t",
                vec![vec![Value::from("oops"), Value::from("b")]],
                &router,
                &cred,
                None,
                SimInstant(0)
            )
            .is_err());
        // Unknown table.
        assert!(cat
            .ingest_rows("ghost", vec![], &router, &cred, None, SimInstant(0))
            .is_err());
    }

    #[test]
    fn ingest_accumulates_table_stats() {
        let (cat, router, cred) = setup();
        cat.create_table("t", schema(), "/hdfs/t", 10).unwrap();
        assert_eq!(cat.table_stats("t").unwrap().rows, 0);
        // 25 rows across 3 blocks; `a` repeats 0..5, `b` is unique.
        let rows: Vec<Vec<Value>> = (0..25)
            .map(|i| vec![Value::from((i % 5) as i64), Value::from(format!("s{i}"))])
            .collect();
        cat.ingest_rows("t", rows, &router, &cred, None, SimInstant(0))
            .unwrap();
        let stats = cat.table_stats("t").unwrap();
        assert_eq!(stats.rows, 25);
        let a = stats.column("a").unwrap();
        assert_eq!(a.min, Some(Value::Int64(0)));
        assert_eq!(a.max, Some(Value::Int64(4)));
        assert_eq!(a.null_count, 0);
        assert_eq!(a.ndv, 5, "distinct count folds across blocks");
        assert_eq!(stats.column("b").unwrap().ndv, 25);
        assert!(cat.table_stats("ghost").is_none());
    }

    #[test]
    fn catalog_view_serves_analyzer() {
        use feisu_sql::analyze::Catalog as _;
        let (cat, _, _) = setup();
        cat.create_table("t", schema(), "/hdfs/t", 10).unwrap();
        let view = CatalogView(&cat);
        assert!(view.table_schema("t").is_some());
        assert!(view.table_schema("nope").is_none());
    }
}
