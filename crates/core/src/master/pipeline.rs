//! The master's query pipeline driver.
//!
//! Runs one admitted query end to end: access checks, analysis, logical
//! planning, lowering to a [`PhysicalPlan`], then interpretation of the
//! physical operator tree. Only [`PhysicalPlan`] is matched during
//! execution — every distributed decision (aggregation pushdown, CNF
//! split, column renaming) was already made at lowering time.
//!
//! Each physical operator records one span on the query-relative
//! simulated timeline, annotated with its output row count and byte
//! footprint, so `EXPLAIN ANALYZE` shows the operator tree with the
//! distributed scan's stem/leaf spans nested beneath it.

use crate::catalog::CatalogView;
use crate::engine::{FeisuCluster, QueryOptions, QueryResult, QueryStats};
use crate::master::JobState;
use feisu_cluster::heartbeat::LoadStats;
use feisu_cluster::simclock::TimeTally;
use feisu_common::{QueryId, Result, SimInstant};
use feisu_exec::aggregate::AggTable;
use feisu_exec::batch::RecordBatch;
use feisu_exec::physical::PhysicalPlan;
use feisu_exec::reorder::{lower_with, JoinOrderTrace, LowerOptions};
use feisu_obs::{SpanId, SpanRecorder};
use feisu_sql::analyze::analyze;
use feisu_sql::optimizer::{optimize_with_trace, RuleFire};
use feisu_sql::plan::build_plan;
use feisu_storage::auth::{Credential, Grant};
use std::collections::BTreeMap;

impl FeisuCluster {
    pub(crate) fn run_admitted(
        &self,
        sql: &str,
        query: &feisu_sql::ast::Query,
        cred: &Credential,
        options: &QueryOptions,
        now: SimInstant,
        query_id: QueryId,
    ) -> Result<QueryResult> {
        // Access verification: read grant on every touched table's domain.
        // Virtual system tables live in no storage domain; any admitted
        // user may introspect the cluster through them.
        for tref in query.all_tables() {
            if crate::system::is_system_table(&tref.name) {
                continue;
            }
            let location = self.catalog.location(&tref.name)?;
            let domain = self.router.domain_of(&location);
            self.auth.authorize(cred, domain.id(), Grant::Read, now)?;
        }

        // Analyze, plan, optimize, lower. After this point execution never
        // looks at the logical plan again. Both the rule pipeline and the
        // join-order search honor the config kill-switches; results are
        // identical either way (only the work to produce them differs).
        let opt = &self.spec.config.optimizer;
        let resolved = analyze(query, &CatalogView(&self.catalog))?;
        let plan = build_plan(&resolved)?;
        let (logical, rule_trace) = if opt.enabled {
            optimize_with_trace(plan)?
        } else {
            (plan, Vec::new())
        };
        let lower_opts = LowerOptions {
            cost: &self.spec.cost,
            join_reorder: opt.enabled && opt.join_reorder,
            dp_limit: opt.dp_limit,
        };
        let (physical, lower_trace) =
            lower_with(&logical, &CatalogView(&self.catalog), &lower_opts)?;

        // Beat the heartbeat table for all live nodes.
        self.tick_heartbeats(now);

        let total_blocks: usize = resolved
            .tables
            .iter()
            .map(|t| {
                self.catalog
                    .table(&t.table)
                    .map(|d| d.block_count())
                    .unwrap_or(0)
            })
            .sum();
        let job = self
            .jobs
            .create_job(query_id, cred.user, sql, total_blocks, now);
        self.jobs.set_state(job, JobState::Running);

        let mut ctx = ExecCtx {
            query_id,
            cred: cred.clone(),
            sql: sql.to_string(),
            now,
            options: options.clone(),
            stats: QueryStats::default(),
            tally: TimeTally::new(),
            partial: false,
            spans: SpanRecorder::new(),
            root_spans: Vec::new(),
            backend_bytes: BTreeMap::new(),
            tier_tasks: BTreeMap::new(),
            wire_leaf_stem: 0,
            wire_rack_dc: 0,
            wire_stem_master: 0,
            rule_trace,
            join_orders: lower_trace.join_orders,
        };
        // Master overhead: parsing/planning/dispatch RPC.
        ctx.tally.add_cpu(self.spec.cost.rpc_overhead);

        let result = self.exec_physical(&physical, &mut ctx, None);
        match &result {
            Ok(_) => self.jobs.set_state(
                job,
                if ctx.partial {
                    JobState::Abandoned
                } else {
                    JobState::Succeeded
                },
            ),
            Err(_) => self.jobs.set_state(job, JobState::Failed),
        }
        self.jobs.note_reused(job, ctx.stats.reused_tasks);
        let batch = result?;
        self.assemble_result(query_id, batch, ctx)
    }

    pub(crate) fn tick_heartbeats(&self, now: SimInstant) {
        // Lock order: failed_nodes (read) is sampled before the heartbeat
        // table is locked; both are released before any leaf work.
        let failed = self.failed_nodes.read().clone();
        let mut hb = self.heartbeats.lock();
        for n in self.topology.nodes() {
            if !failed.contains(&n.id) {
                hb.beat(n.id, now, LoadStats::default());
            }
        }
    }

    // ------------------------------------------- physical-operator walk

    /// Executes one physical operator, wrapped in its profile span. The
    /// span covers the operator and everything beneath it on the
    /// simulated timeline; root operators are adopted by the final
    /// `master` span when the profile is assembled.
    pub(crate) fn exec_physical(
        &self,
        plan: &PhysicalPlan,
        ctx: &mut ExecCtx,
        parent: Option<SpanId>,
    ) -> Result<RecordBatch> {
        let span = ctx.spans.start(
            plan.name(),
            parent,
            SimInstant(ctx.tally.total().as_nanos()),
        );
        if parent.is_none() {
            ctx.root_spans.push(span);
        }
        let batch = self.exec_operator(plan, ctx, span)?;
        ctx.spans.attr(span, "rows", batch.rows());
        ctx.spans.attr(span, "bytes", batch.footprint());
        ctx.spans
            .end(span, SimInstant(ctx.tally.total().as_nanos()));
        Ok(batch)
    }

    fn exec_operator(
        &self,
        plan: &PhysicalPlan,
        ctx: &mut ExecCtx,
        span: SpanId,
    ) -> Result<RecordBatch> {
        match plan {
            PhysicalPlan::DistributedScan { table, .. }
                if crate::system::is_system_table(table) =>
            {
                self.system_scan(plan, ctx, span)
            }
            PhysicalPlan::DistributedScan { .. } => self.distributed_scan(plan, ctx, span),
            PhysicalPlan::FinalAggregate {
                input,
                group_by,
                aggregates,
                output_schema,
            } => {
                // The scan below produced partial-aggregate transports,
                // already merged bottom-up through the stems; finalize.
                let merged = self.exec_physical(input, ctx, Some(span))?;
                let table =
                    AggTable::from_transport(group_by.clone(), aggregates.clone(), &merged)?;
                ctx.tally
                    .add_cpu(plan.master_cpu_cost(&self.spec.cost, &[merged.rows()]));
                table.finish(output_schema)
            }
            PhysicalPlan::HashAggregate {
                input,
                group_by,
                aggregates,
                output_schema,
            } => {
                let batch = self.exec_physical(input, ctx, Some(span))?;
                let mut agg = AggTable::new(group_by.clone(), aggregates.clone());
                agg.update(&batch)?;
                ctx.tally
                    .add_cpu(plan.master_cpu_cost(&self.spec.cost, &[batch.rows()]));
                agg.finish(output_schema)
            }
            PhysicalPlan::Filter { input, predicate } => {
                let batch = self.exec_physical(input, ctx, Some(span))?;
                ctx.tally
                    .add_cpu(plan.master_cpu_cost(&self.spec.cost, &[batch.rows()]));
                feisu_exec::ops::filter(&batch, predicate)
            }
            PhysicalPlan::Project {
                input,
                exprs,
                output_schema,
            } => {
                let batch = self.exec_physical(input, ctx, Some(span))?;
                ctx.tally
                    .add_cpu(plan.master_cpu_cost(&self.spec.cost, &[batch.rows()]));
                feisu_exec::ops::project(&batch, exprs, output_schema)
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                kind,
                on,
                output_schema,
            } => {
                let l = self.exec_physical(left, ctx, Some(span))?;
                let r = self.exec_physical(right, ctx, Some(span))?;
                ctx.tally
                    .add_cpu(plan.master_cpu_cost(&self.spec.cost, &[l.rows(), r.rows()]));
                feisu_exec::join::join(&l, &r, *kind, on, output_schema)
            }
            PhysicalPlan::Sort { input, keys, fetch } => {
                let batch = self.exec_physical(input, ctx, Some(span))?;
                ctx.tally
                    .add_cpu(plan.master_cpu_cost(&self.spec.cost, &[batch.rows()]));
                feisu_exec::sort::sort(&batch, keys, *fetch)
            }
            PhysicalPlan::Limit { input, fetch } => {
                let batch = self.exec_physical(input, ctx, Some(span))?;
                feisu_exec::ops::limit(&batch, *fetch)
            }
            // A pruned-empty relation: zero rows, zero leaf tasks, zero
            // billed time.
            PhysicalPlan::Empty { output_schema } => Ok(RecordBatch::empty(output_schema.clone())),
        }
    }
}

/// Mutable per-query execution context threaded through the physical
/// operator walk.
pub(crate) struct ExecCtx {
    pub(crate) query_id: QueryId,
    pub(crate) cred: Credential,
    /// Original statement text (recorded in the query event log).
    pub(crate) sql: String,
    pub(crate) now: SimInstant,
    pub(crate) options: QueryOptions,
    pub(crate) stats: QueryStats,
    pub(crate) tally: TimeTally,
    pub(crate) partial: bool,
    /// Span arena for this query's EXPLAIN ANALYZE profile.
    pub(crate) spans: SpanRecorder,
    /// Root physical-operator spans (and anything else awaiting adoption
    /// by the final master span).
    pub(crate) root_spans: Vec<SpanId>,
    /// Bytes served per storage-domain prefix across all scans.
    pub(crate) backend_bytes: BTreeMap<String, u64>,
    /// Executed-task counts per [`crate::leaf::ServedTier`] rendering.
    pub(crate) tier_tasks: BTreeMap<String, usize>,
    /// Simulated result bytes shipped leaf→stem across all scans.
    pub(crate) wire_leaf_stem: u64,
    /// Simulated result bytes shipped rack-stem→DC-stem across all scans
    /// (zero for two-level trees and row scans).
    pub(crate) wire_rack_dc: u64,
    /// Simulated result bytes shipped stem→master across all scans.
    pub(crate) wire_stem_master: u64,
    /// Optimizer rules that changed the plan, with per-rule fire counts.
    pub(crate) rule_trace: Vec<RuleFire>,
    /// Join-order decisions made by cost-based lowering.
    pub(crate) join_orders: Vec<JoinOrderTrace>,
}
