//! The job manager (paper §III-C).
//!
//! "Job manager maintains the running information of user query jobs…
//! Before the new job is put into a candidate job queue, job manager
//! tries to reuse other running job's task result if tasks are
//! identical." Identical = same block, same predicate CNF, same
//! projection, same aggregation stage — captured in a task signature.
//! The result cache holds recent task outputs for a short window (the
//! overlap window of concurrently running / back-to-back jobs).

use feisu_common::hash::FxHashMap;
use feisu_common::ids::IdGen;
use feisu_common::{JobId, QueryId, SimDuration, SimInstant, UserId};
use feisu_exec::batch::RecordBatch;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Succeeded,
    Failed,
    /// Returned partial results after hitting its time limit (§III-B).
    Abandoned,
}

/// Bookkeeping record for one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    pub job: JobId,
    pub query: QueryId,
    pub user: UserId,
    pub sql: String,
    pub state: JobState,
    pub submitted_at: SimInstant,
    pub tasks_total: usize,
    pub tasks_reused: usize,
}

/// A cached task result.
#[derive(Debug, Clone)]
struct CachedResult {
    batch: RecordBatch,
    is_agg_transport: bool,
    stored_at: SimInstant,
}

/// The job manager: job table + identical-task result cache.
pub struct JobManager {
    job_ids: IdGen,
    jobs: Mutex<FxHashMap<JobId, JobRecord>>,
    cache: Mutex<TaskResultCache>,
}

struct TaskResultCache {
    ttl: SimDuration,
    capacity: usize,
    entries: FxHashMap<String, CachedResult>,
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
}

impl JobManager {
    /// `reuse_ttl` bounds how stale a reused task result may be;
    /// `reuse_capacity` bounds cache entries (0 disables reuse).
    pub fn new(reuse_ttl: SimDuration, reuse_capacity: usize) -> Self {
        JobManager {
            job_ids: IdGen::new(),
            jobs: Mutex::new(FxHashMap::default()),
            cache: Mutex::new(TaskResultCache {
                ttl: reuse_ttl,
                capacity: reuse_capacity,
                entries: FxHashMap::default(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
        }
    }

    /// Creates a job record in `Queued` state.
    pub fn create_job(
        &self,
        query: QueryId,
        user: UserId,
        sql: &str,
        tasks_total: usize,
        now: SimInstant,
    ) -> JobId {
        let job = JobId(self.job_ids.next_u64());
        self.jobs.lock().insert(
            job,
            JobRecord {
                job,
                query,
                user,
                sql: sql.to_string(),
                state: JobState::Queued,
                submitted_at: now,
                tasks_total,
                tasks_reused: 0,
            },
        );
        job
    }

    pub fn set_state(&self, job: JobId, state: JobState) {
        if let Some(rec) = self.jobs.lock().get_mut(&job) {
            rec.state = state;
        }
    }

    pub fn note_reused(&self, job: JobId, n: usize) {
        if let Some(rec) = self.jobs.lock().get_mut(&job) {
            rec.tasks_reused += n;
        }
    }

    pub fn job(&self, job: JobId) -> Option<JobRecord> {
        self.jobs.lock().get(&job).cloned()
    }

    pub fn jobs_of(&self, user: UserId) -> Vec<JobRecord> {
        let mut v: Vec<JobRecord> = self
            .jobs
            .lock()
            .values()
            .filter(|r| r.user == user)
            .cloned()
            .collect();
        v.sort_by_key(|r| r.job);
        v
    }

    /// Tries to reuse a previous identical task's result.
    pub fn lookup_task(&self, signature: &str, now: SimInstant) -> Option<(RecordBatch, bool)> {
        let mut cache = self.cache.lock();
        let fresh = match cache.entries.get(signature) {
            Some(c) => now.since(c.stored_at) <= cache.ttl,
            None => false,
        };
        if fresh {
            cache.hits += 1;
            let c = &cache.entries[signature];
            Some((c.batch.clone(), c.is_agg_transport))
        } else {
            cache.entries.remove(signature);
            cache.misses += 1;
            None
        }
    }

    /// Stores a finished task's result for reuse by identical tasks.
    ///
    /// Duplicate in-flight signatures: under the parallel executor all
    /// stores for one scan are applied during the serial merge phase, in
    /// task submission order, so a signature stored twice resolves
    /// last-writer-wins — exactly what serial execution would produce.
    /// (Within a single scan signatures are distinct anyway: each task
    /// covers its own block and the block id is part of the signature.)
    /// A re-store pushes a second order entry; eviction tolerates the
    /// stale one because popping a signature that is no longer cached is
    /// a no-op.
    pub fn store_task(
        &self,
        signature: String,
        batch: RecordBatch,
        is_agg_transport: bool,
        now: SimInstant,
    ) {
        let mut cache = self.cache.lock();
        if cache.capacity == 0 {
            return;
        }
        while cache.entries.len() >= cache.capacity {
            match cache.order.pop_front() {
                Some(old) => {
                    cache.entries.remove(&old);
                }
                None => break,
            }
        }
        cache.order.push_back(signature.clone());
        cache.entries.insert(
            signature,
            CachedResult {
                batch,
                is_agg_transport,
                stored_at: now,
            },
        );
    }

    /// (hits, misses) of the reuse cache.
    pub fn reuse_stats(&self) -> (u64, u64) {
        let c = self.cache.lock();
        (c.hits, c.misses)
    }
}

/// Builds the canonical signature for a scan task.
pub fn task_signature(
    table: &str,
    block: feisu_common::BlockId,
    cnf_display: &str,
    projection: &[String],
    agg_display: &str,
) -> String {
    format!(
        "{table}\u{1}{block}\u{1}{cnf_display}\u{1}{}\u{1}{agg_display}",
        projection.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_common::BlockId;
    use feisu_format::{Column, DataType, Field, Schema};

    fn batch() -> RecordBatch {
        RecordBatch::new(
            Schema::new(vec![Field::new("x", DataType::Int64, false)]),
            vec![Column::from_i64(vec![1, 2, 3])],
        )
        .unwrap()
    }

    #[test]
    fn job_lifecycle() {
        let jm = JobManager::new(SimDuration::minutes(5), 16);
        let job = jm.create_job(QueryId(1), UserId(1), "SELECT 1 FROM t", 4, SimInstant(0));
        assert_eq!(jm.job(job).unwrap().state, JobState::Queued);
        jm.set_state(job, JobState::Running);
        jm.note_reused(job, 2);
        jm.set_state(job, JobState::Succeeded);
        let rec = jm.job(job).unwrap();
        assert_eq!(rec.state, JobState::Succeeded);
        assert_eq!(rec.tasks_reused, 2);
        assert_eq!(jm.jobs_of(UserId(1)).len(), 1);
        assert!(jm.jobs_of(UserId(9)).is_empty());
    }

    #[test]
    fn task_reuse_within_ttl() {
        let jm = JobManager::new(SimDuration::minutes(5), 16);
        let sig = task_signature("t", BlockId(1), "(c>1)", &["a".into()], "");
        assert!(jm.lookup_task(&sig, SimInstant(0)).is_none());
        jm.store_task(sig.clone(), batch(), false, SimInstant(0));
        let hit = jm.lookup_task(&sig, SimInstant(0)).unwrap();
        assert_eq!(hit.0.rows(), 3);
        // Expired after TTL.
        let late = SimInstant::EPOCH + SimDuration::minutes(6);
        assert!(jm.lookup_task(&sig, late).is_none());
        assert_eq!(jm.reuse_stats(), (1, 2));
    }

    #[test]
    fn distinct_signatures_do_not_collide() {
        let a = task_signature("t", BlockId(1), "(c>1)", &["a".into()], "");
        let b = task_signature("t", BlockId(2), "(c>1)", &["a".into()], "");
        let c = task_signature("t", BlockId(1), "(c>2)", &["a".into()], "");
        let d = task_signature("t", BlockId(1), "(c>1)", &["b".into()], "");
        let set: std::collections::HashSet<_> = [a, b, c, d].into_iter().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let jm = JobManager::new(SimDuration::hours(1), 2);
        for i in 0..3u64 {
            jm.store_task(format!("sig{i}"), batch(), false, SimInstant(0));
        }
        assert!(jm.lookup_task("sig0", SimInstant(0)).is_none());
        assert!(jm.lookup_task("sig2", SimInstant(0)).is_some());
    }

    #[test]
    fn zero_capacity_disables_reuse() {
        let jm = JobManager::new(SimDuration::hours(1), 0);
        jm.store_task("sig".into(), batch(), false, SimInstant(0));
        assert!(jm.lookup_task("sig", SimInstant(0)).is_none());
    }
}
