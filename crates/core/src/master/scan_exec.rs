//! Distributed-scan execution: dissection into per-block leaf tasks,
//! identical-task reuse, the deterministic parallel leaf-task pool,
//! partial-result handling, and bottom-up merging through stem servers.
//!
//! The scan arrives as a fully-lowered
//! [`PhysicalPlan::DistributedScan`] node — CNF split, residual clauses
//! and the canonical→storage name map were all computed at plan time —
//! so this module only dissects, schedules, executes and merges.
//!
//! Determinism invariant (PR 2): execution runs in three phases. Phase 1
//! (serial) resolves identical-task reuse in submission order; phase 2
//! (parallel) runs leaf tasks grouped by assigned node, all simulated
//! time coming from per-node tallies, never wall clock; phase 3 (serial)
//! merges results, stats and spans in submission order. Results are
//! bit-identical at any worker-thread count.

use crate::engine::{FeisuCluster, QueryStats};
use crate::leaf::{AggStage, LeafOutput, LeafTaskStats, ScanTask};
use crate::master::job_manager::task_signature;
use crate::master::pipeline::ExecCtx;
use feisu_cluster::simclock::TimeTally;
use feisu_common::hash::FxHashMap;
use feisu_common::{ByteSize, FeisuError, NodeId, Result, SimDuration, SimInstant};
use feisu_exec::aggregate::AggTable;
use feisu_exec::batch::RecordBatch;
use feisu_exec::physical::PhysicalPlan;
use feisu_obs::SpanId;
use feisu_storage::auth::Credential;
use std::sync::atomic::{AtomicUsize, Ordering};

impl FeisuCluster {
    /// Executes one `DistributedScan` operator. `op_span` is the scan's
    /// operator span; stem spans (and abandoned leaf-task spans) hang off
    /// it so the profile shows the merge tree under the operator.
    pub(crate) fn distributed_scan(
        &self,
        scan: &PhysicalPlan,
        ctx: &mut ExecCtx,
        op_span: SpanId,
    ) -> Result<RecordBatch> {
        let PhysicalPlan::DistributedScan {
            table,
            projection,
            cnf,
            residual,
            agg_stage: agg,
            name_map,
            output_schema,
            ..
        } = scan
        else {
            return Err(FeisuError::Internal(
                "distributed_scan called on a non-scan operator".into(),
            ));
        };
        let desc = self.catalog.table(table)?;

        // One task per block.
        let blocks: Vec<_> = desc.blocks().cloned().collect();
        let agg_shape: Option<&AggStage> = agg.as_ref();
        let mut tasks: Vec<ScanTask> = Vec::with_capacity(blocks.len());
        let mut replica_sets: Vec<Vec<NodeId>> = Vec::with_capacity(blocks.len());
        for block in blocks {
            replica_sets.push(self.router.replicas(&block.path)?);
            tasks.push(ScanTask {
                table: table.to_string(),
                block,
                projection: projection.to_vec(),
                output_schema: output_schema.clone(),
                cnf: cnf.clone(),
                residual: residual.clone(),
                agg: agg.clone(),
                name_map: name_map.clone(),
            });
        }
        ctx.stats.tasks += tasks.len();
        if tasks.is_empty() {
            // Empty table: aggregate stages still need a zero-state.
            if let Some(stage) = agg_shape {
                let t = AggTable::new(stage.group_by.clone(), stage.aggregates.clone());
                return t.to_transport();
            }
            return Ok(RecordBatch::empty(output_schema.clone()));
        }

        // Schedule.
        let assignments = {
            let hb = self.heartbeats.lock();
            self.scheduler
                .assign_all(&replica_sets, &self.topology, &hb, ctx.now)?
        };

        // Execute, tracking per-node serialized time.
        // The signature must cover the FULL predicate — indexable clauses
        // AND residual ones — or queries differing only in a residual
        // clause would wrongly share cached task results.
        let cnf_display = cnf
            .clauses
            .iter()
            .map(|c| c.to_expr().to_string())
            .chain(residual.iter().map(|e| e.to_string()))
            .collect::<Vec<_>>()
            .join("&");
        let agg_display = agg_shape
            .map(|s| {
                s.aggregates
                    .iter()
                    .map(|a| a.name.clone())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .unwrap_or_default();
        // Spans sit on the query-relative timeline; leaf work of this scan
        // starts after everything the master has already accounted.
        let scan_base = ctx.tally.total().as_nanos();

        // --- Phase 1 (serial): task-reuse lookups, in submission order.
        // Within one scan every task covers a distinct block, so no two
        // tasks share a signature — looking all of them up before any
        // store is equivalent to the serial interleaving.
        let mut planned: Vec<Planned> = Vec::with_capacity(tasks.len());
        for task in &tasks {
            let signature =
                task_signature(table, task.block.id, &cnf_display, projection, &agg_display);
            match self.jobs.lookup_task(&signature, ctx.now) {
                // Reuse is a master-side cache hit: negligible leaf time.
                Some((batch, is_agg)) => planned.push(Planned::Reused { batch, is_agg }),
                None => planned.push(Planned::Run { signature }),
            }
        }

        // --- Phase 2 (parallel): run the leaf tasks. Tasks assigned to
        // the same node are serialized in submission order on one worker,
        // so each leaf's SmartIndex cache sees exactly the state sequence
        // it would under serial execution; everything order-sensitive on
        // the master side is deferred to the serial merge below. All
        // simulated time comes from per-node tallies, never wall clock, so
        // results are bit-identical at any thread count.
        let run_order: Vec<usize> = planned
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, Planned::Run { .. }))
            .map(|(i, _)| i)
            .collect();
        let threads = self.effective_threads().min(run_order.len().max(1));
        let mut results: Vec<Option<Result<TaskExec>>> = (0..tasks.len()).map(|_| None).collect();
        if threads <= 1 {
            for &i in &run_order {
                results[i] =
                    Some(self.execute_with_backup(&tasks[i], assignments[i], &ctx.cred, ctx.now));
            }
        } else {
            // Group run-indices by assigned node, preserving submission
            // order within each group.
            let mut groups: Vec<Vec<usize>> = Vec::new();
            let mut group_of: FxHashMap<NodeId, usize> = FxHashMap::default();
            for &i in &run_order {
                let g = *group_of.entry(assignments[i].node).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[g].push(i);
            }
            let this: &FeisuCluster = self;
            let cred = &ctx.cred;
            let now = ctx.now;
            let next = AtomicUsize::new(0);
            let workers = threads.min(groups.len());
            let chunks: Vec<Vec<(usize, Result<TaskExec>)>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let (next, groups, tasks, assignments) =
                            (&next, &groups, &tasks, &assignments);
                        s.spawn(move || {
                            let mut done = Vec::new();
                            loop {
                                let g = next.fetch_add(1, Ordering::Relaxed);
                                let Some(group) = groups.get(g) else { break };
                                for &i in group {
                                    done.push((
                                        i,
                                        this.execute_with_backup(
                                            &tasks[i],
                                            assignments[i],
                                            cred,
                                            now,
                                        ),
                                    ));
                                }
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("executor worker panicked"))
                    .collect()
            });
            for chunk in chunks {
                for (i, r) in chunk {
                    results[i] = Some(r);
                }
            }
        }

        // --- Phase 3 (serial): merge per-task results in submission
        // order. Stats folding, task-result stores, node-time accounting
        // and span recording all happen here so their order — and thus the
        // simulated outcome — is independent of worker scheduling. Errors
        // surface as the first failing task by submission order (serial
        // mode stops there; parallel mode has already run the rest, which
        // only warms caches).
        let mut node_time: FxHashMap<NodeId, SimDuration> = FxHashMap::default();
        let mut outputs: Vec<TaskRun> = Vec::new();
        for (i, plan) in planned.into_iter().enumerate() {
            let signature = match plan {
                Planned::Reused { batch, is_agg } => {
                    ctx.stats.reused_tasks += 1;
                    let out = LeafOutput {
                        batch,
                        is_agg_transport: is_agg,
                        tally: TimeTally::new(),
                        stats: LeafTaskStats::default(),
                    };
                    let done = *node_time.entry(assignments[i].node).or_default();
                    let at = SimInstant(scan_base + done.as_nanos());
                    let span = ctx.spans.record("leaf_task", None, at, at);
                    ctx.spans
                        .attr(span, "node", assignments[i].node.to_string());
                    ctx.spans.attr(span, "reused", 1u64);
                    outputs.push(TaskRun {
                        done,
                        start_ns: at.as_nanos(),
                        end_ns: at.as_nanos(),
                        span,
                        node: assignments[i].node,
                        out,
                    });
                    continue;
                }
                Planned::Run { signature } => signature,
            };
            let exec = results[i].take().expect("task was executed")?;
            let TaskExec {
                node,
                out: output,
                backup,
            } = exec;
            if backup {
                ctx.stats.backup_tasks += 1;
            }
            ctx.stats.merge(&QueryStats::from_leaf(&output.stats));
            self.jobs.store_task(
                signature,
                output.batch.clone(),
                output.is_agg_transport,
                ctx.now,
            );
            let t = node_time.entry(node).or_default();
            *t += output.tally.total();
            let done = *t;
            let total = output.tally.total();
            let start_ns = scan_base + done.as_nanos() - total.as_nanos();
            let end_ns = scan_base + done.as_nanos();
            let span =
                ctx.spans
                    .record("leaf_task", None, SimInstant(start_ns), SimInstant(end_ns));
            ctx.spans.attr(span, "node", node.to_string());
            ctx.spans.attr(span, "rows", output.batch.rows());
            ctx.spans.attr(span, "bytes_read", output.stats.bytes_read);
            if output.stats.index_hits > 0 {
                ctx.spans.attr(span, "index_hits", output.stats.index_hits);
            }
            if output.stats.index_built > 0 {
                ctx.spans
                    .attr(span, "index_built", output.stats.index_built);
            }
            if output.stats.index_rejected > 0 {
                ctx.spans
                    .attr(span, "index_rejected", output.stats.index_rejected);
            }
            if output.stats.pruned_by_zone {
                ctx.spans.attr(span, "pruned_by_zone", 1u64);
            }
            if output.stats.blocks_skipped > 0 {
                ctx.spans
                    .attr(span, "blocks_skipped", output.stats.blocks_skipped);
            }
            ctx.spans
                .attr(span, "tier", output.stats.served_tier.to_string());
            *ctx.tier_tasks
                .entry(output.stats.served_tier.to_string())
                .or_default() += 1;
            if let Some(backend) = output.stats.backend {
                if let Some(d) = self.router.domains().iter().find(|d| d.id() == backend) {
                    let prefix = d.prefix().to_string();
                    ctx.spans.attr(span, "backend", prefix.as_str());
                    *ctx.backend_bytes.entry(prefix).or_default() += output.stats.bytes_read.0;
                }
            }
            outputs.push(TaskRun {
                done,
                start_ns,
                end_ns,
                span,
                node,
                out: output,
            });
        }

        // Partial-result handling: tasks finishing after the limit are
        // abandoned if the processed ratio is already satisfied. The final
        // `QueryStats::processed_ratio` is derived from the spans at the end
        // of the query, so abandoned tasks only need their marker here.
        let total_tasks = outputs.len();
        let mut kept: Vec<TaskRun> = Vec::with_capacity(total_tasks);
        let mut abandoned = 0usize;
        if let Some(limit) = ctx.options.time_limit {
            for run in outputs {
                if run.done <= limit {
                    kept.push(run);
                } else {
                    abandoned += 1;
                    ctx.spans.attr(run.span, "abandoned", 1u64);
                    ctx.spans.set_parent(run.span, Some(op_span));
                }
            }
            let achieved = kept.len() as f64 / total_tasks as f64;
            if abandoned > 0 {
                if achieved + 1e-12 < ctx.options.processed_ratio {
                    return Err(FeisuError::Deadline(format!(
                        "only {:.0}% of tasks finished within {limit}, {:.0}% required",
                        achieved * 100.0,
                        ctx.options.processed_ratio * 100.0
                    )));
                }
                ctx.partial = true;
            }
        } else {
            kept = outputs;
        }
        if kept.is_empty() {
            if let Some(stage) = agg_shape {
                let t = AggTable::new(stage.group_by.clone(), stage.aggregates.clone());
                return t.to_transport();
            }
            return Ok(RecordBatch::empty(output_schema.clone()));
        }

        // Critical path: slowest node. When partial results were
        // returned, tasks past the limit were abandoned, so the leaf wave
        // ends exactly at the straggler limit — no node runs longer.
        let mut critical = node_time
            .values()
            .copied()
            .fold(SimDuration::ZERO, |a, b| a.max(b));
        if let Some(limit) = ctx.options.time_limit {
            if ctx.partial {
                critical = limit;
            }
        }
        let mut scan_tally = TimeTally::new();
        scan_tally.add_io(critical); // critical path of leaf work

        // Merge bottom-up through the topology-derived stem tree (see
        // `merge_tree`): per-level wire accounting, stem spans and the
        // repartition exchange for grouped aggregates all live there.
        let agg_ref = agg_shape.map(|s| (s.group_by.as_slice(), s.aggregates.as_slice()));
        let root = self.merge_scan_results(kept, agg_ref, ctx, op_span)?;
        // The stem/master merge happens after the slowest leaf: charge its
        // cpu+network on top of the leaf critical path.
        scan_tally.add_cpu(root.tally.cpu);
        scan_tally.add_network(root.tally.network);
        ctx.tally = ctx.tally.then(&scan_tally);

        // §V-C read-data flow: an oversized result is dumped to global
        // storage and only its location travels to the master, which
        // fetches it through the bulk path.
        let payload = ByteSize(root.batch.footprint() as u64);
        if payload > self.spec.config.result_spill_threshold {
            ctx.stats.spilled_results += 1;
            // Keyed by query id: concurrent queries admitted at the same
            // simulated instant must not collide on the spill marker.
            let spill_path = format!("/hdfs/.feisu/tmp/q{}", ctx.query_id.raw());
            // The spill is a round trip through the global store: one
            // write from the stem, one read at the master.
            self.router.write(
                &spill_path,
                bytes::Bytes::from(vec![0u8; 0]), // marker object; data stays in memory
                None,
                &self.system_cred,
                ctx.now,
            )?;
            let mut spill_tally = TimeTally::new();
            spill_tally.add_io(
                self.spec
                    .cost
                    .read(feisu_cluster::StorageMedium::Hdd, payload)
                    * 2,
            );
            ctx.tally = ctx.tally.then(&spill_tally);
        }
        Ok(root.batch)
    }

    /// Worker-thread count for the leaf-task and partition-merger pools:
    /// the `execution_threads` knob, `0` meaning "whatever the machine
    /// offers".
    pub(crate) fn effective_threads(&self) -> usize {
        match self.spec.config.execution_threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }

    /// Runs a task on its assigned node, launching a backup task when the
    /// node is dead or pathologically slow (§III-B fault tolerance).
    /// Shared-state only (`&self`): safe to call from pool workers. All
    /// master-side bookkeeping (stats, spans, node time) is the caller's
    /// job — this returns what happened, including whether a backup fired.
    fn execute_with_backup(
        &self,
        task: &ScanTask,
        assignment: crate::master::Assignment,
        cred: &Credential,
        now: SimInstant,
    ) -> Result<TaskExec> {
        let node = assignment.node;
        let slow = self.slow_nodes.read().get(&node).copied().unwrap_or(1.0);
        match self.run_on_leaf(task, node, cred, now) {
            Ok(mut out) => {
                let mut backup = false;
                if slow > 1.0 {
                    out.tally = scale_tally(&out.tally, slow);
                    // Straggler mitigation: a backup on a healthy node
                    // bounds the effective time at delay + normal time.
                    let normal_total = scale_tally(&out.tally, 1.0 / slow).total();
                    let backup_total = self.spec.config.backup_task_delay + normal_total;
                    if backup_total < out.tally.total() {
                        backup = true;
                        let mut t = TimeTally::new();
                        t.add_io(backup_total);
                        out.tally = t;
                    }
                }
                Ok(TaskExec { node, out, backup })
            }
            Err(e) if e.is_retryable() => {
                // Backup task on the next-best node.
                let replicas = self.router.replicas(&task.block.path)?;
                let alive: Vec<NodeId> = {
                    // Lock order: heartbeats, then failed_nodes (read);
                    // both released before the backup leaf runs.
                    let hb = self.heartbeats.lock();
                    let failed = self.failed_nodes.read();
                    hb.alive_nodes(now)
                        .into_iter()
                        .filter(|n| *n != node && !failed.contains(n))
                        .collect()
                };
                let backup_node = alive
                    .iter()
                    .copied()
                    .find(|n| replicas.contains(n))
                    .or_else(|| alive.first().copied())
                    .ok_or_else(|| FeisuError::Scheduling("no backup worker available".into()))?;
                let mut out = self.run_on_leaf(task, backup_node, cred, now)?;
                // The backup started after the detection delay.
                let mut t = TimeTally::new();
                t.add_io(self.spec.config.backup_task_delay + out.tally.total());
                out.tally = t;
                Ok(TaskExec {
                    node: backup_node,
                    out,
                    backup: true,
                })
            }
            Err(e) => Err(e),
        }
    }

    fn run_on_leaf(
        &self,
        task: &ScanTask,
        node: NodeId,
        cred: &Credential,
        now: SimInstant,
    ) -> Result<LeafOutput> {
        if self.failed_nodes.read().contains(&node) {
            return Err(FeisuError::NodeUnavailable(format!("{node} is down")));
        }
        // Resource agreement: a node with no Feisu slots at all refuses
        // the task (the caller reroutes it as a backup task on another
        // node) — exactly as in serial execution. Transient saturation is
        // different: under the pool several workers can momentarily hold
        // slots on one node (its own queue plus rerouted backup tasks)
        // where serial execution holds at most one, so a transient
        // acquire failure waits for a slot instead of erroring, keeping
        // failure semantics identical across thread counts.
        loop {
            let mut res = self.resources.lock();
            match res.get_mut(&node) {
                Some(a) => match a.acquire() {
                    Ok(()) => break,
                    Err(e) if a.feisu_limit() == 0 => return Err(e),
                    Err(_) => {}
                },
                None => break,
            }
            drop(res);
            std::thread::yield_now();
        }
        let out = match self.leaves.get(&node) {
            Some(leaf) => leaf.execute(task, &self.router, cred, now, self.spec.use_smartindex),
            None => Err(FeisuError::NodeUnavailable(format!(
                "{node} has no leaf server"
            ))),
        };
        if let Some(a) = self.resources.lock().get_mut(&node) {
            a.release();
        }
        // Real-time leaf service emulation (wall-clock benchmarking):
        // block this thread for the task's simulated duration × the
        // dilation factor, as a remote leaf's RPC would. No lock is held,
        // so waits from different queries overlap freely — exactly the
        // overlap `bench_concurrency` measures. Simulated results are
        // untouched.
        let dilation = self.spec.config.leaf_wait_dilation;
        if dilation > 0.0 {
            if let Ok(o) = &out {
                let ns = (o.tally.total().as_nanos() as f64 * dilation) as u64;
                if ns > 0 {
                    std::thread::sleep(std::time::Duration::from_nanos(ns));
                }
            }
        }
        out
    }
}

/// The worker pool shares the cluster by reference across threads.
#[allow(dead_code)]
fn _assert_cluster_sync() {
    fn is_sync<T: Sync>() {}
    is_sync::<FeisuCluster>();
}

/// Per-task outcome of the reuse pre-pass: either a cached result, or a
/// signature the executed result must be stored under.
enum Planned {
    Reused { batch: RecordBatch, is_agg: bool },
    Run { signature: String },
}

/// What actually happened to one executed leaf task: where it ran (its
/// assignment, or the backup node) and whether a backup task fired —
/// folded into query stats during the serial merge phase.
struct TaskExec {
    node: NodeId,
    out: LeafOutput,
    backup: bool,
}

/// One leaf task as tracked by `distributed_scan`: its output plus the
/// placement and span bookkeeping needed for partial-result filtering
/// and the topology-derived merge tree.
pub(crate) struct TaskRun {
    /// Completion offset in the owning node's serialized-time account.
    done: SimDuration,
    /// Span extent on the query-relative timeline.
    pub(crate) start_ns: u64,
    pub(crate) end_ns: u64,
    pub(crate) span: SpanId,
    /// Node the task actually ran on (the backup node if one fired) —
    /// the leaf end of the merge tree's first uplink.
    pub(crate) node: NodeId,
    pub(crate) out: LeafOutput,
}

fn scale_tally(t: &TimeTally, f: f64) -> TimeTally {
    let s = |d: SimDuration| SimDuration::nanos((d.as_nanos() as f64 * f) as u64);
    TimeTally {
        io: s(t.io),
        cpu: s(t.cpu),
        network: s(t.network),
    }
}
