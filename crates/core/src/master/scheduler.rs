//! The job scheduler (paper §III-B/C).
//!
//! "Feisu schedules a query based on data location, the cluster's network
//! structure, and the load statistics on the leaf servers. Feisu always
//! schedules a task to the leaf server that contains the data if the
//! server \[is\] available. If the leaf server is not available, Feisu will
//! either schedule the task to the available leaf server that contains
//! the data replica or to an available server that has a low network
//! transfer overhead."
//!
//! Placement score per candidate node: primary key is hop distance to
//! the nearest replica (0 = data-local), secondary key is current load
//! (heartbeat-reported plus tasks assigned in this round).

use feisu_cluster::heartbeat::HeartbeatTable;
use feisu_cluster::Topology;
use feisu_common::hash::FxHashMap;
use feisu_common::{FeisuError, NodeId, Result, SimInstant};

/// A task's placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    pub node: NodeId,
    /// Hops from the chosen node to the nearest replica (0 = local).
    pub data_hops: u32,
}

/// Placement policies (the scheduling ablation of DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// The paper's policy: locality first, then load.
    #[default]
    LocalityAware,
    /// Load only, ignoring data location (ablation baseline).
    LoadOnly,
    /// Deterministic pseudo-random spread (ablation baseline).
    RandomSpread,
}

/// Stateless scheduling over cluster state snapshots; round-local load is
/// tracked inside [`Scheduler::assign_all`].
pub struct Scheduler {
    policy: Policy,
}

impl Scheduler {
    pub fn new(policy: Policy) -> Self {
        Scheduler { policy }
    }

    /// Assigns every task (identified by its replica list) to a node.
    /// Tasks are spread so that one node is not overloaded while peers
    /// idle: the effective load = heartbeat load + assignments made in
    /// this round.
    pub fn assign_all(
        &self,
        tasks: &[Vec<NodeId>],
        topology: &Topology,
        heartbeats: &HeartbeatTable,
        now: SimInstant,
    ) -> Result<Vec<Assignment>> {
        let alive = heartbeats.alive_nodes(now);
        if alive.is_empty() {
            return Err(FeisuError::Scheduling("no alive workers".into()));
        }
        let mut round_load: FxHashMap<NodeId, u32> = FxHashMap::default();
        let mut out = Vec::with_capacity(tasks.len());
        for (ti, replicas) in tasks.iter().enumerate() {
            let a = match self.policy {
                Policy::LocalityAware => {
                    self.assign_locality(replicas, topology, heartbeats, &alive, &round_load)?
                }
                Policy::LoadOnly => {
                    let node = *alive
                        .iter()
                        .min_by_key(|n| (effective_load(**n, heartbeats, &round_load), n.raw()))
                        .expect("alive nonempty");
                    Assignment {
                        node,
                        data_hops: nearest_replica_hops(node, replicas, topology)?,
                    }
                }
                Policy::RandomSpread => {
                    let node = alive[(ti * 2654435761) % alive.len()];
                    Assignment {
                        node,
                        data_hops: nearest_replica_hops(node, replicas, topology)?,
                    }
                }
            };
            *round_load.entry(a.node).or_insert(0) += 1;
            out.push(a);
        }
        Ok(out)
    }

    fn assign_locality(
        &self,
        replicas: &[NodeId],
        topology: &Topology,
        heartbeats: &HeartbeatTable,
        alive: &[NodeId],
        round_load: &FxHashMap<NodeId, u32>,
    ) -> Result<Assignment> {
        // 1. Prefer an alive replica holder, least loaded first.
        let mut holders: Vec<NodeId> = replicas
            .iter()
            .copied()
            .filter(|n| alive.contains(n))
            .collect();
        holders.sort_by_key(|n| (effective_load(*n, heartbeats, round_load), n.raw()));
        if let Some(&node) = holders.first() {
            return Ok(Assignment { node, data_hops: 0 });
        }
        // 2. No replica holder alive: nearest alive node by hop distance,
        //    load as tie-break.
        let node = *alive
            .iter()
            .min_by_key(|n| {
                let hops = nearest_replica_hops(**n, replicas, topology).unwrap_or(u32::MAX);
                (hops, effective_load(**n, heartbeats, round_load), n.raw())
            })
            .expect("alive nonempty");
        Ok(Assignment {
            node,
            data_hops: nearest_replica_hops(node, replicas, topology)?,
        })
    }
}

fn effective_load(
    node: NodeId,
    heartbeats: &HeartbeatTable,
    round_load: &FxHashMap<NodeId, u32>,
) -> u32 {
    heartbeats.load(node).map_or(0, |l| l.running_tasks)
        + round_load.get(&node).copied().unwrap_or(0)
}

fn nearest_replica_hops(node: NodeId, replicas: &[NodeId], topology: &Topology) -> Result<u32> {
    replicas
        .iter()
        .map(|r| topology.hops(node, *r))
        .collect::<Result<Vec<u32>>>()
        .map(|v| v.into_iter().min().unwrap_or(u32::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use feisu_cluster::heartbeat::LoadStats;
    use feisu_common::SimDuration;

    fn setup() -> (Topology, HeartbeatTable) {
        let topo = Topology::grid(1, 2, 3); // 6 nodes, racks {0,1,2} {3,4,5}
        let mut hb = HeartbeatTable::new(SimDuration::secs(3), 3);
        for n in topo.nodes() {
            hb.register(n.id, SimInstant(0));
        }
        (topo, hb)
    }

    #[test]
    fn data_local_when_replica_alive() {
        let (topo, hb) = setup();
        let s = Scheduler::new(Policy::LocalityAware);
        let tasks = vec![vec![NodeId(2), NodeId(4)]];
        let a = s.assign_all(&tasks, &topo, &hb, SimInstant(0)).unwrap();
        assert_eq!(a[0].data_hops, 0);
        assert!(tasks[0].contains(&a[0].node));
    }

    #[test]
    fn replica_failover_when_primary_dead() {
        let (topo, mut hb) = setup();
        // Only beat nodes != 2; node 2 goes silent past the miss limit.
        let later = SimInstant::EPOCH + SimDuration::secs(60);
        for n in topo.nodes() {
            if n.id != NodeId(2) {
                hb.beat(n.id, later, LoadStats::default());
            }
        }
        let s = Scheduler::new(Policy::LocalityAware);
        let tasks = vec![vec![NodeId(2), NodeId(4)]];
        let a = s.assign_all(&tasks, &topo, &hb, later).unwrap();
        assert_eq!(a[0].node, NodeId(4));
        assert_eq!(a[0].data_hops, 0);
    }

    #[test]
    fn nearest_node_when_all_replicas_dead() {
        let (topo, mut hb) = setup();
        let later = SimInstant::EPOCH + SimDuration::secs(60);
        // Nodes 0 and 1 hold replicas but are dead; 2 shares their rack.
        for n in topo.nodes() {
            if n.id != NodeId(0) && n.id != NodeId(1) {
                hb.beat(n.id, later, LoadStats::default());
            }
        }
        let s = Scheduler::new(Policy::LocalityAware);
        let tasks = vec![vec![NodeId(0), NodeId(1)]];
        let a = s.assign_all(&tasks, &topo, &hb, later).unwrap();
        assert_eq!(a[0].node, NodeId(2), "same-rack node preferred");
        assert_eq!(a[0].data_hops, 2);
    }

    #[test]
    fn round_load_spreads_same_replica_tasks() {
        let (topo, hb) = setup();
        let s = Scheduler::new(Policy::LocalityAware);
        // Four tasks all replicated on nodes 0 and 3.
        let tasks = vec![vec![NodeId(0), NodeId(3)]; 4];
        let a = s.assign_all(&tasks, &topo, &hb, SimInstant(0)).unwrap();
        let on0 = a.iter().filter(|x| x.node == NodeId(0)).count();
        let on3 = a.iter().filter(|x| x.node == NodeId(3)).count();
        assert_eq!(on0, 2);
        assert_eq!(on3, 2);
    }

    #[test]
    fn heartbeat_load_biases_choice() {
        let (topo, mut hb) = setup();
        hb.beat(
            NodeId(0),
            SimInstant(0),
            LoadStats {
                running_tasks: 50,
                utilization: 0.9,
            },
        );
        let s = Scheduler::new(Policy::LocalityAware);
        let tasks = vec![vec![NodeId(0), NodeId(3)]];
        let a = s.assign_all(&tasks, &topo, &hb, SimInstant(0)).unwrap();
        assert_eq!(a[0].node, NodeId(3), "loaded replica avoided");
    }

    #[test]
    fn no_alive_workers_errors() {
        let topo = Topology::grid(1, 1, 2);
        let hb = HeartbeatTable::new(SimDuration::secs(3), 3);
        let s = Scheduler::new(Policy::LocalityAware);
        assert!(s
            .assign_all(&[vec![NodeId(0)]], &topo, &hb, SimInstant(0))
            .is_err());
    }

    #[test]
    fn ablation_policies_assign_everything() {
        let (topo, hb) = setup();
        let tasks = vec![vec![NodeId(0)], vec![NodeId(1)], vec![NodeId(5)]];
        for policy in [Policy::LoadOnly, Policy::RandomSpread] {
            let s = Scheduler::new(policy);
            let a = s.assign_all(&tasks, &topo, &hb, SimInstant(0)).unwrap();
            assert_eq!(a.len(), 3);
        }
    }
}
