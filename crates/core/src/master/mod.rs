//! The master services (paper §III-C).
//!
//! "The Feisu's master is a key service and is built with the following
//! main components": the [`job_manager`] (query jobs, identical-task
//! result reuse), the cluster manager (heartbeats — lives in
//! `feisu-cluster::heartbeat`, wired up by the engine), the
//! [`scheduler`] (locality/network/load-aware task placement) and the
//! [`guard`] (entry point: access-flow security checks and capability
//! protection). They are separate modules exactly because the production
//! system had to split them into independently scalable services (§VII).

pub(crate) mod assembly;
pub mod failover;
pub mod guard;
pub mod job_manager;
pub(crate) mod merge_tree;
pub(crate) mod pipeline;
pub(crate) mod scan_exec;
pub mod scheduler;
pub mod session;

pub use failover::PrimaryBackup;
pub use guard::{AdmissionPermit, EntryGuard};
pub use job_manager::{JobManager, JobState};
pub use scheduler::{Assignment, Scheduler};
pub use session::QuerySession;
