//! The entry guard (paper §III-C).
//!
//! "It is the entry point of whole system, executing the security
//! checking of access flows and dispatching the incoming traffics. It is
//! also responsible for capability protection to avoid malicious
//! attacks." Concretely: per-user admission (daily query quota,
//! concurrent-job cap) and capability limits on the query itself
//! (statement length, table fan-out) so one user cannot monopolize the
//! master.
//!
//! Admission is RAII: [`EntryGuard::admit`] returns an
//! [`AdmissionPermit`] whose `Drop` releases the running-job slot, so a
//! query that errors (or panics) mid-flight can never leak concurrency
//! capacity. The guard exports `feisu.guard.admitted`,
//! `feisu.guard.rejected` and `feisu.guard.inflight` once
//! [`EntryGuard::attach_metrics`] is called.

use feisu_common::hash::FxHashMap;
use feisu_common::{FeisuError, Result, SimDuration, SimInstant, UserId};
use feisu_obs::{Counter, Gauge, MetricsRegistry};
use parking_lot::Mutex;
use std::sync::Arc;

/// Tunable capability limits.
#[derive(Debug, Clone)]
pub struct GuardLimits {
    /// Maximum SQL statement length in bytes.
    pub max_query_len: usize,
    /// Maximum tables one query may touch.
    pub max_tables: usize,
    /// Queries admitted per user per rolling day.
    pub daily_quota: u32,
    /// Concurrently running jobs per user.
    pub max_concurrent: u32,
}

impl Default for GuardLimits {
    fn default() -> Self {
        GuardLimits {
            max_query_len: 64 * 1024,
            max_tables: 8,
            daily_quota: 10_000,
            max_concurrent: 16,
        }
    }
}

#[derive(Debug, Default)]
struct UserWindow {
    /// Admission timestamps within the rolling day.
    admissions: Vec<SimInstant>,
    running: u32,
}

/// Counter/gauge handles published once metrics are attached.
#[derive(Debug)]
struct GuardMetrics {
    admitted: Arc<Counter>,
    rejected: Arc<Counter>,
    inflight: Arc<Gauge>,
}

/// Admission control at the system entry point.
pub struct EntryGuard {
    limits: GuardLimits,
    users: Mutex<FxHashMap<UserId, UserWindow>>,
    metrics: Mutex<Option<GuardMetrics>>,
}

/// A reserved running-job slot. Dropping the permit releases the slot —
/// the release is tied to the permit's lifetime, not to any happy-path
/// call, so mid-flight errors cannot leak concurrency capacity.
#[must_use = "dropping the permit releases the concurrency slot"]
pub struct AdmissionPermit<'a> {
    guard: &'a EntryGuard,
    user: UserId,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.guard.release(self.user);
    }
}

impl EntryGuard {
    pub fn new(limits: GuardLimits) -> Self {
        EntryGuard {
            limits,
            users: Mutex::new(FxHashMap::default()),
            metrics: Mutex::new(None),
        }
    }

    /// Starts publishing `feisu.guard.*` to a registry.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        *self.metrics.lock() = Some(GuardMetrics {
            admitted: registry.counter("feisu.guard.admitted"),
            rejected: registry.counter("feisu.guard.rejected"),
            inflight: registry.gauge("feisu.guard.inflight"),
        });
    }

    fn note(&self, f: impl FnOnce(&GuardMetrics)) {
        if let Some(m) = self.metrics.lock().as_ref() {
            f(m);
        }
    }

    /// Checks all capability limits and reserves a running-job slot,
    /// returned as an RAII [`AdmissionPermit`]. A rejection bumps
    /// `feisu.guard.rejected` and leaves no state behind.
    pub fn admit(
        &self,
        user: UserId,
        sql: &str,
        table_count: usize,
        now: SimInstant,
    ) -> Result<AdmissionPermit<'_>> {
        let outcome = self.try_reserve(user, sql, table_count, now);
        match outcome {
            Ok(()) => {
                self.note(|m| {
                    m.admitted.inc();
                    m.inflight.add(1);
                });
                Ok(AdmissionPermit { guard: self, user })
            }
            Err(e) => {
                self.note(|m| m.rejected.inc());
                Err(e)
            }
        }
    }

    fn try_reserve(
        &self,
        user: UserId,
        sql: &str,
        table_count: usize,
        now: SimInstant,
    ) -> Result<()> {
        if sql.len() > self.limits.max_query_len {
            return Err(FeisuError::PermissionDenied(format!(
                "query of {} bytes exceeds the {}-byte capability limit",
                sql.len(),
                self.limits.max_query_len
            )));
        }
        if table_count > self.limits.max_tables {
            return Err(FeisuError::PermissionDenied(format!(
                "query touches {table_count} tables, capability limit is {}",
                self.limits.max_tables
            )));
        }
        let mut users = self.users.lock();
        let w = users.entry(user).or_default();
        let day = SimDuration::hours(24);
        // Compact the rolling window only when it could matter — keeps
        // admit O(1) amortized for users far below quota.
        if w.admissions.len() as u32 >= self.limits.daily_quota
            || w.admissions.len() > 2 * self.limits.daily_quota.min(100_000) as usize
        {
            w.admissions.retain(|t| now.since(*t) <= day);
        }
        if w.admissions.len() as u32 >= self.limits.daily_quota {
            return Err(FeisuError::PermissionDenied(format!(
                "{user} exhausted the daily quota of {}",
                self.limits.daily_quota
            )));
        }
        if w.running >= self.limits.max_concurrent {
            return Err(FeisuError::PermissionDenied(format!(
                "{user} already has {} running jobs (limit {})",
                w.running, self.limits.max_concurrent
            )));
        }
        w.admissions.push(now);
        w.running += 1;
        Ok(())
    }

    /// Releases the running-job slot (called by the permit's `Drop`).
    fn release(&self, user: UserId) {
        {
            let mut users = self.users.lock();
            if let Some(w) = users.get_mut(&user) {
                w.running = w.running.saturating_sub(1);
            }
        }
        self.note(|m| m.inflight.sub(1));
    }

    /// Jobs currently holding a permit, across all users.
    pub fn inflight(&self) -> u32 {
        self.users.lock().values().map(|w| w.running).sum()
    }

    /// Queries admitted for a user in the current rolling day.
    pub fn admitted_today(&self, user: UserId, now: SimInstant) -> u32 {
        let mut users = self.users.lock();
        match users.get_mut(&user) {
            None => 0,
            Some(w) => {
                let day = SimDuration::hours(24);
                w.admissions.retain(|t| now.since(*t) <= day);
                w.admissions.len() as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard(quota: u32, concurrent: u32) -> EntryGuard {
        EntryGuard::new(GuardLimits {
            daily_quota: quota,
            max_concurrent: concurrent,
            ..GuardLimits::default()
        })
    }

    #[test]
    fn oversized_query_rejected() {
        let g = EntryGuard::new(GuardLimits {
            max_query_len: 10,
            ..GuardLimits::default()
        });
        assert!(g
            .admit(
                UserId(1),
                "SELECT * FROM a_very_long_table",
                1,
                SimInstant(0)
            )
            .is_err());
    }

    #[test]
    fn table_fanout_capped() {
        let g = guard(10, 10);
        assert!(g.admit(UserId(1), "q", 9, SimInstant(0)).is_err());
        assert!(g.admit(UserId(1), "q", 8, SimInstant(0)).is_ok());
    }

    #[test]
    fn daily_quota_rolls_over() {
        let g = guard(2, 10);
        let t0 = SimInstant(0);
        assert!(g.admit(UserId(1), "q", 1, t0).is_ok());
        assert!(g.admit(UserId(1), "q", 1, t0).is_ok());
        assert!(g.admit(UserId(1), "q", 1, t0).is_err());
        assert_eq!(g.admitted_today(UserId(1), t0), 2);
        // 25 hours later the window has rolled.
        let t1 = t0 + SimDuration::hours(25);
        assert!(g.admit(UserId(1), "q", 1, t1).is_ok());
    }

    #[test]
    fn concurrency_slot_released_by_permit_drop() {
        let g = guard(100, 1);
        let permit = g.admit(UserId(1), "q", 1, SimInstant(0)).unwrap();
        assert!(g.admit(UserId(1), "q", 1, SimInstant(0)).is_err());
        assert_eq!(g.inflight(), 1);
        drop(permit);
        assert_eq!(g.inflight(), 0);
        assert!(g.admit(UserId(1), "q", 1, SimInstant(0)).is_ok());
    }

    #[test]
    fn slot_released_even_when_query_panics() {
        let g = guard(100, 1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _permit = g.admit(UserId(1), "q", 1, SimInstant(0)).unwrap();
            panic!("mid-flight failure");
        }));
        assert!(caught.is_err());
        // The unwound permit released its slot.
        assert!(g.admit(UserId(1), "q", 1, SimInstant(0)).is_ok());
    }

    #[test]
    fn quotas_are_per_user() {
        let g = guard(1, 10);
        assert!(g.admit(UserId(1), "q", 1, SimInstant(0)).is_ok());
        assert!(g.admit(UserId(2), "q", 1, SimInstant(0)).is_ok());
        assert!(g.admit(UserId(1), "q", 1, SimInstant(0)).is_err());
    }

    #[test]
    fn metrics_track_admissions_and_inflight() {
        let registry = MetricsRegistry::new();
        let g = guard(100, 1);
        g.attach_metrics(&registry);
        let p = g.admit(UserId(1), "q", 1, SimInstant(0)).unwrap();
        assert!(g.admit(UserId(1), "q", 1, SimInstant(0)).is_err());
        assert_eq!(registry.counter("feisu.guard.admitted").get(), 1);
        assert_eq!(registry.counter("feisu.guard.rejected").get(), 1);
        assert_eq!(registry.gauge("feisu.guard.inflight").get(), 1);
        drop(p);
        assert_eq!(registry.gauge("feisu.guard.inflight").get(), 0);
    }
}
