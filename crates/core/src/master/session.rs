//! Client query sessions — the admission-side handle for concurrent
//! clients.
//!
//! A [`QuerySession`] binds one client (credential) to the shared
//! cluster and allocates that client's query ids deterministically:
//! session `s` issues ids `(s << 32) | seq` with `seq` counting from 0.
//! Under concurrent clients the *global* id generator would hand out ids
//! in whatever order threads happen to reach it; session-scoped ids are
//! a pure function of (session, submission index), which is what makes a
//! query's `QueryResult` — id, stats, times and EXPLAIN ANALYZE profile
//! included — bit-comparable between a serial and an N-thread run of the
//! same workload (DESIGN.md §12).
//!
//! Sessions are cheap, `Sync`, and borrow the cluster: create one per
//! client thread. All admission control (entry-guard capability checks,
//! quotas, the per-user concurrency cap and the `feisu.guard.*` metrics)
//! applies identically to session and sessionless queries.

use crate::engine::{FeisuCluster, QueryOptions, QueryResult};
use feisu_common::{QueryId, Result, UserId};
use feisu_storage::auth::Credential;
use std::sync::atomic::{AtomicU64, Ordering};

/// One client's handle onto the shared cluster.
pub struct QuerySession<'a> {
    cluster: &'a FeisuCluster,
    cred: Credential,
    session_id: u64,
    next_seq: AtomicU64,
}

impl FeisuCluster {
    /// Opens a query session for a logged-in client. Session ids are
    /// allocated in call order, so opening sessions deterministically
    /// (before spawning client threads) yields deterministic query ids.
    pub fn session(&self, cred: Credential) -> QuerySession<'_> {
        QuerySession {
            cluster: self,
            cred,
            session_id: self.session_ids.next_u64(),
            next_seq: AtomicU64::new(0),
        }
    }
}

impl QuerySession<'_> {
    /// The session's stable identifier (the high half of its query ids).
    pub fn id(&self) -> u64 {
        self.session_id
    }

    pub fn user(&self) -> UserId {
        self.cred.user
    }

    pub fn cred(&self) -> &Credential {
        &self.cred
    }

    /// The id the session's next query will carry.
    pub fn next_query_id(&self) -> QueryId {
        QueryId((self.session_id << 32) | self.next_seq.load(Ordering::Relaxed))
    }

    /// Runs one SQL query with default options.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.query_with(sql, &QueryOptions::default())
    }

    /// Runs one SQL query with explicit partial-result options.
    pub fn query_with(&self, sql: &str, options: &QueryOptions) -> Result<QueryResult> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let query_id = QueryId((self.session_id << 32) | seq);
        self.cluster.run_query(sql, &self.cred, options, query_id)
    }

    /// The lowered physical plan for a statement (EXPLAIN).
    pub fn explain(&self, sql: &str) -> Result<String> {
        self.cluster.explain(sql, &self.cred)
    }

    /// Sets (`Some`) or clears (`None`, back to the configured default)
    /// *this* session's user per-node cache byte quota. Blocks admitted
    /// on behalf of the session's queries are attributed to its user; the
    /// quota caps those bytes per node. No-op when the cluster runs
    /// without a cache.
    pub fn set_cache_quota(&self, quota: Option<feisu_common::ByteSize>) {
        self.cluster.set_user_cache_quota(self.cred.user, quota);
    }
}
