//! Result assembly: turning a finished execution context into a
//! [`QueryResult`] — processed-ratio derivation, the `EXPLAIN ANALYZE`
//! profile (master span adopting the operator tree), and cluster-wide
//! metric recording.

use crate::engine::{FeisuCluster, QueryResult};
use crate::master::pipeline::ExecCtx;
use feisu_common::{ByteSize, QueryId, Result, SimDuration, SimInstant};
use feisu_exec::batch::RecordBatch;
use feisu_obs::{
    Counter, Histogram, MetricsRegistry, QueryEvent, QueryOutcome, QueryProfile, SpanNode,
};
use std::sync::Arc;

/// Operator span names eligible for the event log's `top_operators`
/// summary (the physical-plan node names, not stem/leaf infrastructure).
const OPERATOR_NAMES: [&str; 8] = [
    "DistributedScan",
    "FinalAggregate",
    "HashAggregate",
    "Filter",
    "Project",
    "HashJoin",
    "Sort",
    "Limit",
];

/// Top-`k` physical operators by span duration, rendered
/// `Name=duration` space-joined — ties broken by name so the string is
/// deterministic.
fn top_operator_costs(roots: &[SpanNode], k: usize) -> String {
    fn walk(node: &SpanNode, out: &mut Vec<(String, u64)>) {
        if OPERATOR_NAMES.contains(&node.name.as_str()) {
            out.push((node.name.clone(), node.duration().as_nanos()));
        }
        for child in &node.children {
            walk(child, out);
        }
    }
    let mut ops = Vec::new();
    for root in roots {
        walk(root, &mut ops);
    }
    ops.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ops.truncate(k);
    ops.iter()
        .map(|(name, ns)| format!("{name}={}", SimDuration(*ns)))
        .collect::<Vec<_>>()
        .join(" ")
}

impl FeisuCluster {
    /// Finalizes one successful query: advances the cluster clock, derives
    /// the processed ratio from the recorded task spans, closes the span
    /// tree under a `master` root, renders the profile summary, and feeds
    /// the cluster-wide metrics.
    pub(crate) fn assemble_result(
        &self,
        query_id: QueryId,
        batch: RecordBatch,
        mut ctx: ExecCtx,
    ) -> Result<QueryResult> {
        let response_time = ctx.tally.total();
        // The cluster's wall clock covers every in-flight query: move it
        // to this query's completion instant (admission + duration). The
        // `max` fold is commutative, so the final clock value does not
        // depend on the order concurrent queries finish in — and for a
        // serial client it degenerates to the old `advance(duration)`.
        self.clock.advance_to(ctx.now + response_time);

        // The processed ratio is derived from the recorded task spans: every
        // leaf task of every scan leaves one `leaf_task` span, and abandoned
        // ones carry the `abandoned` attribute.
        let total_leaf = ctx.spans.count_named("leaf_task");
        if total_leaf > 0 {
            let abandoned = ctx.spans.count_named_with_attr("leaf_task", "abandoned");
            ctx.stats.processed_ratio = (total_leaf - abandoned) as f64 / total_leaf as f64;
        }

        // Close the profile: a master span covering the whole query adopts
        // the root physical-operator spans.
        let master = ctx.spans.record(
            "master",
            None,
            SimInstant(0),
            SimInstant(response_time.as_nanos()),
        );
        for span in std::mem::take(&mut ctx.root_spans) {
            ctx.spans.set_parent(span, Some(master));
        }
        // Optimizer trace on the master span: which rules rewrote the
        // plan, and what every join-order search decided.
        for fire in &ctx.rule_trace {
            ctx.spans
                .attr(master, &format!("rule.{}", fire.rule), fire.fires as usize);
        }
        for (i, jo) in ctx.join_orders.iter().enumerate() {
            ctx.spans.attr(
                master,
                &format!("join_order.{i}"),
                format!(
                    "{} [{}] -> [{}]",
                    jo.method,
                    jo.syntactic.join(", "),
                    jo.chosen.join(", ")
                ),
            );
        }
        let mut profile = QueryProfile::new(query_id.0);
        profile.push_summary("response time", response_time);
        profile.push_summary(
            "tasks",
            format!(
                "{} (reused {}, backup {}, pruned {})",
                ctx.stats.tasks,
                ctx.stats.reused_tasks,
                ctx.stats.backup_tasks,
                ctx.stats.pruned_blocks
            ),
        );
        profile.push_summary(
            "blocks",
            format!(
                "{} scanned, {} skipped by zone maps",
                ctx.stats.blocks_scanned, ctx.stats.blocks_skipped
            ),
        );
        profile.push_summary(
            "smartindex",
            format!(
                "hits {}, built {}, rejected {}, scanned predicates {}",
                ctx.stats.index_hits,
                ctx.stats.index_built,
                ctx.stats.index_rejected,
                ctx.stats.scanned_predicates
            ),
        );
        let mut bytes_line = format!("{} total", ctx.stats.bytes_read);
        for (backend, bytes) in &ctx.backend_bytes {
            use std::fmt::Write as _;
            let _ = write!(bytes_line, " {backend}={}", ByteSize(*bytes));
        }
        profile.push_summary("bytes read", bytes_line);
        let wire_total = ctx.wire_leaf_stem + ctx.wire_rack_dc + ctx.wire_stem_master;
        // Per-level wire accounting: the rack→DC leg only exists when a
        // topology-shaped merge tree ran three levels deep.
        let mut wire_line = format!(
            "{} (leaf→stem {}",
            ByteSize(wire_total),
            ByteSize(ctx.wire_leaf_stem)
        );
        if ctx.wire_rack_dc > 0 {
            use std::fmt::Write as _;
            let _ = write!(wire_line, ", rack→dc {}", ByteSize(ctx.wire_rack_dc));
        }
        {
            use std::fmt::Write as _;
            let _ = write!(
                wire_line,
                ", stem→master {})",
                ByteSize(ctx.wire_stem_master)
            );
        }
        profile.push_summary("bytes on wire", wire_line);
        ctx.stats.wire_leaf_stem = ByteSize(ctx.wire_leaf_stem);
        ctx.stats.wire_rack_dc = ByteSize(ctx.wire_rack_dc);
        ctx.stats.wire_stem_master = ByteSize(ctx.wire_stem_master);
        if !ctx.tier_tasks.is_empty() {
            let served = ctx
                .tier_tasks
                .iter()
                .map(|(tier, n)| format!("{tier}={n}"))
                .collect::<Vec<_>>()
                .join(" ");
            profile.push_summary("served from", served);
        }
        profile.push_summary(
            "processed ratio",
            format!("{:.1}%", ctx.stats.processed_ratio * 100.0),
        );
        if ctx.stats.spilled_results > 0 {
            profile.push_summary("spilled results", ctx.stats.spilled_results);
        }
        profile.tree = ctx.spans.tree();

        let m = &self.qmetrics;
        m.response_ns.observe(response_time.as_nanos());
        m.tasks.add(ctx.stats.tasks as u64);
        m.reused.add(ctx.stats.reused_tasks as u64);
        m.backup.add(ctx.stats.backup_tasks as u64);
        m.pruned_by_zone.add(ctx.stats.pruned_blocks as u64);
        m.blocks_skipped.add(ctx.stats.blocks_skipped as u64);
        m.blocks_scanned.add(ctx.stats.blocks_scanned as u64);
        m.memory_served.add(ctx.stats.memory_served_tasks as u64);
        m.bytes_read.add(ctx.stats.bytes_read.0);
        m.spilled.add(ctx.stats.spilled_results as u64);
        if ctx.partial {
            m.partial.inc();
        }
        m.rules_fired
            .add(ctx.rule_trace.iter().map(|f| f.fires as u64).sum());
        m.joins_reordered
            .add(ctx.join_orders.iter().filter(|jo| jo.reordered).count() as u64);
        if ctx.rule_trace.iter().any(|f| f.rule == "prune_empty") {
            m.empty_pruned.inc();
        }

        // Always-on query event log (backs `system.queries`) plus the
        // sliding-window views. Absolute instants (admission/completion)
        // depend on how concurrent clients interleave; every per-query
        // field (response time, rows, bytes, wire traffic) is as
        // deterministic as the QueryResult it mirrors.
        let completed_at = ctx.now + response_time;
        self.query_log.push(QueryEvent {
            query_id: query_id.0,
            user: ctx.cred.user.to_string(),
            sql: std::mem::take(&mut ctx.sql),
            outcome: if ctx.partial {
                QueryOutcome::Partial
            } else {
                QueryOutcome::Completed
            },
            admitted_ns: ctx.now.as_nanos(),
            admission_wait_ns: 0, // the guard admits/rejects instantly
            response_ns: response_time.as_nanos(),
            tasks: ctx.stats.tasks as u64,
            rows_returned: batch.rows() as u64,
            bytes_scanned: ctx.stats.bytes_read.0,
            bytes_returned: batch.footprint() as u64,
            wire_leaf_stem_bytes: ctx.wire_leaf_stem,
            wire_rack_dc_bytes: ctx.wire_rack_dc,
            wire_stem_master_bytes: ctx.wire_stem_master,
            index_hits: ctx.stats.index_hits as u64,
            blocks_skipped: ctx.stats.blocks_skipped as u64,
            blocks_scanned: ctx.stats.blocks_scanned as u64,
            cache_hit_tasks: (ctx.tier_tasks.get("ssd_cache").copied().unwrap_or(0)
                + ctx.tier_tasks.get("mem_cache").copied().unwrap_or(0))
                as u64,
            memory_served_tasks: ctx.stats.memory_served_tasks as u64,
            top_operators: top_operator_costs(&profile.tree.roots, 3),
        });
        self.windows.observe(
            "feisu.query.response_ns",
            completed_at,
            response_time.as_nanos(),
        );
        self.windows
            .observe("feisu.query.bytes_on_wire", completed_at, wire_total);
        self.windows.observe(
            "feisu.query.bytes_scanned",
            completed_at,
            ctx.stats.bytes_read.0,
        );

        Ok(QueryResult {
            query_id,
            batch,
            response_time,
            stats: ctx.stats,
            partial: ctx.partial,
            profile,
        })
    }
}

/// Cached handles for the cluster-wide query/task metrics so the per-query
/// path never touches the registry's name map.
pub(crate) struct QueryMetrics {
    pub(crate) queries: Arc<Counter>,
    pub(crate) errors: Arc<Counter>,
    pub(crate) partial: Arc<Counter>,
    pub(crate) spilled: Arc<Counter>,
    pub(crate) response_ns: Arc<Histogram>,
    pub(crate) tasks: Arc<Counter>,
    pub(crate) reused: Arc<Counter>,
    pub(crate) backup: Arc<Counter>,
    pub(crate) pruned_by_zone: Arc<Counter>,
    pub(crate) blocks_skipped: Arc<Counter>,
    pub(crate) blocks_scanned: Arc<Counter>,
    pub(crate) memory_served: Arc<Counter>,
    pub(crate) bytes_read: Arc<Counter>,
    pub(crate) rules_fired: Arc<Counter>,
    pub(crate) joins_reordered: Arc<Counter>,
    pub(crate) empty_pruned: Arc<Counter>,
}

impl QueryMetrics {
    pub(crate) fn new(registry: &MetricsRegistry) -> QueryMetrics {
        QueryMetrics {
            queries: registry.counter("feisu.query.count"),
            errors: registry.counter("feisu.query.errors"),
            partial: registry.counter("feisu.query.partial"),
            spilled: registry.counter("feisu.query.spilled_results"),
            response_ns: registry.histogram("feisu.query.response_ns"),
            tasks: registry.counter("feisu.task.count"),
            reused: registry.counter("feisu.task.reused"),
            backup: registry.counter("feisu.task.backup"),
            pruned_by_zone: registry.counter("feisu.task.pruned_by_zone"),
            blocks_skipped: registry.counter("feisu.task.blocks_skipped"),
            blocks_scanned: registry.counter("feisu.task.blocks_scanned"),
            memory_served: registry.counter("feisu.task.memory_served"),
            bytes_read: registry.counter("feisu.task.bytes_read"),
            rules_fired: registry.counter("feisu.optimizer.rules_fired"),
            joins_reordered: registry.counter("feisu.optimizer.joins_reordered"),
            empty_pruned: registry.counter("feisu.optimizer.empty_pruned"),
        }
    }
}
