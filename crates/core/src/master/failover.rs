//! Primary/backup replication for master components (paper §III-C).
//!
//! "For reliability, components (the primary) are running with backups,
//! which don't provide service until the primary ones crash. The backup
//! components get checkpoint and operations log from the primary in
//! realtime, so that they will reach the same running state as the
//! primary. Since the backup ones are shadows of the primary, they can
//! provide functionalities such as monitoring running information to
//! reduce the burdens on the primary."
//!
//! [`PrimaryBackup`] wraps any state machine whose mutations are
//! expressible as an operation log: every op is applied to the primary
//! and shipped to the backup in realtime; a fresh backup bootstraps from
//! a checkpoint plus the log suffix; on primary crash the backup is
//! promoted; read-only *monitoring* queries are always served by the
//! backup.

use feisu_common::{FeisuError, Result};

/// A deterministic state machine driven by an operation log.
pub trait Replicated {
    /// One logged mutation.
    type Op: Clone;

    /// Applies a mutation. Must be deterministic: the same op sequence
    /// from the same checkpoint yields the same state.
    fn apply(&mut self, op: &Self::Op);
}

/// A primary with a realtime shadow backup.
pub struct PrimaryBackup<S: Replicated + Clone> {
    primary: Option<S>,
    backup: S,
    /// Op log since the last checkpoint (for late-joining backups).
    log: Vec<S::Op>,
    /// Ops applied since the last checkpoint cut.
    since_checkpoint: usize,
    /// Checkpoint every N ops to bound the log.
    checkpoint_every: usize,
    checkpoint: S,
}

impl<S: Replicated + Clone> PrimaryBackup<S> {
    pub fn new(initial: S, checkpoint_every: usize) -> Self {
        PrimaryBackup {
            primary: Some(initial.clone()),
            backup: initial.clone(),
            log: Vec::new(),
            since_checkpoint: 0,
            checkpoint_every: checkpoint_every.max(1),
            checkpoint: initial,
        }
    }

    /// Whether the primary is still serving.
    pub fn primary_alive(&self) -> bool {
        self.primary.is_some()
    }

    /// Applies one mutation: primary first, then the realtime ship to the
    /// backup, then the log.
    pub fn apply(&mut self, op: S::Op) -> Result<()> {
        let primary = self
            .primary
            .as_mut()
            .ok_or_else(|| FeisuError::Internal("apply on crashed primary".into()))?;
        primary.apply(&op);
        self.backup.apply(&op);
        self.log.push(op);
        self.since_checkpoint += 1;
        if self.since_checkpoint >= self.checkpoint_every {
            // Cut a checkpoint from the backup (off the primary's path,
            // per the paper's burden-reduction goal) and truncate the log.
            self.checkpoint = self.backup.clone();
            self.log.clear();
            self.since_checkpoint = 0;
        }
        Ok(())
    }

    /// Serving reads: primary while alive, promoted backup afterwards.
    pub fn serving(&self) -> &S {
        self.primary.as_ref().unwrap_or(&self.backup)
    }

    /// Monitoring reads are always answered by the shadow, keeping load
    /// off the primary.
    pub fn monitor(&self) -> &S {
        &self.backup
    }

    /// Crashes the primary; the backup takes over immediately (it is
    /// already at the same state).
    pub fn fail_primary(&mut self) {
        self.primary = None;
    }

    /// Spawns a *new* shadow from checkpoint + log replay and reinstates
    /// it as primary (recovery after a crash).
    pub fn recover_primary(&mut self) {
        let mut fresh = self.checkpoint.clone();
        for op in &self.log {
            fresh.apply(op);
        }
        self.primary = Some(fresh);
    }

    /// Current log length (bounded by `checkpoint_every`).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy replicated state: an append-only tally keyed by small ids.
    #[derive(Debug, Clone, PartialEq, Default)]
    struct Tally {
        counts: std::collections::BTreeMap<u32, u64>,
    }

    #[derive(Debug, Clone)]
    enum TallyOp {
        Add(u32, u64),
        Reset(u32),
    }

    impl Replicated for Tally {
        type Op = TallyOp;
        fn apply(&mut self, op: &TallyOp) {
            match op {
                TallyOp::Add(k, n) => *self.counts.entry(*k).or_insert(0) += n,
                TallyOp::Reset(k) => {
                    self.counts.remove(k);
                }
            }
        }
    }

    #[test]
    fn backup_shadows_primary_in_realtime() {
        let mut pb = PrimaryBackup::new(Tally::default(), 100);
        pb.apply(TallyOp::Add(1, 5)).unwrap();
        pb.apply(TallyOp::Add(2, 7)).unwrap();
        pb.apply(TallyOp::Reset(1)).unwrap();
        assert_eq!(pb.serving(), pb.monitor(), "shadow is in lockstep");
        assert_eq!(pb.monitor().counts.get(&2), Some(&7));
    }

    #[test]
    fn failover_is_lossless() {
        let mut pb = PrimaryBackup::new(Tally::default(), 100);
        for i in 0..50 {
            pb.apply(TallyOp::Add(i % 5, 1)).unwrap();
        }
        let before = pb.serving().clone();
        pb.fail_primary();
        assert!(!pb.primary_alive());
        assert_eq!(pb.serving(), &before, "backup serves identical state");
        // Mutations on a crashed primary are refused, not silently lost.
        assert!(pb.apply(TallyOp::Add(1, 1)).is_err());
    }

    #[test]
    fn recovery_replays_checkpoint_plus_log() {
        let mut pb = PrimaryBackup::new(Tally::default(), 10);
        for i in 0..25 {
            pb.apply(TallyOp::Add(1, i)).unwrap();
        }
        // 25 ops with checkpoint_every=10 → log holds 5 entries.
        assert_eq!(pb.log_len(), 5);
        let state = pb.serving().clone();
        pb.fail_primary();
        pb.recover_primary();
        assert!(pb.primary_alive());
        assert_eq!(pb.serving(), &state, "replayed primary matches");
    }

    #[test]
    fn checkpointing_bounds_the_log() {
        let mut pb = PrimaryBackup::new(Tally::default(), 8);
        for _ in 0..1000 {
            pb.apply(TallyOp::Add(0, 1)).unwrap();
        }
        assert!(pb.log_len() < 8);
        assert_eq!(pb.monitor().counts.get(&0), Some(&1000));
    }
}
