//! Topology-derived multi-level merge tree with a hash-partitioned
//! repartition exchange (ROADMAP item 2; execution tree of §III-B).
//!
//! The legacy merge was a fixed two-level shape: leaves chunked into
//! stems in submission order with hop counts hard-coded to 2 and 4, and
//! the master serially re-merging every stem's full group map. This
//! module derives the tree from the [`Topology`] instead: aggregate
//! transports merge rack-local first (stem placed on the lowest-id
//! member node), rack stems merge per data center, and the DC stems feed
//! the master — every level billed at the *real* uplink distance of its
//! worst-placed child, with receive time serialized over the merger's
//! ingress link (the sum of child payloads, not the largest). On top of
//! the shape, grouped aggregates flow through a repartition exchange:
//! each stem level runs P partition mergers (group keys routed by
//! seedless FxHash), so no merger ever materializes the full group map,
//! each ingress link carries only a 1/P hash slice, and the master
//! concatenates P disjoint partitions instead of re-merging them.
//!
//! Determinism (§12): partition merges are pure functions of their
//! inputs, executed on the PR 2 execution pool but collected in
//! (group, partition) submission order; all billing derives from
//! per-partition folded row counts. Results, stats and profiles are
//! bit-identical at any thread count. Row scans keep the
//! submission-contiguous two-level chunking so result row order is
//! untouched — only their hop billing comes from the topology now.
//!
//! [`Topology`]: feisu_cluster::Topology

use crate::engine::FeisuCluster;
use crate::master::pipeline::ExecCtx;
use crate::master::scan_exec::TaskRun;
use crate::stem::{self, AggShape, StemOutput};
use feisu_cluster::simclock::TimeTally;
use feisu_common::config::MergeTreeShape;
use feisu_common::hash::FxHashMap;
use feisu_common::{ByteSize, FeisuError, NodeId, Result, SimInstant};
use feisu_exec::batch::RecordBatch;
use feisu_obs::SpanId;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One finished (group × partition) merge: its slot index paired with
/// the merged partition batch and folded row count.
type PartitionMerge = (usize, Result<(RecordBatch, usize)>);

/// One materialized node of the merge tree: a leaf task's output or a
/// stem's merged output, with the bookkeeping needed to bill, span and
/// merge it one level further up.
struct MergeNode {
    /// Transport batches: one for row results and unpartitioned
    /// aggregates, P disjoint partitions after an exchange level.
    parts: Vec<RecordBatch>,
    tally: TimeTally,
    /// Span extent on the query-relative timeline.
    start_ns: u64,
    end_ns: u64,
    span: Option<SpanId>,
    /// Node hosting this output (task's executing node, or the stem's
    /// placement) — the child end of the next uplink.
    node: NodeId,
}

impl MergeNode {
    /// Bytes this node ships up the next uplink.
    fn payload(&self) -> u64 {
        self.parts.iter().map(|b| b.footprint() as u64).sum()
    }
}

impl FeisuCluster {
    /// Merges the kept leaf-task outputs bottom-up into the final scan
    /// result, recording stem spans under `op_span` and per-level wire
    /// bytes into `ctx`. Returns the root output; the caller charges its
    /// cpu+network on top of the leaf critical path.
    pub(crate) fn merge_scan_results(
        &self,
        kept: Vec<TaskRun>,
        agg_ref: Option<AggShape<'_>>,
        ctx: &mut ExecCtx,
        op_span: SpanId,
    ) -> Result<StemOutput> {
        let is_agg = kept.iter().any(|r| r.out.is_agg_transport);
        if is_agg && kept.iter().any(|r| !r.out.is_agg_transport) {
            return Err(FeisuError::Internal(
                "mixed aggregate and row outputs at stem".into(),
            ));
        }
        let cfg = &self.spec.config;
        let per_stem = cfg.leaves_per_stem.max(1);
        // The master is the root of the tree; by convention it lives on
        // the first (lowest-id) node of the topology.
        let master = self
            .topology
            .nodes()
            .first()
            .map(|n| n.id)
            .ok_or_else(|| FeisuError::Internal("merge tree over empty topology".into()))?;

        let nodes: Vec<MergeNode> = kept
            .into_iter()
            .map(|r| MergeNode {
                parts: vec![r.out.batch],
                tally: r.out.tally,
                start_ns: r.start_ns,
                end_ns: r.end_ns,
                span: Some(r.span),
                node: r.node,
            })
            .collect();

        if !is_agg {
            return self.merge_row_tree(nodes, ctx, op_span, per_stem, master);
        }

        let shape = agg_ref.ok_or_else(|| {
            FeisuError::Internal("aggregate transport without aggregate shape".into())
        })?;
        let multi_level = cfg.merge_tree.shape == MergeTreeShape::Topology;
        // Global aggregates carry a single fused state per transport —
        // nothing to partition; the exchange applies to grouped
        // aggregates under the topology shape only.
        let parts = if multi_level && !shape.0.is_empty() {
            cfg.merge_tree.exchange_partitions.max(1)
        } else {
            1
        };

        let mut nodes = nodes;
        let stem_levels = if multi_level { 2 } else { 1 };
        for level in 1..=stem_levels {
            let groups = if !multi_level {
                chunk_groups(nodes.len(), per_stem)
            } else if level == 1 {
                self.keyed_groups(&nodes, per_stem, |n| n.rack)?
            } else {
                self.keyed_groups(&nodes, per_stem, |n| n.datacenter)?
            };
            let consumed: u64 = nodes.iter().map(|n| n.payload()).sum();
            if level == 1 {
                ctx.wire_leaf_stem += consumed;
            } else {
                ctx.wire_rack_dc += consumed;
            }
            nodes =
                self.merge_agg_level(ctx, &nodes, &groups, shape, parts, level, None, op_span)?;
        }

        // Root: the stems ship up to the master, which runs the final P
        // partition mergers and concatenates their disjoint outputs.
        let up: u64 = nodes.iter().map(|n| n.payload()).sum();
        ctx.wire_stem_master += up;
        ctx.spans.attr(op_span, "wire_to_master", ByteSize(up));
        let all: Vec<usize> = (0..nodes.len()).collect();
        let mut root = self
            .merge_agg_level(ctx, &nodes, &[all], shape, parts, 0, Some(master), op_span)?
            .pop()
            .expect("one root group yields one output");
        let batch = if root.parts.len() == 1 {
            root.parts.pop().expect("single partition")
        } else {
            RecordBatch::concat(&root.parts)?
        };
        Ok(StemOutput {
            batch,
            is_agg_transport: true,
            tally: root.tally,
        })
    }

    /// Row results: submission-contiguous chunks into stems, then one
    /// root concat — the legacy two-level shape (row order is part of
    /// the result contract), but with uplink hops derived from the
    /// topology instead of the literals 2 and 4.
    fn merge_row_tree(
        &self,
        nodes: Vec<MergeNode>,
        ctx: &mut ExecCtx,
        op_span: SpanId,
        per_stem: usize,
        master: NodeId,
    ) -> Result<StemOutput> {
        let groups = chunk_groups(nodes.len(), per_stem);
        ctx.wire_leaf_stem += nodes.iter().map(|n| n.payload()).sum::<u64>();
        let mut stems: Vec<StemOutput> = Vec::with_capacity(groups.len());
        let mut stem_nodes: Vec<NodeId> = Vec::with_capacity(groups.len());
        for group in &groups {
            let stem_node = group
                .iter()
                .map(|&i| nodes[i].node)
                .min()
                .expect("groups are nonempty");
            let hops = self
                .topology
                .uplink_hops(group.iter().map(|&i| nodes[i].node), stem_node)?;
            let meta = self.level_meta(&nodes, group);
            let wire: u64 = group.iter().map(|&i| nodes[i].payload()).sum();
            let children: Vec<StemOutput> = group
                .iter()
                .map(|&i| StemOutput {
                    batch: nodes[i].parts[0].clone(),
                    is_agg_transport: false,
                    tally: nodes[i].tally,
                })
                .collect();
            let out = stem::merge_outputs(children, None, &self.spec.cost, hops)?;
            self.record_stem_span(
                ctx, op_span, &nodes, group, &meta, &out.tally, 1, wire, stem_node,
            );
            stem_nodes.push(stem_node);
            stems.push(out);
        }
        let up: u64 = stems.iter().map(|s| s.batch.footprint() as u64).sum();
        ctx.wire_stem_master += up;
        ctx.spans.attr(op_span, "wire_to_master", ByteSize(up));
        let hops = self.topology.uplink_hops(stem_nodes, master)?;
        stem::merge_outputs(stems, None, &self.spec.cost, hops)
    }

    /// Merges one level of aggregate-transport groups, all (group ×
    /// partition) merges scheduled on the execution pool. `level` 0 with
    /// a `stem_override` is the root (no span, placed on the master);
    /// stem levels record spans and re-parent their children.
    #[allow(clippy::too_many_arguments)]
    fn merge_agg_level(
        &self,
        ctx: &mut ExecCtx,
        nodes: &[MergeNode],
        groups: &[Vec<usize>],
        shape: AggShape<'_>,
        parts: usize,
        level: usize,
        stem_override: Option<NodeId>,
        op_span: SpanId,
    ) -> Result<Vec<MergeNode>> {
        // Placement and billing metadata per group.
        let mut placements = Vec::with_capacity(groups.len());
        for group in groups {
            let stem_node = stem_override.unwrap_or_else(|| {
                group
                    .iter()
                    .map(|&i| nodes[i].node)
                    .min()
                    .expect("groups are nonempty")
            });
            let hops = self
                .topology
                .uplink_hops(group.iter().map(|&i| nodes[i].node), stem_node)?;
            let cores = self.topology.node(stem_node)?.cores;
            placements.push((stem_node, hops, cores));
        }

        // Fan the (group × partition) merges out on the execution pool.
        // Each item is a pure function of its inputs; results land in a
        // fixed slot, so collection order — and thus everything billed
        // from it — is independent of worker scheduling.
        let child_slices: Vec<Vec<&[RecordBatch]>> = groups
            .iter()
            .map(|g| g.iter().map(|&i| nodes[i].parts.as_slice()).collect())
            .collect();
        let items: Vec<(usize, usize)> = (0..groups.len())
            .flat_map(|g| (0..parts).map(move |p| (g, p)))
            .collect();
        let threads = self.effective_threads().min(items.len().max(1));
        let mut slots: Vec<Option<Result<(RecordBatch, usize)>>> =
            (0..items.len()).map(|_| None).collect();
        if threads <= 1 {
            for (slot, &(g, p)) in slots.iter_mut().zip(&items) {
                *slot = Some(stem::merge_agg_partition(shape, &child_slices[g], p, parts));
            }
        } else {
            let next = AtomicUsize::new(0);
            let done: Vec<Vec<PartitionMerge>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let (next, items, child_slices) = (&next, &items, &child_slices);
                        s.spawn(move || {
                            let mut out = Vec::new();
                            loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&(g, p)) = items.get(k) else { break };
                                out.push((
                                    k,
                                    stem::merge_agg_partition(shape, &child_slices[g], p, parts),
                                ));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("partition merger panicked"))
                    .collect()
            });
            for chunk in done {
                for (k, r) in chunk {
                    slots[k] = Some(r);
                }
            }
        }

        // Assemble each group's stem output in submission order.
        let mut out = Vec::with_capacity(groups.len());
        for (gi, group) in groups.iter().enumerate() {
            let mut part_batches = Vec::with_capacity(parts);
            let mut part_rows = Vec::with_capacity(parts);
            for p in 0..parts {
                let (batch, rows) = slots[gi * parts + p]
                    .take()
                    .expect("every partition slot filled")?;
                part_batches.push(batch);
                part_rows.push(rows);
            }
            let (stem_node, hops, cores) = placements[gi];
            let tallies: Vec<TimeTally> = group.iter().map(|&i| nodes[i].tally).collect();
            let mut tally = TimeTally::join_parallel(&tallies);
            // Children send in parallel but their transports converge on
            // the merger's ingress link, so elapsed receive time scales
            // with the *sum* of child payloads — this is why flat fan-in
            // loses and the tree wins. The exchange splits that ingress
            // across P partition mergers on disjoint links, each pulling
            // its hash slice of every child concurrently.
            let ingress: u64 = group.iter().map(|&i| nodes[i].payload()).sum();
            let per_merger = ingress.div_ceil(parts.max(1) as u64);
            tally.add_network(self.spec.cost.network(hops, ByteSize(per_merger)));
            // P mergers run in parallel on the stem: billed at the max of
            // the largest partition and an ideal split across the stem's
            // cores. Zero-row merges keep the legacy 1-row floor.
            let folded: usize = part_rows.iter().sum();
            if folded == 0 {
                tally.add_cpu(self.spec.cost.agg_merge(1));
            } else {
                tally.add_cpu(self.spec.cost.parallel_agg_merge(&part_rows, cores));
            }
            let meta = self.level_meta(nodes, group);
            let mut node = MergeNode {
                parts: part_batches,
                tally,
                start_ns: meta.child_min,
                end_ns: meta.child_max,
                span: None,
                node: stem_node,
            };
            if stem_override.is_none() {
                let wire: u64 = group.iter().map(|&i| nodes[i].payload()).sum();
                node.span = Some(self.record_stem_span(
                    ctx,
                    op_span,
                    nodes,
                    group,
                    &meta,
                    &node.tally,
                    level,
                    wire,
                    stem_node,
                ));
                node.end_ns = meta.child_max
                    + node
                        .tally
                        .total()
                        .as_nanos()
                        .saturating_sub(meta.slowest_child.as_nanos());
            }
            out.push(node);
        }
        Ok(out)
    }

    /// Child-extent metadata for span and timeline bookkeeping.
    fn level_meta(&self, nodes: &[MergeNode], group: &[usize]) -> LevelMeta {
        LevelMeta {
            child_min: group.iter().map(|&i| nodes[i].start_ns).min().unwrap_or(0),
            child_max: group.iter().map(|&i| nodes[i].end_ns).max().unwrap_or(0),
            slowest_child: group
                .iter()
                .map(|&i| nodes[i].tally.total())
                .fold(feisu_common::SimDuration::ZERO, |a, b| a.max(b)),
        }
    }

    /// Records one stem's span: starts with its earliest child, ends
    /// after the slowest child plus the stem's own merge time on top;
    /// children (leaf tasks or lower stems) are re-parented beneath it.
    #[allow(clippy::too_many_arguments)]
    fn record_stem_span(
        &self,
        ctx: &mut ExecCtx,
        op_span: SpanId,
        nodes: &[MergeNode],
        group: &[usize],
        meta: &LevelMeta,
        tally: &TimeTally,
        level: usize,
        wire: u64,
        stem_node: NodeId,
    ) -> SpanId {
        let extra = tally
            .total()
            .as_nanos()
            .saturating_sub(meta.slowest_child.as_nanos());
        let span = ctx.spans.record(
            "stem",
            None,
            SimInstant(meta.child_min),
            SimInstant(meta.child_max + extra),
        );
        ctx.spans.attr(span, "level", level);
        ctx.spans.attr(span, "tasks", group.len());
        ctx.spans.attr(span, "wire_bytes", ByteSize(wire));
        ctx.spans.attr(span, "node", stem_node.to_string());
        for &i in group {
            if let Some(child) = nodes[i].span {
                ctx.spans.set_parent(child, Some(span));
            }
        }
        ctx.spans.set_parent(span, Some(op_span));
        span
    }

    /// Groups node indices by a topology attribute of their hosting node
    /// (rack, then data center as the tree rises), preserving submission
    /// order: groups are ordered by first appearance, members keep their
    /// relative order, and oversized groups split at the stem fan-in.
    fn keyed_groups(
        &self,
        nodes: &[MergeNode],
        cap: usize,
        key: impl Fn(&feisu_cluster::NodeInfo) -> u32,
    ) -> Result<Vec<Vec<usize>>> {
        let mut order: Vec<u32> = Vec::new();
        let mut members: FxHashMap<u32, Vec<usize>> = FxHashMap::default();
        for (i, n) in nodes.iter().enumerate() {
            let k = key(self.topology.node(n.node)?);
            members.entry(k).or_insert_with(|| {
                order.push(k);
                Vec::new()
            });
            members.get_mut(&k).expect("just inserted").push(i);
        }
        let mut groups = Vec::new();
        for k in order {
            let m = members.remove(&k).expect("keyed above");
            for chunk in m.chunks(cap) {
                groups.push(chunk.to_vec());
            }
        }
        Ok(groups)
    }
}

/// Submission-contiguous chunks of at most `cap` indices.
fn chunk_groups(len: usize, cap: usize) -> Vec<Vec<usize>> {
    (0..len)
        .collect::<Vec<_>>()
        .chunks(cap)
        .map(|c| c.to_vec())
        .collect()
}

struct LevelMeta {
    child_min: u64,
    child_max: u64,
    slowest_child: feisu_common::SimDuration,
}
