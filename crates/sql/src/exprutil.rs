//! Shared expression rewriting utilities.
//!
//! Both sides of the engine rename column references between the
//! *canonical* namespace the planner uses (possibly `table.column`
//! qualified) and the *storage* namespace blocks are written with (bare
//! column names, or dotted flattened-JSON paths). The leaf servers rename
//! through an explicit canonical→storage map; the oracle executor simply
//! strips qualifiers. Keeping the recursion in one place keeps the two
//! sides from drifting.

use crate::ast::Expr;
use crate::cnf::{Clause, Cnf, Disjunct, SimplePredicate};
use feisu_common::hash::FxHashMap;

/// Rewrites every column reference in `e` through `f`.
pub fn map_columns(e: &Expr, f: &impl Fn(&str) -> String) -> Expr {
    match e {
        Expr::Column(c) => Expr::Column(f(c)),
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(map_columns(left, f)),
            right: Box::new(map_columns(right, f)),
        },
        Expr::Unary { op, operand } => Expr::Unary {
            op: *op,
            operand: Box::new(map_columns(operand, f)),
        },
        Expr::IsNull { operand, negated } => Expr::IsNull {
            operand: Box::new(map_columns(operand, f)),
            negated: *negated,
        },
        Expr::Aggregate { func, arg, within } => Expr::Aggregate {
            func: *func,
            arg: arg.as_ref().map(|a| Box::new(map_columns(a, f))),
            within: within.as_ref().map(|w| Box::new(map_columns(w, f))),
        },
    }
}

/// Renames column refs in an expression through the canonical→storage
/// map; unmapped names pass through unchanged.
pub fn rename_expr(e: &Expr, map: &FxHashMap<String, String>) -> Expr {
    map_columns(e, &|c| map.get(c).cloned().unwrap_or_else(|| c.to_string()))
}

/// Renames CNF predicate columns through the canonical→storage map.
pub fn rename_cnf(cnf: &Cnf, map: &FxHashMap<String, String>) -> Cnf {
    Cnf {
        clauses: cnf
            .clauses
            .iter()
            .map(|c| Clause {
                disjuncts: c
                    .disjuncts
                    .iter()
                    .map(|d| match d {
                        Disjunct::Simple(p) => Disjunct::Simple(SimplePredicate {
                            column: map
                                .get(&p.column)
                                .cloned()
                                .unwrap_or_else(|| p.column.clone()),
                            op: p.op,
                            value: p.value.clone(),
                        }),
                        Disjunct::Residual(e) => Disjunct::Residual(rename_expr(e, map)),
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Rewrites `t.c` column references to bare `c` (scan-local storage
/// names).
pub fn strip_qualifiers(e: &Expr) -> Expr {
    map_columns(e, &|c| c.rsplit('.').next().unwrap_or(c).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn where_expr(sql: &str) -> Expr {
        parse_query(sql).unwrap().where_clause.unwrap()
    }

    fn map(pairs: &[(&str, &str)]) -> FxHashMap<String, String> {
        pairs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn rename_expr_maps_and_passes_through() {
        let e = where_expr("SELECT a FROM t WHERE t.clicks > 5 AND other = 1");
        let renamed = rename_expr(&e, &map(&[("t.clicks", "clicks")]));
        let s = renamed.to_string();
        assert!(s.contains("clicks > 5"), "{s}");
        assert!(!s.contains("t.clicks"), "{s}");
        // Unmapped columns survive unchanged.
        assert!(s.contains("other = 1"), "{s}");
    }

    #[test]
    fn rename_expr_descends_into_aggregates_and_unary() {
        let q = parse_query("SELECT SUM(t.x) FROM t WHERE NOT (t.x IS NULL)").unwrap();
        let agg = &q.select[0].expr;
        let renamed = rename_expr(agg, &map(&[("t.x", "x")]));
        assert_eq!(renamed.to_string(), "SUM(x)");
        let w = rename_expr(&q.where_clause.unwrap(), &map(&[("t.x", "x")]));
        assert!(!w.to_string().contains("t.x"), "{w}");
    }

    #[test]
    fn rename_cnf_renames_simple_and_residual_disjuncts() {
        let e = where_expr("SELECT a FROM t WHERE t.a > 1 AND (t.b = 2 OR t.c IS NULL)");
        let cnf = crate::cnf::to_cnf(&e);
        let renamed = rename_cnf(&cnf, &map(&[("t.a", "a"), ("t.b", "b"), ("t.c", "c")]));
        let shown: Vec<String> = renamed
            .clauses
            .iter()
            .map(|c| c.to_expr().to_string())
            .collect();
        for s in &shown {
            assert!(!s.contains("t."), "{s}");
        }
    }

    #[test]
    fn strip_qualifiers_keeps_last_segment() {
        let e = where_expr("SELECT a FROM t WHERE t.clicks > 5 AND bare = 1");
        let s = strip_qualifiers(&e).to_string();
        assert!(s.contains("(clicks > 5)"), "{s}");
        assert!(s.contains("(bare = 1)"), "{s}");
    }

    #[test]
    fn strip_qualifiers_is_identity_on_bare_names() {
        let e = where_expr("SELECT a FROM t WHERE clicks > 5");
        assert_eq!(strip_qualifiers(&e), e);
    }
}
