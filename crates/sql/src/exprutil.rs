//! Shared expression rewriting utilities.
//!
//! Both sides of the engine rename column references between the
//! *canonical* namespace the planner uses (possibly `table.column`
//! qualified) and the *storage* namespace blocks are written with (bare
//! column names, or dotted flattened-JSON paths). The leaf servers rename
//! through an explicit canonical→storage map; the oracle executor simply
//! strips qualifiers. Keeping the recursion in one place keeps the two
//! sides from drifting.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::cnf::{Clause, Cnf, Disjunct, SimplePredicate};
use feisu_common::hash::FxHashMap;
use feisu_format::{Schema, Value};

/// Rewrites every column reference in `e` through `f`.
pub fn map_columns(e: &Expr, f: &impl Fn(&str) -> String) -> Expr {
    match e {
        Expr::Column(c) => Expr::Column(f(c)),
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(map_columns(left, f)),
            right: Box::new(map_columns(right, f)),
        },
        Expr::Unary { op, operand } => Expr::Unary {
            op: *op,
            operand: Box::new(map_columns(operand, f)),
        },
        Expr::IsNull { operand, negated } => Expr::IsNull {
            operand: Box::new(map_columns(operand, f)),
            negated: *negated,
        },
        Expr::Aggregate { func, arg, within } => Expr::Aggregate {
            func: *func,
            arg: arg.as_ref().map(|a| Box::new(map_columns(a, f))),
            within: within.as_ref().map(|w| Box::new(map_columns(w, f))),
        },
    }
}

/// Renames column refs in an expression through the canonical→storage
/// map; unmapped names pass through unchanged.
pub fn rename_expr(e: &Expr, map: &FxHashMap<String, String>) -> Expr {
    map_columns(e, &|c| map.get(c).cloned().unwrap_or_else(|| c.to_string()))
}

/// Renames CNF predicate columns through the canonical→storage map.
pub fn rename_cnf(cnf: &Cnf, map: &FxHashMap<String, String>) -> Cnf {
    Cnf {
        clauses: cnf
            .clauses
            .iter()
            .map(|c| Clause {
                disjuncts: c
                    .disjuncts
                    .iter()
                    .map(|d| match d {
                        Disjunct::Simple(p) => Disjunct::Simple(SimplePredicate {
                            column: map
                                .get(&p.column)
                                .cloned()
                                .unwrap_or_else(|| p.column.clone()),
                            op: p.op,
                            value: p.value.clone(),
                        }),
                        Disjunct::Residual(e) => Disjunct::Residual(rename_expr(e, map)),
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Rewrites `t.c` column references to bare `c` (scan-local storage
/// names).
pub fn strip_qualifiers(e: &Expr) -> Expr {
    map_columns(e, &|c| c.rsplit('.').next().unwrap_or(c).to_string())
}

// ------------------------------------------------- boolean simplification
//
// The single home for trivial-predicate detection and NOT-handling. The
// optimizer's simplification rule, the CNF converter and the index
// rewriter all share these, so the three sites cannot drift.

/// Detects trivially-false predicates (`literal false`), letting the
/// engine skip whole scans. Conservative: only a literal `false`.
pub fn predicate_is_false(e: &Expr) -> bool {
    matches!(e, Expr::Literal(Value::Bool(false)))
}

/// Detects trivially-true predicates so filters can be dropped.
pub fn predicate_is_true(e: &Expr) -> bool {
    matches!(e, Expr::Literal(Value::Bool(true)))
}

/// Strips double negation (`NOT NOT x` → `x`); cheap clean-up used by the
/// index rewriter.
pub fn simplify_not(e: &Expr) -> Expr {
    match e {
        Expr::Unary {
            op: UnaryOp::Not,
            operand,
        } => match operand.as_ref() {
            Expr::Unary {
                op: UnaryOp::Not,
                operand: inner,
            } => simplify_not(inner),
            _ => Expr::not(simplify_not(operand)),
        },
        Expr::Binary { op, left, right } => {
            Expr::binary(*op, simplify_not(left), simplify_not(right))
        }
        other => other.clone(),
    }
}

/// Pushes negation down to the leaves (negation-normal form). Comparisons
/// absorb the negation via `BinaryOp::negate`; anything else keeps an
/// explicit NOT. With `negated = false` this is a plain NNF normalizer;
/// the CNF converter calls it before distributing OR over AND.
pub fn push_not(expr: &Expr, negated: bool) -> Expr {
    match expr {
        Expr::Unary {
            op: UnaryOp::Not,
            operand,
        } => push_not(operand, !negated),
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            let (l, r) = (push_not(left, negated), push_not(right, negated));
            if negated {
                Expr::or(l, r)
            } else {
                Expr::and(l, r)
            }
        }
        Expr::Binary {
            op: BinaryOp::Or,
            left,
            right,
        } => {
            let (l, r) = (push_not(left, negated), push_not(right, negated));
            if negated {
                Expr::and(l, r)
            } else {
                Expr::or(l, r)
            }
        }
        Expr::Binary { op, left, right } if negated && op.is_comparison() => match op.negate() {
            Some(neg) => Expr::binary(neg, (**left).clone(), (**right).clone()),
            None => Expr::not(expr.clone()),
        },
        Expr::IsNull {
            operand,
            negated: n,
        } if negated => Expr::IsNull {
            operand: operand.clone(),
            negated: !n,
        },
        _ if negated => Expr::not(expr.clone()),
        _ => expr.clone(),
    }
}

/// Is the literal an `Int64` zero? (The only zero that arithmetic
/// identities may drop without changing the expression's result type.)
fn is_int_zero(e: &Expr) -> bool {
    matches!(e, Expr::Literal(Value::Int64(0)))
}

fn is_int_one(e: &Expr) -> bool {
    matches!(e, Expr::Literal(Value::Int64(1)))
}

/// Bottom-up boolean/arithmetic identity simplification, safe under SQL
/// three-valued logic:
///
/// - `x AND TRUE → x`, `x AND FALSE → FALSE` (NULL AND FALSE is FALSE),
///   `x OR FALSE → x`, `x OR TRUE → TRUE` (NULL OR TRUE is TRUE)
/// - `NOT NOT x → x`, `NOT literal → literal`
/// - `x + 0 → x`, `x - 0 → x`, `x * 1 → x`, `x / 1 → x` — only for
///   `Int64` literals so the result type never widens or narrows. Note
///   `x * 0` is *not* folded: `NULL * 0` is NULL, not 0.
pub fn simplify_expr(e: &Expr) -> Expr {
    match e {
        Expr::Binary { op, left, right } => {
            let l = simplify_expr(left);
            let r = simplify_expr(right);
            match op {
                BinaryOp::And => {
                    if predicate_is_true(&l) {
                        return r;
                    }
                    if predicate_is_true(&r) {
                        return l;
                    }
                    if predicate_is_false(&l) || predicate_is_false(&r) {
                        return Expr::Literal(Value::Bool(false));
                    }
                    Expr::and(l, r)
                }
                BinaryOp::Or => {
                    if predicate_is_false(&l) {
                        return r;
                    }
                    if predicate_is_false(&r) {
                        return l;
                    }
                    if predicate_is_true(&l) || predicate_is_true(&r) {
                        return Expr::Literal(Value::Bool(true));
                    }
                    Expr::or(l, r)
                }
                BinaryOp::Plus => {
                    if is_int_zero(&l) {
                        return r;
                    }
                    if is_int_zero(&r) {
                        return l;
                    }
                    Expr::binary(*op, l, r)
                }
                BinaryOp::Minus if is_int_zero(&r) => l,
                BinaryOp::Multiply => {
                    if is_int_one(&l) {
                        return r;
                    }
                    if is_int_one(&r) {
                        return l;
                    }
                    Expr::binary(*op, l, r)
                }
                BinaryOp::Divide if is_int_one(&r) => l,
                _ => Expr::binary(*op, l, r),
            }
        }
        Expr::Unary {
            op: UnaryOp::Not,
            operand,
        } => match simplify_expr(operand) {
            Expr::Unary {
                op: UnaryOp::Not,
                operand: inner,
            } => *inner,
            Expr::Literal(Value::Bool(b)) => Expr::Literal(Value::Bool(!b)),
            other => Expr::not(other),
        },
        Expr::Unary { op, operand } => Expr::Unary {
            op: *op,
            operand: Box::new(simplify_expr(operand)),
        },
        Expr::IsNull { operand, negated } => Expr::IsNull {
            operand: Box::new(simplify_expr(operand)),
            negated: *negated,
        },
        other => other.clone(),
    }
}

// --------------------------------------------------------- schema queries

/// True when `e` references at least one column and every referenced
/// column exists in `schema`.
pub fn refs_within(e: &Expr, schema: &Schema) -> bool {
    let mut cols = Vec::new();
    e.columns(&mut cols);
    !cols.is_empty() && cols.iter().all(|c| schema.index_of(c).is_some())
}

/// True when `e` is an equality whose sides reference columns entirely
/// within `left`/`right` respectively (in either orientation) — i.e. a
/// conjunct that can serve as a hash-join key across that boundary.
pub fn equi_across(e: &Expr, left: &Schema, right: &Schema) -> bool {
    let Expr::Binary {
        op: BinaryOp::Eq,
        left: a,
        right: b,
    } = e
    else {
        return false;
    };
    (refs_within(a, left) && refs_within(b, right))
        || (refs_within(a, right) && refs_within(b, left))
}

/// Folds conjuncts back into a single `AND` chain; `None` when empty.
pub fn combine_conjuncts(conjuncts: Vec<Expr>) -> Option<Expr> {
    let mut it = conjuncts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, Expr::and))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn where_expr(sql: &str) -> Expr {
        parse_query(sql).unwrap().where_clause.unwrap()
    }

    fn map(pairs: &[(&str, &str)]) -> FxHashMap<String, String> {
        pairs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn rename_expr_maps_and_passes_through() {
        let e = where_expr("SELECT a FROM t WHERE t.clicks > 5 AND other = 1");
        let renamed = rename_expr(&e, &map(&[("t.clicks", "clicks")]));
        let s = renamed.to_string();
        assert!(s.contains("clicks > 5"), "{s}");
        assert!(!s.contains("t.clicks"), "{s}");
        // Unmapped columns survive unchanged.
        assert!(s.contains("other = 1"), "{s}");
    }

    #[test]
    fn rename_expr_descends_into_aggregates_and_unary() {
        let q = parse_query("SELECT SUM(t.x) FROM t WHERE NOT (t.x IS NULL)").unwrap();
        let agg = &q.select[0].expr;
        let renamed = rename_expr(agg, &map(&[("t.x", "x")]));
        assert_eq!(renamed.to_string(), "SUM(x)");
        let w = rename_expr(&q.where_clause.unwrap(), &map(&[("t.x", "x")]));
        assert!(!w.to_string().contains("t.x"), "{w}");
    }

    #[test]
    fn rename_cnf_renames_simple_and_residual_disjuncts() {
        let e = where_expr("SELECT a FROM t WHERE t.a > 1 AND (t.b = 2 OR t.c IS NULL)");
        let cnf = crate::cnf::to_cnf(&e);
        let renamed = rename_cnf(&cnf, &map(&[("t.a", "a"), ("t.b", "b"), ("t.c", "c")]));
        let shown: Vec<String> = renamed
            .clauses
            .iter()
            .map(|c| c.to_expr().to_string())
            .collect();
        for s in &shown {
            assert!(!s.contains("t."), "{s}");
        }
    }

    #[test]
    fn strip_qualifiers_keeps_last_segment() {
        let e = where_expr("SELECT a FROM t WHERE t.clicks > 5 AND bare = 1");
        let s = strip_qualifiers(&e).to_string();
        assert!(s.contains("(clicks > 5)"), "{s}");
        assert!(s.contains("(bare = 1)"), "{s}");
    }

    #[test]
    fn strip_qualifiers_is_identity_on_bare_names() {
        let e = where_expr("SELECT a FROM t WHERE clicks > 5");
        assert_eq!(strip_qualifiers(&e), e);
    }

    fn expr(src: &str) -> Expr {
        crate::parser::parse_expr(src).unwrap()
    }

    #[test]
    fn trivial_predicates_detected() {
        use feisu_format::Value;
        assert!(predicate_is_false(&Expr::Literal(Value::Bool(false))));
        assert!(predicate_is_true(&Expr::Literal(Value::Bool(true))));
        assert!(!predicate_is_false(&expr("x > 2")));
        assert!(!predicate_is_true(&expr("x > 2")));
    }

    #[test]
    fn double_negation_stripped() {
        let e = expr("NOT NOT (x > 1)");
        assert_eq!(simplify_not(&e).to_string(), "(x > 1)");
        let e = expr("NOT NOT NOT (x > 1)");
        assert_eq!(simplify_not(&e).to_string(), "(NOT (x > 1))");
    }

    #[test]
    fn simplify_boolean_identities() {
        assert_eq!(
            simplify_expr(&expr("x > 1 AND true")).to_string(),
            "(x > 1)"
        );
        assert_eq!(
            simplify_expr(&expr("true AND x > 1")).to_string(),
            "(x > 1)"
        );
        assert_eq!(simplify_expr(&expr("x > 1 AND false")).to_string(), "false");
        assert_eq!(
            simplify_expr(&expr("x > 1 OR false")).to_string(),
            "(x > 1)"
        );
        assert_eq!(simplify_expr(&expr("x > 1 OR true")).to_string(), "true");
        assert_eq!(
            simplify_expr(&expr("NOT NOT (x > 1)")).to_string(),
            "(x > 1)"
        );
        assert_eq!(simplify_expr(&expr("NOT false")).to_string(), "true");
        // Nested: the AND collapses first, then the OR.
        assert_eq!(
            simplify_expr(&expr("(x > 1 AND false) OR y = 2")).to_string(),
            "(y = 2)"
        );
    }

    #[test]
    fn simplify_arithmetic_identities() {
        assert_eq!(simplify_expr(&expr("x + 0")).to_string(), "x");
        assert_eq!(simplify_expr(&expr("0 + x")).to_string(), "x");
        assert_eq!(simplify_expr(&expr("x - 0")).to_string(), "x");
        assert_eq!(simplify_expr(&expr("x * 1")).to_string(), "x");
        assert_eq!(simplify_expr(&expr("1 * x")).to_string(), "x");
        assert_eq!(simplify_expr(&expr("x / 1")).to_string(), "x");
        // NULL * 0 is NULL, so x * 0 must NOT fold to 0.
        assert_eq!(simplify_expr(&expr("x * 0")).to_string(), "(x * 0)");
        // Float zero would change an Int64 expression's type: keep it.
        let float_add = expr("x + 0.0");
        assert_eq!(simplify_expr(&float_add), float_add);
    }

    #[test]
    fn push_not_absorbs_comparisons() {
        let e = expr("NOT (a > 1)");
        assert_eq!(push_not(&e, false).to_string(), "(a <= 1)");
        // De Morgan through AND.
        let e = expr("NOT (a > 1 AND b > 2)");
        assert_eq!(push_not(&e, false).to_string(), "((a <= 1) OR (b <= 2))");
    }

    #[test]
    fn refs_within_and_equi_across() {
        use feisu_format::{DataType, Field, Schema};
        let l = Schema::new(vec![Field::new("t1.url", DataType::Utf8, false)]);
        let r = Schema::new(vec![Field::new("t2.url", DataType::Utf8, false)]);
        assert!(refs_within(&expr("t1.url = 'x'"), &l));
        assert!(!refs_within(&expr("t1.url = t2.url"), &l));
        assert!(!refs_within(&expr("1 = 1"), &l), "no columns, no refs");
        assert!(equi_across(&expr("t1.url = t2.url"), &l, &r));
        assert!(equi_across(&expr("t2.url = t1.url"), &l, &r), "flipped");
        assert!(!equi_across(&expr("t1.url > t2.url"), &l, &r), "not equi");
        assert!(!equi_across(&expr("t1.url = 'x'"), &l, &r), "single side");
    }

    #[test]
    fn combine_conjuncts_folds_with_and() {
        assert!(combine_conjuncts(vec![]).is_none());
        let combined = combine_conjuncts(vec![expr("a > 1"), expr("b > 2")]).unwrap();
        assert_eq!(combined.to_string(), "((a > 1) AND (b > 2))");
    }
}
