//! Feisu's SQL front end.
//!
//! Implements the star-schema query language of paper §III-A:
//!
//! ```sql
//! SELECT expr [[AS] alias] [...] [aggr_func(expr) WITHIN expr]
//! FROM table1 [, table2, ...]
//!   [[INNER|[RIGHT|LEFT] OUTER|CROSS] JOIN table3 [[AS] alias]
//!     ON cond [AND cond ...]]
//! [WHERE cond] [GROUP BY f [...]] [HAVING cond]
//! [ORDER BY f [DESC|ASC] [...]] [LIMIT n];
//! ```
//!
//! plus the `CONTAINS` string operator used by the evaluation workload.
//! The pipeline is: [`lexer`] → [`parser`] (AST in [`ast`]) → [`analyze`]
//! (name/type resolution against a catalog) → [`plan`] (logical plan) →
//! [`optimizer`] (pushdown, pruning, folding). [`cnf`] converts predicates
//! to conjunctive form — the representation SmartIndex keys on (§IV-C) —
//! and [`eval`] is the row-wise reference interpreter used as the test
//! oracle and for scalar contexts (HAVING, constant folding).

//! # Example
//!
//! ```
//! use feisu_format::{DataType, Field, Schema};
//! use std::collections::HashMap;
//!
//! let mut catalog: HashMap<String, Schema> = HashMap::new();
//! catalog.insert(
//!     "t1".into(),
//!     Schema::new(vec![
//!         Field::new("url", DataType::Utf8, false),
//!         Field::new("clicks", DataType::Int64, false),
//!     ]),
//! );
//! let query = feisu_sql::parse_query(
//!     "SELECT url, COUNT(*) AS n FROM t1 WHERE clicks > 5 GROUP BY url ORDER BY n DESC LIMIT 3",
//! )
//! .unwrap();
//! let resolved = feisu_sql::analyze::analyze(&query, &catalog).unwrap();
//! let plan = feisu_sql::optimizer::optimize(
//!     feisu_sql::plan::build_plan(&resolved).unwrap(),
//! )
//! .unwrap();
//! let rendered = plan.display_indent();
//! assert!(rendered.contains("Scan: t1"));
//! assert!(rendered.contains("filter=(clicks > 5)"), "{rendered}");
//! ```

pub mod analyze;
pub mod ast;
pub mod cnf;
pub mod eval;
pub mod exprutil;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;
pub mod stats;

pub use ast::{BinaryOp, Expr, Query, UnaryOp};
pub use parser::parse_query;
pub use plan::LogicalPlan;
