//! Abstract syntax tree for the Feisu SQL dialect.

use feisu_format::Value;
use std::fmt;

/// Binary operators, comparison and arithmetic plus the workload's
/// `CONTAINS` substring operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    /// `a CONTAINS 'needle'` — substring match on strings.
    Contains,
}

impl BinaryOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
                | BinaryOp::Contains
        )
    }

    /// The comparison with operands swapped (`a < b` ⇔ `b > a`), used to
    /// normalize predicates to `column OP literal` form for SmartIndex.
    pub fn flip(self) -> Option<BinaryOp> {
        Some(match self {
            BinaryOp::Eq => BinaryOp::Eq,
            BinaryOp::NotEq => BinaryOp::NotEq,
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            _ => return None,
        })
    }

    /// The negated comparison (`NOT (a < b)` ⇔ `a >= b`), used by the
    /// SmartIndex rewriter (paper Fig. 7 computes `!(c2 > 5)` via bit-NOT).
    pub fn negate(self) -> Option<BinaryOp> {
        Some(match self {
            BinaryOp::Eq => BinaryOp::NotEq,
            BinaryOp::NotEq => BinaryOp::Eq,
            BinaryOp::Lt => BinaryOp::GtEq,
            BinaryOp::LtEq => BinaryOp::Gt,
            BinaryOp::Gt => BinaryOp::LtEq,
            BinaryOp::GtEq => BinaryOp::Lt,
            _ => return None,
        })
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
            BinaryOp::Contains => "CONTAINS",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// Aggregate functions of the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            _ => return None,
        })
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// Expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Possibly-qualified column reference (`t.c` keeps the qualifier).
    Column(String),
    Literal(Value),
    Binary {
        op: BinaryOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: UnaryOp,
        operand: Box<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        operand: Box<Expr>,
        negated: bool,
    },
    /// Aggregate call. `within` carries the paper's `WITHIN expr` scope
    /// annotation (kept for fidelity; treated as a grouping hint).
    Aggregate {
        func: AggFunc,
        /// `None` = `COUNT(*)`.
        arg: Option<Box<Expr>>,
        within: Option<Box<Expr>>,
    },
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::And, left, right)
    }

    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::Or, left, right)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        Expr::Unary {
            op: UnaryOp::Not,
            operand: Box::new(e),
        }
    }

    /// Whether this subtree contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Binary { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
            Expr::Unary { operand, .. } => operand.has_aggregate(),
            Expr::IsNull { operand, .. } => operand.has_aggregate(),
            _ => false,
        }
    }

    /// Collects every column name referenced in the subtree.
    pub fn columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(c) => {
                if !out.contains(c) {
                    out.push(c.clone());
                }
            }
            Expr::Binary { left, right, .. } => {
                left.columns(out);
                right.columns(out);
            }
            Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => operand.columns(out),
            Expr::Aggregate { arg, within, .. } => {
                if let Some(a) = arg {
                    a.columns(out);
                }
                if let Some(w) = within {
                    w.columns(out);
                }
            }
            Expr::Literal(_) => {}
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => f.write_str(c),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Unary {
                op: UnaryOp::Not,
                operand,
            } => write!(f, "(NOT {operand})"),
            Expr::Unary {
                op: UnaryOp::Neg,
                operand,
            } => write!(f, "(-{operand})"),
            Expr::IsNull {
                operand,
                negated: false,
            } => write!(f, "({operand} IS NULL)"),
            Expr::IsNull {
                operand,
                negated: true,
            } => write!(f, "({operand} IS NOT NULL)"),
            Expr::Aggregate { func, arg, within } => {
                match arg {
                    Some(a) => write!(f, "{func}({a})")?,
                    None => write!(f, "{func}(*)")?,
                }
                if let Some(w) = within {
                    write!(f, " WITHIN {w}")?;
                }
                Ok(())
            }
        }
    }
}

/// Join kinds of the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    LeftOuter,
    RightOuter,
    Cross,
}

/// One `SELECT` list item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is known by in the query scope.
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// An explicit `JOIN ... ON ...` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub kind: JoinKind,
    pub table: TableRef,
    /// Conjunction of equality (or general) conditions.
    pub on: Vec<Expr>,
}

/// One parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub select: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub joins: Vec<JoinClause>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<(Expr, /*descending=*/ bool)>,
    pub limit: Option<u64>,
}

impl Query {
    /// All tables referenced (FROM list plus JOINed tables).
    pub fn all_tables(&self) -> impl Iterator<Item = &TableRef> {
        self.from.iter().chain(self.joins.iter().map(|j| &j.table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_flip_and_negate() {
        assert_eq!(BinaryOp::Lt.flip(), Some(BinaryOp::Gt));
        assert_eq!(BinaryOp::GtEq.flip(), Some(BinaryOp::LtEq));
        assert_eq!(BinaryOp::Gt.negate(), Some(BinaryOp::LtEq));
        assert_eq!(BinaryOp::Eq.negate(), Some(BinaryOp::NotEq));
        assert_eq!(BinaryOp::Contains.negate(), None);
        assert_eq!(BinaryOp::Plus.flip(), None);
    }

    #[test]
    fn has_aggregate_detects_nesting() {
        let agg = Expr::Aggregate {
            func: AggFunc::Sum,
            arg: Some(Box::new(Expr::col("x"))),
            within: None,
        };
        let wrapped = Expr::binary(BinaryOp::Plus, agg, Expr::lit(1i64));
        assert!(wrapped.has_aggregate());
        assert!(!Expr::col("x").has_aggregate());
    }

    #[test]
    fn columns_collects_unique() {
        let e = Expr::and(
            Expr::binary(BinaryOp::Gt, Expr::col("a"), Expr::lit(1i64)),
            Expr::binary(BinaryOp::Lt, Expr::col("a"), Expr::col("b")),
        );
        let mut cols = Vec::new();
        e.columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn display_roundtrippable_shape() {
        let e = Expr::and(
            Expr::binary(BinaryOp::Gt, Expr::col("c2"), Expr::lit(0i64)),
            Expr::not(Expr::binary(BinaryOp::Gt, Expr::col("c2"), Expr::lit(5i64))),
        );
        assert_eq!(e.to_string(), "((c2 > 0) AND (NOT (c2 > 5)))");
    }

    #[test]
    fn table_effective_name() {
        let t = TableRef {
            name: "t1".into(),
            alias: Some("a".into()),
        };
        assert_eq!(t.effective_name(), "a");
        let t = TableRef {
            name: "t1".into(),
            alias: None,
        };
        assert_eq!(t.effective_name(), "t1");
    }
}
