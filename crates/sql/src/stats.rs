//! Table statistics for cost-based planning.
//!
//! The catalog accumulates these at ingest (row counts, per-column
//! min/max/null-count and an approximate distinct count) and serves them
//! to the planner through [`crate::analyze::Catalog::table_stats`]. The
//! join-order search turns them into cardinality estimates; predicates
//! the leaf-side SmartIndex or footer zone maps can serve (simple
//! `column OP literal` conjuncts) get stats-derived selectivities, while
//! opaque residuals fall back to a conservative constant — so plans whose
//! filters the free per-block indexes can serve are systematically
//! preferred.

use crate::ast::{BinaryOp, Expr};
use crate::cnf::{to_cnf, Disjunct};
use feisu_common::hash::{hash_one, FxHashMap};
use feisu_format::Value;

/// Number of minimum hashes the KMV distinct-count sketch retains.
/// Exact below `K` distinct values; ~6% standard error above.
pub const KMV_K: usize = 256;

/// Selectivity assumed for predicates the stats cannot reason about.
pub const DEFAULT_SELECTIVITY: f64 = 0.25;

/// K-minimum-values sketch for approximate distinct counting. Fully
/// deterministic: the hash is the fixed engine hasher, and the state is
/// an ordered set — identical ingest order or not, the same value set
/// yields the same estimate.
#[derive(Debug, Clone, Default)]
pub struct NdvSketch {
    kmin: std::collections::BTreeSet<u64>,
    saturated: bool,
}

impl NdvSketch {
    /// Folds one non-null value into the sketch. Nulls are ignored (they
    /// are tracked by `null_count`, and never join).
    pub fn observe(&mut self, v: &Value) {
        if matches!(v, Value::Null) {
            return;
        }
        self.kmin.insert(hash_value(v));
        if self.kmin.len() > KMV_K {
            let largest = *self.kmin.iter().next_back().expect("nonempty");
            self.kmin.remove(&largest);
            self.saturated = true;
        }
    }

    /// The distinct-count estimate: exact while under `K` distinct
    /// hashes, else the classic `(K-1) / kth_smallest_normalized`.
    pub fn estimate(&self) -> u64 {
        if !self.saturated {
            return self.kmin.len() as u64;
        }
        let kth = *self.kmin.iter().next_back().expect("saturated");
        let normalized = (kth as f64) / (u64::MAX as f64);
        if normalized <= 0.0 {
            return self.kmin.len() as u64;
        }
        (((KMV_K - 1) as f64) / normalized).round() as u64
    }
}

/// Hashes one value into the sketch domain. Int64 and Float64 with the
/// same numeric value hash identically so ingest widening (`5` stored as
/// `5.0`) does not double-count.
pub fn hash_value(v: &Value) -> u64 {
    match v {
        Value::Null => 0,
        Value::Bool(b) => hash_one(&(1u8, *b as u64)),
        Value::Int64(i) => hash_one(&(2u8, (*i as f64).to_bits())),
        Value::Float64(f) => hash_one(&(2u8, f.to_bits())),
        Value::Utf8(s) => hash_one(&(3u8, s.as_bytes())),
    }
}

/// Per-column statistics (over the *storage* column).
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub null_count: u64,
    /// Approximate number of distinct non-null values.
    pub ndv: u64,
}

/// Table-level statistics snapshot served by the catalog.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    pub rows: u64,
    /// Keyed by storage (bare) column name.
    pub columns: FxHashMap<String, ColumnStats>,
}

impl TableStats {
    /// Looks a column up by canonical name, stripping any `t.` qualifier
    /// down to the storage name.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns
            .get(name)
            .or_else(|| self.columns.get(name.rsplit('.').next().unwrap_or(name)))
    }

    /// The distinct count of a column, clamped to `[1, rows]`; `rows`
    /// (key-like) when unknown.
    pub fn column_ndv(&self, name: &str) -> u64 {
        let rows = self.rows.max(1);
        match self.column(name) {
            Some(c) => c.ndv.clamp(1, rows),
            None => rows,
        }
    }

    /// Estimated fraction of rows a predicate keeps, multiplying
    /// per-conjunct selectivities. Simple `column OP literal` conjuncts —
    /// exactly the shape SmartIndex peeks and footer zone maps serve —
    /// use the stats; everything else is [`DEFAULT_SELECTIVITY`].
    pub fn selectivity(&self, predicate: &Expr) -> f64 {
        let mut sel = 1.0f64;
        for clause in &to_cnf(predicate).clauses {
            sel *= match clause.as_single_simple() {
                Some(p) => self.simple_selectivity(&p.column, p.op, &p.value),
                None => match clause.disjuncts.as_slice() {
                    [Disjunct::Residual(Expr::IsNull { operand, negated })] => {
                        let mut cols = Vec::new();
                        operand.columns(&mut cols);
                        match cols.first().and_then(|c| self.column(c)) {
                            Some(c) if self.rows > 0 => {
                                let f = c.null_count as f64 / self.rows as f64;
                                if *negated {
                                    1.0 - f
                                } else {
                                    f
                                }
                            }
                            _ => DEFAULT_SELECTIVITY,
                        }
                    }
                    _ => DEFAULT_SELECTIVITY,
                },
            };
        }
        sel.clamp(1e-4, 1.0)
    }

    fn simple_selectivity(&self, column: &str, op: BinaryOp, value: &Value) -> f64 {
        let Some(c) = self.column(column) else {
            return DEFAULT_SELECTIVITY;
        };
        let rows = self.rows.max(1) as f64;
        let ndv = c.ndv.clamp(1, self.rows.max(1)) as f64;
        match op {
            BinaryOp::Eq => 1.0 / ndv,
            BinaryOp::NotEq => 1.0 - 1.0 / ndv,
            BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
                let (Some(lo), Some(hi), Some(v)) = (
                    c.min.as_ref().and_then(Value::as_f64),
                    c.max.as_ref().and_then(Value::as_f64),
                    value.as_f64(),
                ) else {
                    return 0.3; // non-numeric range: flat guess
                };
                let width = hi - lo;
                let below = if width > 0.0 {
                    ((v - lo) / width).clamp(0.0, 1.0)
                } else if v >= lo {
                    1.0
                } else {
                    0.0
                };
                let nulls = c.null_count as f64 / rows;
                let sel = match op {
                    BinaryOp::Lt | BinaryOp::LtEq => below,
                    _ => 1.0 - below,
                };
                (sel * (1.0 - nulls)).clamp(0.0, 1.0)
            }
            BinaryOp::Contains => 0.1,
            _ => DEFAULT_SELECTIVITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn table() -> TableStats {
        let mut columns = FxHashMap::default();
        columns.insert(
            "clicks".to_string(),
            ColumnStats {
                min: Some(Value::Int64(0)),
                max: Some(Value::Int64(100)),
                null_count: 100,
                ndv: 50,
            },
        );
        columns.insert(
            "url".to_string(),
            ColumnStats {
                min: Some(Value::Utf8("a".into())),
                max: Some(Value::Utf8("z".into())),
                null_count: 0,
                ndv: 1000,
            },
        );
        TableStats {
            rows: 1000,
            columns,
        }
    }

    #[test]
    fn sketch_exact_below_k() {
        let mut s = NdvSketch::default();
        for i in 0..100 {
            s.observe(&Value::Int64(i));
            s.observe(&Value::Int64(i)); // duplicates don't count
        }
        s.observe(&Value::Null); // nulls don't count
        assert_eq!(s.estimate(), 100);
    }

    #[test]
    fn sketch_estimates_above_k() {
        let mut s = NdvSketch::default();
        for i in 0..20_000 {
            s.observe(&Value::Int64(i));
        }
        let est = s.estimate() as f64;
        assert!(
            (est - 20_000.0).abs() / 20_000.0 < 0.25,
            "estimate {est} too far from 20000"
        );
    }

    #[test]
    fn int_and_float_hash_identically() {
        assert_eq!(
            hash_value(&Value::Int64(5)),
            hash_value(&Value::Float64(5.0))
        );
    }

    #[test]
    fn equality_selectivity_uses_ndv() {
        let t = table();
        let sel = t.selectivity(&parse_expr("clicks = 7").unwrap());
        assert!((sel - 1.0 / 50.0).abs() < 1e-9, "{sel}");
        // Qualified names resolve to the storage column.
        let sel_q = t.selectivity(&parse_expr("t.clicks = 7").unwrap());
        assert_eq!(sel, sel_q);
    }

    #[test]
    fn range_selectivity_interpolates_and_discounts_nulls() {
        let t = table();
        // clicks < 50 over [0,100] with 10% nulls → ~0.45.
        let sel = t.selectivity(&parse_expr("clicks < 50").unwrap());
        assert!((sel - 0.45).abs() < 1e-9, "{sel}");
        // Out-of-range stays clamped, never negative.
        let sel = t.selectivity(&parse_expr("clicks > 200").unwrap());
        assert!(sel >= 1e-4 && sel < 0.01, "{sel}");
    }

    #[test]
    fn conjuncts_multiply_and_unknowns_default() {
        let t = table();
        let both = t.selectivity(&parse_expr("clicks = 7 AND url CONTAINS 'x'").unwrap());
        assert!((both - (1.0 / 50.0) * 0.1).abs() < 1e-9, "{both}");
        let unknown = t.selectivity(&parse_expr("mystery = 1").unwrap());
        assert_eq!(unknown, DEFAULT_SELECTIVITY);
    }

    #[test]
    fn is_null_selectivity_from_null_count() {
        let t = table();
        let sel = t.selectivity(&parse_expr("clicks IS NULL").unwrap());
        assert!((sel - 0.1).abs() < 1e-9, "{sel}");
        let sel = t.selectivity(&parse_expr("clicks IS NOT NULL").unwrap());
        assert!((sel - 0.9).abs() < 1e-9, "{sel}");
    }
}
