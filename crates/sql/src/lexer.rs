//! SQL tokenizer.
//!
//! Hand-written single-pass lexer producing a token stream with byte
//! offsets for error messages. Keywords are case-insensitive; identifiers
//! preserve case. String literals use single quotes with `''` escaping.

use feisu_common::{FeisuError, Result};
use std::fmt;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    Keyword(Keyword),
    Int(i64),
    Float(f64),
    Str(String),
    // Operators / punctuation.
    Eq,    // =
    NotEq, // != or <>
    Lt,    // <
    LtEq,  // <=
    Gt,    // >
    GtEq,  // >=
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Bang, // ! (logical not, used by the paper's Q11/Q12 examples)
}

/// Reserved words of the Feisu dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    From,
    Where,
    Group,
    By,
    Having,
    Order,
    Limit,
    As,
    And,
    Or,
    Not,
    Join,
    Inner,
    Left,
    Right,
    Outer,
    Cross,
    On,
    Contains,
    Within,
    Desc,
    Asc,
    True,
    False,
    Null,
    Is,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "GROUP" => Keyword::Group,
            "BY" => Keyword::By,
            "HAVING" => Keyword::Having,
            "ORDER" => Keyword::Order,
            "LIMIT" => Keyword::Limit,
            "AS" => Keyword::As,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "JOIN" => Keyword::Join,
            "INNER" => Keyword::Inner,
            "LEFT" => Keyword::Left,
            "RIGHT" => Keyword::Right,
            "OUTER" => Keyword::Outer,
            "CROSS" => Keyword::Cross,
            "ON" => Keyword::On,
            "CONTAINS" => Keyword::Contains,
            "WITHIN" => Keyword::Within,
            "DESC" => Keyword::Desc,
            "ASC" => Keyword::Asc,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            "NULL" => Keyword::Null,
            "IS" => Keyword::Is,
            _ => return None,
        })
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Keyword(k) => write!(f, "keyword `{k:?}`"),
            Token::Int(v) => write!(f, "integer `{v}`"),
            Token::Float(v) => write!(f, "float `{v}`"),
            Token::Str(s) => write!(f, "string '{s}'"),
            Token::Eq => f.write_str("`=`"),
            Token::NotEq => f.write_str("`!=`"),
            Token::Lt => f.write_str("`<`"),
            Token::LtEq => f.write_str("`<=`"),
            Token::Gt => f.write_str("`>`"),
            Token::GtEq => f.write_str("`>=`"),
            Token::Plus => f.write_str("`+`"),
            Token::Minus => f.write_str("`-`"),
            Token::Star => f.write_str("`*`"),
            Token::Slash => f.write_str("`/`"),
            Token::Percent => f.write_str("`%`"),
            Token::LParen => f.write_str("`(`"),
            Token::RParen => f.write_str("`)`"),
            Token::Comma => f.write_str("`,`"),
            Token::Dot => f.write_str("`.`"),
            Token::Semicolon => f.write_str("`;`"),
            Token::Bang => f.write_str("`!`"),
        }
    }
}

/// A token plus its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub offset: usize,
}

/// Tokenizes `input`; errors carry byte offsets.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                tokens.push(Spanned {
                    token: Token::LParen,
                    offset: start,
                });
                i += 1;
            }
            b')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    offset: start,
                });
                i += 1;
            }
            b',' => {
                tokens.push(Spanned {
                    token: Token::Comma,
                    offset: start,
                });
                i += 1;
            }
            b';' => {
                tokens.push(Spanned {
                    token: Token::Semicolon,
                    offset: start,
                });
                i += 1;
            }
            b'.' => {
                tokens.push(Spanned {
                    token: Token::Dot,
                    offset: start,
                });
                i += 1;
            }
            b'+' => {
                tokens.push(Spanned {
                    token: Token::Plus,
                    offset: start,
                });
                i += 1;
            }
            b'-' => {
                tokens.push(Spanned {
                    token: Token::Minus,
                    offset: start,
                });
                i += 1;
            }
            b'*' => {
                tokens.push(Spanned {
                    token: Token::Star,
                    offset: start,
                });
                i += 1;
            }
            b'/' => {
                tokens.push(Spanned {
                    token: Token::Slash,
                    offset: start,
                });
                i += 1;
            }
            b'%' => {
                tokens.push(Spanned {
                    token: Token::Percent,
                    offset: start,
                });
                i += 1;
            }
            b'=' => {
                tokens.push(Spanned {
                    token: Token::Eq,
                    offset: start,
                });
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::NotEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Bang,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Spanned {
                        token: Token::LtEq,
                        offset: start,
                    });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Spanned {
                        token: Token::NotEq,
                        offset: start,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(Spanned {
                        token: Token::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::GtEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            b'\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(FeisuError::Parse(format!(
                                "unterminated string starting at offset {start}"
                            )))
                        }
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Copy the full UTF-8 character.
                            let ch_len = utf8_len(bytes[i]);
                            s.push_str(std::str::from_utf8(&bytes[i..i + ch_len]).map_err(
                                |_| FeisuError::Parse(format!("invalid utf8 at offset {i}")),
                            )?);
                            i += ch_len;
                        }
                    }
                }
                tokens.push(Spanned {
                    token: Token::Str(s),
                    offset: start,
                });
            }
            b'0'..=b'9' => {
                let mut is_float = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_float = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let token = if is_float {
                    Token::Float(text.parse().map_err(|_| {
                        FeisuError::Parse(format!("bad float `{text}` at offset {start}"))
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| {
                        FeisuError::Parse(format!("bad integer `{text}` at offset {start}"))
                    })?)
                };
                tokens.push(Spanned {
                    token,
                    offset: start,
                });
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let word = &input[start..i];
                let token = match Keyword::from_str(word) {
                    Some(k) => Token::Keyword(k),
                    None => Token::Ident(word.to_string()),
                };
                tokens.push(Spanned {
                    token,
                    offset: start,
                });
            }
            other => {
                return Err(FeisuError::Parse(format!(
                    "unexpected character `{}` at offset {start}",
                    other as char
                )))
            }
        }
    }
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first < 0xE0 {
        2
    } else if first < 0xF0 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("select FROM Where"),
            vec![
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::From),
                Token::Keyword(Keyword::Where),
            ]
        );
    }

    #[test]
    fn identifiers_preserve_case() {
        assert_eq!(
            toks("myCol _x c2"),
            vec![
                Token::Ident("myCol".into()),
                Token::Ident("_x".into()),
                Token::Ident("c2".into()),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.5 1e3 2.5e-2"),
            vec![
                Token::Int(42),
                Token::Float(3.5),
                Token::Float(1000.0),
                Token::Float(0.025),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks("'abc' 'it''s'"),
            vec![Token::Str("abc".into()), Token::Str("it's".into()),]
        );
        assert_eq!(toks("'百度'"), vec![Token::Str("百度".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("= != <> < <= > >= ! + - * / %"),
            vec![
                Token::Eq,
                Token::NotEq,
                Token::NotEq,
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Bang,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a -- comment\n b"),
            vec![Token::Ident("a".into()), Token::Ident("b".into()),]
        );
    }

    #[test]
    fn offsets_recorded() {
        let ts = tokenize("ab  cd").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 4);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("a @ b").is_err());
    }

    #[test]
    fn paper_query_q1_lexes() {
        let q = "SELECT COUNT(*) FROM T WHERE (c2 > 0) AND (c2 <= 5)";
        assert!(tokenize(q).is_ok());
    }
}
