//! Conversion of predicates to conjunctive form.
//!
//! "Feisu's leaf servers will transform the predicates in query sub-plans
//! into conjunctive forms and check if there exist a SmartIndex for each
//! data block" (§IV-C-3). This module does that transformation:
//!
//! 1. NOT is pushed to the leaves (De Morgan), and `NOT (col > 5)` over a
//!    comparison becomes `col <= 5` — except that SQL's three-valued logic
//!    makes comparison negation *not* equivalent when the operand is NULL
//!    (`NOT (x > 5)` is unknown for null x, as is `x <= 5`, so it *is*
//!    equivalent for filtering purposes — both drop the row).
//! 2. OR is distributed over AND to reach CNF, with an expansion budget so
//!    pathological inputs fall back to treating the subtree as one opaque
//!    conjunct instead of exploding.
//!
//! The result is a list of conjuncts; each conjunct is a disjunction of
//! [`SimplePredicate`]s and/or opaque residual expressions. SmartIndex
//! keys on simple predicates (`column OP literal`).

use crate::ast::{BinaryOp, Expr};
use feisu_format::Value;
use std::fmt;

/// A predicate SmartIndex can evaluate and cache: `column OP literal`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimplePredicate {
    pub column: String,
    pub op: BinaryOp,
    pub value: Value,
}

impl SimplePredicate {
    /// The canonical cache key (paper Fig. 6 header: op/colname/colvalue).
    pub fn key(&self) -> String {
        format!("{}\u{1}{}\u{1}{}", self.column, self.op, self.value)
    }

    /// The cache key of the complementary predicate (`c > 5` → key of
    /// `c <= 5`), or `None` when the operator has no complement. Built
    /// directly from borrowed parts so index probes need not clone the
    /// column name and literal into a scratch `SimplePredicate`.
    pub fn negated_key(&self) -> Option<String> {
        let neg = self.op.negate()?;
        Some(format!("{}\u{1}{}\u{1}{}", self.column, neg, self.value))
    }

    pub fn to_expr(&self) -> Expr {
        Expr::binary(
            self.op,
            Expr::Column(self.column.clone()),
            Expr::Literal(self.value.clone()),
        )
    }
}

impl fmt::Display for SimplePredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.column, self.op, self.value)
    }
}

/// One disjunct inside a conjunct: either indexable or opaque.
#[derive(Debug, Clone, PartialEq)]
pub enum Disjunct {
    Simple(SimplePredicate),
    /// Anything SmartIndex cannot key on (arithmetic, col-col compares,
    /// IS NULL, …); still evaluated by the scan operator.
    Residual(Expr),
}

impl Disjunct {
    pub fn to_expr(&self) -> Expr {
        match self {
            Disjunct::Simple(p) => p.to_expr(),
            Disjunct::Residual(e) => e.clone(),
        }
    }
}

/// A disjunction of disjuncts — one clause of the CNF.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    pub disjuncts: Vec<Disjunct>,
}

impl Clause {
    pub fn to_expr(&self) -> Expr {
        let mut it = self.disjuncts.iter();
        let first = it.next().expect("clause is never empty").to_expr();
        it.fold(first, |acc, d| Expr::or(acc, d.to_expr()))
    }

    /// The clause's single simple predicate, if it is exactly that. These
    /// are the clauses SmartIndex serves directly.
    pub fn as_single_simple(&self) -> Option<&SimplePredicate> {
        match self.disjuncts.as_slice() {
            [Disjunct::Simple(p)] => Some(p),
            _ => None,
        }
    }
}

/// The full conjunctive form.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cnf {
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Reassembles the CNF into a single expression (for the oracle and
    /// for residual evaluation).
    pub fn to_expr(&self) -> Option<Expr> {
        let mut it = self.clauses.iter();
        let first = it.next()?.to_expr();
        Some(it.fold(first, |acc, c| Expr::and(acc, c.to_expr())))
    }

    /// All simple single-predicate clauses (the SmartIndex-servable part).
    pub fn simple_clauses(&self) -> impl Iterator<Item = &SimplePredicate> {
        self.clauses.iter().filter_map(|c| c.as_single_simple())
    }
}

/// Max clause count produced by OR-over-AND distribution before the
/// converter bails out and keeps the subtree opaque.
const EXPANSION_BUDGET: usize = 64;

/// Converts a boolean expression into conjunctive form. NOT-handling
/// (negation-normal form) is shared with the optimizer via
/// [`crate::exprutil::push_not`].
pub fn to_cnf(expr: &Expr) -> Cnf {
    let nnf = crate::exprutil::push_not(expr, false);
    let clauses = distribute(&nnf);
    Cnf { clauses }
}

/// Distributes OR over AND. Returns the clause list; a subtree whose
/// expansion would exceed the budget is kept as one opaque clause.
fn distribute(expr: &Expr) -> Vec<Clause> {
    match expr {
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            let mut clauses = distribute(left);
            clauses.extend(distribute(right));
            clauses
        }
        Expr::Binary {
            op: BinaryOp::Or,
            left,
            right,
        } => {
            let l = distribute(left);
            let r = distribute(right);
            if l.len() * r.len() > EXPANSION_BUDGET {
                return vec![Clause {
                    disjuncts: vec![Disjunct::Residual(expr.clone())],
                }];
            }
            let mut clauses = Vec::with_capacity(l.len() * r.len());
            for lc in &l {
                for rc in &r {
                    let mut disjuncts = lc.disjuncts.clone();
                    disjuncts.extend(rc.disjuncts.clone());
                    clauses.push(Clause { disjuncts });
                }
            }
            clauses
        }
        other => vec![Clause {
            disjuncts: vec![classify(other)],
        }],
    }
}

/// Classifies a leaf as indexable or residual, normalizing
/// `literal OP column` to `column OP' literal`.
fn classify(expr: &Expr) -> Disjunct {
    if let Expr::Binary { op, left, right } = expr {
        if op.is_comparison() {
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column(c), Expr::Literal(v)) => {
                    return Disjunct::Simple(SimplePredicate {
                        column: c.clone(),
                        op: *op,
                        value: v.clone(),
                    })
                }
                (Expr::Literal(v), Expr::Column(c)) => {
                    if let Some(flipped) = op.flip() {
                        return Disjunct::Simple(SimplePredicate {
                            column: c.clone(),
                            op: flipped,
                            value: v.clone(),
                        });
                    }
                }
                _ => {}
            }
        }
    }
    Disjunct::Residual(expr.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_truth, Truth};
    use crate::parser::parse_expr;
    use std::collections::HashMap;

    fn cnf_of(src: &str) -> Cnf {
        to_cnf(&parse_expr(src).unwrap())
    }

    #[test]
    fn simple_conjunction_splits() {
        let c = cnf_of("a > 1 AND b = 'x' AND c <= 0");
        assert_eq!(c.clauses.len(), 3);
        assert_eq!(c.simple_clauses().count(), 3);
        assert_eq!(
            c.clauses[0].as_single_simple().unwrap().key(),
            SimplePredicate {
                column: "a".into(),
                op: BinaryOp::Gt,
                value: Value::Int64(1)
            }
            .key()
        );
    }

    #[test]
    fn not_over_comparison_absorbed() {
        // Paper Fig. 7: !(c2 > 5) should become c2 <= 5.
        let c = cnf_of("c2 > 0 AND !(c2 > 5)");
        assert_eq!(c.clauses.len(), 2);
        let p = c.clauses[1].as_single_simple().unwrap();
        assert_eq!(p.op, BinaryOp::LtEq);
        assert_eq!(p.value, Value::Int64(5));
    }

    #[test]
    fn de_morgan_flips_connectives() {
        let c = cnf_of("NOT (a > 1 OR b > 2)");
        // ¬(A∨B) = ¬A ∧ ¬B = two clauses.
        assert_eq!(c.clauses.len(), 2);
        assert_eq!(c.clauses[0].as_single_simple().unwrap().op, BinaryOp::LtEq);
    }

    #[test]
    fn or_over_and_distributes() {
        // (A ∧ B) ∨ C = (A∨C) ∧ (B∨C).
        let c = cnf_of("(a > 1 AND b > 2) OR c > 3");
        assert_eq!(c.clauses.len(), 2);
        assert_eq!(c.clauses[0].disjuncts.len(), 2);
        assert_eq!(c.clauses[1].disjuncts.len(), 2);
        // OR clauses are not single-simple.
        assert_eq!(c.simple_clauses().count(), 0);
    }

    #[test]
    fn literal_col_normalized() {
        let c = cnf_of("5 >= x");
        let p = c.clauses[0].as_single_simple().unwrap();
        assert_eq!(p.column, "x");
        assert_eq!(p.op, BinaryOp::LtEq);
        assert_eq!(p.value, Value::Int64(5));
    }

    #[test]
    fn contains_not_negatable_stays_residual_under_not() {
        let c = cnf_of("NOT (url CONTAINS 'spam')");
        assert_eq!(c.clauses.len(), 1);
        assert!(matches!(c.clauses[0].disjuncts[0], Disjunct::Residual(_)));
    }

    #[test]
    fn is_null_negation_flips_flag() {
        let c = cnf_of("NOT (x IS NULL)");
        match &c.clauses[0].disjuncts[0] {
            Disjunct::Residual(Expr::IsNull { negated, .. }) => assert!(negated),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pathological_expansion_bails_out() {
        // 8 nested (a∧b)∨(c∧d)… would explode; must stay bounded.
        let mut src = String::from("(a1 > 0 AND b1 > 0)");
        for i in 2..=10 {
            src = format!("({src} OR (a{i} > 0 AND b{i} > 0))");
        }
        let c = cnf_of(&src);
        assert!(c.clauses.len() <= EXPANSION_BUDGET + 1);
    }

    /// The key correctness property: CNF(expr) filters exactly like expr
    /// under three-valued logic, across a grid of row values incl. NULL.
    #[test]
    fn cnf_preserves_filtering_semantics() {
        let exprs = [
            "a > 1 AND b <= 2",
            "NOT (a > 1 AND b > 2)",
            "(a = 1 OR b = 2) AND NOT (a = 3)",
            "NOT (NOT (a > 0))",
            "(a > 0 AND b > 0) OR (a < 0 AND b < 0)",
            "a > 1 OR (b > 2 AND (a < 5 OR b < 1))",
            "!(a <= 2) AND !(b != 1)",
        ];
        let candidates = [
            Value::Null,
            Value::Int64(0),
            Value::Int64(1),
            Value::Int64(2),
            Value::Int64(3),
        ];
        for src in exprs {
            let e = parse_expr(src).unwrap();
            let cnf_expr = to_cnf(&e).to_expr().unwrap();
            for a in &candidates {
                for b in &candidates {
                    let mut row = HashMap::new();
                    row.insert("a".to_string(), a.clone());
                    row.insert("b".to_string(), b.clone());
                    let orig = eval_truth(&e, &row).unwrap();
                    let cnf = eval_truth(&cnf_expr, &row).unwrap();
                    // Filtering behaviour must match: passes() equality.
                    assert_eq!(
                        orig.passes(),
                        cnf.passes(),
                        "{src} with a={a}, b={b}: {orig:?} vs {cnf:?}"
                    );
                    // And in fact full 3VL equivalence should hold too.
                    assert_eq!(orig, cnf, "{src} 3VL mismatch at a={a}, b={b}");
                }
            }
        }
    }

    #[test]
    fn truth_is_reexported_semantics() {
        assert!(Truth::True.passes());
        assert!(!Truth::Unknown.passes());
    }
}
