//! Logical plan optimizer.
//!
//! A small, rule-based optimizer in the cost-based spirit of the paper's
//! master ("generates optimized query execution plans using a cost-based
//! approach", §III-B). Rules, applied in order:
//!
//! 1. **Constant folding** — literal-only subtrees are evaluated once.
//! 2. **Predicate pushdown** — WHERE conjuncts that reference a single
//!    scan's columns move into that scan, where SmartIndex can serve them.
//! 3. **Projection pruning** — scans read only the columns the rest of
//!    the plan actually needs (the core of the columnar I/O saving).
//! 4. **Limit-into-sort** — `Limit(Sort)` becomes a top-N sort.

use crate::ast::{Expr, UnaryOp};
use crate::cnf::to_cnf;
use crate::eval::eval;
use crate::plan::LogicalPlan;
use feisu_common::Result;
use feisu_format::{Schema, Value};

/// Applies all rules and returns the optimized plan.
pub fn optimize(plan: LogicalPlan) -> Result<LogicalPlan> {
    let plan = fold_constants_plan(plan)?;
    let plan = push_down_predicates(plan)?;
    let plan = prune_projections(plan)?;
    let plan = limit_into_sort(plan);
    Ok(plan)
}

// ---------------------------------------------------------------- folding

fn fold_constants_plan(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(fold_constants_plan(*input)?),
            predicate: fold_expr(predicate),
        },
        LogicalPlan::Project {
            input,
            exprs,
            output_schema,
        } => LogicalPlan::Project {
            input: Box::new(fold_constants_plan(*input)?),
            exprs: exprs.into_iter().map(|(e, n)| (fold_expr(e), n)).collect(),
            output_schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            output_schema,
        } => LogicalPlan::Join {
            left: Box::new(fold_constants_plan(*left)?),
            right: Box::new(fold_constants_plan(*right)?),
            kind,
            on: on.into_iter().map(fold_expr).collect(),
            output_schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            output_schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(fold_constants_plan(*input)?),
            group_by,
            aggregates,
            output_schema,
        },
        LogicalPlan::Sort { input, keys, fetch } => LogicalPlan::Sort {
            input: Box::new(fold_constants_plan(*input)?),
            keys,
            fetch,
        },
        LogicalPlan::Limit { input, fetch } => LogicalPlan::Limit {
            input: Box::new(fold_constants_plan(*input)?),
            fetch,
        },
        scan @ LogicalPlan::Scan { .. } => scan,
    })
}

/// Folds literal-only subtrees bottom-up. Errors (e.g. division by zero)
/// leave the subtree unfolded so they surface at execution time with row
/// context.
pub fn fold_expr(e: Expr) -> Expr {
    let folded = match e {
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(fold_expr(*left)),
            right: Box::new(fold_expr(*right)),
        },
        Expr::Unary { op, operand } => Expr::Unary {
            op,
            operand: Box::new(fold_expr(*operand)),
        },
        Expr::IsNull { operand, negated } => Expr::IsNull {
            operand: Box::new(fold_expr(*operand)),
            negated,
        },
        other => other,
    };
    if is_foldable(&folded) {
        let empty = |_: &str| -> Option<Value> { None };
        if let Ok(v) = eval(&folded, &empty) {
            return Expr::Literal(v);
        }
    }
    folded
}

fn is_foldable(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) => false, // already a literal, nothing to do
        Expr::Binary { left, right, .. } => literal_only(left) && literal_only(right),
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => literal_only(operand),
        _ => false,
    }
}

fn literal_only(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) => true,
        Expr::Binary { left, right, .. } => literal_only(left) && literal_only(right),
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => literal_only(operand),
        _ => false,
    }
}

// --------------------------------------------------------------- pushdown

fn push_down_predicates(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_down_predicates(*input)?;
            // Split into conjuncts and try to sink each one.
            let cnf = to_cnf(&predicate);
            let mut remaining: Vec<Expr> = Vec::new();
            let mut target = input;
            for clause in cnf.clauses {
                let e = clause.to_expr();
                match sink(target, &e) {
                    (t, true) => target = t,
                    (t, false) => {
                        target = t;
                        remaining.push(e);
                    }
                }
            }
            match combine(remaining) {
                Some(pred) => LogicalPlan::Filter {
                    input: Box::new(target),
                    predicate: pred,
                },
                None => target,
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            output_schema,
        } => LogicalPlan::Project {
            input: Box::new(push_down_predicates(*input)?),
            exprs,
            output_schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            output_schema,
        } => LogicalPlan::Join {
            left: Box::new(push_down_predicates(*left)?),
            right: Box::new(push_down_predicates(*right)?),
            kind,
            on,
            output_schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            output_schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(push_down_predicates(*input)?),
            group_by,
            aggregates,
            output_schema,
        },
        LogicalPlan::Sort { input, keys, fetch } => LogicalPlan::Sort {
            input: Box::new(push_down_predicates(*input)?),
            keys,
            fetch,
        },
        LogicalPlan::Limit { input, fetch } => LogicalPlan::Limit {
            input: Box::new(push_down_predicates(*input)?),
            fetch,
        },
        scan @ LogicalPlan::Scan { .. } => scan,
    })
}

/// Tries to sink one conjunct into the subtree. Returns the (possibly
/// modified) subtree and whether the conjunct was absorbed.
fn sink(plan: LogicalPlan, conjunct: &Expr) -> (LogicalPlan, bool) {
    match plan {
        LogicalPlan::Scan {
            table,
            binding,
            projection,
            predicate,
            output_schema,
        } => {
            if refs_within(conjunct, &output_schema) {
                let predicate = Some(match predicate {
                    Some(p) => Expr::and(p, conjunct.clone()),
                    None => conjunct.clone(),
                });
                (
                    LogicalPlan::Scan {
                        table,
                        binding,
                        projection,
                        predicate,
                        output_schema,
                    },
                    true,
                )
            } else {
                (
                    LogicalPlan::Scan {
                        table,
                        binding,
                        projection,
                        predicate,
                        output_schema,
                    },
                    false,
                )
            }
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            output_schema,
        } => {
            use crate::ast::JoinKind;
            // Only inner/cross joins accept pushdown on both sides; outer
            // joins would change null-extension semantics.
            let (push_left, push_right) = match kind {
                JoinKind::Inner | JoinKind::Cross => (true, true),
                JoinKind::LeftOuter => (true, false),
                JoinKind::RightOuter => (false, true),
            };
            if push_left {
                let (l, absorbed) = sink(*left, conjunct);
                if absorbed {
                    return (
                        LogicalPlan::Join {
                            left: Box::new(l),
                            right,
                            kind,
                            on,
                            output_schema,
                        },
                        true,
                    );
                }
                let (r, absorbed) = if push_right {
                    sink(*right, conjunct)
                } else {
                    (*right, false)
                };
                return (
                    LogicalPlan::Join {
                        left: Box::new(l),
                        right: Box::new(r),
                        kind,
                        on,
                        output_schema,
                    },
                    absorbed,
                );
            }
            if push_right {
                let (r, absorbed) = sink(*right, conjunct);
                return (
                    LogicalPlan::Join {
                        left,
                        right: Box::new(r),
                        kind,
                        on,
                        output_schema,
                    },
                    absorbed,
                );
            }
            (
                LogicalPlan::Join {
                    left,
                    right,
                    kind,
                    on,
                    output_schema,
                },
                false,
            )
        }
        // Filters/sorts/limits are transparent for pushdown purposes.
        LogicalPlan::Filter { input, predicate } => {
            let (i, absorbed) = sink(*input, conjunct);
            (
                LogicalPlan::Filter {
                    input: Box::new(i),
                    predicate,
                },
                absorbed,
            )
        }
        other => (other, false),
    }
}

fn refs_within(e: &Expr, schema: &Schema) -> bool {
    let mut cols = Vec::new();
    e.columns(&mut cols);
    !cols.is_empty() && cols.iter().all(|c| schema.index_of(c).is_some())
}

fn combine(conjuncts: Vec<Expr>) -> Option<Expr> {
    let mut it = conjuncts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, Expr::and))
}

// ---------------------------------------------------------------- pruning

fn prune_projections(plan: LogicalPlan) -> Result<LogicalPlan> {
    // Top-down: compute the set of columns each operator requires of its
    // input, then rebuild scans with minimal projections.
    Ok(prune(plan, None))
}

/// `needed`: columns the parent requires, `None` = everything.
fn prune(plan: LogicalPlan, needed: Option<Vec<String>>) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan {
            table,
            binding,
            projection,
            predicate,
            output_schema,
        } => {
            // NOTE: predicate columns are deliberately NOT added to the
            // projection — a Scan node evaluates its own predicate (leaf
            // servers serve it from SmartIndex without touching the
            // column at all), so only parent-needed columns are output.
            let required: Vec<String> = match &needed {
                None => output_schema
                    .fields()
                    .iter()
                    .map(|f| f.name.clone())
                    .collect(),
                Some(cols) => cols.clone(),
            };
            // Keep schema order; map canonical names back to storage names.
            let mut new_proj = Vec::new();
            let mut new_fields = Vec::new();
            for (i, f) in output_schema.fields().iter().enumerate() {
                if required.iter().any(|c| c == &f.name) {
                    new_proj.push(projection[i].clone());
                    new_fields.push(f.clone());
                }
            }
            // A zero-column batch cannot carry a row count: keep the
            // narrowest column when nothing is required (COUNT(*) shapes).
            if new_proj.is_empty() && !projection.is_empty() {
                let narrowest = output_schema
                    .fields()
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, f)| f.data_type.estimated_width())
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                new_proj.push(projection[narrowest].clone());
                new_fields.push(output_schema.field(narrowest).clone());
            }
            LogicalPlan::Scan {
                table,
                binding,
                projection: new_proj,
                predicate,
                output_schema: Schema::new(new_fields),
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            output_schema,
        } => {
            let mut required = Vec::new();
            for (e, _) in &exprs {
                e.columns(&mut required);
            }
            LogicalPlan::Project {
                input: Box::new(prune(*input, Some(required))),
                exprs,
                output_schema,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut required = needed.unwrap_or_else(|| {
                input
                    .schema()
                    .fields()
                    .iter()
                    .map(|f| f.name.clone())
                    .collect()
            });
            predicate.columns(&mut required);
            dedup(&mut required);
            LogicalPlan::Filter {
                input: Box::new(prune(*input, Some(required))),
                predicate,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            output_schema,
        } => {
            let mut required = Vec::new();
            for (g, _, _) in &group_by {
                g.columns(&mut required);
            }
            for a in &aggregates {
                if let Some(arg) = &a.arg {
                    arg.columns(&mut required);
                }
            }
            // COUNT(*) over a zero-column input still needs row counts:
            // keep at least one input column if nothing else is required.
            if required.is_empty() {
                if let Some(f) = input.schema().fields().first() {
                    required.push(f.name.clone());
                }
            }
            LogicalPlan::Aggregate {
                input: Box::new(prune(*input, Some(required))),
                group_by,
                aggregates,
                output_schema,
            }
        }
        LogicalPlan::Sort { input, keys, fetch } => {
            let mut required = needed.unwrap_or_else(|| {
                input
                    .schema()
                    .fields()
                    .iter()
                    .map(|f| f.name.clone())
                    .collect()
            });
            for (e, _) in &keys {
                e.columns(&mut required);
            }
            dedup(&mut required);
            LogicalPlan::Sort {
                input: Box::new(prune(*input, Some(required))),
                keys,
                fetch,
            }
        }
        LogicalPlan::Limit { input, fetch } => LogicalPlan::Limit {
            input: Box::new(prune(*input, needed)),
            fetch,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            output_schema,
        } => {
            let mut required = needed.unwrap_or_else(|| {
                output_schema
                    .fields()
                    .iter()
                    .map(|f| f.name.clone())
                    .collect()
            });
            for cond in &on {
                cond.columns(&mut required);
            }
            dedup(&mut required);
            let left_schema = left.schema();
            let right_schema = right.schema();
            let left_needed: Vec<String> = required
                .iter()
                .filter(|c| left_schema.index_of(c).is_some())
                .cloned()
                .collect();
            let right_needed: Vec<String> = required
                .iter()
                .filter(|c| right_schema.index_of(c).is_some())
                .cloned()
                .collect();
            let new_left = prune(*left, Some(left_needed));
            let new_right = prune(*right, Some(right_needed));
            let output_schema = new_left.schema().join(&new_right.schema());
            LogicalPlan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                kind,
                on,
                output_schema,
            }
        }
    }
}

fn dedup(v: &mut Vec<String>) {
    let mut seen = std::collections::HashSet::new();
    v.retain(|c| seen.insert(c.clone()));
}

// ----------------------------------------------------------- limit + sort

fn limit_into_sort(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Limit { input, fetch } => {
            match limit_into_sort(*input) {
                // Limit(Project(Sort)) and Limit(Sort): push the fetch into
                // the sort so execution can keep a bounded heap.
                LogicalPlan::Project {
                    input: pin,
                    exprs,
                    output_schema,
                } => {
                    if let LogicalPlan::Sort {
                        input: sin, keys, ..
                    } = *pin
                    {
                        LogicalPlan::Limit {
                            input: Box::new(LogicalPlan::Project {
                                input: Box::new(LogicalPlan::Sort {
                                    input: sin,
                                    keys,
                                    fetch: Some(fetch),
                                }),
                                exprs,
                                output_schema,
                            }),
                            fetch,
                        }
                    } else {
                        LogicalPlan::Limit {
                            input: Box::new(LogicalPlan::Project {
                                input: pin,
                                exprs,
                                output_schema,
                            }),
                            fetch,
                        }
                    }
                }
                LogicalPlan::Sort {
                    input: sin, keys, ..
                } => LogicalPlan::Limit {
                    input: Box::new(LogicalPlan::Sort {
                        input: sin,
                        keys,
                        fetch: Some(fetch),
                    }),
                    fetch,
                },
                other => LogicalPlan::Limit {
                    input: Box::new(other),
                    fetch,
                },
            }
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(limit_into_sort(*input)),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            output_schema,
        } => LogicalPlan::Project {
            input: Box::new(limit_into_sort(*input)),
            exprs,
            output_schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            output_schema,
        } => LogicalPlan::Join {
            left: Box::new(limit_into_sort(*left)),
            right: Box::new(limit_into_sort(*right)),
            kind,
            on,
            output_schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            output_schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(limit_into_sort(*input)),
            group_by,
            aggregates,
            output_schema,
        },
        LogicalPlan::Sort { input, keys, fetch } => LogicalPlan::Sort {
            input: Box::new(limit_into_sort(*input)),
            keys,
            fetch,
        },
        scan @ LogicalPlan::Scan { .. } => scan,
    }
}

/// Detects trivially-false predicates (`literal false`), letting the
/// engine skip whole scans. Conservative: only a literal `false`.
pub fn predicate_is_false(e: &Expr) -> bool {
    matches!(e, Expr::Literal(Value::Bool(false)))
}

/// Detects trivially-true predicates so filters can be dropped.
pub fn predicate_is_true(e: &Expr) -> bool {
    matches!(e, Expr::Literal(Value::Bool(true)))
}

/// Strips double negation (`NOT NOT x` → `x`); cheap clean-up used by the
/// index rewriter.
pub fn simplify_not(e: &Expr) -> Expr {
    match e {
        Expr::Unary {
            op: UnaryOp::Not,
            operand,
        } => match operand.as_ref() {
            Expr::Unary {
                op: UnaryOp::Not,
                operand: inner,
            } => simplify_not(inner),
            _ => Expr::not(simplify_not(operand)),
        },
        Expr::Binary { op, left, right } => {
            Expr::binary(*op, simplify_not(left), simplify_not(right))
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parser::{parse_expr, parse_query};
    use crate::plan::build_plan;
    use feisu_format::{DataType, Field};
    use std::collections::HashMap;

    fn catalog() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert(
            "t1".to_string(),
            Schema::new(vec![
                Field::new("url", DataType::Utf8, false),
                Field::new("clicks", DataType::Int64, true),
                Field::new("score", DataType::Float64, false),
                Field::new("day", DataType::Int64, false),
            ]),
        );
        m.insert(
            "t2".to_string(),
            Schema::new(vec![
                Field::new("url", DataType::Utf8, false),
                Field::new("rank", DataType::Int64, false),
            ]),
        );
        m
    }

    fn optimized(sql: &str) -> LogicalPlan {
        let q = parse_query(sql).unwrap();
        let r = analyze(&q, &catalog()).unwrap();
        optimize(build_plan(&r).unwrap()).unwrap()
    }

    #[test]
    fn constant_folding() {
        assert_eq!(
            fold_expr(parse_expr("1 + 2 * 3").unwrap()),
            Expr::Literal(Value::Int64(7))
        );
        assert_eq!(
            fold_expr(parse_expr("x + (1 + 2)").unwrap()).to_string(),
            "(x + 3)"
        );
        // Errors stay unfolded.
        assert_eq!(
            fold_expr(parse_expr("1 / 0").unwrap()).to_string(),
            "(1 / 0)"
        );
    }

    #[test]
    fn predicate_pushes_into_scan() {
        let p = optimized("SELECT url FROM t1 WHERE clicks > 5 AND score < 0.5");
        let s = p.display_indent();
        // No residual filter; both conjuncts inside the scan.
        assert!(!s.contains("Filter"), "{s}");
        assert!(s.contains("Scan: t1"), "{s}");
        assert!(s.contains("clicks > 5"), "{s}");
        assert!(s.contains("score < 0.5"), "{s}");
    }

    #[test]
    fn pushdown_splits_across_join_sides() {
        let p = optimized(
            "SELECT clicks, rank FROM t1 JOIN t2 ON t1.url = t2.url \
             WHERE t1.clicks > 5 AND t2.rank < 10",
        );
        let s = p.display_indent();
        assert!(!s.contains("Filter"), "{s}");
        // Each side's scan carries its own conjunct.
        assert!(s.contains("filter=(t1.clicks > 5)"), "{s}");
        assert!(s.contains("filter=(t2.rank < 10)"), "{s}");
    }

    #[test]
    fn cross_table_conjunct_stays_in_filter() {
        let p = optimized(
            "SELECT clicks, rank FROM t1 JOIN t2 ON t1.url = t2.url \
             WHERE t1.clicks > t2.rank",
        );
        let s = p.display_indent();
        assert!(s.contains("Filter: (t1.clicks > t2.rank)"), "{s}");
    }

    #[test]
    fn outer_join_blocks_null_side_pushdown() {
        let p = optimized(
            "SELECT t1.clicks FROM t1 LEFT JOIN t2 ON t1.url = t2.url \
             WHERE t2.rank > 0",
        );
        let s = p.display_indent();
        // Pushing into the right side of a LEFT JOIN would be wrong.
        assert!(s.contains("Filter: (t2.rank > 0)"), "{s}");
    }

    #[test]
    fn projection_pruned_to_needed_columns() {
        let p = optimized("SELECT url FROM t1 WHERE clicks > 5");
        fn find_scan(p: &LogicalPlan) -> Option<&LogicalPlan> {
            match p {
                s @ LogicalPlan::Scan { .. } => Some(s),
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Aggregate { input, .. }
                | LogicalPlan::Limit { input, .. } => find_scan(input),
                LogicalPlan::Join { left, .. } => find_scan(left),
            }
        }
        match find_scan(&p).unwrap() {
            LogicalPlan::Scan { projection, .. } => {
                // Only url (selected) survives: the scan evaluates its own
                // predicate, so `clicks` is not projected, and day/score
                // are pruned away.
                assert_eq!(projection, &vec!["url".to_string()]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn limit_pushes_fetch_into_sort() {
        let p = optimized("SELECT url FROM t1 ORDER BY clicks DESC LIMIT 7");
        let s = p.display_indent();
        assert!(s.contains("fetch=Some(7)"), "{s}");
    }

    #[test]
    fn trivial_predicates_detected() {
        assert!(predicate_is_false(&fold_expr(parse_expr("1 > 2").unwrap())));
        assert!(predicate_is_true(&fold_expr(parse_expr("2 > 1").unwrap())));
        assert!(!predicate_is_false(&parse_expr("x > 2").unwrap()));
    }

    #[test]
    fn double_negation_stripped() {
        let e = parse_expr("NOT NOT (x > 1)").unwrap();
        assert_eq!(simplify_not(&e).to_string(), "(x > 1)");
        let e = parse_expr("NOT NOT NOT (x > 1)").unwrap();
        assert_eq!(simplify_not(&e).to_string(), "(NOT (x > 1))");
    }
}
