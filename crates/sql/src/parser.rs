//! Recursive-descent parser for the Feisu dialect (grammar of §III-A).

use crate::ast::*;
use crate::lexer::{tokenize, Keyword, Spanned, Token};
use feisu_common::{FeisuError, Result};
use feisu_format::Value;

/// Parses one query (optionally `;`-terminated).
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.parse_query()?;
    p.eat_if(&Token::Semicolon);
    if let Some(t) = p.peek() {
        return Err(p.err(&format!("unexpected {t} after query", t = t.token)));
    }
    Ok(q)
}

/// Parses a standalone expression (used by tests and the index rewriter).
pub fn parse_expr(input: &str) -> Result<Expr> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.parse_expr()?;
    if let Some(t) = p.peek() {
        return Err(p.err(&format!("unexpected {t} after expression", t = t.token)));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> FeisuError {
        let offset = self
            .tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.offset)
            .unwrap_or(0);
        FeisuError::Parse(format!("{msg} (at offset {offset})"))
    }

    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn peek_token(&self) -> Option<&Token> {
        self.peek().map(|s| &s.token)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek_token() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek_token() == Some(&Token::Keyword(k)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat_if(t) {
            Ok(())
        } else {
            Err(self.err(&format!(
                "expected {t}, found {}",
                self.peek_token()
                    .map(|x| x.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<()> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(self.err(&format!(
                "expected keyword {k:?}, found {}",
                self.peek_token()
                    .map(|x| x.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(&format!(
                "expected identifier, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn parse_query(&mut self) -> Result<Query> {
        self.expect_keyword(Keyword::Select)?;
        let select = self.parse_select_list()?;
        self.expect_keyword(Keyword::From)?;
        let mut from = vec![self.parse_table_ref()?];
        while self.eat_if(&Token::Comma) {
            from.push(self.parse_table_ref()?);
        }
        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_keyword(Keyword::Cross) {
                self.expect_keyword(Keyword::Join)?;
                JoinKind::Cross
            } else if self.eat_keyword(Keyword::Inner) {
                self.expect_keyword(Keyword::Join)?;
                JoinKind::Inner
            } else if self.eat_keyword(Keyword::Left) {
                self.eat_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                JoinKind::LeftOuter
            } else if self.eat_keyword(Keyword::Right) {
                self.eat_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                JoinKind::RightOuter
            } else if self.eat_keyword(Keyword::Join) {
                JoinKind::Inner
            } else {
                break;
            };
            let table = self.parse_table_ref()?;
            let mut on = Vec::new();
            if kind != JoinKind::Cross {
                self.expect_keyword(Keyword::On)?;
                on.push(self.parse_not()?); // single condition, no OR at top
                while self.eat_keyword(Keyword::And) {
                    on.push(self.parse_not()?);
                }
            }
            joins.push(JoinClause { kind, table, on });
        }
        let where_clause = if self.eat_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            group_by.push(self.parse_expr()?);
            while self.eat_if(&Token::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_keyword(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            loop {
                let e = self.parse_expr()?;
                let desc = if self.eat_keyword(Keyword::Desc) {
                    true
                } else {
                    self.eat_keyword(Keyword::Asc);
                    false
                };
                order_by.push((e, desc));
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword(Keyword::Limit) {
            match self.bump() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                _ => return Err(self.err("LIMIT requires a non-negative integer")),
            }
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            // Bare `*` means "all columns": represented as Column("*").
            let expr = if self.peek_token() == Some(&Token::Star) {
                self.pos += 1;
                Expr::Column("*".into())
            } else {
                self.parse_expr()?
            };
            let alias = if self.eat_keyword(Keyword::As) {
                Some(self.expect_ident()?)
            } else if let Some(Token::Ident(_)) = self.peek_token() {
                // Bare alias: `SELECT a b FROM ...`
                Some(self.expect_ident()?)
            } else {
                None
            };
            items.push(SelectItem { expr, alias });
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut name = self.expect_ident()?;
        // Qualified table names (`system.queries`): one dotted segment,
        // kept inside the name — the catalog namespaces virtual tables
        // by their full `schema.table` string.
        if self.eat_if(&Token::Dot) {
            name = format!("{name}.{}", self.expect_ident()?);
        }
        let alias = if self.eat_keyword(Keyword::As) {
            Some(self.expect_ident()?)
        } else if let Some(Token::Ident(_)) = self.peek_token() {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    // Expression grammar, lowest to highest precedence:
    //   expr      := or
    //   or        := and (OR and)*
    //   and       := not (AND not)*
    //   not       := (NOT|!) not | comparison
    //   comparison:= additive ((=|!=|<|<=|>|>=|CONTAINS) additive)?
    //                | additive IS [NOT] NULL
    //   additive  := multiplicative ((+|-) multiplicative)*
    //   mult      := unary ((*|/|%) unary)*
    //   unary     := - unary | primary
    //   primary   := literal | column | agg(...) | ( expr )
    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::or(left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::and(left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_keyword(Keyword::Not) || self.eat_if(&Token::Bang) {
            let operand = self.parse_not()?;
            return Ok(Expr::not(operand));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        let op = match self.peek_token() {
            Some(Token::Eq) => BinaryOp::Eq,
            Some(Token::NotEq) => BinaryOp::NotEq,
            Some(Token::Lt) => BinaryOp::Lt,
            Some(Token::LtEq) => BinaryOp::LtEq,
            Some(Token::Gt) => BinaryOp::Gt,
            Some(Token::GtEq) => BinaryOp::GtEq,
            Some(Token::Keyword(Keyword::Contains)) => BinaryOp::Contains,
            Some(Token::Keyword(Keyword::Is)) => {
                self.pos += 1;
                let negated = self.eat_keyword(Keyword::Not);
                self.expect_keyword(Keyword::Null)?;
                return Ok(Expr::IsNull {
                    operand: Box::new(left),
                    negated,
                });
            }
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.parse_additive()?;
        Ok(Expr::binary(op, left, right))
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek_token() {
                Some(Token::Plus) => BinaryOp::Plus,
                Some(Token::Minus) => BinaryOp::Minus,
                _ => return Ok(left),
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::binary(op, left, right);
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek_token() {
                Some(Token::Star) => BinaryOp::Multiply,
                Some(Token::Slash) => BinaryOp::Divide,
                Some(Token::Percent) => BinaryOp::Modulo,
                _ => return Ok(left),
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::binary(op, left, right);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_if(&Token::Minus) {
            let operand = self.parse_unary()?;
            // Fold negative literals immediately.
            return Ok(match operand {
                Expr::Literal(Value::Int64(v)) => Expr::Literal(Value::Int64(-v)),
                Expr::Literal(Value::Float64(v)) => Expr::Literal(Value::Float64(-v)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    operand: Box::new(other),
                },
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Some(Token::Int(v)) => Ok(Expr::Literal(Value::Int64(v))),
            Some(Token::Float(v)) => Ok(Expr::Literal(Value::Float64(v))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Utf8(s))),
            Some(Token::Keyword(Keyword::True)) => Ok(Expr::Literal(Value::Bool(true))),
            Some(Token::Keyword(Keyword::False)) => Ok(Expr::Literal(Value::Bool(false))),
            Some(Token::Keyword(Keyword::Null)) => Ok(Expr::Literal(Value::Null)),
            Some(Token::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if self.peek_token() == Some(&Token::LParen) {
                    // Function call: only aggregates exist in the dialect.
                    let func = AggFunc::from_name(&name)
                        .ok_or_else(|| self.err(&format!("unknown function `{name}`")))?;
                    self.pos += 1; // (
                    let arg = if self.eat_if(&Token::Star) {
                        None
                    } else {
                        Some(Box::new(self.parse_expr()?))
                    };
                    self.expect(&Token::RParen)?;
                    let within = if self.eat_keyword(Keyword::Within) {
                        Some(Box::new(self.parse_expr()?))
                    } else {
                        None
                    };
                    Ok(Expr::Aggregate { func, arg, within })
                } else if self.eat_if(&Token::Dot) {
                    let col = self.expect_ident()?;
                    Ok(Expr::Column(format!("{name}.{col}")))
                } else {
                    Ok(Expr::Column(name))
                }
            }
            other => Err(self.err(&format!(
                "expected expression, found {}",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_q1() {
        let q = parse_query("SELECT COUNT(*) FROM T WHERE (c2 > 0) AND (c2 <= 5)").unwrap();
        assert_eq!(q.from[0].name, "T");
        assert_eq!(q.select.len(), 1);
        assert!(matches!(
            q.select[0].expr,
            Expr::Aggregate {
                func: AggFunc::Count,
                arg: None,
                ..
            }
        ));
        let w = q.where_clause.unwrap();
        assert_eq!(w.to_string(), "((c2 > 0) AND (c2 <= 5))");
    }

    #[test]
    fn parse_qualified_table_name() {
        let q = parse_query("SELECT sql FROM system.queries WHERE tasks > 0").unwrap();
        assert_eq!(q.from[0].name, "system.queries");
        assert_eq!(q.from[0].alias, None);
        // Alias still parses after a qualified name.
        let q = parse_query("SELECT q.sql FROM system.queries AS q").unwrap();
        assert_eq!(q.from[0].name, "system.queries");
        assert_eq!(q.from[0].alias.as_deref(), Some("q"));
    }

    #[test]
    fn parse_paper_q11_bang_negation() {
        let q = parse_query("SELECT a FROM T WHERE c2 > 0 AND !(c2 > 5)").unwrap();
        let w = q.where_clause.unwrap();
        assert_eq!(w.to_string(), "((c2 > 0) AND (NOT (c2 > 5)))");
    }

    #[test]
    fn parse_scan_workload_shape() {
        // §VI-B workload: SELECT a FROM T1 WHERE b OP v [AND|OR c OP v].
        let q = parse_query("SELECT a FROM T1 WHERE b CONTAINS 'x' OR c >= 1.5").unwrap();
        let w = q.where_clause.unwrap();
        assert_eq!(w.to_string(), "((b CONTAINS 'x') OR (c >= 1.5))");
        assert_eq!(q.select[0].expr, Expr::col("a"));
    }

    #[test]
    fn parse_full_clause_stack() {
        let q = parse_query(
            "SELECT url, COUNT(*) AS n, SUM(clicks) total \
             FROM t1 WHERE day >= 20160101 \
             GROUP BY url HAVING COUNT(*) > 10 \
             ORDER BY n DESC, url LIMIT 5;",
        )
        .unwrap();
        assert_eq!(q.select.len(), 3);
        assert_eq!(q.select[1].alias.as_deref(), Some("n"));
        assert_eq!(q.select[2].alias.as_deref(), Some("total"));
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].1);
        assert!(!q.order_by[1].1);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn parse_joins() {
        let q = parse_query(
            "SELECT t1.a, t2.b FROM t1 \
             JOIN t2 ON t1.k = t2.k AND t1.x > 0 \
             LEFT OUTER JOIN t3 AS z ON t2.k = z.k",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[0].kind, JoinKind::Inner);
        assert_eq!(q.joins[0].on.len(), 2);
        assert_eq!(q.joins[1].kind, JoinKind::LeftOuter);
        assert_eq!(q.joins[1].table.effective_name(), "z");
    }

    #[test]
    fn parse_cross_join_has_no_on() {
        let q = parse_query("SELECT a FROM t1 CROSS JOIN t2").unwrap();
        assert_eq!(q.joins[0].kind, JoinKind::Cross);
        assert!(q.joins[0].on.is_empty());
    }

    #[test]
    fn parse_within_annotation() {
        let q = parse_query("SELECT SUM(x) WITHIN grp FROM t").unwrap();
        match &q.select[0].expr {
            Expr::Aggregate {
                within: Some(w), ..
            } => {
                assert_eq!(**w, Expr::col("grp"));
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn parse_is_null() {
        let e = parse_expr("a IS NULL").unwrap();
        assert_eq!(
            e,
            Expr::IsNull {
                operand: Box::new(Expr::col("a")),
                negated: false
            }
        );
        let e = parse_expr("a IS NOT NULL").unwrap();
        assert_eq!(
            e,
            Expr::IsNull {
                operand: Box::new(Expr::col("a")),
                negated: true
            }
        );
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "(1 + (2 * 3))");
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert_eq!(e.to_string(), "((1 + 2) * 3)");
    }

    #[test]
    fn boolean_precedence_and_binds_tighter() {
        let e = parse_expr("a = 1 OR b = 2 AND c = 3").unwrap();
        assert_eq!(e.to_string(), "((a = 1) OR ((b = 2) AND (c = 3)))");
    }

    #[test]
    fn negative_literals_fold() {
        let e = parse_expr("-5").unwrap();
        assert_eq!(e, Expr::Literal(Value::Int64(-5)));
        let e = parse_expr("-2.5").unwrap();
        assert_eq!(e, Expr::Literal(Value::Float64(-2.5)));
    }

    #[test]
    fn select_star() {
        let q = parse_query("SELECT * FROM t LIMIT 3").unwrap();
        assert_eq!(q.select[0].expr, Expr::col("*"));
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse_query("SELECT FROM t").unwrap_err();
        assert!(e.to_string().contains("offset"));
        assert!(parse_query("SELECT a").is_err());
        assert!(parse_query("SELECT a FROM t WHERE").is_err());
        assert!(parse_query("SELECT a FROM t LIMIT x").is_err());
        assert!(parse_query("SELECT a FROM t extra garbage ,").is_err());
    }

    #[test]
    fn unknown_function_rejected() {
        assert!(parse_query("SELECT FOO(a) FROM t").is_err());
    }

    #[test]
    fn qualified_columns() {
        let e = parse_expr("t1.col_a > 3").unwrap();
        assert_eq!(e.to_string(), "(t1.col_a > 3)");
    }
}
