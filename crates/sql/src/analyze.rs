//! Semantic analysis: name resolution and light type checking.
//!
//! The analyzer resolves every column reference against the catalog's
//! schemas, detects ambiguity, and rewrites references to a canonical
//! form: bare names for single-table queries, `table.column` qualified
//! names for multi-table queries (matching the field names the join
//! operators will produce). It also infers expression result types so the
//! planner can construct output schemas.

use crate::ast::BinaryOp;
use crate::ast::{AggFunc, Expr, Query, UnaryOp};
use feisu_common::hash::FxHashMap;
use feisu_common::{FeisuError, Result};
use feisu_format::{DataType, Schema};

/// Read-only view of table metadata, implemented by the master's catalog.
pub trait Catalog {
    /// Schema of a table by its *storage* name.
    fn table_schema(&self, name: &str) -> Option<Schema>;

    /// Statistics snapshot for a table (row count, per-column
    /// min/max/NDV), when the implementation maintains them. Used by
    /// cost-based lowering; `None` falls back to uniform defaults.
    fn table_stats(&self, _name: &str) -> Option<crate::stats::TableStats> {
        None
    }
}

impl Catalog for FxHashMap<String, Schema> {
    fn table_schema(&self, name: &str) -> Option<Schema> {
        self.get(name).cloned()
    }
}

impl Catalog for std::collections::HashMap<String, Schema> {
    fn table_schema(&self, name: &str) -> Option<Schema> {
        self.get(name).cloned()
    }
}

/// One resolved table binding.
#[derive(Debug, Clone)]
pub struct BoundTable {
    /// Storage name (catalog key).
    pub table: String,
    /// Name the query knows it by (alias or table name).
    pub binding: String,
    pub schema: Schema,
}

/// The resolved query: same clause structure as the AST but with every
/// column reference canonicalized and table bindings attached.
#[derive(Debug, Clone)]
pub struct Resolved {
    pub query: Query,
    pub tables: Vec<BoundTable>,
    /// Whether canonical references are qualified (`t.c`) — true iff the
    /// query touches more than one table.
    pub qualified: bool,
}

impl Resolved {
    /// Looks up the canonical type of a resolved column reference.
    pub fn column_type(&self, canonical: &str) -> Option<DataType> {
        if self.qualified {
            let (tbl, col) = canonical.split_once('.')?;
            let bt = self.tables.iter().find(|t| t.binding == tbl)?;
            Some(bt.schema.field_by_name(col)?.data_type)
        } else {
            let f = self.tables.first()?.schema.field_by_name(canonical)?;
            Some(f.data_type)
        }
    }
}

/// Analyzes a parsed query against a catalog.
pub fn analyze(query: &Query, catalog: &dyn Catalog) -> Result<Resolved> {
    // Bind tables.
    let mut tables = Vec::new();
    let mut seen = FxHashMap::default();
    for tref in query.all_tables() {
        let schema = catalog
            .table_schema(&tref.name)
            .ok_or_else(|| FeisuError::Analysis(format!("unknown table `{}`", tref.name)))?;
        let binding = tref.effective_name().to_string();
        if seen.insert(binding.clone(), ()).is_some() {
            return Err(FeisuError::Analysis(format!(
                "duplicate table binding `{binding}`"
            )));
        }
        tables.push(BoundTable {
            table: tref.name.clone(),
            binding,
            schema,
        });
    }
    if tables.is_empty() {
        return Err(FeisuError::Analysis("query has no tables".into()));
    }
    let qualified = tables.len() > 1;

    let resolver = Resolver {
        tables: &tables,
        qualified,
    };

    let mut q = query.clone();
    // Expand `SELECT *`.
    let mut select = Vec::new();
    for item in q.select {
        if item.expr == Expr::Column("*".into()) {
            for bt in &tables {
                for f in bt.schema.fields() {
                    let name = if qualified {
                        format!("{}.{}", bt.binding, f.name)
                    } else {
                        f.name.clone()
                    };
                    select.push(crate::ast::SelectItem {
                        expr: Expr::Column(name),
                        alias: None,
                    });
                }
            }
        } else {
            select.push(item);
        }
    }
    q.select = select;

    // Aliases defined in the SELECT list are visible in GROUP BY, HAVING
    // and ORDER BY (the paper grammar: `GROUP BY (field1 | alias1)`).
    let mut aliases: FxHashMap<String, Expr> = FxHashMap::default();

    for item in &mut q.select {
        item.expr = resolver.resolve(&item.expr)?;
        if let Some(a) = &item.alias {
            aliases.insert(a.clone(), item.expr.clone());
        }
    }
    if let Some(w) = &mut q.where_clause {
        if w.has_aggregate() {
            return Err(FeisuError::Analysis(
                "aggregate function not allowed in WHERE".into(),
            ));
        }
        *w = resolver.resolve(w)?;
    }
    for j in &mut q.joins {
        for cond in &mut j.on {
            *cond = resolver.resolve(cond)?;
        }
    }
    for g in &mut q.group_by {
        *g = resolve_with_aliases(&resolver, g, &aliases)?;
        if g.has_aggregate() {
            return Err(FeisuError::Analysis(
                "aggregate function not allowed in GROUP BY".into(),
            ));
        }
    }
    if let Some(h) = &mut q.having {
        *h = resolve_with_aliases(&resolver, h, &aliases)?;
    }
    for (e, _) in &mut q.order_by {
        *e = resolve_with_aliases(&resolver, e, &aliases)?;
    }

    // Grouping validity: if there is a GROUP BY or any aggregate in the
    // select list, every select item must be an aggregate or a grouping
    // expression.
    let has_group = !q.group_by.is_empty();
    let has_agg = q.select.iter().any(|s| s.expr.has_aggregate())
        || q.having.as_ref().is_some_and(|h| h.has_aggregate());
    if has_group || has_agg {
        for item in &q.select {
            if !item.expr.has_aggregate() && !expr_is_grouped(&item.expr, &q.group_by) {
                return Err(FeisuError::Analysis(format!(
                    "`{}` must appear in GROUP BY or inside an aggregate",
                    item.expr
                )));
            }
        }
    } else if q.having.is_some() {
        return Err(FeisuError::Analysis(
            "HAVING requires GROUP BY or aggregates".into(),
        ));
    }

    let resolved = Resolved {
        query: q,
        tables,
        qualified,
    };

    // Type-check scalar expressions (walks everything once; reports the
    // first mismatch).
    for item in &resolved.query.select {
        infer_type(&item.expr, &resolved)?;
    }
    if let Some(w) = &resolved.query.where_clause {
        expect_boolean(w, &resolved)?;
    }
    if let Some(h) = &resolved.query.having {
        expect_boolean(h, &resolved)?;
    }
    Ok(resolved)
}

fn expr_is_grouped(e: &Expr, group_by: &[Expr]) -> bool {
    if group_by.contains(e) {
        return true;
    }
    match e {
        Expr::Binary { left, right, .. } => {
            expr_is_grouped(left, group_by) && expr_is_grouped(right, group_by)
        }
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => {
            expr_is_grouped(operand, group_by)
        }
        Expr::Literal(_) => true,
        _ => false,
    }
}

fn resolve_with_aliases(
    resolver: &Resolver<'_>,
    e: &Expr,
    aliases: &FxHashMap<String, Expr>,
) -> Result<Expr> {
    if let Expr::Column(name) = e {
        if let Some(target) = aliases.get(name) {
            return Ok(target.clone());
        }
    }
    match resolver.resolve(e) {
        Ok(r) => Ok(r),
        Err(err) => {
            // A deeper reference may still use an alias, e.g. `n > 1`.
            match e {
                Expr::Binary { op, left, right } => Ok(Expr::binary(
                    *op,
                    resolve_with_aliases(resolver, left, aliases)?,
                    resolve_with_aliases(resolver, right, aliases)?,
                )),
                Expr::Unary { op, operand } => Ok(Expr::Unary {
                    op: *op,
                    operand: Box::new(resolve_with_aliases(resolver, operand, aliases)?),
                }),
                _ => Err(err),
            }
        }
    }
}

struct Resolver<'a> {
    tables: &'a [BoundTable],
    qualified: bool,
}

impl Resolver<'_> {
    fn resolve(&self, e: &Expr) -> Result<Expr> {
        Ok(match e {
            Expr::Column(name) => Expr::Column(self.resolve_column(name)?),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { op, left, right } => {
                Expr::binary(*op, self.resolve(left)?, self.resolve(right)?)
            }
            Expr::Unary { op, operand } => Expr::Unary {
                op: *op,
                operand: Box::new(self.resolve(operand)?),
            },
            Expr::IsNull { operand, negated } => Expr::IsNull {
                operand: Box::new(self.resolve(operand)?),
                negated: *negated,
            },
            Expr::Aggregate { func, arg, within } => Expr::Aggregate {
                func: *func,
                arg: match arg {
                    Some(a) => Some(Box::new(self.resolve(a)?)),
                    None => None,
                },
                within: match within {
                    Some(w) => Some(Box::new(self.resolve(w)?)),
                    None => None,
                },
            },
        })
    }

    fn resolve_column(&self, name: &str) -> Result<String> {
        // Flattened JSON columns legitimately contain dots (`user.city`);
        // a whole-name match in some table wins over qualifier parsing.
        let whole_owners: Vec<&BoundTable> = self
            .tables
            .iter()
            .filter(|t| t.schema.index_of(name).is_some())
            .collect();
        if whole_owners.len() == 1 {
            return Ok(if self.qualified {
                format!("{}.{name}", whole_owners[0].binding)
            } else {
                name.to_string()
            });
        }
        if let Some((tbl, col)) = name.split_once('.') {
            let bt = self
                .tables
                .iter()
                .find(|t| t.binding == tbl)
                .ok_or_else(|| FeisuError::Analysis(format!("unknown table qualifier `{tbl}`")))?;
            if bt.schema.index_of(col).is_none() {
                return Err(FeisuError::Analysis(format!(
                    "table `{tbl}` has no column `{col}`"
                )));
            }
            return Ok(if self.qualified {
                name.to_string()
            } else {
                col.to_string()
            });
        }
        let owners: Vec<&BoundTable> = self
            .tables
            .iter()
            .filter(|t| t.schema.index_of(name).is_some())
            .collect();
        match owners.as_slice() {
            [] => Err(FeisuError::Analysis(format!("unknown column `{name}`"))),
            [one] => Ok(if self.qualified {
                format!("{}.{name}", one.binding)
            } else {
                name.to_string()
            }),
            _ => Err(FeisuError::Analysis(format!(
                "column `{name}` is ambiguous across {} tables",
                owners.len()
            ))),
        }
    }
}

/// Infers the result type of a resolved expression; `None` = NULL literal
/// whose type is context-dependent.
pub fn infer_type(e: &Expr, scope: &Resolved) -> Result<Option<DataType>> {
    Ok(match e {
        Expr::Literal(v) => v.data_type(),
        Expr::Column(c) => Some(scope.column_type(c).ok_or_else(|| {
            FeisuError::Analysis(format!("unresolved column `{c}` during typing"))
        })?),
        Expr::Unary {
            op: UnaryOp::Neg,
            operand,
        } => {
            let t = infer_type(operand, scope)?;
            match t {
                None | Some(DataType::Int64) | Some(DataType::Float64) => t,
                Some(other) => return Err(FeisuError::Analysis(format!("cannot negate {other}"))),
            }
        }
        Expr::Unary {
            op: UnaryOp::Not, ..
        }
        | Expr::IsNull { .. } => Some(DataType::Bool),
        Expr::Binary { op, left, right } => {
            let lt = infer_type(left, scope)?;
            let rt = infer_type(right, scope)?;
            match op {
                BinaryOp::And | BinaryOp::Or => Some(DataType::Bool),
                BinaryOp::Contains => {
                    for t in [lt, rt].into_iter().flatten() {
                        if t != DataType::Utf8 {
                            return Err(FeisuError::Analysis(
                                "CONTAINS requires string operands".into(),
                            ));
                        }
                    }
                    Some(DataType::Bool)
                }
                op if op.is_comparison() => {
                    if let (Some(a), Some(b)) = (lt, rt) {
                        let compatible = a == b || (a.is_numeric() && b.is_numeric());
                        if !compatible {
                            return Err(FeisuError::Analysis(format!(
                                "cannot compare {a} with {b}"
                            )));
                        }
                    }
                    Some(DataType::Bool)
                }
                _ => {
                    // Arithmetic.
                    for t in [lt, rt].into_iter().flatten() {
                        if !t.is_numeric() {
                            return Err(FeisuError::Analysis(format!(
                                "arithmetic on non-numeric {t}"
                            )));
                        }
                    }
                    match (lt, rt) {
                        (Some(DataType::Int64), Some(DataType::Int64)) => Some(DataType::Int64),
                        (None, None) => None,
                        _ => Some(DataType::Float64),
                    }
                }
            }
        }
        Expr::Aggregate { func, arg, .. } => match func {
            AggFunc::Count => Some(DataType::Int64),
            AggFunc::Avg => Some(DataType::Float64),
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => match arg {
                Some(a) => infer_type(a, scope)?,
                None => return Err(FeisuError::Analysis(format!("{func} requires an argument"))),
            },
        },
    })
}

fn expect_boolean(e: &Expr, scope: &Resolved) -> Result<()> {
    match infer_type(e, scope)? {
        Some(DataType::Bool) | None => Ok(()),
        Some(other) => Err(FeisuError::Analysis(format!(
            "expected boolean condition, got {other}: `{e}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use feisu_format::Field;
    use std::collections::HashMap;

    fn catalog() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert(
            "t1".to_string(),
            Schema::new(vec![
                Field::new("url", DataType::Utf8, false),
                Field::new("clicks", DataType::Int64, true),
                Field::new("score", DataType::Float64, false),
            ]),
        );
        m.insert(
            "t2".to_string(),
            Schema::new(vec![
                Field::new("url", DataType::Utf8, false),
                Field::new("rank", DataType::Int64, false),
            ]),
        );
        m
    }

    fn ok(sql: &str) -> Resolved {
        analyze(&parse_query(sql).unwrap(), &catalog()).unwrap()
    }

    fn err(sql: &str) -> FeisuError {
        analyze(&parse_query(sql).unwrap(), &catalog()).unwrap_err()
    }

    #[test]
    fn single_table_stays_bare() {
        let r = ok("SELECT clicks FROM t1 WHERE score > 0.5");
        assert!(!r.qualified);
        assert_eq!(r.query.select[0].expr, Expr::col("clicks"));
        assert_eq!(r.column_type("clicks"), Some(DataType::Int64));
    }

    #[test]
    fn multi_table_qualifies() {
        let r = ok("SELECT clicks, rank FROM t1 JOIN t2 ON t1.url = t2.url");
        assert!(r.qualified);
        assert_eq!(r.query.select[0].expr, Expr::col("t1.clicks"));
        assert_eq!(r.query.select[1].expr, Expr::col("t2.rank"));
        assert_eq!(r.column_type("t2.rank"), Some(DataType::Int64));
    }

    #[test]
    fn ambiguous_column_rejected() {
        let e = err("SELECT url FROM t1 JOIN t2 ON t1.url = t2.url");
        assert!(e.to_string().contains("ambiguous"));
    }

    #[test]
    fn unknown_table_and_column_rejected() {
        assert!(err("SELECT x FROM ghost")
            .to_string()
            .contains("unknown table"));
        assert!(err("SELECT ghost FROM t1")
            .to_string()
            .contains("unknown column"));
        assert!(err("SELECT t9.url FROM t1")
            .to_string()
            .contains("qualifier"));
    }

    #[test]
    fn alias_binding_respected() {
        let r = ok("SELECT a.clicks FROM t1 AS a");
        assert_eq!(r.query.select[0].expr, Expr::col("clicks"));
        let e = err("SELECT t1.clicks FROM t1 AS a");
        assert!(e.to_string().contains("qualifier"));
    }

    #[test]
    fn duplicate_binding_rejected() {
        let e = err("SELECT 1 FROM t1, t1");
        assert!(e.to_string().contains("duplicate table binding"));
    }

    #[test]
    fn star_expansion() {
        let r = ok("SELECT * FROM t1");
        assert_eq!(r.query.select.len(), 3);
        assert_eq!(r.query.select[0].expr, Expr::col("url"));
    }

    #[test]
    fn select_alias_visible_in_order_and_having() {
        let r = ok("SELECT url, COUNT(*) AS n FROM t1 GROUP BY url HAVING n > 2 ORDER BY n DESC");
        // `n` in HAVING/ORDER resolves to the COUNT aggregate.
        assert!(r.query.having.unwrap().has_aggregate());
        assert!(r.query.order_by[0].0.has_aggregate());
    }

    #[test]
    fn aggregates_banned_in_where_and_group_by() {
        assert!(err("SELECT url FROM t1 WHERE COUNT(*) > 1 GROUP BY url")
            .to_string()
            .contains("WHERE"));
    }

    #[test]
    fn ungrouped_select_item_rejected() {
        let e = err("SELECT url, clicks FROM t1 GROUP BY url");
        assert!(e.to_string().contains("GROUP BY"));
        // But grouped expressions over group keys are fine.
        ok("SELECT url, COUNT(*) FROM t1 GROUP BY url");
    }

    #[test]
    fn having_without_grouping_rejected() {
        let e = err("SELECT url FROM t1 HAVING url = 'x'");
        assert!(e.to_string().contains("HAVING"));
    }

    #[test]
    fn type_errors_caught() {
        assert!(err("SELECT clicks + url FROM t1")
            .to_string()
            .contains("non-numeric"));
        assert!(err("SELECT url FROM t1 WHERE clicks CONTAINS 'x'")
            .to_string()
            .contains("CONTAINS"));
        assert!(err("SELECT url FROM t1 WHERE url > 5")
            .to_string()
            .contains("compare"));
        assert!(err("SELECT url FROM t1 WHERE clicks + 1")
            .to_string()
            .contains("boolean"));
    }

    #[test]
    fn numeric_comparison_mixed_ok() {
        ok("SELECT url FROM t1 WHERE score > 1");
        ok("SELECT url FROM t1 WHERE clicks > 1.5");
    }

    #[test]
    fn infer_types_scalar() {
        let r = ok("SELECT clicks + 1, score * 2, clicks IS NULL FROM t1");
        let types: Vec<_> = r
            .query
            .select
            .iter()
            .map(|s| infer_type(&s.expr, &r).unwrap())
            .collect();
        assert_eq!(
            types,
            vec![
                Some(DataType::Int64),
                Some(DataType::Float64),
                Some(DataType::Bool),
            ]
        );
    }

    #[test]
    fn infer_types_aggregate() {
        let r = ok("SELECT COUNT(*), AVG(clicks), MIN(url), SUM(score) FROM t1");
        let types: Vec<_> = r
            .query
            .select
            .iter()
            .map(|s| infer_type(&s.expr, &r).unwrap())
            .collect();
        assert_eq!(
            types,
            vec![
                Some(DataType::Int64),
                Some(DataType::Float64),
                Some(DataType::Utf8),
                Some(DataType::Float64),
            ]
        );
    }
}
