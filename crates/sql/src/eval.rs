//! Row-wise reference interpreter for expressions.
//!
//! This is the *oracle* implementation: simple, obviously-correct SQL
//! three-valued-logic evaluation over one row at a time. The vectorized
//! engine in `feisu-exec` and the SmartIndex fast path are both tested for
//! equivalence against it.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use feisu_common::{FeisuError, Result};
use feisu_format::Value;
use std::cmp::Ordering;

/// Anything that can resolve a column name to a value for the current row.
pub trait RowContext {
    fn get(&self, column: &str) -> Option<Value>;
}

impl RowContext for std::collections::HashMap<String, Value> {
    fn get(&self, column: &str) -> Option<Value> {
        std::collections::HashMap::get(self, column).cloned()
    }
}

impl<F> RowContext for F
where
    F: Fn(&str) -> Option<Value>,
{
    fn get(&self, column: &str) -> Option<Value> {
        self(column)
    }
}

/// SQL boolean: true/false/unknown(null).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    True,
    False,
    Unknown,
}

impl Truth {
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// Whether the row passes a filter (unknown rows are dropped).
    pub fn passes(self) -> bool {
        self == Truth::True
    }

    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }
}

/// Evaluates a scalar expression against one row. Aggregates are not
/// valid here (they are handled by the aggregation operator).
pub fn eval(expr: &Expr, row: &dyn RowContext) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(name) => row
            .get(name)
            .ok_or_else(|| FeisuError::Execution(format!("unknown column `{name}`"))),
        Expr::Unary {
            op: UnaryOp::Neg,
            operand,
        } => match eval(operand, row)? {
            Value::Null => Ok(Value::Null),
            Value::Int64(v) => Ok(Value::Int64(-v)),
            Value::Float64(v) => Ok(Value::Float64(-v)),
            other => Err(FeisuError::Execution(format!("cannot negate {other}"))),
        },
        Expr::Unary {
            op: UnaryOp::Not,
            operand,
        } => Ok(truth_to_value(eval_truth(operand, row)?.not())),
        Expr::IsNull { operand, negated } => {
            let v = eval(operand, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Binary { op, left, right } => match op {
            BinaryOp::And => Ok(truth_to_value(
                eval_truth(left, row)?.and(eval_truth(right, row)?),
            )),
            BinaryOp::Or => Ok(truth_to_value(
                eval_truth(left, row)?.or(eval_truth(right, row)?),
            )),
            BinaryOp::Plus
            | BinaryOp::Minus
            | BinaryOp::Multiply
            | BinaryOp::Divide
            | BinaryOp::Modulo => arith(*op, eval(left, row)?, eval(right, row)?),
            _ => {
                let (l, r) = (eval(left, row)?, eval(right, row)?);
                Ok(truth_to_value(compare(*op, &l, &r)?))
            }
        },
        Expr::Aggregate { .. } => Err(FeisuError::Execution(
            "aggregate function in scalar context".into(),
        )),
    }
}

/// Evaluates an expression as an SQL boolean.
pub fn eval_truth(expr: &Expr, row: &dyn RowContext) -> Result<Truth> {
    match eval(expr, row)? {
        Value::Null => Ok(Truth::Unknown),
        Value::Bool(b) => Ok(Truth::from_bool(b)),
        other => Err(FeisuError::Execution(format!(
            "expected boolean, got {other}"
        ))),
    }
}

fn truth_to_value(t: Truth) -> Value {
    match t {
        Truth::True => Value::Bool(true),
        Truth::False => Value::Bool(false),
        Truth::Unknown => Value::Null,
    }
}

/// Evaluates one comparison with SQL semantics.
pub fn compare(op: BinaryOp, left: &Value, right: &Value) -> Result<Truth> {
    if left.is_null() || right.is_null() {
        return Ok(Truth::Unknown);
    }
    if op == BinaryOp::Contains {
        return match (left, right) {
            (Value::Utf8(hay), Value::Utf8(needle)) => {
                Ok(Truth::from_bool(hay.contains(needle.as_str())))
            }
            _ => Err(FeisuError::Execution(
                "CONTAINS requires string operands".into(),
            )),
        };
    }
    let ord = left
        .sql_cmp(right)
        .ok_or_else(|| FeisuError::Execution(format!("cannot compare {left} with {right}")))?;
    Ok(Truth::from_bool(match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("non-comparison op {op} in compare"),
    }))
}

fn arith(op: BinaryOp, left: Value, right: Value) -> Result<Value> {
    if left.is_null() || right.is_null() {
        return Ok(Value::Null);
    }
    // Integer arithmetic when both sides are ints; float otherwise.
    if let (Value::Int64(a), Value::Int64(b)) = (&left, &right) {
        let (a, b) = (*a, *b);
        return match op {
            BinaryOp::Plus => Ok(Value::Int64(a.wrapping_add(b))),
            BinaryOp::Minus => Ok(Value::Int64(a.wrapping_sub(b))),
            BinaryOp::Multiply => Ok(Value::Int64(a.wrapping_mul(b))),
            BinaryOp::Divide => {
                if b == 0 {
                    Err(FeisuError::Execution("division by zero".into()))
                } else {
                    Ok(Value::Int64(a.wrapping_div(b)))
                }
            }
            BinaryOp::Modulo => {
                if b == 0 {
                    Err(FeisuError::Execution("modulo by zero".into()))
                } else {
                    Ok(Value::Int64(a.wrapping_rem(b)))
                }
            }
            _ => unreachable!(),
        };
    }
    let (a, b) = (
        left.as_f64()
            .ok_or_else(|| FeisuError::Execution(format!("arithmetic on non-numeric {left}")))?,
        right
            .as_f64()
            .ok_or_else(|| FeisuError::Execution(format!("arithmetic on non-numeric {right}")))?,
    );
    Ok(Value::Float64(match op {
        BinaryOp::Plus => a + b,
        BinaryOp::Minus => a - b,
        BinaryOp::Multiply => a * b,
        BinaryOp::Divide => a / b,
        BinaryOp::Modulo => a % b,
        _ => unreachable!(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use std::collections::HashMap;

    fn row(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn ev(src: &str, row: &HashMap<String, Value>) -> Value {
        eval(&parse_expr(src).unwrap(), row).unwrap()
    }

    #[test]
    fn comparisons() {
        let r = row(&[("c2", Value::Int64(3))]);
        assert_eq!(ev("c2 > 0 AND c2 <= 5", &r), Value::Bool(true));
        assert_eq!(ev("c2 > 3", &r), Value::Bool(false));
        assert_eq!(ev("c2 >= 3", &r), Value::Bool(true));
        assert_eq!(ev("c2 != 3", &r), Value::Bool(false));
    }

    #[test]
    fn three_valued_logic() {
        let r = row(&[("x", Value::Null), ("y", Value::Int64(1))]);
        // NULL comparisons are unknown.
        assert_eq!(ev("x > 0", &r), Value::Null);
        // unknown AND false = false; unknown OR true = true.
        assert_eq!(ev("x > 0 AND y > 5", &r), Value::Bool(false));
        assert_eq!(ev("x > 0 OR y > 0", &r), Value::Bool(true));
        assert_eq!(ev("x > 0 OR y > 5", &r), Value::Null);
        assert_eq!(ev("NOT x > 0", &r), Value::Null);
    }

    #[test]
    fn is_null_predicates() {
        let r = row(&[("x", Value::Null), ("y", Value::Int64(1))]);
        assert_eq!(ev("x IS NULL", &r), Value::Bool(true));
        assert_eq!(ev("y IS NULL", &r), Value::Bool(false));
        assert_eq!(ev("y IS NOT NULL", &r), Value::Bool(true));
    }

    #[test]
    fn contains_operator() {
        let r = row(&[("url", Value::Utf8("https://baidu.com/s?wd=x".into()))]);
        assert_eq!(ev("url CONTAINS 'baidu'", &r), Value::Bool(true));
        assert_eq!(ev("url CONTAINS 'google'", &r), Value::Bool(false));
        // Null propagates.
        let r2 = row(&[("url", Value::Null)]);
        assert_eq!(ev("url CONTAINS 'x'", &r2), Value::Null);
    }

    #[test]
    fn contains_type_error() {
        let r = row(&[("n", Value::Int64(5))]);
        assert!(eval(&parse_expr("n CONTAINS 'x'").unwrap(), &r).is_err());
    }

    #[test]
    fn arithmetic_int_and_float() {
        let r = row(&[("a", Value::Int64(7)), ("b", Value::Float64(2.0))]);
        assert_eq!(ev("a + 1", &r), Value::Int64(8));
        assert_eq!(ev("a / 2", &r), Value::Int64(3));
        assert_eq!(ev("a % 4", &r), Value::Int64(3));
        assert_eq!(ev("a / b", &r), Value::Float64(3.5));
        assert_eq!(ev("-a", &r), Value::Int64(-7));
    }

    #[test]
    fn division_by_zero_int_errors() {
        let r = row(&[("a", Value::Int64(1))]);
        assert!(eval(&parse_expr("a / 0").unwrap(), &r).is_err());
        assert!(eval(&parse_expr("a % 0").unwrap(), &r).is_err());
    }

    #[test]
    fn null_arith_propagates() {
        let r = row(&[("x", Value::Null)]);
        assert_eq!(ev("x + 1", &r), Value::Null);
        assert_eq!(ev("-x", &r), Value::Null);
    }

    #[test]
    fn unknown_column_errors() {
        let r = row(&[]);
        assert!(eval(&parse_expr("ghost > 1").unwrap(), &r).is_err());
    }

    #[test]
    fn truth_table_laws() {
        use Truth::*;
        for t in [True, False, Unknown] {
            assert_eq!(t.and(False), False);
            assert_eq!(t.or(True), True);
            assert_eq!(t.not().not(), t);
        }
        assert_eq!(Unknown.and(True), Unknown);
        assert_eq!(Unknown.or(False), Unknown);
    }

    #[test]
    fn aggregate_in_scalar_context_errors() {
        let r = row(&[]);
        assert!(eval(&parse_expr("COUNT(*)").unwrap(), &r).is_err());
    }

    #[test]
    fn paper_q11_equivalence_with_q10() {
        // Q10: c2 > 0 AND c2 <= 5  ≡  Q11: c2 > 0 AND !(c2 > 5).
        for v in -3..9 {
            let r = row(&[("c2", Value::Int64(v))]);
            assert_eq!(
                ev("c2 > 0 AND c2 <= 5", &r),
                ev("c2 > 0 AND !(c2 > 5)", &r),
                "disagree at c2={v}"
            );
        }
    }
}
