//! Fixpoint driver for the optimizer's rule pipeline.
//!
//! Rules are ordinary values implementing [`PlanRewriter`]; the pipeline
//! applies them in order, repeatedly, until a full pass changes nothing
//! (or a safety cap is hit). Every rule application that changed the plan
//! is recorded in the returned trace, so EXPLAIN and the observability
//! plane can show exactly which rewrites produced the final plan.

use super::rules;
use crate::plan::LogicalPlan;
use feisu_common::Result;

/// One rewrite rule over logical plans. Implementations must be
/// *monotone*: repeated application reaches a fixpoint (a rewrite that
/// undoes another rule's work would make the pipeline oscillate until
/// the pass cap).
pub trait PlanRewriter {
    /// Stable rule name, surfaced in EXPLAIN and metrics.
    fn name(&self) -> &'static str;
    /// One full rewrite pass over the plan.
    fn rewrite(&self, plan: LogicalPlan) -> Result<LogicalPlan>;
}

/// Trace entry: how many passes a rule changed the plan in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleFire {
    pub rule: &'static str,
    pub fires: u32,
}

/// Safety cap on fixpoint passes. Well-behaved rules converge in 2–3
/// passes; the cap only guards against a future non-monotone rule.
const MAX_PASSES: usize = 10;

/// The standard rule pipeline, in application order.
pub fn default_rules() -> Vec<Box<dyn PlanRewriter>> {
    vec![
        Box::new(rules::ConstantFold),
        Box::new(rules::SimplifyExprs),
        Box::new(rules::PruneEmpty),
        Box::new(rules::PushDownPredicates),
        Box::new(rules::PruneProjections),
        Box::new(rules::LimitIntoSort),
    ]
}

/// Runs a rule list to fixpoint, returning the rewritten plan and the
/// per-rule fire counts (rules that never changed the plan are omitted).
pub fn run_rules(
    mut plan: LogicalPlan,
    rules: &[Box<dyn PlanRewriter>],
) -> Result<(LogicalPlan, Vec<RuleFire>)> {
    let mut trace: Vec<RuleFire> = rules
        .iter()
        .map(|r| RuleFire {
            rule: r.name(),
            fires: 0,
        })
        .collect();
    for _ in 0..MAX_PASSES {
        let mut changed = false;
        for (fire, rule) in trace.iter_mut().zip(rules) {
            let before = plan.clone();
            plan = rule.rewrite(plan)?;
            if plan != before {
                fire.fires += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    trace.retain(|f| f.fires > 0);
    Ok((plan, trace))
}

/// Applies the standard pipeline and returns the plan plus its rule trace.
pub fn optimize_with_trace(plan: LogicalPlan) -> Result<(LogicalPlan, Vec<RuleFire>)> {
    run_rules(plan, &default_rules())
}

/// Applies all rules and returns the optimized plan.
pub fn optimize(plan: LogicalPlan) -> Result<LogicalPlan> {
    optimize_with_trace(plan).map(|(p, _)| p)
}
