//! The individual plan-rewrite rules.
//!
//! Each rule is one self-contained rewrite; the pipeline in
//! [`super::pipeline`] runs them in order to fixpoint. Boolean helpers
//! (`predicate_is_true/false`, `simplify_expr`, `refs_within`,
//! `equi_across`) live in [`crate::exprutil`] and are shared with the
//! CNF converter and the leaf-side index rewriter.

use super::pipeline::PlanRewriter;
use crate::ast::{Expr, JoinKind};
use crate::cnf::to_cnf;
use crate::eval::eval;
use crate::exprutil::{
    combine_conjuncts, equi_across, predicate_is_false, predicate_is_true, refs_within,
    simplify_expr,
};
use crate::plan::LogicalPlan;
use feisu_common::Result;
use feisu_format::{Schema, Value};

// ---------------------------------------------------------- expr mapping

/// Rewrites every predicate/projection/join-condition expression in the
/// plan through `f`, recursing into inputs. Aggregate arguments, group
/// expressions and sort keys are left alone: their display forms double
/// as output column names, so rewriting them would rename columns.
fn map_exprs(plan: LogicalPlan, f: &impl Fn(Expr) -> Expr) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan {
            table,
            binding,
            projection,
            predicate,
            output_schema,
        } => LogicalPlan::Scan {
            table,
            binding,
            projection,
            predicate: predicate.map(f),
            output_schema,
        },
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(map_exprs(*input, f)),
            predicate: f(predicate),
        },
        LogicalPlan::Project {
            input,
            exprs,
            output_schema,
        } => LogicalPlan::Project {
            input: Box::new(map_exprs(*input, f)),
            exprs: exprs.into_iter().map(|(e, n)| (f(e), n)).collect(),
            output_schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            output_schema,
        } => LogicalPlan::Join {
            left: Box::new(map_exprs(*left, f)),
            right: Box::new(map_exprs(*right, f)),
            kind,
            on: on.into_iter().map(f).collect(),
            output_schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            output_schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(map_exprs(*input, f)),
            group_by,
            aggregates,
            output_schema,
        },
        LogicalPlan::Sort { input, keys, fetch } => LogicalPlan::Sort {
            input: Box::new(map_exprs(*input, f)),
            keys,
            fetch,
        },
        LogicalPlan::Limit { input, fetch } => LogicalPlan::Limit {
            input: Box::new(map_exprs(*input, f)),
            fetch,
        },
        e @ LogicalPlan::Empty { .. } => e,
    }
}

// ---------------------------------------------------------------- folding

/// Rule `constant_fold`: literal-only subtrees are evaluated once.
pub struct ConstantFold;

impl PlanRewriter for ConstantFold {
    fn name(&self) -> &'static str {
        "constant_fold"
    }
    fn rewrite(&self, plan: LogicalPlan) -> Result<LogicalPlan> {
        Ok(map_exprs(plan, &fold_expr))
    }
}

/// Folds literal-only subtrees bottom-up. Errors (e.g. division by zero)
/// leave the subtree unfolded so they surface at execution time with row
/// context.
pub fn fold_expr(e: Expr) -> Expr {
    let folded = match e {
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(fold_expr(*left)),
            right: Box::new(fold_expr(*right)),
        },
        Expr::Unary { op, operand } => Expr::Unary {
            op,
            operand: Box::new(fold_expr(*operand)),
        },
        Expr::IsNull { operand, negated } => Expr::IsNull {
            operand: Box::new(fold_expr(*operand)),
            negated,
        },
        other => other,
    };
    if is_foldable(&folded) {
        let empty = |_: &str| -> Option<Value> { None };
        if let Ok(v) = eval(&folded, &empty) {
            return Expr::Literal(v);
        }
    }
    folded
}

fn is_foldable(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) => false, // already a literal, nothing to do
        Expr::Binary { left, right, .. } => literal_only(left) && literal_only(right),
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => literal_only(operand),
        _ => false,
    }
}

fn literal_only(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) => true,
        Expr::Binary { left, right, .. } => literal_only(left) && literal_only(right),
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => literal_only(operand),
        _ => false,
    }
}

// ----------------------------------------------------------- simplifying

/// Rule `simplify_exprs`: 3VL-safe boolean and arithmetic identities
/// (`x AND TRUE → x`, `NOT NOT x → x`, `x + 0 → x`, …) via
/// [`crate::exprutil::simplify_expr`].
pub struct SimplifyExprs;

impl PlanRewriter for SimplifyExprs {
    fn name(&self) -> &'static str {
        "simplify_exprs"
    }
    fn rewrite(&self, plan: LogicalPlan) -> Result<LogicalPlan> {
        Ok(map_exprs(plan, &|e| simplify_expr(&e)))
    }
}

// -------------------------------------------------------- empty pruning

/// Rule `prune_empty`: a provably-false filter (or `LIMIT 0`) becomes an
/// [`LogicalPlan::Empty`] relation, and emptiness propagates upward
/// through operators that cannot produce rows from an empty input. The
/// engine then returns without scheduling a single leaf task.
pub struct PruneEmpty;

impl PlanRewriter for PruneEmpty {
    fn name(&self) -> &'static str {
        "prune_empty"
    }
    fn rewrite(&self, plan: LogicalPlan) -> Result<LogicalPlan> {
        Ok(prune_empty(plan))
    }
}

fn empty(output_schema: Schema) -> LogicalPlan {
    LogicalPlan::Empty { output_schema }
}

fn is_empty(p: &LogicalPlan) -> bool {
    matches!(p, LogicalPlan::Empty { .. })
}

fn prune_empty(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = prune_empty(*input);
            if is_empty(&input) || predicate_is_false(&predicate) {
                return empty(input.schema());
            }
            if predicate_is_true(&predicate) {
                return input;
            }
            LogicalPlan::Filter {
                input: Box::new(input),
                predicate,
            }
        }
        scan @ LogicalPlan::Scan { .. } => {
            if let LogicalPlan::Scan {
                predicate: Some(p),
                output_schema,
                ..
            } = &scan
            {
                if predicate_is_false(p) {
                    return empty(output_schema.clone());
                }
            }
            scan
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            output_schema,
        } => {
            let left = prune_empty(*left);
            let right = prune_empty(*right);
            // An empty null-supplying side still lets an outer join pass
            // the other side through (null-extended); an empty preserved
            // side kills the join.
            let dead = match kind {
                JoinKind::Inner | JoinKind::Cross => is_empty(&left) || is_empty(&right),
                JoinKind::LeftOuter => is_empty(&left),
                JoinKind::RightOuter => is_empty(&right),
            };
            if dead {
                return empty(output_schema);
            }
            LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
                output_schema,
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            output_schema,
        } => {
            let input = prune_empty(*input);
            if is_empty(&input) {
                return empty(output_schema);
            }
            LogicalPlan::Project {
                input: Box::new(input),
                exprs,
                output_schema,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            output_schema,
        } => {
            let input = prune_empty(*input);
            // A *grouped* aggregate over no rows yields no groups; a
            // global one still yields its single row (COUNT(*) = 0), so
            // it must execute.
            if is_empty(&input) && !group_by.is_empty() {
                return empty(output_schema);
            }
            LogicalPlan::Aggregate {
                input: Box::new(input),
                group_by,
                aggregates,
                output_schema,
            }
        }
        LogicalPlan::Sort { input, keys, fetch } => {
            let input = prune_empty(*input);
            if is_empty(&input) {
                return empty(input.schema());
            }
            LogicalPlan::Sort {
                input: Box::new(input),
                keys,
                fetch,
            }
        }
        LogicalPlan::Limit { input, fetch } => {
            let input = prune_empty(*input);
            if is_empty(&input) || fetch == 0 {
                return empty(input.schema());
            }
            LogicalPlan::Limit {
                input: Box::new(input),
                fetch,
            }
        }
        e @ LogicalPlan::Empty { .. } => e,
    }
}

// --------------------------------------------------------------- pushdown

/// Rule `predicate_pushdown`: WHERE conjuncts move as close to storage as
/// their column references allow — into a scan (where SmartIndex and zone
/// maps serve them), through join sides, or as a residual filter directly
/// above the deepest subtree that covers them. Equality conjuncts whose
/// sides straddle an inner/cross join become join keys (a cross join
/// gaining a key becomes an inner hash join).
pub struct PushDownPredicates;

impl PlanRewriter for PushDownPredicates {
    fn name(&self) -> &'static str {
        "predicate_pushdown"
    }
    fn rewrite(&self, plan: LogicalPlan) -> Result<LogicalPlan> {
        push_down_predicates(plan)
    }
}

fn push_down_predicates(plan: LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = push_down_predicates(*input)?;
            // Split into conjuncts and try to sink each one.
            let cnf = to_cnf(&predicate);
            let mut remaining: Vec<Expr> = Vec::new();
            let mut target = input;
            for clause in cnf.clauses {
                let e = clause.to_expr();
                match sink(target, &e) {
                    (t, true) => target = t,
                    (t, false) => {
                        target = t;
                        remaining.push(e);
                    }
                }
            }
            match combine_conjuncts(remaining) {
                Some(pred) => LogicalPlan::Filter {
                    input: Box::new(target),
                    predicate: pred,
                },
                None => target,
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            output_schema,
        } => LogicalPlan::Project {
            input: Box::new(push_down_predicates(*input)?),
            exprs,
            output_schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            output_schema,
        } => LogicalPlan::Join {
            left: Box::new(push_down_predicates(*left)?),
            right: Box::new(push_down_predicates(*right)?),
            kind,
            on,
            output_schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            output_schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(push_down_predicates(*input)?),
            group_by,
            aggregates,
            output_schema,
        },
        LogicalPlan::Sort { input, keys, fetch } => LogicalPlan::Sort {
            input: Box::new(push_down_predicates(*input)?),
            keys,
            fetch,
        },
        LogicalPlan::Limit { input, fetch } => LogicalPlan::Limit {
            input: Box::new(push_down_predicates(*input)?),
            fetch,
        },
        scan @ LogicalPlan::Scan { .. } => scan,
        e @ LogicalPlan::Empty { .. } => e,
    })
}

/// Tries to sink one conjunct into the subtree. Returns the (possibly
/// modified) subtree and whether the conjunct was absorbed.
fn sink(plan: LogicalPlan, conjunct: &Expr) -> (LogicalPlan, bool) {
    match plan {
        LogicalPlan::Scan {
            table,
            binding,
            projection,
            predicate,
            output_schema,
        } => {
            if refs_within(conjunct, &output_schema) {
                let predicate = Some(match predicate {
                    Some(p) => Expr::and(p, conjunct.clone()),
                    None => conjunct.clone(),
                });
                (
                    LogicalPlan::Scan {
                        table,
                        binding,
                        projection,
                        predicate,
                        output_schema,
                    },
                    true,
                )
            } else {
                (
                    LogicalPlan::Scan {
                        table,
                        binding,
                        projection,
                        predicate,
                        output_schema,
                    },
                    false,
                )
            }
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            mut on,
            output_schema,
        } => {
            // Only inner/cross joins accept pushdown on both sides; outer
            // joins would change null-extension semantics.
            let (push_left, push_right) = match kind {
                JoinKind::Inner | JoinKind::Cross => (true, true),
                JoinKind::LeftOuter => (true, false),
                JoinKind::RightOuter => (false, true),
            };
            // 1. An equality straddling an inner/cross join becomes a
            //    join key; a cross join gaining one becomes inner.
            if matches!(kind, JoinKind::Inner | JoinKind::Cross)
                && equi_across(conjunct, &left.schema(), &right.schema())
            {
                on.push(conjunct.clone());
                return (
                    LogicalPlan::Join {
                        left,
                        right,
                        kind: JoinKind::Inner,
                        on,
                        output_schema,
                    },
                    true,
                );
            }
            // 2. Recurse: a scan inside either eligible side may absorb.
            let mut left = left;
            let mut right = right;
            if push_left {
                let (l, absorbed) = sink(*left, conjunct);
                left = Box::new(l);
                if absorbed {
                    return (
                        LogicalPlan::Join {
                            left,
                            right,
                            kind,
                            on,
                            output_schema,
                        },
                        true,
                    );
                }
            }
            if push_right {
                let (r, absorbed) = sink(*right, conjunct);
                right = Box::new(r);
                if absorbed {
                    return (
                        LogicalPlan::Join {
                            left,
                            right,
                            kind,
                            on,
                            output_schema,
                        },
                        true,
                    );
                }
            }
            // 3. No scan absorbed it, but one side covers every column:
            //    park it as a filter directly below the join, above that
            //    side (pushdown *through* the join).
            if push_left && refs_within(conjunct, &left.schema()) {
                left = Box::new(LogicalPlan::Filter {
                    input: left,
                    predicate: conjunct.clone(),
                });
                return (
                    LogicalPlan::Join {
                        left,
                        right,
                        kind,
                        on,
                        output_schema,
                    },
                    true,
                );
            }
            if push_right && refs_within(conjunct, &right.schema()) {
                right = Box::new(LogicalPlan::Filter {
                    input: right,
                    predicate: conjunct.clone(),
                });
                return (
                    LogicalPlan::Join {
                        left,
                        right,
                        kind,
                        on,
                        output_schema,
                    },
                    true,
                );
            }
            (
                LogicalPlan::Join {
                    left,
                    right,
                    kind,
                    on,
                    output_schema,
                },
                false,
            )
        }
        // Filters/sorts/limits are transparent for pushdown purposes.
        LogicalPlan::Filter { input, predicate } => {
            let (i, absorbed) = sink(*input, conjunct);
            (
                LogicalPlan::Filter {
                    input: Box::new(i),
                    predicate,
                },
                absorbed,
            )
        }
        other => (other, false),
    }
}

// ---------------------------------------------------------------- pruning

/// Rule `projection_prune`: scans read only the columns the rest of the
/// plan actually needs (the core of the columnar I/O saving).
pub struct PruneProjections;

impl PlanRewriter for PruneProjections {
    fn name(&self) -> &'static str {
        "projection_prune"
    }
    fn rewrite(&self, plan: LogicalPlan) -> Result<LogicalPlan> {
        // Top-down: compute the set of columns each operator requires of
        // its input, then rebuild scans with minimal projections.
        Ok(prune(plan, None))
    }
}

/// `needed`: columns the parent requires, `None` = everything.
fn prune(plan: LogicalPlan, needed: Option<Vec<String>>) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan {
            table,
            binding,
            projection,
            predicate,
            output_schema,
        } => {
            // NOTE: predicate columns are deliberately NOT added to the
            // projection — a Scan node evaluates its own predicate (leaf
            // servers serve it from SmartIndex without touching the
            // column at all), so only parent-needed columns are output.
            let required: Vec<String> = match &needed {
                None => output_schema
                    .fields()
                    .iter()
                    .map(|f| f.name.clone())
                    .collect(),
                Some(cols) => cols.clone(),
            };
            // Keep schema order; map canonical names back to storage names.
            let mut new_proj = Vec::new();
            let mut new_fields = Vec::new();
            for (i, f) in output_schema.fields().iter().enumerate() {
                if required.iter().any(|c| c == &f.name) {
                    new_proj.push(projection[i].clone());
                    new_fields.push(f.clone());
                }
            }
            // A zero-column batch cannot carry a row count: keep the
            // narrowest column when nothing is required (COUNT(*) shapes).
            if new_proj.is_empty() && !projection.is_empty() {
                let narrowest = output_schema
                    .fields()
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, f)| f.data_type.estimated_width())
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                new_proj.push(projection[narrowest].clone());
                new_fields.push(output_schema.field(narrowest).clone());
            }
            LogicalPlan::Scan {
                table,
                binding,
                projection: new_proj,
                predicate,
                output_schema: Schema::new(new_fields),
            }
        }
        LogicalPlan::Project {
            input,
            exprs,
            output_schema,
        } => {
            let mut required = Vec::new();
            for (e, _) in &exprs {
                e.columns(&mut required);
            }
            LogicalPlan::Project {
                input: Box::new(prune(*input, Some(required))),
                exprs,
                output_schema,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut required = needed.unwrap_or_else(|| {
                input
                    .schema()
                    .fields()
                    .iter()
                    .map(|f| f.name.clone())
                    .collect()
            });
            predicate.columns(&mut required);
            dedup(&mut required);
            LogicalPlan::Filter {
                input: Box::new(prune(*input, Some(required))),
                predicate,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            output_schema,
        } => {
            let mut required = Vec::new();
            for (g, _, _) in &group_by {
                g.columns(&mut required);
            }
            for a in &aggregates {
                if let Some(arg) = &a.arg {
                    arg.columns(&mut required);
                }
            }
            // COUNT(*) over a zero-column input still needs row counts:
            // keep at least one input column if nothing else is required.
            if required.is_empty() {
                if let Some(f) = input.schema().fields().first() {
                    required.push(f.name.clone());
                }
            }
            LogicalPlan::Aggregate {
                input: Box::new(prune(*input, Some(required))),
                group_by,
                aggregates,
                output_schema,
            }
        }
        LogicalPlan::Sort { input, keys, fetch } => {
            let mut required = needed.unwrap_or_else(|| {
                input
                    .schema()
                    .fields()
                    .iter()
                    .map(|f| f.name.clone())
                    .collect()
            });
            for (e, _) in &keys {
                e.columns(&mut required);
            }
            dedup(&mut required);
            LogicalPlan::Sort {
                input: Box::new(prune(*input, Some(required))),
                keys,
                fetch,
            }
        }
        LogicalPlan::Limit { input, fetch } => LogicalPlan::Limit {
            input: Box::new(prune(*input, needed)),
            fetch,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            output_schema,
        } => {
            let mut required = needed.unwrap_or_else(|| {
                output_schema
                    .fields()
                    .iter()
                    .map(|f| f.name.clone())
                    .collect()
            });
            for cond in &on {
                cond.columns(&mut required);
            }
            dedup(&mut required);
            let left_schema = left.schema();
            let right_schema = right.schema();
            let left_needed: Vec<String> = required
                .iter()
                .filter(|c| left_schema.index_of(c).is_some())
                .cloned()
                .collect();
            let right_needed: Vec<String> = required
                .iter()
                .filter(|c| right_schema.index_of(c).is_some())
                .cloned()
                .collect();
            let new_left = prune(*left, Some(left_needed));
            let new_right = prune(*right, Some(right_needed));
            let output_schema = new_left.schema().join(&new_right.schema());
            LogicalPlan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                kind,
                on,
                output_schema,
            }
        }
        e @ LogicalPlan::Empty { .. } => e,
    }
}

fn dedup(v: &mut Vec<String>) {
    let mut seen = std::collections::HashSet::new();
    v.retain(|c| seen.insert(c.clone()));
}

// ----------------------------------------------------------- limit + sort

/// Rule `limit_into_sort`: `Limit(Sort)` becomes a top-N sort.
pub struct LimitIntoSort;

impl PlanRewriter for LimitIntoSort {
    fn name(&self) -> &'static str {
        "limit_into_sort"
    }
    fn rewrite(&self, plan: LogicalPlan) -> Result<LogicalPlan> {
        Ok(limit_into_sort(plan))
    }
}

fn limit_into_sort(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Limit { input, fetch } => {
            match limit_into_sort(*input) {
                // Limit(Project(Sort)) and Limit(Sort): push the fetch into
                // the sort so execution can keep a bounded heap.
                LogicalPlan::Project {
                    input: pin,
                    exprs,
                    output_schema,
                } => {
                    if let LogicalPlan::Sort {
                        input: sin, keys, ..
                    } = *pin
                    {
                        LogicalPlan::Limit {
                            input: Box::new(LogicalPlan::Project {
                                input: Box::new(LogicalPlan::Sort {
                                    input: sin,
                                    keys,
                                    fetch: Some(fetch),
                                }),
                                exprs,
                                output_schema,
                            }),
                            fetch,
                        }
                    } else {
                        LogicalPlan::Limit {
                            input: Box::new(LogicalPlan::Project {
                                input: pin,
                                exprs,
                                output_schema,
                            }),
                            fetch,
                        }
                    }
                }
                LogicalPlan::Sort {
                    input: sin, keys, ..
                } => LogicalPlan::Limit {
                    input: Box::new(LogicalPlan::Sort {
                        input: sin,
                        keys,
                        fetch: Some(fetch),
                    }),
                    fetch,
                },
                other => LogicalPlan::Limit {
                    input: Box::new(other),
                    fetch,
                },
            }
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(limit_into_sort(*input)),
            predicate,
        },
        LogicalPlan::Project {
            input,
            exprs,
            output_schema,
        } => LogicalPlan::Project {
            input: Box::new(limit_into_sort(*input)),
            exprs,
            output_schema,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            output_schema,
        } => LogicalPlan::Join {
            left: Box::new(limit_into_sort(*left)),
            right: Box::new(limit_into_sort(*right)),
            kind,
            on,
            output_schema,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggregates,
            output_schema,
        } => LogicalPlan::Aggregate {
            input: Box::new(limit_into_sort(*input)),
            group_by,
            aggregates,
            output_schema,
        },
        LogicalPlan::Sort { input, keys, fetch } => LogicalPlan::Sort {
            input: Box::new(limit_into_sort(*input)),
            keys,
            fetch,
        },
        scan @ LogicalPlan::Scan { .. } => scan,
        e @ LogicalPlan::Empty { .. } => e,
    }
}
