//! Logical plan optimizer: a staged rule pipeline.
//!
//! The optimizer is a list of independent [`PlanRewriter`] rules run to
//! fixpoint by [`pipeline::run_rules`]: constant folding, 3VL-safe
//! expression simplification, empty-relation pruning (`WHERE FALSE` never
//! schedules a leaf task), predicate pushdown (into scans, through join
//! sides, equality conjuncts promoted to join keys), projection pruning
//! and top-N fusion. [`optimize_with_trace`] additionally reports which
//! rules fired, feeding EXPLAIN and the `feisu.optimizer.*` metrics.
//! Join-order *selection* is not a logical rule: it happens cost-based at
//! lowering time in `feisu-exec`, where the `CostModel` lives.

pub mod pipeline;
pub mod rules;

pub use pipeline::{
    default_rules, optimize, optimize_with_trace, run_rules, PlanRewriter, RuleFire,
};
pub use rules::fold_expr;
// Re-exported for callers that used these from `optimizer` before they
// moved to the shared expression-utility module.
pub use crate::exprutil::{predicate_is_false, predicate_is_true, simplify_not};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::ast::Expr;
    use crate::parser::{parse_expr, parse_query};
    use crate::plan::{build_plan, LogicalPlan};
    use feisu_format::{DataType, Field, Schema, Value};
    use std::collections::HashMap;

    fn catalog() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert(
            "t1".to_string(),
            Schema::new(vec![
                Field::new("url", DataType::Utf8, false),
                Field::new("clicks", DataType::Int64, true),
                Field::new("score", DataType::Float64, false),
                Field::new("day", DataType::Int64, false),
            ]),
        );
        m.insert(
            "t2".to_string(),
            Schema::new(vec![
                Field::new("url", DataType::Utf8, false),
                Field::new("rank", DataType::Int64, false),
            ]),
        );
        m.insert(
            "t3".to_string(),
            Schema::new(vec![
                Field::new("url", DataType::Utf8, false),
                Field::new("v", DataType::Int64, false),
            ]),
        );
        m
    }

    fn optimized(sql: &str) -> LogicalPlan {
        let q = parse_query(sql).unwrap();
        let r = analyze(&q, &catalog()).unwrap();
        optimize(build_plan(&r).unwrap()).unwrap()
    }

    #[test]
    fn constant_folding() {
        assert_eq!(
            fold_expr(parse_expr("1 + 2 * 3").unwrap()),
            Expr::Literal(Value::Int64(7))
        );
        assert_eq!(
            fold_expr(parse_expr("x + (1 + 2)").unwrap()).to_string(),
            "(x + 3)"
        );
        // Errors stay unfolded.
        assert_eq!(
            fold_expr(parse_expr("1 / 0").unwrap()).to_string(),
            "(1 / 0)"
        );
    }

    #[test]
    fn predicate_pushes_into_scan() {
        let p = optimized("SELECT url FROM t1 WHERE clicks > 5 AND score < 0.5");
        let s = p.display_indent();
        // No residual filter; both conjuncts inside the scan.
        assert!(!s.contains("Filter"), "{s}");
        assert!(s.contains("Scan: t1"), "{s}");
        assert!(s.contains("clicks > 5"), "{s}");
        assert!(s.contains("score < 0.5"), "{s}");
    }

    #[test]
    fn pushdown_splits_across_join_sides() {
        let p = optimized(
            "SELECT clicks, rank FROM t1 JOIN t2 ON t1.url = t2.url \
             WHERE t1.clicks > 5 AND t2.rank < 10",
        );
        let s = p.display_indent();
        assert!(!s.contains("Filter"), "{s}");
        // Each side's scan carries its own conjunct.
        assert!(s.contains("filter=(t1.clicks > 5)"), "{s}");
        assert!(s.contains("filter=(t2.rank < 10)"), "{s}");
    }

    #[test]
    fn cross_table_conjunct_stays_in_filter() {
        let p = optimized(
            "SELECT clicks, rank FROM t1 JOIN t2 ON t1.url = t2.url \
             WHERE t1.clicks > t2.rank",
        );
        let s = p.display_indent();
        assert!(s.contains("Filter: (t1.clicks > t2.rank)"), "{s}");
    }

    #[test]
    fn outer_join_blocks_null_side_pushdown() {
        let p = optimized(
            "SELECT t1.clicks FROM t1 LEFT JOIN t2 ON t1.url = t2.url \
             WHERE t2.rank > 0",
        );
        let s = p.display_indent();
        // Pushing into the right side of a LEFT JOIN would be wrong.
        assert!(s.contains("Filter: (t2.rank > 0)"), "{s}");
    }

    #[test]
    fn projection_pruned_to_needed_columns() {
        let p = optimized("SELECT url FROM t1 WHERE clicks > 5");
        fn find_scan(p: &LogicalPlan) -> Option<&LogicalPlan> {
            match p {
                s @ LogicalPlan::Scan { .. } => Some(s),
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Aggregate { input, .. }
                | LogicalPlan::Limit { input, .. } => find_scan(input),
                LogicalPlan::Join { left, .. } => find_scan(left),
                LogicalPlan::Empty { .. } => None,
            }
        }
        match find_scan(&p).unwrap() {
            LogicalPlan::Scan { projection, .. } => {
                // Only url (selected) survives: the scan evaluates its own
                // predicate, so `clicks` is not projected, and day/score
                // are pruned away.
                assert_eq!(projection, &vec!["url".to_string()]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn limit_pushes_fetch_into_sort() {
        let p = optimized("SELECT url FROM t1 ORDER BY clicks DESC LIMIT 7");
        let s = p.display_indent();
        assert!(s.contains("fetch=Some(7)"), "{s}");
    }

    #[test]
    fn where_false_prunes_to_empty() {
        let p = optimized("SELECT url FROM t1 WHERE 1 = 0");
        assert_eq!(p.display_indent(), "Empty\n");
        // The schema of the pruned query is preserved.
        assert_eq!(p.schema().fields().len(), 1);
        assert_eq!(p.schema().field(0).name, "url");
    }

    #[test]
    fn contradiction_after_folding_prunes_to_empty() {
        // Needs folding + simplification before the falsity is visible.
        let p = optimized("SELECT url FROM t1 WHERE clicks > 5 AND 1 + 1 = 3");
        assert_eq!(p.display_indent(), "Empty\n");
    }

    #[test]
    fn global_aggregate_over_empty_still_executes() {
        // COUNT(*) over zero rows must still return its single `0` row.
        let p = optimized("SELECT COUNT(*) AS n FROM t1 WHERE 1 = 0");
        let s = p.display_indent();
        assert!(s.contains("Aggregate"), "{s}");
        assert!(s.contains("Empty"), "{s}");
    }

    #[test]
    fn limit_zero_prunes_to_empty() {
        let p = optimized("SELECT url FROM t1 LIMIT 0");
        assert_eq!(p.display_indent(), "Empty\n");
    }

    #[test]
    fn where_equality_becomes_join_key() {
        // Implicit comma join + WHERE equality → inner hash-join key.
        let p = optimized("SELECT t1.url FROM t1, t2 WHERE t1.url = t2.url");
        let s = p.display_indent();
        assert!(s.contains("Join: Inner on [(t1.url = t2.url)]"), "{s}");
        assert!(!s.contains("Filter"), "{s}");
    }

    #[test]
    fn non_equi_conjunct_pushed_through_join_side() {
        // `t1.clicks > t2.rank` spans only the inner (t1 ⋈ t2) subtree of
        // the three-way join, so it lands as a filter on that side, below
        // the outer join, rather than above the whole tree.
        let p = optimized(
            "SELECT t1.url FROM t1, t2, t3 \
             WHERE t1.url = t2.url AND t2.url = t3.url AND t1.clicks > t2.rank",
        );
        let s = p.display_indent();
        let filter_at = s.find("Filter: (t1.clicks > t2.rank)").expect(&s);
        let join_at = s.find("Join:").expect(&s);
        assert!(
            filter_at > join_at,
            "filter should sit under the outer join:\n{s}"
        );
        assert!(s.contains("on [(t2.url = t3.url)]"), "{s}");
        assert!(s.contains("on [(t1.url = t2.url)]"), "{s}");
    }

    #[test]
    fn trace_records_fired_rules() {
        let q = parse_query("SELECT url FROM t1 WHERE clicks > 2 + 3 LIMIT 4").unwrap();
        let r = analyze(&q, &catalog()).unwrap();
        let (_, trace) = optimize_with_trace(build_plan(&r).unwrap()).unwrap();
        let names: Vec<&str> = trace.iter().map(|f| f.rule).collect();
        assert!(names.contains(&"constant_fold"), "{names:?}");
        assert!(names.contains(&"predicate_pushdown"), "{names:?}");
        assert!(names.contains(&"projection_prune"), "{names:?}");
        assert!(trace.iter().all(|f| f.fires > 0), "{trace:?}");
    }

    #[test]
    fn pipeline_reaches_fixpoint() {
        // Optimizing an already-optimized plan is a no-op (and fires no
        // rules) — the determinism contract depends on this.
        let q = parse_query(
            "SELECT t1.url, SUM(t1.clicks) AS s FROM t1 JOIN t2 ON t1.url = t2.url \
             WHERE t1.day > 3 GROUP BY t1.url ORDER BY s DESC LIMIT 5",
        )
        .unwrap();
        let r = analyze(&q, &catalog()).unwrap();
        let once = optimize(build_plan(&r).unwrap()).unwrap();
        let (twice, trace) = optimize_with_trace(once.clone()).unwrap();
        assert_eq!(once, twice);
        assert!(trace.is_empty(), "{trace:?}");
    }
}
