//! Logical query plans.
//!
//! The master's job manager "will create an execution plan based on data
//! partition information and cluster utilizations" (§III-C). This module
//! is the *logical* half: a tree of relational operators built from a
//! resolved query. The optimizer rewrites it; `feisu-core` then dissects
//! it into per-leaf sub-plans.

use crate::analyze::{infer_type, Resolved};
use crate::ast::{AggFunc, Expr, JoinKind};
use feisu_common::Result;
use feisu_format::{DataType, Field, Schema};

/// One aggregate computed by an [`LogicalPlan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFunc,
    /// `None` = `COUNT(*)`.
    pub arg: Option<Expr>,
    /// Output column name (the display form of the aggregate call).
    pub name: String,
    pub output_type: DataType,
}

/// Partial-aggregation stage shipped with a distributed scan task: the
/// grouping expressions and aggregates a leaf evaluates before results
/// travel up the merge tree. Lives here (not in the engine) so the
/// planner, the physical layer and the leaf servers share one type.
#[derive(Debug, Clone, PartialEq)]
pub struct AggStage {
    pub group_by: Vec<(Expr, String, DataType)>,
    pub aggregates: Vec<AggExpr>,
}

impl AggStage {
    /// True when the stage is a bare global `COUNT(*)` — servable from
    /// index bit counts alone.
    pub fn is_count_star_only(&self) -> bool {
        self.group_by.is_empty()
            && self.aggregates.len() == 1
            && self.aggregates[0].arg.is_none()
            && matches!(self.aggregates[0].func, AggFunc::Count)
    }
}

/// Logical relational operators.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan of one table. `projection` lists the *storage* (bare) column
    /// names to read; `output_schema` carries the canonical (possibly
    /// qualified) names the rest of the plan sees.
    Scan {
        table: String,
        binding: String,
        projection: Vec<String>,
        /// Predicate over the scan's output columns, pushed down by the
        /// optimizer. Evaluated leaf-side (and served by SmartIndex).
        predicate: Option<Expr>,
        output_schema: Schema,
    },
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        kind: JoinKind,
        /// Conjunction of join conditions.
        on: Vec<Expr>,
        output_schema: Schema,
    },
    Filter {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<(Expr, String, DataType)>,
        aggregates: Vec<AggExpr>,
        output_schema: Schema,
    },
    Project {
        input: Box<LogicalPlan>,
        exprs: Vec<(Expr, String)>,
        output_schema: Schema,
    },
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<(Expr, /*descending=*/ bool)>,
        /// Top-N hint pushed down from LIMIT by the optimizer.
        fetch: Option<u64>,
    },
    Limit {
        input: Box<LogicalPlan>,
        fetch: u64,
    },
    /// A relation that is provably empty (e.g. a `WHERE FALSE` filter
    /// pruned by the optimizer). Executes without touching storage.
    Empty {
        output_schema: Schema,
    },
}

impl LogicalPlan {
    /// The operator's output schema.
    pub fn schema(&self) -> Schema {
        match self {
            LogicalPlan::Scan { output_schema, .. }
            | LogicalPlan::Join { output_schema, .. }
            | LogicalPlan::Aggregate { output_schema, .. }
            | LogicalPlan::Project { output_schema, .. }
            | LogicalPlan::Empty { output_schema } => output_schema.clone(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Pretty multi-line plan rendering (EXPLAIN-style), for debugging and
    /// doc examples.
    pub fn display_indent(&self) -> String {
        let mut out = String::new();
        self.fmt_indent(&mut out, 0);
        out
    }

    fn fmt_indent(&self, out: &mut String, level: usize) {
        let pad = "  ".repeat(level);
        match self {
            LogicalPlan::Scan {
                table,
                projection,
                predicate,
                ..
            } => {
                out.push_str(&format!("{pad}Scan: {table} cols={projection:?}"));
                if let Some(p) = predicate {
                    out.push_str(&format!(" filter={p}"));
                }
                out.push('\n');
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
                ..
            } => {
                let conds: Vec<String> = on.iter().map(|e| e.to_string()).collect();
                out.push_str(&format!("{pad}Join: {kind:?} on [{}]\n", conds.join(", ")));
                left.fmt_indent(out, level + 1);
                right.fmt_indent(out, level + 1);
            }
            LogicalPlan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter: {predicate}\n"));
                input.fmt_indent(out, level + 1);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggregates,
                ..
            } => {
                let groups: Vec<&str> = group_by.iter().map(|(_, n, _)| n.as_str()).collect();
                let aggs: Vec<&str> = aggregates.iter().map(|a| a.name.as_str()).collect();
                out.push_str(&format!("{pad}Aggregate: group={groups:?} aggs={aggs:?}\n"));
                input.fmt_indent(out, level + 1);
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                out.push_str(&format!("{pad}Project: [{}]\n", cols.join(", ")));
                input.fmt_indent(out, level + 1);
            }
            LogicalPlan::Sort { input, keys, fetch } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(e, d)| format!("{e}{}", if *d { " DESC" } else { "" }))
                    .collect();
                out.push_str(&format!("{pad}Sort: [{}] fetch={fetch:?}\n", ks.join(", ")));
                input.fmt_indent(out, level + 1);
            }
            LogicalPlan::Limit { input, fetch } => {
                out.push_str(&format!("{pad}Limit: {fetch}\n"));
                input.fmt_indent(out, level + 1);
            }
            LogicalPlan::Empty { .. } => {
                out.push_str(&format!("{pad}Empty\n"));
            }
        }
    }
}

/// Builds the initial (unoptimized) logical plan from a resolved query.
pub fn build_plan(resolved: &Resolved) -> Result<LogicalPlan> {
    let q = &resolved.query;

    // 1. Scans for every bound table, full projection (pruned later).
    let mut scans: Vec<LogicalPlan> = Vec::new();
    for bt in &resolved.tables {
        let projection: Vec<String> = bt.schema.fields().iter().map(|f| f.name.clone()).collect();
        let output_schema = if resolved.qualified {
            Schema::new(
                bt.schema
                    .fields()
                    .iter()
                    .map(|f| {
                        Field::new(
                            format!("{}.{}", bt.binding, f.name),
                            f.data_type,
                            f.nullable,
                        )
                    })
                    .collect(),
            )
        } else {
            bt.schema.clone()
        };
        scans.push(LogicalPlan::Scan {
            table: bt.table.clone(),
            binding: bt.binding.clone(),
            projection,
            predicate: None,
            output_schema,
        });
    }

    // 2. Combine: implicit FROM list becomes cross joins, explicit JOINs
    //    attach in order.
    let n_from = q.from.len();
    let mut iter = scans.into_iter();
    let mut plan = iter.next().expect("at least one table");
    for (i, scan) in iter.enumerate() {
        let (kind, on) = if i < n_from - 1 {
            (JoinKind::Cross, Vec::new())
        } else {
            let j = &q.joins[i - (n_from - 1)];
            (j.kind, j.on.clone())
        };
        let output_schema = plan.schema().join(&scan.schema());
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(scan),
            kind,
            on,
            output_schema,
        };
    }

    // 3. WHERE.
    if let Some(w) = &q.where_clause {
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: w.clone(),
        };
    }

    // 4. Aggregation.
    let has_group = !q.group_by.is_empty();
    let has_agg = q.select.iter().any(|s| s.expr.has_aggregate())
        || q.having.as_ref().is_some_and(|h| h.has_aggregate())
        || q.order_by.iter().any(|(e, _)| e.has_aggregate());
    let mut select_exprs: Vec<(Expr, String)> = q
        .select
        .iter()
        .map(|item| {
            let name = item.alias.clone().unwrap_or_else(|| match &item.expr {
                // Bare column references surface under their unqualified
                // name, as in standard SQL.
                Expr::Column(c) => c.rsplit('.').next().unwrap_or(c).to_string(),
                other => other.to_string(),
            });
            (item.expr.clone(), name)
        })
        .collect();
    // De-duplicate output names (`SELECT t1.url, t2.url`): later
    // duplicates keep their qualified display form.
    {
        let mut seen = std::collections::HashSet::new();
        for (e, name) in &mut select_exprs {
            if !seen.insert(name.clone()) {
                *name = e.to_string();
                seen.insert(name.clone());
            }
        }
    }
    let mut having = q.having.clone();
    let mut order_by = q.order_by.clone();

    if has_group || has_agg {
        // Collect every distinct aggregate call appearing anywhere.
        let mut aggs: Vec<Expr> = Vec::new();
        for (e, _) in &select_exprs {
            collect_aggs(e, &mut aggs);
        }
        if let Some(h) = &having {
            collect_aggs(h, &mut aggs);
        }
        for (e, _) in &order_by {
            collect_aggs(e, &mut aggs);
        }
        let group_by: Vec<(Expr, String, DataType)> = q
            .group_by
            .iter()
            .map(|g| {
                let dt = infer_type(g, resolved)?.unwrap_or(DataType::Utf8);
                Ok((g.clone(), g.to_string(), dt))
            })
            .collect::<Result<_>>()?;
        let aggregates: Vec<AggExpr> = aggs
            .iter()
            .map(|a| {
                let (func, arg) = match a {
                    Expr::Aggregate { func, arg, .. } => {
                        (*func, arg.as_ref().map(|b| (**b).clone()))
                    }
                    _ => unreachable!("collect_aggs returns aggregates"),
                };
                let output_type = infer_type(a, resolved)?.unwrap_or(DataType::Float64);
                Ok(AggExpr {
                    func,
                    arg,
                    name: a.to_string(),
                    output_type,
                })
            })
            .collect::<Result<_>>()?;
        let mut fields: Vec<Field> = group_by
            .iter()
            .map(|(_, name, dt)| Field::new(name.clone(), *dt, true))
            .collect();
        for a in &aggregates {
            fields.push(Field::new(a.name.clone(), a.output_type, true));
        }
        let output_schema = Schema::new(fields);
        plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: group_by.clone(),
            aggregates,
            output_schema,
        };
        // Rewrite downstream expressions: aggregate calls and group
        // expressions become column references into the aggregate output.
        let rewrite = |e: &Expr| rewrite_post_agg(e, &group_by);
        for (e, _) in &mut select_exprs {
            *e = rewrite(e);
        }
        if let Some(h) = &mut having {
            *h = rewrite(h);
        }
        for (e, _) in &mut order_by {
            *e = rewrite(e);
        }
    }

    // 5. HAVING.
    if let Some(h) = having {
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: h,
        };
    }

    // 6. Projection to the SELECT list.
    let in_schema = plan.schema();
    let fields: Vec<Field> = select_exprs
        .iter()
        .map(|(e, name)| {
            let dt = type_in_schema(e, &in_schema)
                .or_else(|| infer_type(e, resolved).ok().flatten())
                .unwrap_or(DataType::Utf8);
            Field::new(name.clone(), dt, true)
        })
        .collect();
    // ORDER BY may reference select aliases or pre-projection columns; to
    // keep execution simple we sort *before* projecting when sort keys are
    // not plain select outputs, else after. Here: sort before projection
    // using rewritten keys (they reference aggregate/scan output columns),
    // which is always valid because projection only renames/derives.
    if !order_by.is_empty() {
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys: order_by,
            fetch: None,
        };
    }
    plan = LogicalPlan::Project {
        input: Box::new(plan),
        exprs: select_exprs,
        output_schema: Schema::new(fields),
    };

    // 7. LIMIT.
    if let Some(n) = q.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            fetch: n,
        };
    }
    Ok(plan)
}

fn collect_aggs(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Aggregate { .. } if !out.contains(e) => {
            out.push(e.clone());
        }
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, out);
            collect_aggs(right, out);
        }
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => collect_aggs(operand, out),
        _ => {}
    }
}

/// After aggregation, aggregate calls and group expressions are plain
/// columns of the aggregate output (named by their display form).
fn rewrite_post_agg(e: &Expr, group_by: &[(Expr, String, DataType)]) -> Expr {
    if let Some((_, name, _)) = group_by.iter().find(|(g, _, _)| g == e) {
        return Expr::Column(name.clone());
    }
    match e {
        Expr::Aggregate { .. } => Expr::Column(e.to_string()),
        Expr::Binary { op, left, right } => Expr::binary(
            *op,
            rewrite_post_agg(left, group_by),
            rewrite_post_agg(right, group_by),
        ),
        Expr::Unary { op, operand } => Expr::Unary {
            op: *op,
            operand: Box::new(rewrite_post_agg(operand, group_by)),
        },
        Expr::IsNull { operand, negated } => Expr::IsNull {
            operand: Box::new(rewrite_post_agg(operand, group_by)),
            negated: *negated,
        },
        other => other.clone(),
    }
}

/// Types an expression against a concrete operator output schema (used
/// post-aggregation where `Resolved` no longer describes the scope).
fn type_in_schema(e: &Expr, schema: &Schema) -> Option<DataType> {
    match e {
        Expr::Column(c) => schema.field_by_name(c).map(|f| f.data_type),
        Expr::Literal(v) => v.data_type(),
        Expr::Binary { op, left, right } => {
            use crate::ast::BinaryOp as B;
            match op {
                B::And | B::Or | B::Contains => Some(DataType::Bool),
                op if op.is_comparison() => Some(DataType::Bool),
                _ => {
                    let lt = type_in_schema(left, schema)?;
                    let rt = type_in_schema(right, schema)?;
                    if lt == DataType::Int64 && rt == DataType::Int64 {
                        Some(DataType::Int64)
                    } else {
                        Some(DataType::Float64)
                    }
                }
            }
        }
        Expr::Unary {
            op: crate::ast::UnaryOp::Neg,
            operand,
        } => type_in_schema(operand, schema),
        Expr::Unary { .. } | Expr::IsNull { .. } => Some(DataType::Bool),
        Expr::Aggregate { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parser::parse_query;
    use std::collections::HashMap;

    fn catalog() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert(
            "t1".to_string(),
            Schema::new(vec![
                Field::new("url", DataType::Utf8, false),
                Field::new("clicks", DataType::Int64, true),
                Field::new("score", DataType::Float64, false),
            ]),
        );
        m.insert(
            "t2".to_string(),
            Schema::new(vec![
                Field::new("url", DataType::Utf8, false),
                Field::new("rank", DataType::Int64, false),
            ]),
        );
        m
    }

    fn plan(sql: &str) -> LogicalPlan {
        let q = parse_query(sql).unwrap();
        let r = analyze(&q, &catalog()).unwrap();
        build_plan(&r).unwrap()
    }

    #[test]
    fn simple_scan_project() {
        let p = plan("SELECT url FROM t1");
        match &p {
            LogicalPlan::Project {
                input,
                exprs,
                output_schema,
            } => {
                assert_eq!(exprs.len(), 1);
                assert_eq!(output_schema.field(0).name, "url");
                assert!(matches!(**input, LogicalPlan::Scan { .. }));
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn where_becomes_filter() {
        let p = plan("SELECT url FROM t1 WHERE clicks > 5");
        let s = p.display_indent();
        assert!(s.contains("Filter: (clicks > 5)"), "{s}");
        assert!(s.contains("Scan: t1"), "{s}");
    }

    #[test]
    fn aggregate_plan_shape() {
        let p = plan(
            "SELECT url, COUNT(*) AS n FROM t1 GROUP BY url HAVING n > 1 ORDER BY n DESC LIMIT 3",
        );
        let s = p.display_indent();
        assert!(s.contains("Limit: 3"), "{s}");
        assert!(s.contains("Sort"), "{s}");
        assert!(s.contains("Aggregate"), "{s}");
        // HAVING references the aggregate output column after rewrite.
        assert!(s.contains("Filter: (COUNT(*) > 1)"), "{s}");
    }

    #[test]
    fn aggregate_output_schema() {
        let p = plan("SELECT url, COUNT(*) AS n, SUM(clicks) AS s FROM t1 GROUP BY url");
        let schema = p.schema();
        assert_eq!(schema.field(0).name, "url");
        assert_eq!(schema.field(1).name, "n");
        assert_eq!(schema.field(1).data_type, DataType::Int64);
        assert_eq!(schema.field(2).data_type, DataType::Int64);
    }

    #[test]
    fn global_aggregate_without_group() {
        let p = plan("SELECT COUNT(*) FROM t1 WHERE clicks > 0");
        let s = p.display_indent();
        assert!(s.contains("Aggregate: group=[] "), "{s}");
    }

    #[test]
    fn join_plan_qualified_schema() {
        let p = plan("SELECT clicks, rank FROM t1 JOIN t2 ON t1.url = t2.url");
        let s = p.display_indent();
        assert!(s.contains("Join: Inner"), "{s}");
        match &p {
            LogicalPlan::Project { input, .. } => {
                let schema = input.schema();
                assert!(schema.index_of("t1.url").is_some());
                assert!(schema.index_of("t2.rank").is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn implicit_cross_join_from_list() {
        let p = plan("SELECT t1.url FROM t1, t2");
        let s = p.display_indent();
        assert!(s.contains("Join: Cross"), "{s}");
    }

    #[test]
    fn projected_expression_names_default_to_display() {
        let p = plan("SELECT clicks + 1 FROM t1");
        assert_eq!(p.schema().field(0).name, "(clicks + 1)");
        assert_eq!(p.schema().field(0).data_type, DataType::Int64);
    }
}
