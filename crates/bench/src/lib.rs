//! Shared harness for the figure-regeneration binaries and Criterion
//! benches.
//!
//! Every binary prints the same series the paper's figure reports, with
//! scaled-down data sizes (the substitution table in DESIGN.md §2). Run
//! them all with `scripts` or individually:
//! `cargo run --release -p feisu-bench --bin fig09a_smartindex_warmup`.

use feisu_common::rng::DetRng;
use feisu_common::{Result, SimDuration, UserId};
use feisu_core::engine::{ClusterSpec, FeisuCluster, QueryResult};
use feisu_format::Value;
use feisu_sql::ast::BinaryOp;
use feisu_storage::auth::Credential;
use feisu_workload::datasets::{generate_chunk, DatasetSpec};

/// A cluster handle with a logged-in benchmark user.
pub struct Bench {
    pub cluster: FeisuCluster,
    pub cred: Credential,
    pub user: UserId,
}

/// Builds a cluster for benchmarking.
pub fn build_cluster(spec: ClusterSpec) -> Result<Bench> {
    let cluster = FeisuCluster::new(spec)?;
    let user = cluster.register_user("bench");
    cluster.grant_all(user);
    let cred = cluster.login(user)?;
    Ok(Bench {
        cluster,
        cred,
        user,
    })
}

/// Loads a dataset into a table at `location`, streaming in chunks.
pub fn load_dataset(bench: &Bench, spec: &DatasetSpec, location: &str) -> Result<()> {
    bench
        .cluster
        .create_table(&spec.name, spec.schema(), location, &bench.cred)?;
    // Generate in block-sized chunks so rows_per_block settings larger
    // than the default generation granularity still take effect.
    let chunk = bench.cluster.spec().rows_per_block.max(8192);
    let mut start = 0usize;
    while start < spec.rows {
        let cols = generate_chunk(spec, start, chunk);
        let n = cols.first().map_or(0, |c| c.len());
        if n == 0 {
            break;
        }
        bench
            .cluster
            .ingest_columns(&spec.name, cols, &bench.cred)?;
        start += n;
    }
    Ok(())
}

/// The §VI-B scan workload: `SELECT a FROM T WHERE b OP v [AND|OR c OP v]`
/// (plus the COUNT aggregation variant — "scan queries (including
/// aggregation) are most frequent", Fig. 8) with randomly drawn
/// parameters whose *population* follows the production trace's
/// skew: predicates are drawn Zipf-fashion from a fixed pool, so hot
/// predicates repeat (that is the query similarity of §IV-A) while the
/// long tail keeps injecting fresh ones. SmartIndex warm-up then shows
/// the paper's rising-hit-rate curve.
pub struct ScanWorkload {
    rng: DetRng,
    table: String,
    column_pool: usize,
    /// Zipf exponent over the predicate population; higher = more reuse.
    skew: f64,
    population: Vec<Pred>,
    /// Fraction of aggregation (COUNT) statements in the mix.
    count_ratio: f64,
}

/// One workload predicate: numeric comparison or string CONTAINS (both
/// appear in the paper's workload grammar).
#[derive(Debug, Clone)]
enum Pred {
    Cmp(String, BinaryOp, i64),
    Contains(String, String),
}

impl Pred {
    fn render(&self) -> String {
        match self {
            Pred::Cmp(c, op, v) => format!("{c} {op} {v}"),
            Pred::Contains(c, s) => format!("{c} CONTAINS '{s}'"),
        }
    }
}

impl ScanWorkload {
    /// `skew` is the Zipf exponent over a fixed predicate population
    /// (~0.9 matches the Fig. 5 similarity levels); `column_pool` bounds
    /// the distinct columns predicates target.
    pub fn new(table: &str, column_pool: usize, skew: f64, seed: u64) -> Self {
        let mut w = ScanWorkload {
            rng: DetRng::new(seed),
            table: table.to_string(),
            column_pool,
            skew,
            population: Vec::new(),
            count_ratio: 0.4,
        };
        // A fixed population of distinct predicates; popularity rank is
        // drawn per query, so hot predicates repeat heavily.
        w.populate(1500);
        w
    }

    /// Replaces the predicate population with a fresh one of `n` distinct
    /// predicates (smaller = tighter working set; used by the Fig. 11
    /// memory sweep).
    pub fn with_population(mut self, n: usize) -> Self {
        self.population.clear();
        self.populate(n);
        self
    }

    fn populate(&mut self, pop_size: usize) {
        let w = self;
        for _ in 0..pop_size {
            let p = if w.rng.chance(0.3) {
                // CONTAINS over a tag column (part of the §VI-B grammar).
                let col = w.string_column();
                let tag = format!("tag{}", w.rng.zipf(64, 0.9));
                Pred::Contains(col, tag)
            } else {
                let col = w.numeric_column();
                let op = match w.rng.next_below(6) {
                    0 => BinaryOp::Eq,
                    1 => BinaryOp::NotEq,
                    2 => BinaryOp::Lt,
                    3 => BinaryOp::LtEq,
                    4 => BinaryOp::Gt,
                    _ => BinaryOp::GtEq,
                };
                Pred::Cmp(col, op, w.rng.range_i64(0, 99))
            };
            w.population.push(p);
        }
    }

    /// Sets the fraction of COUNT statements (default 0.4).
    pub fn with_count_ratio(mut self, r: f64) -> Self {
        self.count_ratio = r.clamp(0.0, 1.0);
        self
    }

    /// Maps a popularity rank onto a *numeric* filler column: dataset
    /// filler columns cycle Int64/Float64/Utf8 by index, and comparison
    /// predicates need numeric operands.
    fn numeric_column(&mut self) -> String {
        let rank = self.rng.zipf(self.column_pool, 0.9);
        format!("c{}", (rank / 2) * 3 + (rank % 2))
    }

    /// A string (tag) filler column: indexes with `i % 3 == 2`, bounded
    /// to the same index range as the numeric columns.
    fn string_column(&mut self) -> String {
        let rank = self.rng.zipf(self.column_pool, 0.9);
        format!("c{}", (rank / 2) * 3 + 2)
    }

    fn predicate(&mut self) -> Pred {
        let rank = self.rng.zipf(self.population.len(), self.skew);
        self.population[rank].clone()
    }

    /// Next SQL statement of the workload.
    pub fn next_query(&mut self) -> String {
        let head = if self.rng.chance(self.count_ratio) {
            "COUNT(*)".to_string()
        } else {
            self.numeric_column()
        };
        let p1 = self.predicate().render();
        if self.rng.chance(0.85) {
            let p2 = self.predicate().render();
            let connective = if self.rng.chance(0.8) { "AND" } else { "OR" };
            format!(
                "SELECT {head} FROM {} WHERE ({p1}) {connective} ({p2})",
                self.table
            )
        } else {
            format!("SELECT {head} FROM {} WHERE {p1}", self.table)
        }
    }
}

/// Simple aligned series printer shared by the figure binaries.
pub fn print_series(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let line: Vec<String> = header
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    println!("{}", line.join("  "));
    for r in rows {
        let line: Vec<String> = r
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Runs a batch of queries and returns (mean response, total tasks,
/// memory-served tasks).
pub fn run_batch(
    bench: &mut Bench,
    queries: &[String],
    idle_between: SimDuration,
) -> Result<(SimDuration, usize, usize)> {
    let mut total = SimDuration::ZERO;
    let mut tasks = 0usize;
    let mut served = 0usize;
    for sql in queries {
        bench.cluster.advance_time(idle_between);
        let r = bench.cluster.query(sql, &bench.cred)?;
        total += r.response_time;
        tasks += r.stats.tasks;
        served += r.stats.memory_served_tasks;
    }
    Ok((total / queries.len().max(1) as u64, tasks, served))
}

/// Refreshes an expiring credential (simulated days pass in sweeps).
pub fn relogin(bench: &mut Bench) -> Result<()> {
    bench.cred = bench.cluster.login(bench.user)?;
    Ok(())
}

/// Rows processed per simulated second — the throughput metric of
/// Figs. 10/11.
pub fn throughput_rows_per_sec(rows: usize, elapsed: SimDuration) -> f64 {
    rows as f64 / elapsed.as_secs_f64().max(1e-12)
}

/// Formats a `QueryResult` one-liner for spot-checks.
pub fn describe(r: &QueryResult) -> String {
    format!(
        "rows={} response={} tasks={} mem_served={} bytes={}",
        r.batch.rows(),
        r.response_time,
        r.stats.tasks,
        r.stats.memory_served_tasks,
        r.stats.bytes_read
    )
}

/// Converts Value to display-safe i64 (bench assertions).
pub fn as_i64(v: &Value) -> i64 {
    v.as_i64().unwrap_or(0)
}

/// Dumps the cluster's metrics registry as JSON into
/// `results/<name>.metrics.json` (creating `results/` as needed) and
/// reports where it landed. Figure binaries call this per configuration so
/// every run leaves its counter/histogram snapshot next to the printed
/// series. `name` may include free-form configuration labels: anything
/// outside `[A-Za-z0-9._-]` becomes `_`.
pub fn dump_metrics(bench: &Bench, name: &str) -> Result<()> {
    let safe: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)
        .map_err(|e| feisu_common::FeisuError::Storage(format!("create results/: {e}")))?;
    let path = dir.join(format!("{safe}.metrics.json"));
    std::fs::write(&path, bench.cluster.metrics().to_json())
        .map_err(|e| feisu_common::FeisuError::Storage(format!("write {}: {e}", path.display())))?;
    println!("metrics -> {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let mut a = ScanWorkload::new("t1", 16, 0.9, 1);
        let mut b = ScanWorkload::new("t1", 16, 0.9, 1);
        for _ in 0..50 {
            assert_eq!(a.next_query(), b.next_query());
        }
    }

    #[test]
    fn workload_sql_always_parses() {
        let mut w = ScanWorkload::new("t1", 16, 0.9, 2);
        for _ in 0..200 {
            let sql = w.next_query();
            feisu_sql::parser::parse_query(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }

    #[test]
    fn count_ratio_controls_aggregates() {
        let mut all_counts = ScanWorkload::new("t1", 8, 0.9, 3).with_count_ratio(1.0);
        for _ in 0..20 {
            assert!(all_counts.next_query().contains("COUNT(*)"));
        }
        let mut no_counts = ScanWorkload::new("t1", 8, 0.9, 3).with_count_ratio(0.0);
        for _ in 0..20 {
            assert!(!no_counts.next_query().contains("COUNT(*)"));
        }
    }

    #[test]
    fn population_knob_bounds_distinct_predicates() {
        let mut w = ScanWorkload::new("t1", 8, 0.0, 4).with_population(5);
        let mut preds = std::collections::HashSet::new();
        for _ in 0..300 {
            let q = w.next_query();
            let tail = q.split_once("WHERE ").unwrap().1.to_string();
            for part in tail.split([' ']) {
                let _ = part;
            }
            preds.insert(tail);
        }
        // 5 predicates in the pool ⇒ at most 5*5 two-predicate combos
        // per connective/head shape; far below free generation.
        assert!(
            preds.len() <= 120,
            "population must bound variety: {}",
            preds.len()
        );
    }

    #[test]
    fn throughput_math() {
        let t = throughput_rows_per_sec(1000, SimDuration::secs(2));
        assert!((t - 500.0).abs() < 1e-9);
    }
}
