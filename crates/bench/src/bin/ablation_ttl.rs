//! Ablation — index retirement policy: 72 h TTL + LRU (paper) vs pure
//! LRU vs aggressive short TTL (DESIGN.md §6.2).
//!
//! The workload drifts: the hot predicate set rotates every simulated
//! "day", so entries built yesterday mostly stop earning their memory.
//! TTL reclaims them wholesale; pure LRU keeps paying eviction churn.

use feisu_bench::{build_cluster, load_dataset, relogin, ScanWorkload};
use feisu_common::{ByteSize, SimDuration};
use feisu_core::engine::ClusterSpec;
use feisu_workload::datasets::DatasetSpec;

fn main() -> feisu_common::Result<()> {
    let days = 5usize;
    let queries_per_day = 400usize;
    let mut rows = Vec::new();
    for (label, ttl) in [
        ("TTL 72h + LRU (paper)", SimDuration::hours(72)),
        ("TTL 6h + LRU", SimDuration::hours(6)),
        ("pure LRU (TTL=inf)", SimDuration::hours(24 * 3650)),
    ] {
        let mut spec = ClusterSpec::small();
        spec.rows_per_block = 1024;
        spec.task_reuse = false;
        spec.config.index_ttl = ttl;
        // Roomy budget: retirement policy, not LRU churn, decides.
        spec.config.index_memory_per_leaf = ByteSize::mib(4);
        let mut bench = build_cluster(spec)?;
        let mut t1 = DatasetSpec::t1(8192);
        t1.fields = 60;
        load_dataset(&bench, &t1, "/hdfs/bench/t1")?;
        let mut total = SimDuration::ZERO;
        for day in 0..days {
            // A fresh workload generator per day = drifted hot set.
            let mut wl = ScanWorkload::new("t1", 16, 0.9, 0xAB3 + day as u64);
            for q in 0..queries_per_day {
                bench.cluster.advance_time(SimDuration::secs(60));
                if q % 240 == 0 {
                    relogin(&mut bench)?;
                }
                let r = bench.cluster.query(&wl.next_query(), &bench.cred)?;
                total += r.response_time;
            }
            // Overnight gap: by day 4, day-1 entries are >72 h old.
            bench.cluster.advance_time(SimDuration::hours(22));
            relogin(&mut bench)?;
        }
        let stats = bench.cluster.index_stats();
        rows.push(vec![
            label.to_string(),
            format!(
                "{:.3}",
                total.as_millis_f64() / (days * queries_per_day) as f64
            ),
            format!("{:.1}%", (1.0 - stats.miss_ratio()) * 100.0),
            stats.ttl_evictions.to_string(),
            stats.lru_evictions.to_string(),
        ]);
        feisu_bench::dump_metrics(&bench, &format!("ablation_ttl.{label}"))?;
    }
    feisu_bench::print_series(
        "Ablation: index retirement policy under daily workload drift",
        &[
            "policy",
            "mean response (ms)",
            "hit rate",
            "ttl evictions",
            "lru evictions",
        ],
        &rows,
    );
    println!(
        "\nexpected: the paper's 72h TTL matches pure LRU on response while \
         reclaiming stale entries; an over-aggressive TTL hurts the hit rate"
    );
    Ok(())
}
