//! Table I — the experimental datasets, generated at benchmark scale.
//!
//! The paper's tables hold 30/130/10 billion records (62/200/7 TB). The
//! scaled stand-ins keep the schema shapes (200/200/57 attributes, T3 ⊂
//! T1/T2) and report the achieved columnar compression so the scale-down
//! is transparent.

use feisu_common::ByteSize;
use feisu_format::{Block, Schema};
use feisu_workload::datasets::{generate_chunk, DatasetSpec};

fn measure(spec: &DatasetSpec) -> (usize, usize, ByteSize, ByteSize) {
    let schema: Schema = spec.schema();
    let mut raw = 0u64;
    let mut stored = 0u64;
    let mut start = 0usize;
    let mut block_id = 0u64;
    while start < spec.rows {
        let cols = generate_chunk(spec, start, 4096);
        let n = cols.first().map_or(0, |c| c.len());
        if n == 0 {
            break;
        }
        let block = Block::new(feisu_common::BlockId(block_id), schema.clone(), cols)
            .expect("well-typed chunk");
        raw += block.footprint() as u64;
        stored += block.serialize().len() as u64;
        start += n;
        block_id += 1;
    }
    (spec.rows, schema.len(), ByteSize(raw), ByteSize(stored))
}

fn main() {
    // Scale factor: paper rows / 1e6 (billions → thousands).
    let specs = [
        (DatasetSpec::t1(30_000), "30 billion", "62 TB", "A (hdfs)"),
        (
            DatasetSpec::t2(60_000),
            "130 billion",
            "200 TB",
            "B (hdfs-2)",
        ),
        (DatasetSpec::t3(10_000), "10 billion", "7 TB", "A (hdfs)"),
    ];
    let mut rows = Vec::new();
    for (spec, paper_rows, paper_size, storage) in &specs {
        let (n, fields, raw, stored) = measure(spec);
        rows.push(vec![
            spec.name.clone(),
            n.to_string(),
            paper_rows.to_string(),
            fields.to_string(),
            raw.to_string(),
            stored.to_string(),
            format!(
                "{:.2}x",
                raw.as_u64() as f64 / stored.as_u64().max(1) as f64
            ),
            paper_size.to_string(),
            storage.to_string(),
        ]);
    }
    feisu_bench::print_series(
        "Table I: experimental datasets (scaled 1e-6)",
        &[
            "table",
            "rows",
            "paper rows",
            "fields",
            "raw",
            "stored",
            "compression",
            "paper size",
            "storage",
        ],
        &rows,
    );
    println!("\nT3's schema is a strict subset of T1/T2's, as in the paper.");
}
