//! Benchmark for footer zone-map block skipping on cold first-touch scans.
//!
//! Builds two identical clusters over an `events` table whose `id` column
//! is ingested in ascending order (so every block's zone covers a
//! disjoint id range) — one with `FeisuConfig.zone_maps` on, one with it
//! off. SmartIndex and task reuse are disabled so *every* query is a cold
//! first-touch scan: the only difference between the clusters is whether
//! a leaf may disprove a block from its footer before decoding it.
//!
//! Configurations sweep selectivity: a 1-block point range, a mid-table
//! range, a half-table range, and an unselective full-width scan where
//! zone maps can skip nothing (regression guard — the footer check must
//! be free when it never fires). Both simulated response time (the cost
//! model the paper's numbers come from) and wall-clock are reported;
//! results land in `results/BENCH_zone_skip.json`.
//!
//! `--smoke` (or `FEISU_BENCH_SMOKE=1`) shrinks the table for CI.

use feisu_common::rng::DetRng;
use feisu_core::engine::{ClusterSpec, FeisuCluster, QueryResult};
use feisu_format::{DataType, Field, Schema, Value};
use feisu_obs::Histogram;
use feisu_storage::auth::Credential;
use std::time::Instant;

struct Config {
    name: &'static str,
    sql: String,
}

fn events_schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int64, false),
        Field::new("val", DataType::Float64, false),
        Field::new("tag", DataType::Utf8, false),
        Field::new("payload", DataType::Utf8, false),
    ])
}

/// `rows` events starting at `first_id` with ascending ids. `payload` is
/// `payload_segs` × 16 hex chars of per-row entropy, so blocks carry
/// enough incompressible bytes that transfer (not seek) dominates a
/// block read — the regime where skipping a decode matters, and the one
/// production blocks live in (the paper's blocks are tens of MB).
fn events_rows(first_id: usize, rows: usize, payload_segs: usize) -> Vec<Vec<Value>> {
    let mut rng = DetRng::new(0x5eed_20e5 ^ first_id as u64);
    (first_id..first_id + rows)
        .map(|i| {
            let mut payload = String::with_capacity(16 * payload_segs);
            for _ in 0..payload_segs {
                payload.push_str(&format!("{:016x}", rng.next_u64()));
            }
            vec![
                Value::Int64(i as i64),
                Value::Float64(rng.next_f64()),
                Value::from(["alpha", "beta", "gamma", "delta"][rng.index(4)]),
                Value::from(payload),
            ]
        })
        .collect()
}

fn build_cluster(
    rows: usize,
    rows_per_block: usize,
    payload_segs: usize,
    zone_maps: bool,
) -> (FeisuCluster, Credential) {
    let mut spec = ClusterSpec::small();
    spec.rows_per_block = rows_per_block;
    spec.config.zone_maps = zone_maps;
    // Cold first-touch scans on every iteration: no cached index bits, no
    // identical-task result reuse.
    spec.use_smartindex = false;
    spec.task_reuse = false;
    let cluster = FeisuCluster::new(spec).expect("cluster");
    let user = cluster.register_user("bencher");
    cluster.grant_all(user);
    let cred = cluster.login(user).expect("login");
    cluster
        .create_table("events", events_schema(), "/hdfs/bench/events", &cred)
        .expect("create table");
    // Ingest in block-aligned chunks to bound peak row-buffer memory.
    let chunk = rows_per_block * 8;
    let mut first = 0;
    while first < rows {
        let n = chunk.min(rows - first);
        cluster
            .ingest_rows("events", events_rows(first, n, payload_segs), &cred)
            .expect("ingest");
        first += n;
    }
    (cluster, cred)
}

/// Runs `iters` cold queries: returns the (constant) simulated response
/// time in ms, best wall-clock ms, a wall-clock histogram, and the last
/// result.
fn run(
    cluster: &FeisuCluster,
    cred: &Credential,
    sql: &str,
    iters: usize,
) -> (f64, f64, Histogram, QueryResult) {
    let hist = Histogram::new(Histogram::default_time_boundaries());
    let mut best = f64::INFINITY;
    let mut last = None;
    let mut sim_ms = 0.0;
    for i in 0..iters {
        let t = Instant::now();
        let r = cluster.query(sql, cred).expect("bench query");
        let ns = t.elapsed().as_nanos() as u64;
        hist.observe(ns);
        best = best.min(ns as f64 / 1e6);
        if i == 0 {
            sim_ms = r.response_time.as_millis_f64();
        } else {
            assert_eq!(
                sim_ms,
                r.response_time.as_millis_f64(),
                "simulated time must be reuse-free and deterministic"
            );
        }
        last = Some(r);
    }
    (sim_ms, best, hist, last.expect("at least one iter"))
}

fn q_ms(hist: &Histogram, q: f64) -> f64 {
    hist.quantile(q) as f64 / 1e6
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("FEISU_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (rows_per_block, blocks, payload_segs, iters) = if smoke {
        (256, 8, 4, 2)
    } else {
        (8192, 64, 48, 3)
    };
    let rows = rows_per_block * blocks;

    let (on, on_cred) = build_cluster(rows, rows_per_block, payload_segs, true);
    let (off, off_cred) = build_cluster(rows, rows_per_block, payload_segs, false);

    let mid = rows / 2;
    let configs = vec![
        Config {
            // Fetch whole matching rows from a cold table: every column
            // is touched, so a non-skipped block pays its full bytes.
            name: "point_1_block",
            sql: format!("SELECT id, val, tag, payload FROM events WHERE id < {rows_per_block}"),
        },
        Config {
            name: "range_mid_2_blocks",
            sql: format!(
                "SELECT id, val, tag FROM events WHERE id >= {mid} AND id < {}",
                mid + 2 * rows_per_block
            ),
        },
        Config {
            name: "range_half_table",
            sql: format!("SELECT id, val FROM events WHERE id >= {mid}"),
        },
        Config {
            // Matches every block: zone maps can skip nothing, so the
            // footer check must cost exactly nothing in simulated time.
            name: "unselective_guard",
            sql: "SELECT id, val, tag FROM events WHERE id >= 0".to_string(),
        },
    ];

    let mut entries = Vec::new();
    let mut table = Vec::new();
    let mut selective_speedup = 0.0f64;
    let mut selective_wall_speedup = 0.0f64;
    let mut unselective_ratio = 0.0f64;
    for cfg in &configs {
        let (on_sim, on_wall, on_hist, on_res) = run(&on, &on_cred, &cfg.sql, iters);
        let (off_sim, off_wall, off_hist, off_res) = run(&off, &off_cred, &cfg.sql, iters);
        if std::env::var("FEISU_BENCH_DEBUG").is_ok_and(|v| v == "1") {
            println!(
                "--- {} (zone maps on) ---\n{}",
                cfg.name,
                on_res.profile.render()
            );
            println!(
                "--- {} (zone maps off) ---\n{}",
                cfg.name,
                off_res.profile.render()
            );
        }
        assert_eq!(
            on_res.batch, off_res.batch,
            "{}: zone skipping changed results",
            cfg.name
        );
        assert_eq!(
            off_res.stats.blocks_skipped, 0,
            "{}: kill-switch must disable skipping",
            cfg.name
        );
        let sim_speedup = off_sim / on_sim;
        let wall_speedup = off_wall / on_wall;
        if cfg.name == "point_1_block" {
            // Headline: the simulated response-time ratio (deterministic,
            // the number the paper-world comparison is about). Skipped
            // blocks still pay seek latency and footer bytes, so the
            // ratio depends on blocks being transfer-dominated.
            selective_speedup = sim_speedup;
            selective_wall_speedup = wall_speedup;
        }
        if cfg.name == "unselective_guard" {
            // Guard reports the on/off cost ratio: 1.0 means the zone
            // check is free when nothing can be skipped.
            unselective_ratio = on_sim / off_sim;
        }
        entries.push(format!(
            concat!(
                "    {{\"name\": \"{}\", \"rows_out\": {}, ",
                "\"blocks_skipped\": {}, \"blocks_scanned\": {}, ",
                "\"zone_on_sim_ms\": {}, \"zone_off_sim_ms\": {}, \"sim_speedup\": {}, ",
                "\"zone_on_wall_ms\": {}, \"zone_off_wall_ms\": {}, \"wall_speedup\": {}, ",
                "\"zone_on_wall_p95_ms\": {}, \"zone_off_wall_p95_ms\": {}}}"
            ),
            cfg.name,
            on_res.batch.rows(),
            on_res.stats.blocks_skipped,
            on_res.stats.blocks_scanned,
            json_f(on_sim),
            json_f(off_sim),
            json_f(sim_speedup),
            json_f(on_wall),
            json_f(off_wall),
            json_f(wall_speedup),
            json_f(q_ms(&on_hist, 0.95)),
            json_f(q_ms(&off_hist, 0.95)),
        ));
        table.push(vec![
            cfg.name.to_string(),
            format!("{}", on_res.batch.rows()),
            format!(
                "{}/{}",
                on_res.stats.blocks_skipped,
                on_res.stats.blocks_skipped + on_res.stats.blocks_scanned
            ),
            format!("{off_sim:.3}"),
            format!("{on_sim:.3}"),
            format!("{sim_speedup:.2}x"),
            format!("{wall_speedup:.2}x"),
        ]);
    }

    feisu_bench::print_series(
        "zone-map skipping: cold scans, zone maps off vs on",
        &[
            "config",
            "rows out",
            "skipped",
            "off sim ms",
            "on sim ms",
            "sim speedup",
            "wall speedup",
        ],
        &table,
    );

    let json = format!(
        "{{\n  \"bench\": \"zone_skip\",\n  \"rows\": {rows},\n  \
         \"rows_per_block\": {rows_per_block},\n  \"blocks\": {blocks},\n  \
         \"iters\": {iters},\n  \"smoke\": {smoke},\n  \
         \"selective_speedup\": {},\n  \"selective_wall_speedup\": {},\n  \
         \"unselective_ratio\": {},\n  \
         \"configs\": [\n{}\n  ]\n}}\n",
        json_f(selective_speedup),
        json_f(selective_wall_speedup),
        json_f(unselective_ratio),
        entries.join(",\n")
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_zone_skip.json", json).expect("write bench json");
    println!("\nresults -> results/BENCH_zone_skip.json");
}
