//! Ablation — speculative backup tasks under stragglers
//! (DESIGN.md §6.4).
//!
//! §V-B: consolidated servers fluctuate — low-priority containers yield
//! resources to business-critical services, so some leaves intermittently
//! run far slower. Backup tasks bound the tail. This ablation injects a
//! straggler set and compares tail response with the backup mechanism
//! enabled (small detection delay) vs effectively disabled (huge delay).

use feisu_bench::{build_cluster, load_dataset, ScanWorkload};
use feisu_common::{NodeId, SimDuration};
use feisu_core::engine::ClusterSpec;
use feisu_workload::datasets::DatasetSpec;

fn main() -> feisu_common::Result<()> {
    let queries = 200usize;
    let mut rows = Vec::new();
    for (label, delay) in [
        ("backups on (5 ms detect)", SimDuration::millis(5)),
        ("backups off", SimDuration::hours(1)),
    ] {
        let mut spec = ClusterSpec::with_nodes(8);
        spec.rows_per_block = 512;
        spec.task_reuse = false;
        spec.use_smartindex = false;
        spec.config.backup_task_delay = delay;
        let bench = build_cluster(spec)?;
        let mut t1 = DatasetSpec::t1(8192);
        t1.fields = 40;
        load_dataset(&bench, &t1, "/hdfs/bench/t1")?;
        // A quarter of the fleet is preempted by business load: 20x slow.
        for n in 0..2 {
            bench.cluster.slow_node(NodeId(n), 20.0);
        }
        let mut wl = ScanWorkload::new("t1", 12, 0.0, 0xAB4).with_count_ratio(0.0);
        let mut times: Vec<f64> = Vec::new();
        let mut backups = 0usize;
        for _ in 0..queries {
            let r = bench.cluster.query(&wl.next_query(), &bench.cred)?;
            times.push(r.response_time.as_millis_f64());
            backups += r.stats.backup_tasks;
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| times[((times.len() - 1) as f64 * p) as usize];
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", pct(0.50)),
            format!("{:.3}", pct(0.99)),
            backups.to_string(),
        ]);
        feisu_bench::dump_metrics(&bench, &format!("ablation_backup_tasks.{label}"))?;
    }
    feisu_bench::print_series(
        "Ablation: backup (speculative) tasks with 25% stragglers (20x slow)",
        &["configuration", "p50 (ms)", "p99 (ms)", "backup tasks"],
        &rows,
    );
    println!("\nexpected: backups collapse the p99 tail that stragglers create");
    Ok(())
}
