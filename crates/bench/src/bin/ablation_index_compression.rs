//! Ablation — SmartIndex payload compression (DESIGN.md §6.1).
//!
//! "Feisu can compress the index to improve memory efficiency"
//! (§IV-C-1). This ablation measures, over blocks with different
//! selectivity shapes, the memory footprint of raw bitmaps vs the
//! RLE-or-raw `CompressedBits` actually used, and the decode overhead
//! that compression costs at probe time (real time, not simulated).

use feisu_common::{BlockId, SimInstant};
use feisu_format::{Block, Column, DataType, Field, Schema, Value};
use feisu_index::bitvec::CompressedBits;
use feisu_index::smart::SmartIndex;
use feisu_sql::ast::BinaryOp;
use feisu_sql::cnf::SimplePredicate;
use std::time::Instant;

fn block_with(values: Vec<i64>) -> Block {
    let schema = Schema::new(vec![Field::new("x", DataType::Int64, false)]);
    Block::new(BlockId(0), schema, vec![Column::from_i64(values)]).unwrap()
}

fn main() {
    let n = 65_536usize;
    let shapes: Vec<(&str, Vec<i64>)> = vec![
        // Clustered: value correlates with position (time-ordered logs).
        ("clustered", (0..n).map(|i| (i / 4096) as i64).collect()),
        // Uniform random: worst case for RLE.
        ("random", {
            let mut rng = feisu_common::rng::DetRng::new(7);
            (0..n).map(|_| rng.range_i64(0, 99)).collect()
        }),
        // Constant: one run.
        ("constant", vec![42i64; n]),
    ];
    let pred = SimplePredicate {
        column: "x".into(),
        op: BinaryOp::LtEq,
        value: Value::Int64(7),
    };
    let mut rows = Vec::new();
    for (label, values) in shapes {
        let block = block_with(values);
        let idx = SmartIndex::build(&block, &pred, SimInstant(0), false).unwrap();
        let raw_bits = idx.bits();
        let compressed = CompressedBits::from_bitvec(&raw_bits);
        // Probe-time decode cost.
        let t = Instant::now();
        let mut ones = 0usize;
        for _ in 0..200 {
            ones = compressed.to_bitvec().count_ones();
        }
        let decode_us = t.elapsed().as_micros() as f64 / 200.0;
        rows.push(vec![
            label.to_string(),
            format!("{}", raw_bits.footprint()),
            format!("{}", compressed.footprint()),
            format!(
                "{:.1}x",
                raw_bits.footprint() as f64 / compressed.footprint() as f64
            ),
            format!("{decode_us:.1}"),
            ones.to_string(),
        ]);
    }
    feisu_bench::print_series(
        "Ablation: SmartIndex bitmap compression (64Ki-row blocks)",
        &[
            "data shape",
            "raw bytes",
            "compressed bytes",
            "saving",
            "decode (us)",
            "matches",
        ],
        &rows,
    );
    println!(
        "\nexpected: clustered/constant results compress heavily (more indices \
         fit the 512 MB budget); random stays raw with zero decode overhead"
    );
}
