//! Figure 9(a) — scan performance with and without SmartIndex as more
//! queries are processed.
//!
//! Paper shape: without SmartIndex the per-query time is flat; with
//! SmartIndex it falls as the predicate cache warms, exceeding 3× past
//! a few thousand queries. The workload is §VI-B's
//! `SELECT a FROM T1 WHERE b OP v [AND|OR c OP v]` with the production
//! trace's parameter-reuse behaviour.

use feisu_bench::{build_cluster, load_dataset, ScanWorkload};
use feisu_common::SimDuration;
use feisu_core::engine::ClusterSpec;
use feisu_workload::datasets::DatasetSpec;

fn main() -> feisu_common::Result<()> {
    let queries = 4000usize;
    let bucket = 400usize;

    let mut spec_t1 = DatasetSpec::t1(8192);
    spec_t1.fields = 60; // scaled attribute count; predicates target c0..c47

    let mk_spec = |smart: bool| {
        let mut s = ClusterSpec::small();
        s.rows_per_block = 1024;
        s.use_smartindex = smart;
        s.task_reuse = false; // isolate the SmartIndex effect
        s
    };

    let mut series: Vec<Vec<String>> = Vec::new();
    let mut results: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
    for (i, smart) in [false, true].into_iter().enumerate() {
        let mut bench = build_cluster(mk_spec(smart))?;
        load_dataset(&bench, &spec_t1, "/hdfs/bench/t1")?;
        let mut workload = ScanWorkload::new("t1", 16, 0.9, 0x91A);
        let mut bucket_total = SimDuration::ZERO;
        for q in 0..queries {
            // ~1 s of user think time between queries.
            bench.cluster.advance_time(SimDuration::secs(1));
            // Credentials expire every 8 h of simulated time; refresh.
            if q % 2000 == 0 {
                feisu_bench::relogin(&mut bench)?;
            }
            let sql = workload.next_query();
            let r = bench.cluster.query(&sql, &bench.cred)?;
            bucket_total += r.response_time;
            if (q + 1) % bucket == 0 {
                results[i].push(bucket_total.as_millis_f64() / bucket as f64);
                bucket_total = SimDuration::ZERO;
            }
        }
        feisu_bench::dump_metrics(
            &bench,
            &format!(
                "fig09a_smartindex_warmup.{}",
                if smart { "smartindex" } else { "no_index" }
            ),
        )?;
    }
    for (b, (no_idx, with_idx)) in results[0].iter().zip(&results[1]).enumerate() {
        series.push(vec![
            format!("{}", (b + 1) * bucket),
            format!("{no_idx:.3}"),
            format!("{with_idx:.3}"),
            format!("{:.2}x", no_idx / with_idx.max(1e-12)),
        ]);
    }
    feisu_bench::print_series(
        "Fig. 9a: mean scan response vs queries processed",
        &["queries", "no-index (ms)", "smartindex (ms)", "speedup"],
        &series,
    );
    let last = series.last().expect("buckets");
    println!(
        "\nexpected shape: flat baseline, warming SmartIndex, >3x at the tail \
         (paper: >3x past 4000 queries). measured tail speedup: {}",
        last[3]
    );
    Ok(())
}
