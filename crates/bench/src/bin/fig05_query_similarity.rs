//! Figure 5 — ratio of queries that share at least one exact predicate
//! with another query in the same time span.
//!
//! Paper shape: a large fraction even at short spans, growing with span.

use feisu_common::SimDuration;
use feisu_workload::analyze::predicate_similarity_ratio;
use feisu_workload::trace::{generate_trace, TraceSpec};

fn main() {
    let trace = generate_trace(&TraceSpec {
        queries: 20_000,
        span: SimDuration::hours(24 * 60),
        similarity: 0.6,
        locality_theta: 0.9,
        ..TraceSpec::default()
    });
    let spans = [
        ("0.5h", SimDuration::minutes(30)),
        ("1h", SimDuration::hours(1)),
        ("2h", SimDuration::hours(2)),
        ("4h", SimDuration::hours(4)),
        ("8h", SimDuration::hours(8)),
    ];
    let rows: Vec<Vec<String>> = spans
        .iter()
        .map(|(label, span)| {
            let r = predicate_similarity_ratio(&trace, *span);
            vec![label.to_string(), format!("{:.1}%", r * 100.0)]
        })
        .collect();
    feisu_bench::print_series(
        "Fig. 5: queries sharing >=1 exact predicate, per time span",
        &["span", "ratio"],
        &rows,
    );
    println!("\nexpected shape: high and increasing with span (paper Fig. 5)");
}
