//! Figure 10 — averaged per-server scan throughput when queries span two
//! storage systems (T2 on storage B, T3 on storage A), with and without
//! SmartIndex.
//!
//! Paper shape: enabling SmartIndex lifts per-server throughput by up to
//! ~1.5×. Each logical query scans both tables (T3's attributes are a
//! subset of T2's), exactly as in §VI-B-2.

use feisu_bench::{build_cluster, load_dataset, throughput_rows_per_sec, ScanWorkload};
use feisu_common::SimDuration;
use feisu_core::engine::ClusterSpec;
use feisu_workload::datasets::DatasetSpec;

fn main() -> feisu_common::Result<()> {
    let queries = 1200usize;
    let mut results = Vec::new();
    for smart in [false, true] {
        let mut spec = ClusterSpec::small();
        spec.rows_per_block = 1024;
        spec.use_smartindex = smart;
        spec.task_reuse = false;
        let mut bench = build_cluster(spec)?;
        let mut t2 = DatasetSpec::t2(6144);
        t2.fields = 60;
        let mut t3 = DatasetSpec::t3(4096);
        t3.fields = 57;
        // "The cluster has two HDFS storage systems managed by Feisu"
        // (§VI-A): two independent HDFS roots, A and B.
        load_dataset(&bench, &t2, "/hdfs/b/t2")?;
        load_dataset(&bench, &t3, "/hdfs/a/t3")?;

        let mut wl2 = ScanWorkload::new("t2", 12, 0.6, 0xF10).with_count_ratio(0.05);
        let mut wl3 = ScanWorkload::new("t3", 12, 0.6, 0xF10).with_count_ratio(0.05);
        let mut rows_scanned = 0usize;
        let mut elapsed = SimDuration::ZERO;
        for q in 0..queries {
            bench.cluster.advance_time(SimDuration::secs(1));
            if q % 2000 == 0 {
                feisu_bench::relogin(&mut bench)?;
            }
            // One logical query = the same predicate template over both
            // storage systems.
            let r2 = bench.cluster.query(&wl2.next_query(), &bench.cred)?;
            let r3 = bench.cluster.query(&wl3.next_query(), &bench.cred)?;
            rows_scanned += 6144 + 4096; // rows considered per logical query
            elapsed += r2.response_time + r3.response_time;
        }
        let per_server =
            throughput_rows_per_sec(rows_scanned, elapsed) / bench.cluster.node_count() as f64;
        results.push((smart, per_server));
        feisu_bench::dump_metrics(
            &bench,
            &format!(
                "fig10_multi_storage.{}",
                if smart { "smartindex" } else { "no_index" }
            ),
        )?;
    }
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(smart, tput)| {
            vec![
                if *smart { "with SmartIndex" } else { "without" }.to_string(),
                format!("{tput:.0}"),
            ]
        })
        .collect();
    feisu_bench::print_series(
        "Fig. 10: per-server scan throughput across two storage systems",
        &["configuration", "rows/s/server"],
        &rows,
    );
    let speedup = results[1].1 / results[0].1.max(1e-12);
    println!("\nmeasured uplift: {speedup:.2}x — paper reports up to 1.5x");
    Ok(())
}
