//! Figure 11 — SmartIndex memory-size sweep: (a) index-cache miss ratio
//! and (b) throughput as the per-leaf index memory grows.
//!
//! Paper shape: misses fall and throughput rises with memory, but with
//! strongly diminishing returns — 512 MB performs comparably to 2 GB
//! ("Feisu doesn't consume too much memory on each server"). Budgets are
//! scaled with the data (our blocks are KB-scale, not GB-scale); the
//! ratio ladder matches the paper's 128 MB → 2 GB sweep.

use feisu_bench::{build_cluster, load_dataset, throughput_rows_per_sec, ScanWorkload};
use feisu_common::{ByteSize, SimDuration};
use feisu_core::engine::ClusterSpec;
use feisu_workload::datasets::DatasetSpec;

fn main() -> feisu_common::Result<()> {
    let queries = 1500usize;
    // Scaled ladder mirroring 128 MB, 256 MB, 512 MB, 1 GB, 2 GB.
    let budgets = [
        ("128MB~", ByteSize::kib(24)),
        ("256MB~", ByteSize::kib(48)),
        ("512MB~", ByteSize::kib(96)),
        ("1GB~", ByteSize::kib(192)),
        ("2GB~", ByteSize::kib(384)),
    ];
    let mut rows = Vec::new();
    let mut measured: Vec<(f64, f64)> = Vec::new();
    for (label, budget) in budgets {
        let mut spec = ClusterSpec::small();
        spec.rows_per_block = 1024;
        spec.task_reuse = false;
        spec.config.index_memory_per_leaf = budget;
        let mut bench = build_cluster(spec)?;
        let mut t1 = DatasetSpec::t1(8192);
        t1.fields = 60;
        load_dataset(&bench, &t1, "/hdfs/bench/t1")?;
        let mut wl = ScanWorkload::new("t1", 24, 1.0, 0xF11).with_population(150);
        let mut elapsed = SimDuration::ZERO;
        let mut scanned = 0usize;
        for q in 0..queries {
            bench.cluster.advance_time(SimDuration::secs(1));
            if q % 2000 == 0 {
                feisu_bench::relogin(&mut bench)?;
            }
            let r = bench.cluster.query(&wl.next_query(), &bench.cred)?;
            elapsed += r.response_time;
            scanned += 8192;
        }
        let stats = bench.cluster.index_stats();
        let tput = throughput_rows_per_sec(scanned, elapsed) / bench.cluster.node_count() as f64;
        measured.push((stats.miss_ratio(), tput));
        rows.push(vec![
            label.to_string(),
            budget.to_string(),
            format!("{:.1}%", stats.miss_ratio() * 100.0),
            format!("{tput:.0}"),
            format!("{}", stats.lru_evictions),
        ]);
        feisu_bench::dump_metrics(&bench, &format!("fig11_memory_sweep.{label}"))?;
    }
    feisu_bench::print_series(
        "Fig. 11: index memory sweep — miss ratio (a) and throughput (b)",
        &[
            "paper label",
            "scaled budget",
            "miss ratio",
            "rows/s/server",
            "lru evictions",
        ],
        &rows,
    );
    let mid = measured[2].1; // the "512 MB" point
    let top = measured[4].1; // the "2 GB" point
    println!(
        "\n512MB~ throughput is {:.0}% of 2GB~ — paper: \"comparable\" (Fig. 11b)",
        mid / top.max(1e-12) * 100.0
    );
    Ok(())
}
