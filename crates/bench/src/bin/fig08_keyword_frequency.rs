//! Figure 8 — keyword frequency over a three-month query log.
//!
//! Paper shape: scans (SELECT/WHERE, aggregations) dominate at >99%;
//! joins are rare. This motivates optimizing the scan path (SmartIndex).

use feisu_common::SimDuration;
use feisu_workload::analyze::{keyword_frequency, scan_family_ratio};
use feisu_workload::trace::{generate_trace, TraceSpec};

fn main() {
    let trace = generate_trace(&TraceSpec {
        queries: 30_000,
        span: SimDuration::hours(24 * 90), // three months, as in §VI-A
        similarity: 0.6,
        locality_theta: 0.9,
        ..TraceSpec::default()
    });
    let rows: Vec<Vec<String>> = keyword_frequency(&trace)
        .into_iter()
        .filter(|(_, f)| *f > 0.0)
        .map(|(kw, f)| vec![kw, format!("{:.2}%", f * 100.0)])
        .collect();
    feisu_bench::print_series(
        "Fig. 8: keyword frequency (3-month trace)",
        &["keyword", "frequency"],
        &rows,
    );
    println!(
        "\nscan-family (non-join) queries: {:.2}% — paper reports >99%",
        scan_family_ratio(&trace) * 100.0
    );
}
